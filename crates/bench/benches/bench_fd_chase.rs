//! FD-chase cost: queries with n atoms sharing a key, which the FD rule
//! merges pairwise (the classical chase workload of [1,2,11]).

use cqchase_core::chase::{chase_query, ChaseBudget, ChaseMode, ChaseStatus};
use cqchase_ir::{parse_program, QueryBuilder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fd_chase(c: &mut Criterion) {
    let p = parse_program("relation R(a, b). fd R: a -> b.").unwrap();
    let mut group = c.benchmark_group("fd_chase_merge");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for n in [4usize, 16, 64] {
        // Q(x) :- R(x, y0), R(x, y1), …: all atoms merge into one.
        let mut b = QueryBuilder::new("Q", &p.catalog).head_vars(["x"]);
        for i in 0..n {
            b = b.atom("R", ["x".to_string(), format!("y{i}")]).unwrap();
        }
        let q = b.build().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                let (ch, status) = chase_query(
                    &q,
                    &p.deps,
                    &p.catalog,
                    ChaseMode::Required,
                    ChaseBudget::default(),
                );
                assert_eq!(status, ChaseStatus::Complete);
                assert_eq!(ch.state().num_alive(), 1);
                std::hint::black_box(ch.fd_steps())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fd_chase);
criterion_main!(benches);
