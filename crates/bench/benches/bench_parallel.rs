//! Batch throughput: single-thread vs multi-thread execution of the
//! batch containment and batch evaluation engines.
//!
//! Besides the criterion groups, the run records a JSON baseline at
//! `crates/bench/baselines/bench_parallel.json` (items/sec per thread
//! count, speedups, and the machine's core count) that the bench gate
//! (`bench_gate --check-baseline`) compares future runs against.
//!
//! Thread scaling is only observable when the machine exposes hardware
//! parallelism: on a single-core container the 4-thread run measures the
//! executor's overhead (expect ~1.0x), and the baseline records
//! `cores` so readers (and the gate) can interpret the numbers.

use std::time::Duration;

use cqchase_bench::util::time_median;
use cqchase_core::{check_batch as check_batch_seq, ContainmentOptions, ContainmentPair};
use cqchase_par::{check_batch, default_threads, evaluate_batch, BatchOptions};
use cqchase_storage::evaluate_batch as evaluate_batch_seq;
use cqchase_workload::{chain_eval_batch, successor_containment_batch, DatabaseGen};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use serde_json::{json, Map, Value};

const POOL: usize = 12;
const PAIRS: usize = 384;
const EVAL_QUERIES: usize = 48;
const EVAL_TUPLES: usize = 800;

fn containment_workload() -> (
    cqchase_ir::Program,
    Vec<cqchase_ir::ConjunctiveQuery>,
    Vec<ContainmentPair>,
) {
    let batch = successor_containment_batch(5, POOL, PAIRS);
    let pairs = batch
        .pairs
        .iter()
        .map(|&(q, q_prime)| ContainmentPair { q, q_prime })
        .collect();
    (batch.program, batch.queries, pairs)
}

fn eval_workload() -> (Vec<cqchase_ir::ConjunctiveQuery>, cqchase_storage::Database) {
    let batch = successor_containment_batch(5, 1, 0);
    let qs = chain_eval_batch(&batch.program, EVAL_QUERIES);
    let db = DatabaseGen {
        seed: 9,
        tuples_per_relation: EVAL_TUPLES,
        domain: (EVAL_TUPLES as i64 / 2).max(4),
    }
    .generate(&batch.program.catalog);
    (qs, db)
}

fn bench_batch_containment(c: &mut Criterion) {
    let (program, queries, pairs) = containment_workload();
    let opts = ContainmentOptions::default();
    let mut group = c.benchmark_group("parallel_containment");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(800));
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("check_batch", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let r = check_batch(
                        &queries,
                        &pairs,
                        &program.deps,
                        &program.catalog,
                        &opts,
                        BatchOptions::with_threads(t),
                    );
                    assert_eq!(r.len(), pairs.len());
                    std::hint::black_box(r.iter().filter(|a| a.as_ref().unwrap().contained).count())
                });
            },
        );
    }
    group.finish();
}

fn bench_batch_eval(c: &mut Criterion) {
    let (qs, db) = eval_workload();
    let mut group = c.benchmark_group("parallel_eval");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(800));
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("evaluate_batch", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let r = evaluate_batch(&qs, &db, BatchOptions::with_threads(t));
                    std::hint::black_box(r.iter().map(Vec::len).sum::<usize>())
                });
            },
        );
    }
    group.finish();
}

/// Records the committed JSON baseline: batch throughput at 1 and 4
/// threads for both engines, with sanity checks that the parallel
/// results equal the sequential ones on this very workload.
fn record_baseline(_c: &mut Criterion) {
    let cores = default_threads();
    let (program, queries, pairs) = containment_workload();
    let opts = ContainmentOptions::default();
    let (qs, db) = eval_workload();

    let seq_answers = check_batch_seq(&queries, &pairs, &program.deps, &program.catalog, &opts);
    let seq_evals = evaluate_batch_seq(&qs, &db);

    let mut entries = Vec::new();
    let mut speedups = Map::new();
    for (bench, items) in [("batch_containment", pairs.len()), ("batch_eval", qs.len())] {
        let mut single_ns = 0u64;
        for threads in [1usize, 4] {
            let batch_opts = BatchOptions::with_threads(threads);
            // Correctness checks once, outside the timed region (serial
            // comparisons inside it would deflate the measured ratio).
            if bench == "batch_containment" {
                let r = check_batch(
                    &queries,
                    &pairs,
                    &program.deps,
                    &program.catalog,
                    &opts,
                    batch_opts,
                );
                assert_eq!(r.len(), seq_answers.len());
                for (a, b) in r.iter().zip(seq_answers.iter()) {
                    assert_eq!(a.as_ref().unwrap().contained, b.as_ref().unwrap().contained);
                }
            } else {
                assert_eq!(evaluate_batch(&qs, &db, batch_opts), seq_evals);
            }
            let t = if bench == "batch_containment" {
                time_median(7, || {
                    let r = check_batch(
                        &queries,
                        &pairs,
                        &program.deps,
                        &program.catalog,
                        &opts,
                        batch_opts,
                    );
                    std::hint::black_box(r.len());
                })
            } else {
                time_median(7, || {
                    std::hint::black_box(evaluate_batch(&qs, &db, batch_opts).len());
                })
            };
            let ns = t.as_nanos() as u64;
            if threads == 1 {
                single_ns = ns;
            }
            let mut e = Map::new();
            e.insert("bench".into(), Value::from(bench));
            e.insert("threads".into(), Value::from(threads));
            e.insert("items".into(), Value::from(items));
            e.insert("total_ns".into(), Value::from(ns));
            e.insert(
                "items_per_sec".into(),
                Value::from((items as f64 / t.as_secs_f64()).round()),
            );
            if threads > 1 {
                let speedup = single_ns as f64 / ns.max(1) as f64;
                e.insert(
                    "speedup_vs_1t".into(),
                    Value::from((speedup * 100.0).round() / 100.0),
                );
                speedups.insert(
                    format!("{bench}_speedup_4t"),
                    Value::from((speedup * 100.0).round() / 100.0),
                );
            }
            entries.push(Value::Object(e));
        }
    }

    let doc = json!({
        "workload": format!(
            "successor_cycle batch: {PAIRS} containment pairs over a {POOL}-query pool; \
             {EVAL_QUERIES} evaluations over {EVAL_TUPLES} tuples"
        ),
        "cores": cores,
        "containment_speedup_4t": speedups.get("batch_containment_speedup_4t").cloned().unwrap_or(Value::Null),
        "eval_speedup_4t": speedups.get("batch_eval_speedup_4t").cloned().unwrap_or(Value::Null),
        "entries": Value::Array(entries),
    });
    let containment_speedup = doc["containment_speedup_4t"].as_f64().unwrap_or(0.0);
    println!("\ncores: {cores}; batch containment 4-thread speedup: {containment_speedup:.2}x");
    if cores >= 4 {
        assert!(
            containment_speedup >= 2.0,
            "4 threads on {cores} cores must give >= 2x batch-containment throughput, got {containment_speedup:.2}x"
        );
    } else {
        println!(
            "(machine exposes {cores} core(s): thread scaling is not observable here; \
             recording measured numbers as-is)"
        );
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/bench_parallel.json");
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap())
        .expect("write bench_parallel baseline");
    println!("baseline written to {path}");
}

criterion_group!(
    benches,
    bench_batch_containment,
    bench_batch_eval,
    record_baseline
);
criterion_main!(benches);
