//! Homomorphism search cost vs target size: map a k-atom chain query
//! into chases of growing depth.

use cqchase_core::chase::{Chase, ChaseBudget, ChaseMode};
use cqchase_core::hom::{find_hom, HomTarget};
use cqchase_workload::chain_query;
use cqchase_workload::families::successor_cycle;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_hom(c: &mut Criterion) {
    let program = successor_cycle();
    let q = program.query("Q").unwrap();
    let mut group = c.benchmark_group("hom_into_chase");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for depth in [8u32, 32, 128] {
        let mut ch = Chase::new(q, &program.deps, &program.catalog, ChaseMode::Required);
        ch.expand_to_level(depth, ChaseBudget::default());
        let target = HomTarget::from_chase(ch.state(), u32::MAX);
        for k in [2usize, 4] {
            let qp = chain_query("Qp", &program.catalog, "R", k).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("chain{k}"), depth),
                &depth,
                |b, _| {
                    b.iter(|| {
                        let h = find_hom(&qp, &target);
                        assert!(h.is_some());
                        std::hint::black_box(h.map(|h| h.max_level))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hom);
criterion_main!(benches);
