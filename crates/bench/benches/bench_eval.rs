//! Query evaluation over finite instances: chain joins over random
//! binary relations of growing size.

use cqchase_ir::Catalog;
use cqchase_storage::evaluate;
use cqchase_workload::{chain_query, DatabaseGen};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_eval(c: &mut Criterion) {
    let mut catalog = Catalog::new();
    catalog.declare("R", ["a", "b"]).unwrap();
    let mut group = c.benchmark_group("evaluate_chain");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for tuples in [50usize, 200] {
        let db = DatabaseGen {
            seed: 42,
            tuples_per_relation: tuples,
            domain: (tuples / 4).max(2) as i64,
        }
        .generate(&catalog);
        for k in [2usize, 3] {
            let q = chain_query("Q", &catalog, "R", k).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("chain{k}"), tuples),
                &tuples,
                |b, _| {
                    b.iter(|| std::hint::black_box(evaluate(&q, &db).len()));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
