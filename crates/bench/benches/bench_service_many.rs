//! Many-tenant scale: 1000 sessions on one shared catalog, zipf eval
//! traffic through the sharded lane queues.
//!
//! Besides the criterion group, the run records a JSON baseline at
//! `crates/bench/baselines/bench_service_many.json`:
//!
//! * `lanes_speedup_4v1` — sustained throughput with 4 lanes over 1
//!   lane (same total compute threads, same script; gated by the bench
//!   gate only when both the recording and the checking machine
//!   expose 4+ cores — on fewer the ratio is queue overhead, not
//!   scaling);
//! * `memory_dedup_factor` — duplicate-path resident fact bytes over
//!   shared-path bytes for the same tenant population (dimensionless,
//!   machine-independent, hard-gated at >= 2x: the shared path must
//!   keep each tenant at most half the rebuild-per-tenant cost);
//!
//! plus a determinism assertion: both lane configurations answer the
//! whole script with the identical result-row checksum.

use cqchase_bench::many_workload::{
    many_workload, measure_lane_throughput, measure_memory_dedup, ManyWorkload, OPS, PROMOTE_EVERY,
    SESSIONS,
};
use cqchase_par::default_threads;
use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;

/// Median lanes-throughput of 3 runs; asserts every run's checksum
/// matches `expect` (0 = adopt the first run's checksum).
fn median_throughput(w: &ManyWorkload, lanes: usize, expect: &mut u64) -> f64 {
    let mut rates: Vec<f64> = (0..3)
        .map(|_| {
            let r = measure_lane_throughput(w, lanes);
            if *expect == 0 {
                *expect = r.checksum;
            }
            assert_eq!(r.checksum, *expect, "lanes={lanes} answer checksum");
            r.ops_per_sec
        })
        .collect();
    rates.sort_by(f64::total_cmp);
    rates[1]
}

fn bench_many_tenants(c: &mut Criterion) {
    let w = many_workload();
    let mut group = c.benchmark_group("service_many");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(100));
    group.measurement_time(std::time::Duration::from_millis(500));
    group.bench_function("zipf_script_4_lanes", |b| {
        b.iter(|| criterion::black_box(measure_lane_throughput(&w, 4).checksum));
    });
    group.finish();
}

/// Records the committed JSON baseline (see the module docs).
fn record_baseline(_c: &mut Criterion) {
    let w = many_workload();
    let mut checksum = 0u64;
    let rate_1 = median_throughput(&w, 1, &mut checksum);
    let rate_4 = median_throughput(&w, 4, &mut checksum);
    let mem = measure_memory_dedup(&w);

    let doc = json!({
        "workload": format!(
            "service_many: {SESSIONS} tenants on one shared catalog (every \
             {PROMOTE_EVERY}th promoted), {OPS} zipf-skewed evals via 4 submitters"
        ),
        "cores": default_threads(),
        "ops_per_sec_lanes1": rate_1.round(),
        "ops_per_sec_lanes4": rate_4.round(),
        "lanes_speedup_4v1": (rate_4 / rate_1.max(1e-9) * 100.0).round() / 100.0,
        "shared_bytes_per_session": mem.shared_per_session().round(),
        "duplicate_bytes_per_session": mem.duplicate_per_session().round(),
        "memory_dedup_factor": (mem.factor() * 100.0).round() / 100.0,
        "answer_checksum": checksum,
    });
    println!(
        "\nservice_many baseline: {rate_1:.0} ops/s (1 lane), {rate_4:.0} ops/s (4 lanes), \
         {:.1}x memory dedup ({:.0}B vs {:.0}B per tenant)",
        mem.factor(),
        mem.shared_per_session(),
        mem.duplicate_per_session(),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/baselines/bench_service_many.json"
    );
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap())
        .expect("write bench_service_many baseline");
    println!("baseline written to {path}");
}

criterion_group!(benches, bench_many_tenants, record_baseline);
criterion_main!(benches);
