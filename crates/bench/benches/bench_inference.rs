//! IND-inference cost: axiomatic saturation vs the Corollary 2.3
//! chase reduction, on transitive chains of INDs.

use cqchase_core::inference::{implies_ind_axiomatic, implies_ind_via_chase};
use cqchase_core::ContainmentOptions;
use cqchase_ir::{Catalog, DependencySet, Ind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn chain_setup(n: usize, width: usize) -> (Catalog, DependencySet, Ind) {
    let mut catalog = Catalog::new();
    for i in 0..=n {
        catalog
            .declare(format!("R{i}"), (0..width).map(|c| format!("c{c}")))
            .unwrap();
    }
    let cols: Vec<usize> = (0..width).collect();
    let mut sigma = DependencySet::new();
    for i in 0..n {
        sigma.push(Ind::new(
            catalog.resolve(&format!("R{i}")).unwrap(),
            cols.clone(),
            catalog.resolve(&format!("R{}", i + 1)).unwrap(),
            cols.clone(),
        ));
    }
    let goal = Ind::new(
        catalog.resolve("R0").unwrap(),
        cols.clone(),
        catalog.resolve(&format!("R{n}")).unwrap(),
        cols,
    );
    (catalog, sigma, goal)
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("ind_inference");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let opts = ContainmentOptions::default();
    for n in [3usize, 6, 10] {
        let (catalog, sigma, goal) = chain_setup(n, 1);
        group.bench_with_input(BenchmarkId::new("axiomatic", n), &n, |b, _| {
            b.iter(|| {
                let r = implies_ind_axiomatic(&sigma, &goal, 10_000_000);
                assert_eq!(r, Some(true));
                std::hint::black_box(r)
            });
        });
        group.bench_with_input(BenchmarkId::new("chase", n), &n, |b, _| {
            b.iter(|| {
                let r = implies_ind_via_chase(&sigma, &goal, &catalog, &opts).unwrap();
                assert!(r.contained);
                std::hint::black_box(r.chase_conjuncts)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
