//! Instance repair cost: the data chase on random instances under
//! foreign-key dependencies.

use cqchase_ir::parse_program;
use cqchase_storage::{chase_instance, DataChaseBudget};
use cqchase_workload::DatabaseGen;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_datachase(c: &mut Criterion) {
    let p = parse_program(
        "relation FACT(f, d1, d2).
         relation DIM1(k1, v1).
         relation DIM2(k2, v2).
         fd DIM1: k1 -> v1. fd DIM2: k2 -> v2.
         ind FACT[2] <= DIM1[1]. ind FACT[3] <= DIM2[1].",
    )
    .unwrap();
    let mut group = c.benchmark_group("data_chase_repair");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for tuples in [20usize, 100] {
        let db = DatabaseGen {
            seed: 7,
            tuples_per_relation: tuples,
            domain: (tuples as i64) * 2,
        }
        .generate(&p.catalog);
        group.bench_with_input(BenchmarkId::from_parameter(tuples), &tuples, |b, _| {
            b.iter(|| {
                let out = chase_instance(&db, &p.deps, DataChaseBudget::default());
                std::hint::black_box(matches!(
                    out,
                    cqchase_storage::DataChaseOutcome::Satisfied(_)
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_datachase);
criterion_main!(benches);
