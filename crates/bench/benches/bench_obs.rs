//! Observability overhead: the full request path with the span recorder
//! off vs on (see `cqchase_bench::obs_workload` for the two
//! configurations).
//!
//! Besides the criterion group, the run records a JSON baseline at
//! `crates/bench/baselines/bench_obs.json`:
//!
//! * `tracing_on_efficiency` — on/off throughput ratio (dimensionless,
//!   the gated metric; the recorder asserts the ≤ 1.25x budget, i.e.
//!   ≥ 0.8);
//! * `requests_per_sec_off` / `requests_per_sec_on` — absolute,
//!   document the recording machine;
//! * `tracing_off_vs_service` — off-side throughput relative to the
//!   committed `bench_service` `requests_per_sec_1c` (same workload,
//!   same machine at recording time; the recorder asserts the ≤ 1.05x
//!   budget, i.e. ≥ 0.952 — informational across machines).

use cqchase_bench::obs_workload::{measure_obs, measure_obs_median};
use cqchase_bench::service_workload::{service_workload, PAIRS, POOL, SEED};
use cqchase_par::default_threads;
use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;

fn bench_obs_overhead(c: &mut Criterion) {
    let w = service_workload();
    let mut group = c.benchmark_group("obs");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(100));
    group.measurement_time(std::time::Duration::from_millis(500));
    group.bench_function("off_vs_on_sequence", |b| {
        b.iter(|| criterion::black_box(measure_obs(&w).efficiency()))
    });
    group.finish();
}

/// Records the committed JSON baseline (see the module docs) and
/// asserts the ISSUE's overhead budgets on the recording machine.
fn record_baseline(_c: &mut Criterion) {
    let m = measure_obs_median(3);
    let efficiency = m.efficiency();

    // Tracing on may cost at most 1.25x the untraced path.
    assert!(
        efficiency >= 1.0 / 1.25,
        "tracing-on throughput {:.0} req/s is below 1/1.25 of tracing-off {:.0} req/s \
         (efficiency {efficiency:.3})",
        m.on_rps,
        m.off_rps,
    );

    // Tracing off may cost at most 1.05x the pre-observability service
    // path, measured against the committed bench_service baseline
    // (recorded on this machine in the same bench suite).
    let service_path = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/bench_service.json");
    let off_vs_service = std::fs::read_to_string(service_path)
        .ok()
        .and_then(|t| serde_json::from_str(&t).ok())
        .and_then(|v: serde_json::Value| v["requests_per_sec_1c"].as_f64())
        .map(|pr7| m.off_rps / pr7.max(1e-9));
    if let Some(ratio) = off_vs_service {
        assert!(
            ratio >= 1.0 / 1.05,
            "tracing-off throughput {:.0} req/s is below 1/1.05 of the committed \
             bench_service requests_per_sec_1c (ratio {ratio:.3}); \
             re-record bench_service first if the machine changed",
            m.off_rps,
        );
    }

    let doc = json!({
        "workload": format!(
            "obs: seed-{SEED} successor batch, {POOL}-query pool, 2x{PAIRS} checks \
             single-client, tracing off vs on (slow-query threshold unreachable)"
        ),
        "cores": default_threads(),
        "tracing_on_efficiency": (efficiency * 1000.0).round() / 1000.0,
        "requests_per_sec_off": m.off_rps.round(),
        "requests_per_sec_on": m.on_rps.round(),
        "tracing_off_vs_service": off_vs_service
            .map(|r| serde_json::Value::from((r * 1000.0).round() / 1000.0))
            .unwrap_or(serde_json::Value::Null),
    });
    println!(
        "\nobs baseline: {:.0} req/s off, {:.0} req/s on, efficiency {:.3}",
        m.off_rps, m.on_rps, efficiency
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/bench_obs.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap())
        .expect("write bench_obs baseline");
    println!("baseline written to {path}");
}

criterion_group!(benches, bench_obs_overhead, record_baseline);
criterion_main!(benches);
