//! Chase expansion throughput: O-chase vs R-chase on the Figure 1 Σ and
//! the successor cycle, by target level.

use cqchase_core::chase::{Chase, ChaseBudget, ChaseMode};
use cqchase_workload::families::{figure1, successor_cycle};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase_expand");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (family, program) in [("figure1", figure1()), ("successor", successor_cycle())] {
        let q = program.query("Q").unwrap().clone();
        for level in [2u32, 4, 6] {
            for (mode_name, mode) in [("R", ChaseMode::Required), ("O", ChaseMode::Oblivious)] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{family}/{mode_name}"), level),
                    &level,
                    |b, &level| {
                        b.iter(|| {
                            let mut ch = Chase::new(&q, &program.deps, &program.catalog, mode);
                            ch.expand_to_level(level, ChaseBudget::default());
                            std::hint::black_box(ch.state().num_alive())
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_chase);
criterion_main!(benches);
