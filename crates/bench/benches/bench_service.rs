//! Service throughput: the full request path (loopback TCP, protocol
//! parse, admission queue, batch engines, semantic cache) under a
//! deterministic workload.
//!
//! Besides the criterion group, the run records a JSON baseline at
//! `crates/bench/baselines/bench_service.json`:
//!
//! * `cache_hit_rate` — hits / lookups after the canonical two-pass
//!   sequence (single client, deterministic, machine-independent — the
//!   gated metric);
//! * `requests_per_sec_1c` / `requests_per_sec_4c` — sustained
//!   throughput with 1 and 4 concurrent clients (absolute, documents
//!   the recording machine, informational);
//!
//! plus correctness assertions that every served answer equals the
//! sequential in-process engine's on the same inputs.

use std::sync::Arc;

use cqchase_bench::service_workload::{service_workload, FACTS, PAIRS, POOL, SEED};
use cqchase_core::{contained, ContainmentOptions};
use cqchase_par::default_threads;
use cqchase_service::{Client, ServeOptions, Server};
use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;

fn spawn_server() -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".into(),
        conn_workers: 6,
        sem_cache_capacity: 4096,
        ..Default::default()
    })
    .expect("spawn service")
}

/// One sequential pass over every pair on one connection; returns the
/// number of requests sent.
fn run_pass(client: &mut Client, names: &[String], pairs: &[(usize, usize)]) -> usize {
    for &(q, qp) in pairs {
        client.check("bench", &names[q], &names[qp]).expect("check");
    }
    pairs.len()
}

/// Four concurrent clients, each a strided quarter of the pairs.
fn run_concurrent(
    addr: std::net::SocketAddr,
    names: &Arc<Vec<String>>,
    pairs: &Arc<Vec<(usize, usize)>>,
) -> usize {
    let mut handles = Vec::new();
    for t in 0..4usize {
        let names = Arc::clone(names);
        let pairs = Arc::clone(pairs);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let mut sent = 0;
            for (i, &(q, qp)) in pairs.iter().enumerate() {
                if i % 4 == t {
                    client.check("bench", &names[q], &names[qp]).expect("check");
                    sent += 1;
                }
            }
            sent
        }));
    }
    handles.into_iter().map(|h| h.join().unwrap()).sum()
}

fn bench_request_path(c: &mut Criterion) {
    let w = service_workload();
    let (addr, handle) = spawn_server();
    let mut client = Client::connect(addr).expect("connect");
    client.register("bench", &w.program_src).expect("register");
    // Warm the cache so the group measures the steady serving state.
    run_pass(&mut client, &w.names, &w.batch.pairs);

    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(100));
    group.measurement_time(std::time::Duration::from_millis(500));
    group.bench_function("warm_check_roundtrip", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (q, qp) = w.batch.pairs[i % w.batch.pairs.len()];
            i += 1;
            criterion::black_box(
                client
                    .check("bench", &w.names[q], &w.names[qp])
                    .expect("check"),
            )
        });
    });
    group.finish();

    client.shutdown().expect("shutdown");
    handle.join().unwrap().unwrap();
}

/// Records the committed JSON baseline (see the module docs).
fn record_baseline(_c: &mut Criterion) {
    let w = service_workload();

    // Ground truth for every pair, from the sequential library engine.
    let opts = ContainmentOptions::default();
    let direct: Vec<_> = w
        .batch
        .pairs
        .iter()
        .map(|&(q, qp)| {
            contained(
                &w.batch.queries[q],
                &w.batch.queries[qp],
                &w.batch.program.deps,
                &w.batch.program.catalog,
                &opts,
            )
            .expect("workload pairs decide")
        })
        .collect();

    let (addr, handle) = spawn_server();
    let mut client = Client::connect(addr).expect("connect");
    client.register("bench", &w.program_src).expect("register");

    // Canonical two-pass sequence: cold then warm, answers checked
    // against the library on both passes.
    let t0 = std::time::Instant::now();
    let mut sent = 0usize;
    for _pass in 0..2 {
        for (i, &(q, qp)) in w.batch.pairs.iter().enumerate() {
            let v = client
                .check("bench", &w.names[q], &w.names[qp])
                .expect("check");
            let d = &direct[i];
            assert_eq!(v["contained"], d.contained, "pair {i}");
            assert_eq!(v["exact"], d.exact, "pair {i}");
            assert_eq!(v["bound"], d.bound, "pair {i}");
            sent += 1;
        }
    }
    let elapsed_1c = t0.elapsed().as_secs_f64();
    let stats = client.stats().expect("stats");
    let hits = stats["semantic_cache"]["hits"].as_u64().unwrap_or(0);
    let misses = stats["semantic_cache"]["misses"].as_u64().unwrap_or(0);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let rps_1c = sent as f64 / elapsed_1c;

    // Sustained concurrent throughput (warm cache).
    let names = Arc::new(w.names.clone());
    let pairs = Arc::new(w.batch.pairs.clone());
    let t0 = std::time::Instant::now();
    let sent_4c = run_concurrent(addr, &names, &pairs) + run_concurrent(addr, &names, &pairs);
    let rps_4c = sent_4c as f64 / t0.elapsed().as_secs_f64();

    let check_p50 = stats["endpoints"]["check"]["p50_us"].clone();
    client.shutdown().expect("shutdown");
    handle.join().unwrap().unwrap();

    let doc = json!({
        "workload": format!(
            "service: seed-{SEED} successor batch, {POOL}-query pool, 2x{PAIRS} checks \
             single-client (deterministic) + 2x{PAIRS} concurrent over {FACTS} facts"
        ),
        "cores": default_threads(),
        "cache_hit_rate": (hit_rate * 1000.0).round() / 1000.0,
        "requests_per_sec_1c": rps_1c.round(),
        "requests_per_sec_4c": rps_4c.round(),
        "check_p50_us": check_p50,
        "semantic_cache_hits": hits,
        "semantic_cache_misses": misses,
    });
    println!(
        "\nservice baseline: {:.1}% hit rate, {:.0} req/s (1 client), {:.0} req/s (4 clients)",
        hit_rate * 100.0,
        rps_1c,
        rps_4c
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/bench_service.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap())
        .expect("write bench_service baseline");
    println!("baseline written to {path}");
}

criterion_group!(benches, bench_request_path, record_baseline);
criterion_main!(benches);
