//! Live-session mutation throughput: incremental fact deltas
//! (`Session::apply_update` → `DbIndex::note_insert`/`note_remove` +
//! epoch-tagged cache invalidation) versus the pre-mutation
//! alternative — tearing the session down and re-registering from
//! scratch — on a 10k-tuple session.
//!
//! Besides the criterion group, the run records a JSON baseline at
//! `crates/bench/baselines/bench_update.json`:
//!
//! * `incremental_vs_teardown_speedup` — how many times the
//!   incremental update+eval path beats teardown/re-register+eval on
//!   the identical delta script (dimensionless — the gated metric);
//! * `incremental_round_us` / `teardown_round_us` — absolute per-round
//!   times (document the recording machine, informational);
//!
//! plus correctness assertions (inside `measure_update`) that both
//! paths return bit-identical evaluation rows every round.

use cqchase_bench::update_workload::{
    measure_update, update_workload, DELTA_OPS, ROUNDS, SEED, TUPLES,
};
use cqchase_par::default_threads;
use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;

fn bench_update_paths(c: &mut Criterion) {
    let w = update_workload(ROUNDS);
    let mut group = c.benchmark_group("update");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("incremental_vs_teardown_rounds", |b| {
        b.iter(|| criterion::black_box(measure_update(&w)))
    });
    group.finish();
}

/// Records the committed JSON baseline (see the module docs).
fn record_baseline(_c: &mut Criterion) {
    let w = update_workload(ROUNDS);
    // Median of several measurements: the ratio is stable, but a single
    // run on a noisy box is not.
    let mut runs: Vec<_> = (0..5).map(|_| measure_update(&w)).collect();
    runs.sort_by(|a, b| a.speedup().total_cmp(&b.speedup()));
    let m = runs[runs.len() / 2];

    let doc = json!({
        "workload": format!(
            "update: {TUPLES}-tuple successor session, {ROUNDS} rounds of {DELTA_OPS} \
             seed-{SEED} deltas (50% deletes, reinserts included), 2-chain eval per round"
        ),
        "cores": default_threads(),
        "incremental_vs_teardown_speedup": (m.speedup() * 100.0).round() / 100.0,
        "incremental_round_us": (m.incremental_s / ROUNDS as f64 * 1e6).round(),
        "teardown_round_us": (m.teardown_s / ROUNDS as f64 * 1e6).round(),
    });
    println!(
        "\nupdate baseline: incremental beats teardown {:.2}x \
         ({:.0} µs vs {:.0} µs per round)",
        m.speedup(),
        m.incremental_s / ROUNDS as f64 * 1e6,
        m.teardown_s / ROUNDS as f64 * 1e6,
    );
    assert!(
        m.speedup() > 1.0,
        "incremental updates must beat teardown/re-register at recording time"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/bench_update.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap())
        .expect("write bench_update baseline");
    println!("baseline written to {path}");
}

criterion_group!(benches, bench_update_paths, record_baseline);
criterion_main!(benches);
