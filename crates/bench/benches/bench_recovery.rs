//! Crash-recovery performance: booting a 10k-tuple mutated session from
//! its snapshot + WAL versus re-registering and re-applying the raw
//! update script, and the WAL-append overhead the durable update path
//! adds to `bench_update`'s incremental update+eval rounds. Both run
//! over in-memory storage, so they measure the durability machinery
//! (framing, CRC, recovery protocol), not the host's disk.
//!
//! Besides the criterion group, the run records a JSON baseline at
//! `crates/bench/baselines/bench_recovery.json`:
//!
//! * `restore_vs_replay_speedup` — how many times snapshot restore
//!   beats raw-script replay (dimensionless, gated, floor 1.5x);
//! * `wal_append_efficiency` — `plain / durable` round time
//!   (dimensionless, gated, floor 0.77 ≈ "within 1.3x");
//! * absolute times document the recording machine (informational).

use cqchase_bench::recovery_workload::{
    measure_restore, measure_wal_overhead, recovery_workload, DELTA_OPS, ROUNDS, SEED, TUPLES,
};
use cqchase_par::default_threads;
use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;

fn bench_recovery_paths(c: &mut Criterion) {
    let w = recovery_workload();
    let mut group = c.benchmark_group("recovery");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("restore_vs_replay", |b| {
        b.iter(|| criterion::black_box(measure_restore(&w)))
    });
    group.bench_function("wal_append_overhead", |b| {
        b.iter(|| criterion::black_box(measure_wal_overhead(&w)))
    });
    group.finish();
}

/// Records the committed JSON baseline (see the module docs).
fn record_baseline(_c: &mut Criterion) {
    let w = recovery_workload();
    // Median of several measurements: the ratios are stable, but a
    // single run on a noisy box is not.
    let mut runs: Vec<_> = (0..5).map(|_| measure_restore(&w)).collect();
    runs.sort_by(|a, b| a.speedup().total_cmp(&b.speedup()));
    let r = runs[runs.len() / 2];
    let mut oruns: Vec<_> = (0..5).map(|_| measure_wal_overhead(&w)).collect();
    oruns.sort_by(|a, b| a.efficiency().total_cmp(&b.efficiency()));
    let o = oruns[oruns.len() / 2];

    println!(
        "\nrecovery baseline: restore beats replay {:.2}x ({:.1} ms vs {:.1} ms); \
         WAL append efficiency {:.2} ({:.0} µs vs {:.0} µs per round)",
        r.speedup(),
        r.restore_s * 1e3,
        r.replay_s * 1e3,
        o.efficiency(),
        o.plain_s / ROUNDS as f64 * 1e6,
        o.durable_s / ROUNDS as f64 * 1e6,
    );
    assert!(
        r.speedup() >= 1.5,
        "snapshot restore must beat raw-script replay by >= 1.5x at recording time \
         (got {:.2}x)",
        r.speedup()
    );
    assert!(
        o.efficiency() >= 1.0 / 1.3,
        "durable updates must stay within 1.3x of the plain path at recording time \
         (efficiency {:.2})",
        o.efficiency()
    );
    let doc = json!({
        "workload": format!(
            "recovery: {TUPLES}-tuple session seeded then {ROUNDS} rounds of {DELTA_OPS} \
             seed-{SEED} deltas; snapshot restore vs re-register+re-apply, and WAL append \
             overhead on the update+eval rounds (MemIo)"
        ),
        "cores": default_threads(),
        "restore_vs_replay_speedup": (r.speedup() * 100.0).round() / 100.0,
        "restore_ms": (r.restore_s * 1e4).round() / 10.0,
        "replay_ms": (r.replay_s * 1e4).round() / 10.0,
        "wal_append_efficiency": (o.efficiency() * 100.0).round() / 100.0,
        "plain_round_us": (o.plain_s / ROUNDS as f64 * 1e6).round(),
        "durable_round_us": (o.durable_s / ROUNDS as f64 * 1e6).round(),
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/bench_recovery.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap())
        .expect("write bench_recovery baseline");
    println!("baseline written to {path}");
}

criterion_group!(benches, bench_recovery_paths, record_baseline);
criterion_main!(benches);
