//! Request-lifecycle resilience: the cost of cooperative cancellation
//! when it never fires, and its promptness when it does (see
//! `cqchase_bench::resilience_workload` for both measurements).
//!
//! Besides the criterion group, the run records a JSON baseline at
//! `crates/bench/baselines/bench_resilience.json`:
//!
//! * `cancel_check_efficiency` — tokened/token-free throughput on the
//!   canonical `bench_service` containment batch (dimensionless, the
//!   gated metric; the recorder asserts the ≥ 0.90 lifecycle budget);
//! * `deadline_overrun_headroom` — `2·interval / p99 overrun`
//!   (dimensionless, gated; the recorder asserts ≥ 1.0: a deadline may
//!   overrun by at most two coalesced check intervals);
//! * `checks_per_sec_tokenfree` / `checks_per_sec_tokened`,
//!   `check_interval_us`, `deadline_overrun_p99_us` — absolute,
//!   document the recording machine.

use cqchase_bench::resilience_workload::{
    deadline_workload, measure_cancel_overhead, measure_cancel_overhead_median,
    measure_deadline_median, DEADLINE_MS, DENSE_N, OVERRUN_SAMPLES,
};
use cqchase_bench::service_workload::{service_workload, PAIRS, POOL, SEED};
use cqchase_par::default_threads;
use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;

fn bench_cancel_overhead(c: &mut Criterion) {
    let w = service_workload();
    let mut group = c.benchmark_group("resilience");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(100));
    group.measurement_time(std::time::Duration::from_millis(500));
    group.bench_function("tokenfree_vs_tokened_checks", |b| {
        b.iter(|| criterion::black_box(measure_cancel_overhead(&w).efficiency()))
    });
    group.finish();
}

/// Records the committed JSON baseline (see the module docs) and
/// asserts the lifecycle budgets on the recording machine.
fn record_baseline(_c: &mut Criterion) {
    let w = service_workload();
    let m = measure_cancel_overhead_median(&w, 3);
    let efficiency = m.efficiency();

    // Threading cancellation through the join loops may cost at most
    // 10% of token-free throughput.
    assert!(
        efficiency >= 0.90,
        "tokened throughput {:.0} checks/s is below 0.90 of token-free {:.0} checks/s \
         (efficiency {efficiency:.3})",
        m.tokened_cps,
        m.tokenfree_cps,
    );

    let dw = deadline_workload();
    let d = measure_deadline_median(&dw, 3);
    let headroom = d.headroom();
    // A deadline may overrun by at most twice the coalesced check
    // interval (measured in wall time on this machine).
    assert!(
        headroom >= 1.0,
        "p99 deadline overrun {:.0}us exceeds 2x the measured check interval {:.0}us \
         (headroom {headroom:.3})",
        d.overrun_p99_us,
        d.interval_us,
    );

    let doc = json!({
        "workload": format!(
            "resilience: seed-{SEED} successor batch, {POOL}-query pool, {PAIRS} checks \
             token-free vs deadline-armed tokens; {DENSE_N}x{DENSE_N} complete-digraph \
             chain-3 eval under {DEADLINE_MS}ms deadlines ({OVERRUN_SAMPLES} samples)"
        ),
        "cores": default_threads(),
        "cancel_check_efficiency": (efficiency * 1000.0).round() / 1000.0,
        "checks_per_sec_tokenfree": m.tokenfree_cps.round(),
        "checks_per_sec_tokened": m.tokened_cps.round(),
        "deadline_overrun_headroom": (headroom * 1000.0).round() / 1000.0,
        "check_interval_us": d.interval_us.round(),
        "deadline_overrun_p99_us": d.overrun_p99_us.round(),
    });
    println!(
        "\nresilience baseline: {:.0} checks/s token-free, {:.0} tokened \
         (efficiency {:.3}); p99 overrun {:.0}us vs interval {:.0}us (headroom {:.2})",
        m.tokenfree_cps, m.tokened_cps, efficiency, d.overrun_p99_us, d.interval_us, headroom
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/baselines/bench_resilience.json"
    );
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap())
        .expect("write bench_resilience baseline");
    println!("baseline written to {path}");
}

criterion_group!(benches, bench_cancel_overhead, record_baseline);
criterion_main!(benches);
