//! Naive vs indexed join core, on the workloads that matter most:
//! homomorphism search into deep `successor_cycle` chases (the
//! containment engine's inner loop) and `Q(B)` evaluation over random
//! instances — chains (cost-based ordering), wide stars and snowflakes
//! (the Yannakakis acyclic fast path's home turf).
//!
//! Hom search is measured through [`HomFinder`] — compile once, probe
//! many — because that is the production path: the containment engine's
//! `ChaseHomFinder` caches its plan the same way, so a per-probe
//! recompile would charge the indexed side a cost it never pays in
//! production.
//!
//! Besides the criterion groups, the run records a JSON baseline at
//! `crates/bench/baselines/bench_index.json` (naive/indexed medians and
//! speedups per configuration) so future PRs can compare against this
//! one's numbers.

use std::time::{Duration, Instant};

use cqchase_core::chase::{Chase, ChaseBudget, ChaseMode};
use cqchase_core::hom::{naive, HomFinder, HomTarget};
use cqchase_storage::eval;
use cqchase_storage::Database;
use cqchase_workload::families::successor_cycle;
use cqchase_workload::{chain_query, cycle_query, snowflake_query, star_query, DatabaseGen};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use serde_json::{json, Map, Value};

fn chase_target(depth: u32) -> HomTarget {
    let program = successor_cycle();
    let q = program.query("Q").unwrap();
    let mut ch = Chase::new(q, &program.deps, &program.catalog, ChaseMode::Required);
    ch.expand_to_level(depth, ChaseBudget::default());
    HomTarget::from_chase(ch.state(), u32::MAX)
}

fn eval_db(tuples: usize) -> Database {
    let program = successor_cycle();
    DatabaseGen {
        seed: 7,
        tuples_per_relation: tuples,
        domain: (tuples as i64 / 2).max(4),
    }
    .generate(&program.catalog)
}

fn bench_hom_naive_vs_indexed(c: &mut Criterion) {
    let program = successor_cycle();
    let mut group = c.benchmark_group("index_hom");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for depth in [64u32, 256, 1024] {
        let target = chase_target(depth);
        // Positive case: the chain maps along the chase path.
        let chain = chain_query("Qp", &program.catalog, "R", 3).unwrap();
        // Negative case: no cycle embeds into a path — the search must
        // certify exhaustion, the containment engine's dominant cost.
        let cycle = cycle_query("Qc", &program.catalog, "R", 3).unwrap();
        let mut chain_finder = HomFinder::new(&chain, &target);
        group.bench_with_input(BenchmarkId::new("indexed_chain", depth), &depth, |b, _| {
            b.iter(|| {
                let h = chain_finder.find();
                assert!(h.is_some());
                std::hint::black_box(h.map(|h| h.max_level))
            });
        });
        group.bench_with_input(BenchmarkId::new("naive_chain", depth), &depth, |b, _| {
            b.iter(|| {
                let h = naive::find_hom(&chain, &target);
                assert!(h.is_some());
                std::hint::black_box(h.map(|h| h.max_level))
            });
        });
        let mut cycle_finder = HomFinder::new(&cycle, &target);
        group.bench_with_input(BenchmarkId::new("indexed_cycle", depth), &depth, |b, _| {
            b.iter(|| std::hint::black_box(cycle_finder.find().is_some()));
        });
        group.bench_with_input(BenchmarkId::new("naive_cycle", depth), &depth, |b, _| {
            b.iter(|| std::hint::black_box(naive::find_hom(&cycle, &target).is_some()));
        });
    }
    group.finish();
}

fn bench_eval_naive_vs_indexed(c: &mut Criterion) {
    let program = successor_cycle();
    let mut group = c.benchmark_group("index_eval");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for tuples in [100usize, 1000] {
        let db = eval_db(tuples);
        let q = program.query("Chain3").unwrap();
        group.bench_with_input(BenchmarkId::new("indexed", tuples), &tuples, |b, _| {
            b.iter(|| std::hint::black_box(eval::evaluate(q, &db).len()));
        });
        group.bench_with_input(BenchmarkId::new("naive", tuples), &tuples, |b, _| {
            b.iter(|| std::hint::black_box(eval::naive::evaluate(q, &db).len()));
        });
    }
    // The acyclic fast path's home turf: wide stars and snowflakes,
    // where full enumeration is product-sized but the distinct head
    // image is tiny. Naive cost explodes with the instance, so these
    // run on the 100-tuple instance.
    let db = eval_db(100);
    let star = star_query("Star8", &program.catalog, "R", 8).unwrap();
    let snow = snowflake_query("Snow4x2", &program.catalog, "R", 4, 2).unwrap();
    for (name, q) in [("star8", &star), ("snowflake4x2", &snow)] {
        group.bench_with_input(BenchmarkId::new("indexed", name), &name, |b, _| {
            b.iter(|| std::hint::black_box(eval::evaluate(q, &db).len()));
        });
        group.bench_with_input(BenchmarkId::new("naive", name), &name, |b, _| {
            b.iter(|| std::hint::black_box(eval::naive::evaluate(q, &db).len()));
        });
    }
    group.finish();
}

/// Times `f` over `iters` runs and returns the per-run median.
fn median_time(iters: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Records the committed JSON baseline (independent of the criterion
/// groups so the numbers are self-contained and cheap to regenerate).
fn record_baseline(_c: &mut Criterion) {
    let program = successor_cycle();
    let mut entries = Vec::new();
    let mut largest_speedup = 0.0f64;
    for depth in [64u32, 256, 1024] {
        let target = chase_target(depth);
        for (name, k, expect) in [
            ("hom_chain3_into_chase", 3usize, true),
            ("hom_cycle3_into_chase", 0, false),
        ] {
            let q = if expect {
                chain_query("Qp", &program.catalog, "R", k).unwrap()
            } else {
                cycle_query("Qc", &program.catalog, "R", 3).unwrap()
            };
            let naive_t = median_time(9, || {
                assert_eq!(naive::find_hom(&q, &target).is_some(), expect);
            });
            let mut finder = HomFinder::new(&q, &target);
            let indexed_t = median_time(9, || {
                assert_eq!(finder.find().is_some(), expect);
            });
            let speedup = naive_t.as_secs_f64() / indexed_t.as_secs_f64().max(1e-12);
            if depth == 1024 && !expect {
                largest_speedup = speedup;
            }
            let mut e = Map::new();
            e.insert("bench".into(), Value::from(name));
            e.insert("depth".into(), Value::from(depth));
            e.insert("naive_ns".into(), Value::from(naive_t.as_nanos() as u64));
            e.insert(
                "indexed_ns".into(),
                Value::from(indexed_t.as_nanos() as u64),
            );
            e.insert(
                "speedup".into(),
                Value::from((speedup * 100.0).round() / 100.0),
            );
            entries.push(Value::Object(e));
        }
    }
    for tuples in [100usize, 1000] {
        let db = eval_db(tuples);
        let q = program.query("Chain3").unwrap();
        let naive_t = median_time(9, || {
            std::hint::black_box(eval::naive::evaluate(q, &db).len());
        });
        let indexed_t = median_time(9, || {
            std::hint::black_box(eval::evaluate(q, &db).len());
        });
        let speedup = naive_t.as_secs_f64() / indexed_t.as_secs_f64().max(1e-12);
        let mut e = Map::new();
        e.insert("bench".into(), Value::from("eval_chain3"));
        e.insert("tuples".into(), Value::from(tuples));
        e.insert("naive_ns".into(), Value::from(naive_t.as_nanos() as u64));
        e.insert(
            "indexed_ns".into(),
            Value::from(indexed_t.as_nanos() as u64),
        );
        e.insert(
            "speedup".into(),
            Value::from((speedup * 100.0).round() / 100.0),
        );
        entries.push(Value::Object(e));
    }
    // Acyclic fast-path families (100-tuple instance: naive cost on
    // these shapes is product-sized and explodes with the instance).
    let db = eval_db(100);
    let star = star_query("Star8", &program.catalog, "R", 8).unwrap();
    let snow = snowflake_query("Snow4x2", &program.catalog, "R", 4, 2).unwrap();
    for (name, q) in [("eval_star8", &star), ("eval_snowflake4x2", &snow)] {
        let naive_t = median_time(9, || {
            std::hint::black_box(eval::naive::evaluate(q, &db).len());
        });
        let indexed_t = median_time(9, || {
            std::hint::black_box(eval::evaluate(q, &db).len());
        });
        let speedup = naive_t.as_secs_f64() / indexed_t.as_secs_f64().max(1e-12);
        let mut e = Map::new();
        e.insert("bench".into(), Value::from(name));
        e.insert("tuples".into(), Value::from(100usize));
        e.insert("naive_ns".into(), Value::from(naive_t.as_nanos() as u64));
        e.insert(
            "indexed_ns".into(),
            Value::from(indexed_t.as_nanos() as u64),
        );
        e.insert(
            "speedup".into(),
            Value::from((speedup * 100.0).round() / 100.0),
        );
        entries.push(Value::Object(e));
    }

    let doc = json!({
        "workload": "successor_cycle (largest family: chase depth 1024)",
        "largest_family_speedup": (largest_speedup * 100.0).round() / 100.0,
        "entries": Value::Array(entries),
    });
    println!("\nindexed vs naive on the largest workload family: {largest_speedup:.1}x");
    assert!(
        largest_speedup >= 5.0,
        "indexed hom search must be >= 5x the naive reference on the largest family, got {largest_speedup:.1}x"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/bench_index.json");
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap())
        .expect("write bench_index baseline");
    println!("baseline written to {path}");
}

criterion_group!(
    benches,
    bench_hom_naive_vs_indexed,
    bench_eval_naive_vs_indexed,
    record_baseline
);
criterion_main!(benches);
