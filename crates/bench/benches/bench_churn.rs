//! Two-session churn: per-session update barriers vs the pre-relaxation
//! global barriers, and O(1) delete scaling — see
//! `cqchase_bench::churn_workload` for the workload's anatomy.
//!
//! Besides the criterion group, the run records a JSON baseline at
//! `crates/bench/baselines/bench_churn.json`:
//!
//! * `two_session_barrier_speedup` — wall-clock ratio global /
//!   per-session on the identical interleaved script (dimensionless —
//!   the gated metric; recording asserts ≥ 1.3x);
//! * `delete_flatness_10k_to_100k` — per-tuple delete cost at 10k
//!   divided by the cost at 100k tuples (≈1 when deletion is O(1);
//!   gated — recording asserts ≥ 0.5, i.e. flat within 2x);
//! * `delete_cost_per_tuple_{10k,100k}_ns` — absolute costs
//!   (document the recording machine, informational);
//!
//! plus correctness assertions (inside `measure_barrier_speedup`) that
//! both barrier modes answer the script identically.

use cqchase_bench::churn_workload::{
    churn_workload, delete_cost_per_tuple, measure_barrier_speedup, measure_churn,
    measure_delete_flatness, B_LEFT_CHAIN, B_RIGHTS, CHECKS_PER_ROUND, CHURN_CHUNK, CHURN_ROUNDS,
    CHURN_WINDOW,
};
use cqchase_par::default_threads;
use cqchase_service::BarrierMode;
use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;

fn bench_churn_paths(c: &mut Criterion) {
    let w = churn_workload();
    let mut group = c.benchmark_group("churn");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("per_session_barriers", |b| {
        b.iter(|| criterion::black_box(measure_churn(&w, BarrierMode::PerSession).0))
    });
    group.bench_function("global_barriers", |b| {
        b.iter(|| criterion::black_box(measure_churn(&w, BarrierMode::Global).0))
    });
    group.bench_function("delete_10k_tuples", |b| {
        b.iter(|| criterion::black_box(delete_cost_per_tuple(10_000)))
    });
    group.finish();
}

/// Records the committed JSON baseline (see the module docs).
fn record_baseline(_c: &mut Criterion) {
    let w = churn_workload();
    // Median of several measurements: the ratios are stable, a single
    // run on a noisy box is not.
    let mut runs: Vec<f64> = (0..5).map(|_| measure_barrier_speedup(&w)).collect();
    runs.sort_by(f64::total_cmp);
    let barrier_speedup = runs[runs.len() / 2];
    let (small, large, flatness) = measure_delete_flatness();

    println!(
        "\nchurn baseline: per-session barriers beat global {barrier_speedup:.2}x; \
         delete cost/tuple {:.0} ns @10k vs {:.0} ns @100k (flatness {flatness:.2})",
        small * 1e9,
        large * 1e9,
    );
    assert!(
        barrier_speedup >= 1.3,
        "per-session barriers must beat global barriers by >= 1.3x at recording time \
         (got {barrier_speedup:.2}x)"
    );
    assert!(
        flatness >= 0.5,
        "per-tuple delete cost must stay flat within 2x from 10k to 100k tuples \
         (got {flatness:.2})"
    );
    let doc = json!({
        "workload": format!(
            "churn: session A {CHURN_WINDOW}-tuple sliding window ({CHURN_ROUNDS} updates \
             of {CHURN_CHUNK} deltas + periodic evals) interleaved with \
             {CHECKS_PER_ROUND} session-B checks per round (chain-{B_LEFT_CHAIN} left \
             vs {B_RIGHTS} rights, semantic cache off); delete scaling: front-half \
             deletes at 10k and 100k tuples"
        ),
        "cores": default_threads(),
        "two_session_barrier_speedup": (barrier_speedup * 100.0).round() / 100.0,
        "delete_flatness_10k_to_100k": (flatness * 100.0).round() / 100.0,
        "delete_cost_per_tuple_10k_ns": (small * 1e9).round(),
        "delete_cost_per_tuple_100k_ns": (large * 1e9).round(),
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/bench_churn.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap())
        .expect("write bench_churn baseline");
    println!("baseline written to {path}");
}

criterion_group!(benches, bench_churn_paths, record_baseline);
criterion_main!(benches);
