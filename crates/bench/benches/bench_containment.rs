//! Containment testing cost per dependency class (the E7 sweep, under
//! Criterion): chain self-containment with Σ ∈ {∅, FDs, INDs, key-based}.

use cqchase_core::{contained, ContainmentOptions};
use cqchase_ir::parse_program;
use cqchase_workload::chain_query;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_containment(c: &mut Criterion) {
    let variants: Vec<(&str, &str)> = vec![
        ("empty", "relation R(a, b)."),
        ("fds", "relation R(a, b). fd R: a -> b."),
        ("inds", "relation R(a, b). ind R[2] <= R[1]."),
        (
            "keybased",
            "relation R(a, b). relation K(k, v). fd K: k -> v. ind R[2] <= K[1].",
        ),
    ];
    let opts = ContainmentOptions::default();
    let mut group = c.benchmark_group("containment_chain");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (label, schema) in variants {
        let p = parse_program(schema).unwrap();
        for n in [2usize, 4, 8] {
            let q = chain_query("Q", &p.catalog, "R", n).unwrap();
            let qp = chain_query("Qp", &p.catalog, "R", n).unwrap();
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let a = contained(&q, &qp, &p.deps, &p.catalog, &opts).unwrap();
                    assert!(a.contained);
                    std::hint::black_box(a.chase_conjuncts)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_containment);
criterion_main!(benches);
