//! The deterministic two-session churn workload, shared by the
//! `bench_churn` baseline recorder and the `bench_gate` re-measurer so
//! both sides of a gate comparison replay identical traffic.
//!
//! Two questions, two measurements:
//!
//! * **Barrier scope** — session A takes a stream of sliding-window
//!   fact updates (the natural long-running use of a containment/
//!   evaluation service: a recent-facts window over a 100k-tuple
//!   relation) while session B serves steady check traffic from
//!   several clients. Under the pre-relaxation **global** barriers
//!   every A-update splits the segment around in-flight B-checks,
//!   costing B its in-batch coalescing and chase sharing; under
//!   **per-session** barriers B's batches run unsplit and adjacent
//!   A-updates merge into one write-lock acquisition. The gated metric
//!   is the wall-clock ratio `global / per_session` on the identical
//!   script (dimensionless — it survives moving between machines).
//!
//! * **Delete scaling** — the O(1) tuple-deletion path: per-tuple
//!   delete cost (database remove + incremental index maintenance,
//!   adaptive compaction included) measured at 10k and at 100k tuples.
//!   With the tuple→position map the ratio is ~1 (flat); the old
//!   O(n) position scan would show ~10x. Gated as
//!   `cost(10k) / cost(100k)` so higher-is-better like every other
//!   gate ratio.

use std::sync::Arc;

use cqchase_ir::{parse_program, Constant, Program, RelId};
use cqchase_service::{BarrierMode, Batcher, Metrics, Outcome, Session, Work};
use cqchase_storage::{Database, DbIndex, Tuple, Value};
use cqchase_workload::{chain_query, cycle_query, star_query, SlidingWindow};

/// Session A's live window (the "100k-tuple scale" of the ROADMAP item).
pub const CHURN_WINDOW: usize = 100_000;
/// Tuples inserted + deleted per update step.
pub const CHURN_CHUNK: usize = 64;
/// Interleaved rounds in the script (each: checks, then one update).
pub const CHURN_ROUNDS: usize = 64;
/// Session-B checks per round (arriving between two session-A updates).
pub const CHECKS_PER_ROUND: usize = 6;
/// Length of B's shared left-side chain query.
pub const B_LEFT_CHAIN: usize = 10;
/// Right-side queries in B's pool (chains, cycles, stars).
pub const B_RIGHTS: usize = 12;

/// The two-session churn script, fixed up front so every measurement
/// (and both barrier modes) replays byte-identical work.
pub struct ChurnWorkload {
    /// Session A's program (schema + queries; facts filled in).
    pub a_program: Program,
    /// Session B's program (schema + Σ + pool; a few facts).
    pub b_program: Program,
    /// B's `(q, q_prime)` pair rotation.
    pub b_pairs: Vec<(usize, usize)>,
    /// The window generator (updater `t` slides stripe `t`).
    pub window: SlidingWindow,
}

/// Builds the canonical workload. Session A holds [`CHURN_WINDOW`]
/// successor tuples and two queries (a self-join probe whose answer
/// stays empty — evaluation cost without 100k-row materialization —
/// and a scan); session B is the successor-cycle containment pool.
pub fn churn_workload() -> ChurnWorkload {
    let mut a_program = parse_program(
        "relation R(a, b).
         Selfloop(x) :- R(x, x).
         Hop(x) :- R(x, y).",
    )
    .expect("static program parses");
    let r = a_program.catalog.resolve("R").unwrap();
    let window = SlidingWindow {
        window: CHURN_WINDOW,
        chunk: CHURN_CHUNK,
    };
    a_program.facts = window
        .initial(r)
        .into_iter()
        .map(|(rel, t)| (rel, tuple_consts(&t)))
        .collect();

    // B: the successor-cycle schema with ONE shared left chain and a
    // pool of right sides. Same-left pairs share a chase within one
    // batch-engine call, so splitting a batch into segments (what
    // global barriers do) pays the chase again per segment — exactly
    // the cost this workload quantifies. Cycles never map into the
    // chain's chase (exhaustive negatives), chains map at assorted
    // witness levels (positives): both cost regimes are present.
    let mut b_program = parse_program(
        "relation R(a, b).
         ind R[2] <= R[1].
         Q(x) :- R(x, y).",
    )
    .expect("the successor schema is well-formed");
    let catalog = b_program.catalog.clone();
    let mut queries =
        vec![chain_query("Left", &catalog, "R", B_LEFT_CHAIN).expect("chain renders")];
    for i in 0..B_RIGHTS {
        let size = i % 8 + 3;
        let q = match i % 3 {
            0 => chain_query(&format!("RChain{i}"), &catalog, "R", size),
            1 => cycle_query(&format!("RCycle{i}"), &catalog, "R", size + 1),
            _ => star_query(&format!("RStar{i}"), &catalog, "R", size),
        }
        .expect("generated queries are well-formed");
        queries.push(q);
    }
    b_program.queries = queries;
    let b_cat_r = b_program.catalog.resolve("R").unwrap();
    b_program.facts = (0..32i64)
        .map(|i| (b_cat_r, vec![Constant::Int(i), Constant::Int((i + 1) % 32)]))
        .collect();
    let b_pairs = (1..=B_RIGHTS).map(|j| (0, j)).collect();
    ChurnWorkload {
        a_program,
        b_program,
        b_pairs,
        window,
    }
}

fn tuple_consts(t: &Tuple) -> Vec<Constant> {
    t.iter()
        .map(|v| v.as_const().expect("window tuples are constants").clone())
        .collect()
}

fn fact_specs(program: &Program, facts: Vec<(RelId, Tuple)>) -> Vec<(String, Vec<Constant>)> {
    facts
        .into_iter()
        .map(|(rel, t)| (program.catalog.name(rel).to_owned(), tuple_consts(&t)))
        .collect()
}

/// What one mode's run answered (compared across modes for identity).
#[derive(Debug, PartialEq, Eq)]
pub struct ChurnAnswers {
    /// `contained` decisions, in script order.
    pub checks: Vec<bool>,
    /// `(inserted, deleted, facts)` per update, in script order.
    pub updates: Vec<(usize, usize, usize)>,
}

/// Renders the interleaved two-session script: each of
/// [`CHURN_ROUNDS`] rounds queues [`CHECKS_PER_ROUND`] session-B
/// checks (rotating through the pair pool) and then one session-A
/// sliding-window update; every 16th round an A-eval (the empty
/// self-loop probe — full-scan cost without 100k-row materialization)
/// rides along. This is the admission pattern a drained batch sees
/// under concurrent clients, rendered deterministically.
pub fn churn_script(w: &ChurnWorkload, a: &Arc<Session>, b: &Arc<Session>) -> Vec<Work> {
    let r = w.a_program.catalog.resolve("R").unwrap();
    let mut script = Vec::new();
    for round in 0..CHURN_ROUNDS {
        for c in 0..CHECKS_PER_ROUND {
            let (q, q_prime) = w.b_pairs[(round * CHECKS_PER_ROUND + c) % w.b_pairs.len()];
            script.push(Work::Check {
                session: Arc::clone(b),
                q,
                q_prime,
            });
        }
        let (ins, del) = w.window.step(r, round);
        script.push(Work::Update {
            session: Arc::clone(a),
            insert: fact_specs(&w.a_program, ins),
            delete: fact_specs(&w.a_program, del),
        });
        if round % 16 == 7 {
            script.push(Work::Eval {
                session: Arc::clone(a),
                q: 0,
            });
        }
    }
    script
}

/// One measured run: builds fresh sessions (outside the timed region),
/// drains the canonical script as batches under `mode`, and returns
/// (wall seconds, answers). Deterministic — no submitter threads, no
/// scheduling noise: the cost difference between modes is exactly the
/// barrier scope (segment splitting, lost in-batch coalescing and
/// chase sharing, per-update lock acquisitions and epoch bumps).
pub fn measure_churn(w: &ChurnWorkload, mode: BarrierMode) -> (f64, ChurnAnswers) {
    // Semantic cache OFF for B (capacity 0): the measurement targets
    // batching/coalescing/chase-sharing, which a warm cache would hide.
    let a = Arc::new(Session::from_program("a", w.a_program.clone(), 0, 64).expect("A registers"));
    let b = Arc::new(Session::from_program("b", w.b_program.clone(), 0, 64).expect("B registers"));
    let batcher = Batcher::with_barrier_mode(1, Arc::new(Metrics::new()), mode);
    let script = churn_script(w, &a, &b);

    let start = std::time::Instant::now();
    let outs = batcher.submit_many(script);
    let elapsed = start.elapsed().as_secs_f64();

    let mut answers = ChurnAnswers {
        checks: Vec::new(),
        updates: Vec::new(),
    };
    for out in outs {
        match out.expect("churn work submits") {
            Outcome::Check {
                summary: Ok(sum), ..
            } => answers.checks.push(sum.contained),
            Outcome::Eval { rows, .. } => {
                assert!(rows.is_empty(), "successor windows have no self-loops")
            }
            Outcome::Update(Ok(sum)) => {
                answers.updates.push((sum.inserted, sum.deleted, sum.facts))
            }
            other => panic!("churn work failed: {other:?}"),
        }
    }
    (elapsed, answers)
}

/// Measures both barrier modes on the identical script, asserts the
/// answers are identical, and returns the speedup
/// `global_time / per_session_time`.
pub fn measure_barrier_speedup(w: &ChurnWorkload) -> f64 {
    let (relaxed_s, relaxed_a) = measure_churn(w, BarrierMode::PerSession);
    let (global_s, global_a) = measure_churn(w, BarrierMode::Global);
    assert_eq!(relaxed_a, global_a, "barrier modes must answer identically");
    global_s / relaxed_s.max(1e-12)
}

/// Per-tuple delete cost (seconds) on an `n`-tuple successor relation:
/// deletes the front half one tuple at a time through
/// `Database::remove` and `DbIndex::note_remove` (tombstones,
/// posting-list removal, adaptive compaction — everything the live
/// path pays).
pub fn delete_cost_per_tuple(n: usize) -> f64 {
    let mut program = parse_program("relation R(a, b).").expect("schema parses");
    let rel = program.catalog.resolve("R").unwrap();
    program.facts.clear();
    let mut db = Database::new(&program.catalog);
    for i in 0..n as i64 {
        db.insert(rel, vec![Value::int(i), Value::int(i + 1)])
            .unwrap();
    }
    let mut idx = DbIndex::build(&db);
    let half = n / 2;
    let start = std::time::Instant::now();
    for i in 0..half as i64 {
        let t = vec![Value::int(i), Value::int(i + 1)];
        assert!(db.remove(rel, &t).unwrap());
        assert!(idx.note_remove(rel, &t));
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(db.total_tuples(), n - half);
    elapsed / half as f64
}

/// The delete-scaling measurement: per-tuple cost at 10k and 100k
/// tuples, plus the flatness ratio `cost(10k) / cost(100k)` (≈1 when
/// deletion is O(1); well under 1/2 would mean super-linear scaling).
pub fn measure_delete_flatness() -> (f64, f64, f64) {
    // Median of repeated runs: single timings of sub-10ms loops on a
    // shared machine are noisy, the ratio of medians is not.
    let median = |n: usize| -> f64 {
        let mut runs: Vec<f64> = (0..5).map(|_| delete_cost_per_tuple(n)).collect();
        runs.sort_by(f64::total_cmp);
        runs[runs.len() / 2]
    };
    let small = median(10_000);
    let large = median(100_000);
    (small, large, small / large.max(1e-15))
}
