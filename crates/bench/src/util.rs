//! Shared experiment utilities.

use cqchase_core::chase::{CTerm, ChaseState, ConjId};
use cqchase_ir::{Atom, ConjunctiveQuery, Term, VarKind, VarTable};
use std::collections::HashMap;
use std::time::Instant;

/// Builds a conjunctive query from a subset of chase conjuncts, keeping
/// the chase's summary row. Variables occurring in the summary become
/// DVs; everything else NDVs. This realizes the paper's *subquery of a
/// chase* notion and is how experiments manufacture `Q′`s with known
/// witness levels (the identity homomorphism maps the result back into
/// the chase).
pub fn query_from_conjuncts(state: &ChaseState, ids: &[ConjId], name: &str) -> ConjunctiveQuery {
    let mut vars = VarTable::new();
    let mut map: HashMap<u32, cqchase_ir::VarId> = HashMap::new();
    // Summary variables first, as DVs (also fixes the order: DVs first).
    let mut head = Vec::new();
    for t in state.summary() {
        head.push(match t {
            CTerm::Const(c) => Term::Const(c.clone()),
            CTerm::Var(v) => {
                let id = *map.entry(v.0).or_insert_with(|| {
                    vars.push(state.var_info(*v).name.clone(), VarKind::Distinguished)
                });
                Term::Var(id)
            }
        });
    }
    let mut atoms = Vec::with_capacity(ids.len());
    for &cid in ids {
        let c = state.conjunct(cid);
        let terms = c
            .terms
            .iter()
            .map(|t| match t {
                CTerm::Const(k) => Term::Const(k.clone()),
                CTerm::Var(v) => {
                    let id = *map.entry(v.0).or_insert_with(|| {
                        vars.push(state.var_info(*v).name.clone(), VarKind::Existential)
                    });
                    Term::Var(id)
                }
            })
            .collect();
        atoms.push(Atom::new(c.rel, terms));
    }
    ConjunctiveQuery {
        name: name.to_owned(),
        head,
        atoms,
        vars,
    }
}

/// The set of a conjunct's ordinary-arc ancestors (including itself),
/// plus every level-0 conjunct — an ancestor-closed, summary-connected
/// subset suitable for [`query_from_conjuncts`].
pub fn ancestors_plus_roots(state: &ChaseState, of: ConjId) -> Vec<ConjId> {
    use cqchase_core::chase::ArcKind;
    let mut out: Vec<ConjId> = state
        .alive_conjuncts()
        .filter(|(_, c)| c.level == 0)
        .map(|(id, _)| id)
        .collect();
    let mut cur = of;
    loop {
        let resolved = state.resolve_conjunct(cur);
        if !out.contains(&resolved) {
            out.push(resolved);
        }
        // Follow the (unique) incoming ordinary arc, if any.
        match state
            .arcs()
            .iter()
            .find(|a| a.kind == ArcKind::Ordinary && state.resolve_conjunct(a.to) == resolved)
        {
            Some(arc) => cur = arc.from,
            None => break,
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Median wall-clock time of `runs` executions of `f`, as a `Duration`.
/// The measurement primitive behind [`time_median_us`]; the bench gate
/// and baseline recorders share it so gate-vs-baseline comparisons use
/// one methodology.
pub fn time_median<F: FnMut()>(runs: usize, mut f: F) -> std::time::Duration {
    let mut samples: Vec<std::time::Duration> = (0..runs.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Median wall-clock time of `runs` executions of `f`, in microseconds.
pub fn time_median_us<F: FnMut()>(runs: usize, f: F) -> f64 {
    time_median(runs, f).as_secs_f64() * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_core::chase::{Chase, ChaseBudget, ChaseMode};
    use cqchase_core::hom::{find_hom, HomTarget};
    use cqchase_ir::{parse_program, validate::validate_query};

    #[test]
    fn subquery_of_chase_maps_back() {
        let p = parse_program(
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y).",
        )
        .unwrap();
        let mut ch = Chase::new(&p.queries[0], &p.deps, &p.catalog, ChaseMode::Required);
        ch.expand_to_level(4, ChaseBudget::default());
        // The deepest conjunct's ancestors + roots.
        let deepest = ch
            .state()
            .alive_conjuncts()
            .max_by_key(|(_, c)| c.level)
            .map(|(id, _)| id)
            .unwrap();
        let ids = ancestors_plus_roots(ch.state(), deepest);
        let q = query_from_conjuncts(ch.state(), &ids, "Qp");
        validate_query(&q, &p.catalog).unwrap();
        assert_eq!(q.num_atoms(), ids.len());
        // Identity homomorphism exists: the subquery maps into the chase
        // with witness level = the deepest conjunct's level.
        let h = find_hom(&q, &HomTarget::from_chase(ch.state(), u32::MAX)).unwrap();
        assert_eq!(h.max_level, ch.state().conjunct(deepest).level);
    }

    #[test]
    fn timing_is_positive() {
        let us = time_median_us(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(us >= 0.0);
    }
}
