//! The observability-overhead workload: the canonical `bench_service`
//! request sequence replayed against two server configurations —
//! tracing **off** (the default; the span recorder is allocated but
//! disabled, so the hot path pays only an atomic flag load) and tracing
//! **on** with an unreachable slow-query threshold (every request gets
//! a trace id, admission-wait / cache / compile / join / fsync spans,
//! and a slow-log threshold comparison, but nothing is emitted).
//!
//! The ratio `on/off` is the dimensionless cost of full tracing; the
//! absolute off-side throughput is comparable to `bench_service`'s
//! `requests_per_sec_1c` (same seed, same two-pass check sequence, same
//! machine at recording time), which is how the "tracing off must be
//! free" budget is asserted.

use cqchase_service::{Client, ServeOptions, Server};

use crate::service_workload::{service_workload, ServiceWorkload};

/// One measured pair of throughputs over the canonical sequence.
#[derive(Debug, Clone, Copy)]
pub struct ObsMeasurement {
    /// Requests/sec with tracing disabled (the default server).
    pub off_rps: f64,
    /// Requests/sec with tracing enabled on every request.
    pub on_rps: f64,
}

impl ObsMeasurement {
    /// `on/off`: the fraction of untraced throughput kept with tracing
    /// on (1.0 = free; the gate floors this, and the recorder asserts
    /// the 1.25x budget, i.e. ≥ 0.8).
    pub fn efficiency(&self) -> f64 {
        self.on_rps / self.off_rps.max(1e-9)
    }
}

fn serve_opts(traced: bool) -> ServeOptions {
    ServeOptions {
        addr: "127.0.0.1:0".into(),
        sem_cache_capacity: 4096,
        // An unreachable threshold: the slow-query comparison runs per
        // request, the emission never does — the steady traced state.
        slow_query_us: if traced { Some(u64::MAX) } else { None },
        trace: traced,
        ..Default::default()
    }
}

/// Replays the canonical two-pass check sequence (cold then warm, same
/// seed and order as `bench_service`) against a fresh server and
/// returns its single-client throughput.
fn run_sequence(w: &ServiceWorkload, traced: bool) -> f64 {
    let (addr, handle) = Server::spawn(serve_opts(traced)).expect("spawn service");
    let mut client = Client::connect(addr).expect("connect");
    client.register("bench", &w.program_src).expect("register");
    let t0 = std::time::Instant::now();
    let mut sent = 0usize;
    for _pass in 0..2 {
        for &(q, qp) in &w.batch.pairs {
            client
                .check("bench", &w.names[q], &w.names[qp])
                .expect("check");
            sent += 1;
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server run");
    sent as f64 / elapsed.max(1e-9)
}

/// Measures both configurations back-to-back on one workload build.
pub fn measure_obs(w: &ServiceWorkload) -> ObsMeasurement {
    ObsMeasurement {
        off_rps: run_sequence(w, false),
        on_rps: run_sequence(w, true),
    }
}

/// Builds the workload and returns the median of `runs` measurements
/// (each an off/on pair), keyed by efficiency — medianing the ratio,
/// not the sides, so one noisy run cannot split the pair.
pub fn measure_obs_median(runs: usize) -> ObsMeasurement {
    let w = service_workload();
    let mut all: Vec<ObsMeasurement> = (0..runs.max(1)).map(|_| measure_obs(&w)).collect();
    all.sort_by(|a, b| a.efficiency().total_cmp(&b.efficiency()));
    all[all.len() / 2]
}
