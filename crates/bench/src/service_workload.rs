//! The deterministic service benchmark workload, shared by the
//! `bench_service` baseline recorder and the `bench_gate` re-measurer
//! so both sides of a gate comparison run the identical request
//! sequence (the cache hit rate is only comparable when the sequences
//! match exactly).

use cqchase_workload::{successor_containment_batch, ContainmentBatch};

use crate::exp::e15_service::render_service_program;

/// Workload seed (pairs sequence).
pub const SEED: u64 = 13;
/// Query pool size.
pub const POOL: usize = 12;
/// Number of containment pairs per pass.
pub const PAIRS: usize = 256;
/// Ground facts in the registered program.
pub const FACTS: usize = 64;

/// The rendered program plus the request sequence.
pub struct ServiceWorkload {
    /// The underlying batch (schema, pool, pairs).
    pub batch: ContainmentBatch,
    /// Program text for the `register` request.
    pub program_src: String,
    /// Query names, indexed like `batch.queries`.
    pub names: Vec<String>,
}

/// Builds the canonical service benchmark workload.
pub fn service_workload() -> ServiceWorkload {
    let batch = successor_containment_batch(SEED, POOL, PAIRS);
    let program_src = render_service_program(&batch.program, &batch.queries, FACTS);
    let names = batch.queries.iter().map(|q| q.name.clone()).collect();
    ServiceWorkload {
        batch,
        program_src,
        names,
    }
}
