//! The deterministic live-update benchmark workload, shared by the
//! `bench_update` baseline recorder and the `bench_gate` re-measurer so
//! both sides of a gate comparison replay the identical delta script.
//!
//! The question the workload answers: on a 10k-tuple session, is
//! applying a fact delta **incrementally** (`Session::apply_update`
//! through `DbIndex::note_insert`/`note_remove`) and re-evaluating
//! faster than the only alternative the pre-mutation server offered —
//! tearing the session down and re-registering from scratch (full
//! index + plan rebuild) before evaluating? The *ratio*
//! `teardown_time / incremental_time` is dimensionless and gated; the
//! absolute per-round times document the recording machine.

use cqchase_ir::{parse_program, Constant, Program, RelId};
use cqchase_service::Session;
use cqchase_storage::{Tuple, Value};
use cqchase_workload::{split_deltas, Delta, DeltaScriptGen};

/// Live tuples at registration.
pub const TUPLES: usize = 10_000;
/// Deltas per update round.
pub const DELTA_OPS: usize = 64;
/// Update→eval rounds per measurement.
pub const ROUNDS: usize = 8;
/// Script seed.
pub const SEED: u64 = 11;

/// The schema, Σ-free query pool, and per-round delta scripts.
pub struct UpdateWorkload {
    /// Parsed schema + queries, with the initial facts filled in.
    pub program: Program,
    /// Per-round delta scripts (each applied as one `update`).
    pub rounds: Vec<Vec<Delta>>,
}

/// One measurement: both paths replay the same rounds, answers are
/// asserted identical, and the wall times are returned.
#[derive(Debug, Clone, Copy)]
pub struct UpdateMeasurement {
    /// Total seconds for the incremental path (update + eval per round).
    pub incremental_s: f64,
    /// Total seconds for the teardown path (re-register + eval per
    /// round).
    pub teardown_s: f64,
}

impl UpdateMeasurement {
    /// How many times the incremental path beat teardown/re-register.
    pub fn speedup(&self) -> f64 {
        self.teardown_s / self.incremental_s.max(1e-12)
    }
}

/// Builds the canonical workload: a successor cycle of [`TUPLES`]
/// facts, two queries (scan + 2-chain), and [`ROUNDS`] seeded scripts
/// of [`DELTA_OPS`] deltas each (live deletes, fresh inserts, and
/// delete-then-reinserts — see [`DeltaScriptGen`]).
pub fn update_workload(rounds: usize) -> UpdateWorkload {
    let mut program = parse_program(
        "relation R(a, b).
         A(x) :- R(x, y).
         B(x) :- R(x, y), R(y, z).",
    )
    .expect("static program parses");
    let r = program.catalog.resolve("R").unwrap();
    program.facts = (0..TUPLES as i64)
        .map(|i| {
            (
                r,
                vec![Constant::Int(i), Constant::Int((i + 1) % TUPLES as i64)],
            )
        })
        .collect();
    let initial: Vec<(RelId, Tuple)> = program
        .facts
        .iter()
        .map(|(rel, cs)| (*rel, cs.iter().cloned().map(Value::Const).collect()))
        .collect();
    // One generator across all rounds so later rounds can delete what
    // earlier rounds inserted; split per round afterwards. NOTE: a
    // chunk can touch one tuple twice (insert then delete), where
    // `split_deltas`'s deletes-before-inserts order diverges from
    // strict interleaving — harmless here because BOTH measured paths
    // apply the same split order (it is the `update` op's semantics),
    // so the differential assertion compares identical requests.
    let gen = DeltaScriptGen {
        seed: SEED,
        ops: DELTA_OPS * rounds,
        domain: 2 * TUPLES as i64,
        delete_fraction: 0.5,
    };
    let script = gen.generate(&program.catalog, &initial);
    let rounds = script.chunks(DELTA_OPS).map(<[Delta]>::to_vec).collect();
    UpdateWorkload { program, rounds }
}

/// The wire-shaped fact lists `Session::apply_update` takes.
type FactSpecs = Vec<(String, Vec<Constant>)>;

/// Converts a delta batch into the `(insert, delete)` fact lists
/// `Session::apply_update` takes.
fn to_fact_specs(program: &Program, deltas: &[Delta]) -> (FactSpecs, FactSpecs) {
    let (ins, del) = split_deltas(deltas);
    let spec = |(rel, t): (RelId, Tuple)| {
        (
            program.catalog.name(rel).to_owned(),
            t.iter()
                .map(|v| v.as_const().expect("delta values are constants").clone())
                .collect::<Vec<Constant>>(),
        )
    };
    (
        ins.into_iter().map(spec).collect(),
        del.into_iter().map(spec).collect(),
    )
}

/// Replays the workload through both paths and measures them.
///
/// Incremental: one resident session, `apply_update` + eval per round.
/// Teardown: a from-scratch `Session::from_program` (the re-register
/// cost: full `DbIndex` + plan state rebuild) + the same eval per
/// round, on identical facts. Every round asserts the two paths'
/// answer rows are bit-identical, outside the timed regions.
pub fn measure_update(w: &UpdateWorkload) -> UpdateMeasurement {
    let eval_q = 1; // the 2-chain query B
    let live = Session::from_program("live", w.program.clone(), 64, 64)
        .expect("workload program registers");

    let mut incremental_s = 0.0;
    let mut teardown_s = 0.0;
    let mut teardown_facts = w.program.facts.clone();
    for deltas in &w.rounds {
        let (ins, del) = to_fact_specs(&w.program, deltas);

        let t0 = std::time::Instant::now();
        live.apply_update(&ins, &del).expect("valid deltas");
        let live_rows = live.eval(eval_q);
        incremental_s += t0.elapsed().as_secs_f64();

        // Mirror the deltas onto the fact list (deletes first, then
        // inserts, matching apply_update), outside the timed region.
        for (rel_name, tuple) in &del {
            let rel = w.program.catalog.resolve(rel_name).unwrap();
            if let Some(pos) = teardown_facts
                .iter()
                .position(|(r, cs)| *r == rel && cs == tuple)
            {
                teardown_facts.remove(pos);
            }
        }
        for (rel_name, tuple) in &ins {
            let rel = w.program.catalog.resolve(rel_name).unwrap();
            if !teardown_facts
                .iter()
                .any(|(r, cs)| *r == rel && cs == tuple)
            {
                teardown_facts.push((rel, tuple.clone()));
            }
        }
        let mut program = w.program.clone();
        program.facts = teardown_facts.clone();

        let t0 = std::time::Instant::now();
        let fresh =
            Session::from_program("fresh", program, 64, 64).expect("mutated program registers");
        let fresh_rows = fresh.eval(eval_q);
        teardown_s += t0.elapsed().as_secs_f64();

        assert_eq!(
            live_rows, fresh_rows,
            "incremental and teardown answers diverged"
        );
    }
    UpdateMeasurement {
        incremental_s,
        teardown_s,
    }
}
