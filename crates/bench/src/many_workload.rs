//! Many-tenant workload: a thousand sessions registering the **same**
//! program text (one `FrozenCatalog`, 999 attaches) with zipf-skewed
//! eval traffic driven through the sharded lane queues — the scenario
//! the lane/catalog layer exists for.
//!
//! Everything is deterministic (fixed-seed LCG, fixed session names,
//! fixed promotion set), so the baseline recorder and the bench gate
//! replay the identical request sequence and can assert the two lane
//! configurations produce bit-identical answer checksums.

use std::sync::Arc;

use cqchase_service::{Batcher, CatalogRegistry, LaneSet, Metrics, Outcome, Session, Work};

/// Resident tenants sharing one catalog.
pub const SESSIONS: usize = 1000;
/// Eval requests per throughput measurement.
pub const OPS: usize = 4000;
/// Concurrent submitter threads (stand-ins for connection workers).
pub const SUBMITTERS: usize = 4;
/// Total compute threads, partitioned across lanes exactly the way the
/// server does it (`threads / lanes`, min 1 per lane).
pub const TOTAL_THREADS: usize = 4;
/// Every Nth tenant applies one private update and promotes off the
/// shared base — the memory measurement covers the realistic mixed
/// state, not the all-shared best case.
pub const PROMOTE_EVERY: usize = 16;
/// Base facts in the shared program.
pub const FACTS: usize = 48;
/// LCG seed for facts, zipf sampling, and query choice.
pub const SEED: u64 = 0x51ab_0982;

const NUM_QUERIES: usize = 4;

/// Deterministic 64-bit LCG (MMIX constants) — the only randomness
/// source, so every run replays the same traffic.
pub struct Lcg(u64);

impl Lcg {
    pub fn new(seed: u64) -> Lcg {
        Lcg(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform in `[0, 1)` from the high bits.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The canonical many-tenant request script.
pub struct ManyWorkload {
    /// The single shared program text every tenant registers.
    pub program_src: String,
    /// `tenant-0000` … `tenant-0999`.
    pub names: Vec<String>,
    /// `(session index, query index)` per request; session indices are
    /// zipf-distributed (rank-harmonic), so a few tenants are hot and
    /// the long tail is cold — the usual multi-tenant shape.
    pub ops: Vec<(usize, usize)>,
}

/// Builds the canonical workload: shared program source with `FACTS`
/// seeded base facts, `SESSIONS` tenant names, `OPS` zipf-sampled
/// eval requests.
pub fn many_workload() -> ManyWorkload {
    let mut rng = Lcg::new(SEED);
    let mut src = String::from(
        "relation R(a, b).
    ind R[2] <= R[1].
    Q0(x) :- R(x, y).
    Q1(x) :- R(x, y), R(y, z).
    Q2(x) :- R(y, x).
    Q3(x, z) :- R(x, y), R(y, z).",
    );
    for _ in 0..FACTS {
        let a = (rng.next_u64() % 40) as i64;
        let b = (rng.next_u64() % 40) as i64;
        src.push_str(&format!("\nR({a}, {b})."));
    }
    let names: Vec<String> = (0..SESSIONS).map(|i| format!("tenant-{i:04}")).collect();

    // Harmonic zipf over session ranks: weight 1/(rank+1), sampled by
    // binary search over the cumulative mass.
    let mut cum = Vec::with_capacity(SESSIONS);
    let mut total = 0.0f64;
    for rank in 0..SESSIONS {
        total += 1.0 / (rank + 1) as f64;
        cum.push(total);
    }
    let ops = (0..OPS)
        .map(|_| {
            let r = rng.unit() * total;
            let s = cum.partition_point(|&c| c < r).min(SESSIONS - 1);
            let q = (rng.next_u64() % NUM_QUERIES as u64) as usize;
            (s, q)
        })
        .collect();
    ManyWorkload {
        program_src: src,
        names,
        ops,
    }
}

/// The fact a promoting tenant inserts: outside the base domain, unique
/// per tenant, so the update is always effective (always promotes).
fn promotion_fact(i: usize) -> (String, Vec<cqchase_ir::Constant>) {
    (
        "R".into(),
        vec![
            cqchase_ir::Constant::Int(500 + i as i64),
            cqchase_ir::Constant::Int(501 + i as i64),
        ],
    )
}

/// Registers every tenant through one shared-catalog registry, then
/// promotes every [`PROMOTE_EVERY`]th tenant with its private fact.
pub fn build_shared_sessions(w: &ManyWorkload) -> (Arc<CatalogRegistry>, Vec<Arc<Session>>) {
    let registry = Arc::new(CatalogRegistry::new(256));
    let sessions: Vec<Arc<Session>> = w
        .names
        .iter()
        .map(|name| {
            Arc::new(
                registry
                    .session_from_source(name, &w.program_src, 64, 64)
                    .expect("register shared tenant"),
            )
        })
        .collect();
    assert_eq!(registry.len(), 1, "one frozen catalog for all tenants");
    for (i, s) in sessions.iter().enumerate() {
        if i % PROMOTE_EVERY == 0 {
            s.apply_update(&[promotion_fact(i)], &[])
                .expect("promotion update");
            assert!(!s.facts_shared(), "effective update promoted {i}");
        } else {
            assert!(s.facts_shared(), "untouched tenant {i} stays shared");
        }
    }
    (registry, sessions)
}

/// The rebuild-per-tenant control: the same tenants, same promotion
/// set, but each built privately (its own parse, facts, index, plans).
pub fn build_duplicate_sessions(w: &ManyWorkload) -> Vec<Session> {
    w.names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let s = Session::new(name, &w.program_src, 64, 64).expect("register private tenant");
            if i % PROMOTE_EVERY == 0 {
                s.apply_update(&[promotion_fact(i)], &[])
                    .expect("promotion update");
            }
            s
        })
        .collect()
}

/// One throughput measurement's result.
pub struct LaneRunStats {
    /// Sustained eval requests per second across all submitters.
    pub ops_per_sec: f64,
    /// Sum of result-row counts over the whole script — deterministic,
    /// so any two lane configurations must agree exactly.
    pub checksum: u64,
}

/// Drives the full script through a `lanes`-sharded queue set with
/// [`SUBMITTERS`] concurrent submitter threads (strided over the ops)
/// and the server's thread partitioning, on freshly built sessions
/// (cold result caches — both lane configurations start equal).
pub fn measure_lane_throughput(w: &ManyWorkload, lanes: usize) -> LaneRunStats {
    let (_registry, sessions) = build_shared_sessions(w);
    let metrics = Arc::new(Metrics::with_lanes(lanes));
    let threads_per_lane = (TOTAL_THREADS / lanes).max(1);
    let lane_set = Arc::new(LaneSet::new(lanes, |i| {
        Batcher::new(threads_per_lane, Arc::clone(&metrics)).with_lane(i)
    }));
    let sessions = Arc::new(sessions);
    let names = Arc::new(w.names.clone());
    let ops = Arc::new(w.ops.clone());

    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..SUBMITTERS)
        .map(|t| {
            let (lane_set, sessions, names, ops) = (
                Arc::clone(&lane_set),
                Arc::clone(&sessions),
                Arc::clone(&names),
                Arc::clone(&ops),
            );
            std::thread::spawn(move || {
                let mut sum = 0u64;
                for (i, &(s, q)) in ops.iter().enumerate() {
                    if i % SUBMITTERS != t {
                        continue;
                    }
                    let out = lane_set
                        .for_session(&names[s])
                        .submit(Work::Eval {
                            session: Arc::clone(&sessions[s]),
                            q,
                        })
                        .expect("submit eval");
                    match out {
                        Outcome::Eval { rows, .. } => sum += rows.len() as u64,
                        other => panic!("eval work answered {other:?}"),
                    }
                }
                sum
            })
        })
        .collect();
    let checksum = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = t0.elapsed().as_secs_f64();
    LaneRunStats {
        ops_per_sec: w.ops.len() as f64 / elapsed.max(1e-9),
        checksum,
    }
}

/// Resident-bytes comparison: shared-catalog tenants vs the same
/// tenants each rebuilt privately.
pub struct MemoryDedup {
    /// Σ private session bytes + Σ distinct shared-base bytes.
    pub shared_total: usize,
    /// Σ per-tenant bytes when every tenant owns its facts.
    pub duplicate_total: usize,
}

impl MemoryDedup {
    pub fn shared_per_session(&self) -> f64 {
        self.shared_total as f64 / SESSIONS as f64
    }

    pub fn duplicate_per_session(&self) -> f64 {
        self.duplicate_total as f64 / SESSIONS as f64
    }

    /// How many times smaller the shared path is (higher is better).
    pub fn factor(&self) -> f64 {
        self.duplicate_total as f64 / self.shared_total.max(1) as f64
    }
}

/// Builds both populations (same tenants, same promoted subset) and
/// accounts their resident fact bytes. Shared bases are counted once
/// per distinct catalog — exactly how the server's `stats` reports
/// them — and promoted tenants' private copies count individually on
/// both sides.
pub fn measure_memory_dedup(w: &ManyWorkload) -> MemoryDedup {
    let (registry, sessions) = build_shared_sessions(w);
    let shared_total = sessions
        .iter()
        .map(|s| s.resident_bytes())
        .chain(registry.snapshot().iter().map(|c| c.resident_bytes()))
        .sum();
    let duplicate_total = build_duplicate_sessions(w)
        .iter()
        .map(|s| s.resident_bytes())
        .sum();
    MemoryDedup {
        shared_total,
        duplicate_total,
    }
}
