//! # cqchase-bench — experiment harness
//!
//! One module per experiment (E1–E13 regenerate figures, worked
//! examples and theorem-shaped claims of Johnson & Klug (PODS 1982);
//! E14 drives the parallel batch engines, E15 load-tests the resident
//! service). The `experiments` binary drives them; `EXPERIMENTS.md`
//! records the outputs. Criterion microbenchmarks live under
//! `benches/`.

pub mod churn_workload;
pub mod exp;
pub mod many_workload;
pub mod obs_workload;
pub mod recovery_workload;
pub mod resilience_workload;
pub mod service_workload;
pub mod table;
pub mod update_workload;
pub mod util;
