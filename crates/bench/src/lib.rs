//! # cqchase-bench — experiment harness
//!
//! One module per experiment (E1–E12), each regenerating a figure,
//! worked example or theorem-shaped claim of Johnson & Klug (PODS 1982).
//! The `experiments` binary drives them; `EXPERIMENTS.md` records the
//! outputs. Criterion microbenchmarks live under `benches/`.

pub mod exp;
pub mod table;
pub mod util;
