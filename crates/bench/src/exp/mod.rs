//! The experiments: one module per paper artifact. See `DESIGN.md` §5
//! for the experiment index and `EXPERIMENTS.md` for recorded outputs.

use cqchase_core::chase::ChaseBudget;

pub mod e01_figure1;
pub mod e02_intro;
pub mod e03_inference_agreement;
pub mod e04_finite_counterexample;
pub mod e05_bound;
pub mod e06_growth;
pub mod e07_scaling;
pub mod e08_fd_baseline;
pub mod e09_width_cost;
pub mod e10_minimization;
pub mod e11_lemmas;
pub mod e12_qstar;
pub mod e13_vardi;
pub mod e14_throughput;
pub mod e15_service;

use serde_json::Value;

/// One experiment's rendered output.
pub struct ExperimentOutput {
    /// Experiment id (`e1` … `e13`).
    pub id: &'static str,
    /// One-line description (printed as the section header).
    pub title: &'static str,
    /// Machine-readable result rows.
    pub json: Value,
}

/// Runs one experiment by id with the default chase budget. Returns
/// `None` for unknown ids.
pub fn run(id: &str) -> Option<ExperimentOutput> {
    run_with(id, ChaseBudget::default(), None)
}

/// Runs one experiment by id, passing `budget` to the chase-driven
/// experiments (settable from the CLI via `--max-steps` /
/// `--max-conjuncts`) and `threads` (the `--threads` flag) to the
/// thread-count-driven ones: E14 sweeps `{1, threads}` instead of its
/// default `{1, 2, 4}`, and E15 runs its service with that many batch
/// workers. Returns `None` for unknown ids.
pub fn run_with(id: &str, budget: ChaseBudget, threads: Option<usize>) -> Option<ExperimentOutput> {
    match id {
        "e1" => Some(e01_figure1::run(budget)),
        "e2" => Some(e02_intro::run()),
        "e3" => Some(e03_inference_agreement::run()),
        "e4" => Some(e04_finite_counterexample::run()),
        "e5" => Some(e05_bound::run(budget)),
        "e6" => Some(e06_growth::run(budget)),
        "e7" => Some(e07_scaling::run()),
        "e8" => Some(e08_fd_baseline::run()),
        "e9" => Some(e09_width_cost::run()),
        "e10" => Some(e10_minimization::run()),
        "e11" => Some(e11_lemmas::run(budget)),
        "e12" => Some(e12_qstar::run(budget)),
        "e13" => Some(e13_vardi::run()),
        "e14" => Some(e14_throughput::run(budget, threads)),
        "e15" => Some(e15_service::run(threads)),
        _ => None,
    }
}

/// All experiment ids in order.
pub const ALL: [&str; 15] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
];
