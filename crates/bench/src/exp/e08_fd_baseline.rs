//! **E8 — the FD-only classical baseline**: on FDs alone, containment is
//! the Aho–Sagiv–Ullman / Maier–Mendelzon–Sagiv finite chase + hom test,
//! and it is finitely controllable. We cross-validate our engine's
//! answers against exhaustive finite checking on every random FD
//! workload where the instance space is enumerable.

use cqchase_core::finite::finite_contained_exhaustive;
use cqchase_core::{contained, ContainmentOptions};
use cqchase_ir::{Catalog, DependencySet, Fd};
use cqchase_workload::QueryGen;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;

use super::ExperimentOutput;
use crate::table::Table;

fn random_fds(catalog: &Catalog, seed: u64, n: usize) -> DependencySet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = DependencySet::new();
    let rels: Vec<_> = catalog.rel_ids().collect();
    let mut tries = 0;
    while out.len() < n && tries < 50 {
        tries += 1;
        let rel = rels[rng.gen_range(0..rels.len())];
        let arity = catalog.arity(rel);
        if arity < 2 {
            continue;
        }
        let lhs = rng.gen_range(0..arity);
        let rhs = rng.gen_range(0..arity);
        if lhs != rhs {
            out.push(Fd::new(rel, vec![lhs], rhs));
        }
    }
    out
}

/// Runs E8.
pub fn run() -> ExperimentOutput {
    let mut catalog = Catalog::new();
    catalog.declare("R", ["a", "b"]).unwrap();

    let opts = ContainmentOptions::default();
    let mut table = Table::new(&["seed", "|Σ|", "chase says", "finite check", "agree"]);
    let mut disagreements = 0usize;

    for seed in 0..12u64 {
        let sigma = random_fds(&catalog, seed, 2);
        let qgen = QueryGen {
            seed,
            num_atoms: 2,
            num_vars: 3,
            num_dvs: 1,
            const_prob: 0.0,
            const_pool: 1,
        };
        let q = qgen.generate("Q", &catalog);
        let mut qgen2 = qgen.clone();
        qgen2.seed = seed + 100;
        let qp = qgen2.generate("Qp", &catalog);

        let ans = contained(&q, &qp, &sigma, &catalog, &opts).unwrap();
        // FD-only containment is finitely controllable, so the exhaustive
        // finite check over a domain as large as the query's variable
        // count must agree. (Domain 3 ≥ #vars suffices for these sizes:
        // the chase itself, viewed as a database, uses ≤ 3 symbols.)
        let rep = finite_contained_exhaustive(&q, &qp, &sigma, &catalog, 3)
            .expect("2-ary single relation over domain 3 is enumerable");
        let agree = ans.contained == rep.holds();
        if !agree {
            disagreements += 1;
        }
        table.rowd(&[
            seed.to_string(),
            sigma.len().to_string(),
            ans.contained.to_string(),
            rep.holds().to_string(),
            agree.to_string(),
        ]);
    }

    println!("{}", table.render());
    println!("disagreements between chase and exhaustive finite check: {disagreements}");

    ExperimentOutput {
        id: "e8",
        title: "FD-only baseline — classical chase agrees with exhaustive finite checking",
        json: json!({ "rows": table.to_json(), "disagreements": disagreements }),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e8_agrees() {
        let out = super::run();
        assert_eq!(out.json["disagreements"], 0);
    }
}
