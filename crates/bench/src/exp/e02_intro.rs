//! **E2 — the introduction's EMP/DEP example**: `Q1 ≡ Q2` holds under
//! the foreign-key IND, fails without it, and also holds in the
//! key-based variant; minimization removes the redundant `DEP` conjunct.

use cqchase_core::{contained, minimize, ContainmentOptions};
use cqchase_ir::DependencySet;
use cqchase_workload::families::{intro_emp_dep, intro_key_based};
use serde_json::json;

use super::ExperimentOutput;
use crate::table::Table;

/// Runs E2.
pub fn run() -> ExperimentOutput {
    let opts = ContainmentOptions::default();
    let mut table = Table::new(&["sigma", "Q2 ⊆ Q1", "Q1 ⊆ Q2", "equivalent", "|min(Q1)|"]);

    let mut record = |label: &str, p: &cqchase_ir::Program, deps: &DependencySet| {
        let q1 = p.query("Q1").unwrap();
        let q2 = p.query("Q2").unwrap();
        let fwd = contained(q2, q1, deps, &p.catalog, &opts).unwrap();
        let bwd = contained(q1, q2, deps, &p.catalog, &opts).unwrap();
        let min = minimize(q1, deps, &p.catalog, &opts).unwrap();
        table.rowd(&[
            label.to_string(),
            fwd.contained.to_string(),
            bwd.contained.to_string(),
            (fwd.contained && bwd.contained).to_string(),
            min.query.num_atoms().to_string(),
        ]);
        (fwd.contained, bwd.contained)
    };

    let with_ind = intro_emp_dep();
    let (f1, b1) = record("IND only", &with_ind, &with_ind.deps);
    let empty = DependencySet::new();
    let (f2, b2) = record("no deps", &with_ind, &empty);
    let kb = intro_key_based();
    let (f3, b3) = record("key-based", &kb, &kb.deps);

    println!("{}", table.render());
    println!(
        "paper claim: equivalent iff the IND holds — reproduced: {}",
        (f1 && b1) && (!f2 && b2) && (f3 && b3)
    );

    ExperimentOutput {
        id: "e2",
        title: "Intro example — Q1 ≡ Q2 iff the foreign-key IND holds",
        json: json!({ "rows": table.to_json() }),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e2_claims() {
        let out = super::run();
        let rows = out.json["rows"].as_array().unwrap();
        assert_eq!(rows[0]["equivalent"], "true");
        assert_eq!(rows[1]["equivalent"], "false");
        assert_eq!(rows[2]["equivalent"], "true");
        // Minimization drops the DEP conjunct exactly when the IND holds.
        assert_eq!(rows[0]["|min(Q1)|"], 1);
        assert_eq!(rows[1]["|min(Q1)|"], 2);
        assert_eq!(rows[2]["|min(Q1)|"], 1);
    }
}
