//! **E3 — Corollary 2.3 cross-check**: IND inference through the
//! containment reduction agrees with the Casanova–Fagin–Papadimitriou
//! axiomatic prover on randomly generated IND sets and goals.

use cqchase_core::inference::{implies_ind_axiomatic, implies_ind_via_chase};
use cqchase_core::ContainmentOptions;
use cqchase_ir::{Catalog, Ind, RelId};
use cqchase_workload::IndSetGen;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde_json::json;

use super::ExperimentOutput;
use crate::table::Table;

fn random_goal(catalog: &Catalog, width: usize, rng: &mut StdRng) -> Ind {
    let rels: Vec<RelId> = catalog.rel_ids().collect();
    loop {
        let lhs = rels[rng.gen_range(0..rels.len())];
        let rhs = rels[rng.gen_range(0..rels.len())];
        let w = width.min(catalog.arity(lhs)).min(catalog.arity(rhs)).max(1);
        let mut lc: Vec<usize> = (0..catalog.arity(lhs)).collect();
        lc.shuffle(rng);
        lc.truncate(w);
        let mut rc: Vec<usize> = (0..catalog.arity(rhs)).collect();
        rc.shuffle(rng);
        rc.truncate(w);
        let g = Ind::new(lhs, lc, rhs, rc);
        if !g.is_trivial() {
            return g;
        }
    }
}

/// Runs E3.
pub fn run() -> ExperimentOutput {
    let mut catalog = Catalog::new();
    catalog.declare("A", ["a1", "a2"]).unwrap();
    catalog.declare("B", ["b1", "b2"]).unwrap();
    catalog.declare("C", ["c1", "c2"]).unwrap();

    // A generous budget so dense cyclic IND sets still decide their
    // (bound-gated) negative goals instead of skipping them.
    let opts = ContainmentOptions {
        budget: cqchase_core::containment::ChaseBudgetOpt(cqchase_core::ChaseBudget {
            max_steps: 50_000,
            max_conjuncts: 100_000,
        }),
        ..Default::default()
    };
    let mut table = Table::new(&["seed", "|Σ|", "goals", "implied", "agree", "disagreements"]);
    let mut total_agree = true;

    for seed in 0..8u64 {
        let sigma = IndSetGen {
            seed,
            num_inds: 4,
            width: 1,
            acyclic: false,
        }
        .generate(&catalog);
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let mut implied = 0;
        let mut agree = 0;
        let mut disagreements = Vec::new();
        let goals = 20;
        for _ in 0..goals {
            let goal = random_goal(&catalog, 1, &mut rng);
            let ax =
                implies_ind_axiomatic(&sigma, &goal, 1_000_000).expect("tiny universe saturates");
            let ch = match implies_ind_via_chase(&sigma, &goal, &catalog, &opts) {
                Ok(a) => a.contained,
                Err(_) => continue,
            };
            if ax {
                implied += 1;
            }
            if ax == ch {
                agree += 1;
            } else {
                disagreements.push(format!("{goal:?}"));
            }
        }
        total_agree &= disagreements.is_empty();
        table.rowd(&[
            seed.to_string(),
            sigma.len().to_string(),
            goals.to_string(),
            implied.to_string(),
            agree.to_string(),
            disagreements.len().to_string(),
        ]);
    }

    println!("{}", table.render());
    println!("axiomatic ≡ chase-based on every goal: {total_agree}");

    ExperimentOutput {
        id: "e3",
        title: "Corollary 2.3 — IND inference via containment agrees with the CFP axioms",
        json: json!({ "rows": table.to_json(), "all_agree": total_agree }),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e3_engines_agree() {
        let out = super::run();
        assert_eq!(out.json["all_agree"], true);
        for row in out.json["rows"].as_array().unwrap() {
            assert_eq!(row["disagreements"], 0);
        }
    }
}
