//! **E6 — chase growth**: conjuncts per level for the O-chase vs the
//! R-chase across IND families (the phenomenon Figure 1 illustrates).
//! The R-chase prunes witnessed applications, so it grows no faster than
//! the O-chase; on the Figure 1 Σ the O-chase's redundant `T`/`S`
//! applications compound each level.

use cqchase_core::chase::{Chase, ChaseBudget, ChaseMode};
use cqchase_ir::parse_program;
use cqchase_workload::families::{figure1, successor_cycle};
use serde_json::json;

use super::ExperimentOutput;
use crate::table::Table;

const DEPTH: u32 = 6;

fn histogram(
    p: &cqchase_ir::Program,
    qname: &str,
    mode: ChaseMode,
    budget: ChaseBudget,
) -> Vec<usize> {
    let mut ch = Chase::new(p.query(qname).unwrap(), &p.deps, &p.catalog, mode);
    ch.expand_to_level(DEPTH, budget);
    let mut h = ch.state().level_histogram();
    h.resize(DEPTH as usize + 1, 0);
    h
}

/// Runs E6.
pub fn run(budget: ChaseBudget) -> ExperimentOutput {
    let mut table = Table::new(&["family", "mode", "L0", "L1", "L2", "L3", "L4", "L5", "L6"]);
    let two_cycles = parse_program(
        "relation R(a, b).
         ind R[2] <= R[1]. ind R[1] <= R[2].
         Q(x) :- R(x, y).",
    )
    .unwrap();
    let families: Vec<(&str, cqchase_ir::Program, &str)> = vec![
        ("successor", successor_cycle(), "Q"),
        ("figure1", figure1(), "Q"),
        ("two-cycles", two_cycles, "Q"),
    ];
    let mut monotone_ok = true;
    for (name, p, qname) in &families {
        let rh = histogram(p, qname, ChaseMode::Required, budget);
        let oh = histogram(p, qname, ChaseMode::Oblivious, budget);
        monotone_ok &= rh.iter().zip(&oh).all(|(r, o)| o >= r);
        for (mode, h) in [("R", &rh), ("O", &oh)] {
            let mut cells = vec![name.to_string(), mode.to_string()];
            cells.extend(h.iter().map(|n| n.to_string()));
            table.rowd(&cells);
        }
    }
    println!("{}", table.render());
    println!("O-chase ≥ R-chase at every level: {monotone_ok}");

    ExperimentOutput {
        id: "e6",
        title: "Chase growth per level — O-chase vs R-chase across IND families",
        json: json!({ "rows": table.to_json(), "o_dominates_r": monotone_ok }),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e6_o_dominates_r() {
        let out = super::run(cqchase_core::chase::ChaseBudget::default());
        assert_eq!(out.json["o_dominates_r"], true);
        let rows = out.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 6);
        // The successor family grows one conjunct per level in both modes.
        assert_eq!(rows[0]["L3"], 1);
        assert_eq!(rows[1]["L3"], 1);
        // Figure 1's O-chase strictly outgrows its R-chase by level 4.
        let r4 = rows[2]["L4"].as_i64().unwrap();
        let o4 = rows[3]["L4"].as_i64().unwrap();
        assert!(o4 >= r4);
    }
}
