//! **E5 — the Theorem 2 level bound**: on positive containment
//! instances, the witness homomorphism's level never exceeds
//! `|Q′| · |Σ| · (W+1)^W` — and is usually far below it.
//!
//! Positive instances are manufactured honestly: `Q′` is an
//! ancestor-closed subquery of the chase of `Q`, so the identity maps it
//! back in at a *known* depth; the engine re-derives the containment from
//! scratch and we compare its witness level against both the known depth
//! and the theoretical bound.

use cqchase_core::chase::{theorem2_bound, Chase, ChaseBudget, ChaseMode};
use cqchase_core::{contained, ContainmentOptions};
use cqchase_ir::Catalog;
use cqchase_workload::{chain_query, IndSetGen, KeyBasedGen, QueryGen};
use serde_json::json;

use super::ExperimentOutput;
use crate::table::Table;
use crate::util::{ancestors_plus_roots, query_from_conjuncts};

/// Runs E5.
pub fn run(budget: ChaseBudget) -> ExperimentOutput {
    let mut table = Table::new(&[
        "class",
        "seed",
        "|Q'|",
        "|Σ|",
        "W",
        "bound",
        "witness level",
        "slack",
    ]);
    let mut violations = 0usize;
    let opts = ContainmentOptions::default();

    // INDs-only workloads over a binary relation + friends.
    let mut catalog = Catalog::new();
    catalog.declare("R", ["a", "b"]).unwrap();
    catalog.declare("S", ["x", "y"]).unwrap();
    for seed in 0..6u64 {
        let sigma = IndSetGen {
            seed,
            num_inds: 2,
            width: 1,
            acyclic: false,
        }
        .generate(&catalog);
        if sigma.num_inds() == 0 {
            continue;
        }
        let q = chain_query("Q", &catalog, "R", 1).unwrap();
        let mut ch = Chase::new(&q, &sigma, &catalog, ChaseMode::Required);
        ch.expand_to_level(4, budget);
        let Some(deep) = ch
            .state()
            .alive_conjuncts()
            .max_by_key(|(_, c)| c.level)
            .map(|(id, _)| id)
        else {
            continue;
        };
        let ids = ancestors_plus_roots(ch.state(), deep);
        let qp = query_from_conjuncts(ch.state(), &ids, "Qp");
        let bound = theorem2_bound(&qp, &sigma);
        let ans = match contained(&q, &qp, &sigma, &catalog, &opts) {
            Ok(a) => a,
            Err(_) => continue,
        };
        if !ans.contained {
            continue; // subquery construction guarantees positives; skip anomalies
        }
        let w = ans.witness.as_ref().map(|h| h.max_level).unwrap_or(0);
        if u64::from(w) > u64::from(bound) {
            violations += 1;
        }
        table.rowd(&[
            "INDs-only".to_string(),
            seed.to_string(),
            qp.num_atoms().to_string(),
            sigma.len().to_string(),
            sigma.max_ind_width().to_string(),
            bound.to_string(),
            w.to_string(),
            (i64::from(bound) - i64::from(w)).to_string(),
        ]);
    }

    // Key-based workloads.
    for seed in 0..6u64 {
        let (catalog, sigma) = KeyBasedGen {
            seed,
            num_relations: 3,
            key_width: 1,
            nonkey_width: 2,
            num_inds: 3,
            ind_width: 1,
            acyclic: false,
        }
        .generate();
        let q = QueryGen {
            seed,
            num_atoms: 2,
            num_vars: 4,
            num_dvs: 1,
            const_prob: 0.0,
            const_pool: 1,
        }
        .generate("Q", &catalog);
        let mut ch = Chase::new(&q, &sigma, &catalog, ChaseMode::Required);
        ch.expand_to_level(4, budget);
        let Some(deep) = ch
            .state()
            .alive_conjuncts()
            .max_by_key(|(_, c)| c.level)
            .map(|(id, _)| id)
        else {
            continue;
        };
        let ids = ancestors_plus_roots(ch.state(), deep);
        let qp = query_from_conjuncts(ch.state(), &ids, "Qp");
        let bound = theorem2_bound(&qp, &sigma);
        let ans = match contained(&q, &qp, &sigma, &catalog, &opts) {
            Ok(a) => a,
            Err(_) => continue,
        };
        if !ans.contained {
            continue;
        }
        let w = ans.witness.as_ref().map(|h| h.max_level).unwrap_or(0);
        if u64::from(w) > u64::from(bound) {
            violations += 1;
        }
        table.rowd(&[
            "key-based".to_string(),
            seed.to_string(),
            qp.num_atoms().to_string(),
            sigma.len().to_string(),
            sigma.max_ind_width().to_string(),
            bound.to_string(),
            w.to_string(),
            (i64::from(bound) - i64::from(w)).to_string(),
        ]);
    }

    println!("{}", table.render());
    println!("bound violations: {violations} (Theorem 2 demands 0)");

    ExperimentOutput {
        id: "e5",
        title: "Theorem 2 — witness levels never exceed |Q'|·|Σ|·(W+1)^W",
        json: json!({ "rows": table.to_json(), "violations": violations }),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e5_no_violations() {
        let out = super::run(cqchase_core::chase::ChaseBudget::default());
        assert_eq!(out.json["violations"], 0);
        assert!(!out.json["rows"].as_array().unwrap().is_empty());
    }
}
