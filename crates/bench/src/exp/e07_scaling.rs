//! **E7 — NP-easiness in practice**: containment wall-time as the query
//! grows, for each dependency class. The paper's message is that adding
//! INDs (alone or key-based) keeps containment *no harder than* the
//! Σ = ∅ NP problem; the measured shape should show all classes scaling
//! comparably on chain workloads (polynomially here, since chain
//! homomorphisms are easy), with the chase depth — not the class —
//! driving the cost.

use cqchase_core::{contained, ContainmentOptions};
use cqchase_ir::parse_program;
use serde_json::json;

use super::ExperimentOutput;
use crate::table::Table;
use crate::util::time_median_us;
use cqchase_workload::chain_query;

/// Runs E7.
pub fn run() -> ExperimentOutput {
    let mut table = Table::new(&["class", "|Q| atoms", "contained", "median µs"]);
    let opts = ContainmentOptions::default();

    // Four schema variants over the same binary relation.
    let variants: Vec<(&str, &str)> = vec![
        ("no deps", "relation R(a, b)."),
        ("FDs only", "relation R(a, b). fd R: a -> b."),
        ("INDs only", "relation R(a, b). ind R[2] <= R[1]."),
        (
            "key-based",
            "relation R(a, b). relation K(k, v).
             fd K: k -> v. ind R[2] <= K[1].",
        ),
    ];

    for (label, schema) in &variants {
        let p = parse_program(schema).unwrap();
        for n in [1usize, 2, 4, 6, 8] {
            // Q = chain of length n; Q' = chain of length n (self-containment:
            // positive for every class and exercises the full pipeline).
            let q = chain_query("Q", &p.catalog, "R", n).unwrap();
            let qp = chain_query("Qp", &p.catalog, "R", n).unwrap();
            let mut last = false;
            let us = time_median_us(5, || {
                last = contained(&q, &qp, &p.deps, &p.catalog, &opts)
                    .unwrap()
                    .contained;
            });
            table.rowd(&[
                label.to_string(),
                n.to_string(),
                last.to_string(),
                format!("{us:.1}"),
            ]);
        }
    }

    println!("{}", table.render());
    println!(
        "all classes answer `true` on self-containment; cost grows with chase depth, not class"
    );

    ExperimentOutput {
        id: "e7",
        title: "Containment wall-time vs query size per dependency class (Theorem 2 / Cor. 2.1)",
        json: json!({ "rows": table.to_json() }),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_all_positive() {
        let out = super::run();
        for row in out.json["rows"].as_array().unwrap() {
            assert_eq!(row["contained"], "true", "{row}");
        }
    }
}
