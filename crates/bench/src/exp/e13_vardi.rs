//! **E13 — the Section 5 / Vardi remark**: for Σ consisting of INDs and
//! `Q′` containing a *single conjunct*, finite and unrestricted
//! containment coincide ("a simple such result is easily seen to hold
//! for the case where Q′ contains but a single conjunct").
//!
//! Empirically: on random INDs-only workloads with single-conjunct
//! `Q′`s, the chase answer for `⊆∞` must agree with exhaustive finite
//! checking over small domains — a finite counterexample must exist
//! whenever the chase refutes containment, and must not when it
//! certifies it.

use cqchase_core::finite::finite_contained_exhaustive;
use cqchase_core::{contained, ContainmentOptions};
use cqchase_ir::Catalog;
use cqchase_workload::{IndSetGen, QueryGen};
use serde_json::json;

use super::ExperimentOutput;
use crate::table::Table;

/// Runs E13.
pub fn run() -> ExperimentOutput {
    let mut catalog = Catalog::new();
    catalog.declare("R", ["a", "b"]).unwrap();
    catalog.declare("S", ["x", "y"]).unwrap();
    let opts = ContainmentOptions::default();

    let mut table = Table::new(&[
        "seed",
        "|Σ|",
        "pairs",
        "⊆∞ yes",
        "⊆∞ no",
        "agree",
        "mismatch",
    ]);
    let mut total_mismatch = 0usize;

    for seed in 0..6u64 {
        let sigma = IndSetGen {
            seed,
            num_inds: 2,
            width: 1,
            acyclic: false,
        }
        .generate(&catalog);
        let qs = QueryGen {
            seed: seed * 7,
            num_atoms: 2,
            num_vars: 3,
            num_dvs: 1,
            const_prob: 0.0,
            const_pool: 1,
        }
        .generate_many("Q", &catalog, 3);
        let singles = QueryGen {
            seed: seed * 7 + 1000,
            num_atoms: 1,
            num_vars: 2,
            num_dvs: 1,
            const_prob: 0.0,
            const_pool: 1,
        }
        .generate_many("P", &catalog, 3);

        let (mut pairs, mut yes, mut no, mut agree, mut mismatch) = (0, 0, 0, 0, 0);
        for q in &qs {
            for qp in &singles {
                let Ok(inf) = contained(q, qp, &sigma, &catalog, &opts) else {
                    continue;
                };
                // Exhaustive finite check over domain 2 (2·4 cells = 256
                // instances per pair; cheap and decisive at this scale).
                let Some(fin) = finite_contained_exhaustive(q, qp, &sigma, &catalog, 2) else {
                    continue;
                };
                pairs += 1;
                if inf.contained {
                    yes += 1;
                } else {
                    no += 1;
                }
                // Vardi: ⊆f ⟺ ⊆∞ for single-conjunct Q′. The enumeration
                // only covers domain-2 instances, so "finite holds" with
                // "infinite fails" *could* be a domain artifact — count it
                // as a mismatch only if it appears (it should not at this
                // scale, and ⊆∞ ⇒ ⊆f must never fail).
                if inf.contained == fin.holds() {
                    agree += 1;
                } else {
                    mismatch += 1;
                }
            }
        }
        total_mismatch += mismatch;
        table.rowd(&[
            seed.to_string(),
            sigma.len().to_string(),
            pairs.to_string(),
            yes.to_string(),
            no.to_string(),
            agree.to_string(),
            mismatch.to_string(),
        ]);
    }

    println!("{}", table.render());
    println!("finite ⟺ infinite on single-conjunct Q′ (mismatches: {total_mismatch})");

    ExperimentOutput {
        id: "e13",
        title: "Section 5 (Vardi) — finite controllability for single-conjunct Q′ over INDs",
        json: json!({ "rows": table.to_json(), "mismatches": total_mismatch }),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e13_no_mismatches() {
        let out = super::run();
        assert_eq!(out.json["mismatches"], 0);
        let rows = out.json["rows"].as_array().unwrap();
        // Both positive and negative cases must appear for the check to
        // mean anything.
        let yes: i64 = rows.iter().map(|r| r["⊆∞ yes"].as_i64().unwrap()).sum();
        let no: i64 = rows.iter().map(|r| r["⊆∞ no"].as_i64().unwrap()).sum();
        assert!(yes > 0, "need positive cases");
        assert!(no > 0, "need negative cases");
    }
}
