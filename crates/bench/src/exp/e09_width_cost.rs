//! **E9 — the width frontier (Cor. 2.1 vs Cor. 2.3)**: the Theorem 2
//! level bound carries a `(W+1)^W` factor, so raising the maximum IND
//! width blows up the *certified negative* cost, while the axiomatic
//! prover's saturation universe grows with arity permutations. The table
//! shows the bound factor and both engines' costs per width on chain
//! compositions of width-`W` INDs.

use cqchase_core::chase::theorem2_bound_raw;
use cqchase_core::inference::{implies_ind_axiomatic, implies_ind_via_chase};
use cqchase_core::ContainmentOptions;
use cqchase_ir::{Catalog, DependencySet, Ind};
use serde_json::json;

use super::ExperimentOutput;
use crate::table::Table;
use crate::util::time_median_us;

/// Runs E9.
pub fn run() -> ExperimentOutput {
    let mut table = Table::new(&[
        "W",
        "(W+1)^W",
        "goal implied",
        "axiomatic µs",
        "chase µs",
        "agree",
    ]);

    for w in 1usize..=3 {
        // Three relations of arity w, chained by width-w INDs.
        let mut catalog = Catalog::new();
        for name in ["A", "B", "C"] {
            catalog
                .declare(name, (0..w).map(|i| format!("c{i}")))
                .unwrap();
        }
        let a = catalog.resolve("A").unwrap();
        let b = catalog.resolve("B").unwrap();
        let c = catalog.resolve("C").unwrap();
        let cols: Vec<usize> = (0..w).collect();
        let mut sigma = DependencySet::new();
        sigma.push(Ind::new(a, cols.clone(), b, cols.clone()));
        sigma.push(Ind::new(b, cols.clone(), c, cols.clone()));
        let goal = Ind::new(a, cols.clone(), c, cols.clone());

        let mut ax_ans = None;
        let ax_us = time_median_us(3, || {
            ax_ans = implies_ind_axiomatic(&sigma, &goal, 10_000_000);
        });
        let opts = ContainmentOptions::default();
        let mut ch_ans = None;
        let ch_us = time_median_us(3, || {
            ch_ans = implies_ind_via_chase(&sigma, &goal, &catalog, &opts)
                .ok()
                .map(|a| a.contained);
        });
        let bound_factor = theorem2_bound_raw(1, 1, w); // just (W+1)^W
        let agree = ax_ans == Some(true) && ch_ans == Some(true);
        table.rowd(&[
            w.to_string(),
            bound_factor.to_string(),
            "true".to_string(),
            format!("{ax_us:.1}"),
            format!("{ch_us:.1}"),
            agree.to_string(),
        ]);
    }

    println!("{}", table.render());
    println!("the (W+1)^W factor is the Theorem 2 price of width; both engines stay correct");

    ExperimentOutput {
        id: "e9",
        title: "IND width vs inference cost — the (W+1)^W factor of Theorem 2",
        json: json!({ "rows": table.to_json() }),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e9_correct_and_growing() {
        let out = super::run();
        let rows = out.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 3);
        for row in rows {
            assert_eq!(row["agree"], "true");
        }
        // The bound factor grows super-linearly with W: 2, 9, 64.
        assert_eq!(rows[0]["(W+1)^W"], 2);
        assert_eq!(rows[1]["(W+1)^W"], 9);
        assert_eq!(rows[2]["(W+1)^W"], 64);
    }
}
