//! **E14 — batch throughput & thread scaling**: the parallel workload
//! driver. Runs a mixed containment batch (chains / cycles / stars over
//! the cyclic-IND successor schema) and an evaluation batch through the
//! `cqchase-par` executor at 1, 2, and 4 threads (or `{1, N}` under
//! `--threads N`), reporting items/sec and speedup over single-thread.
//!
//! This is not a paper artifact — it drives the ROADMAP's serving
//! scenario (millions of checks) and documents how throughput scales
//! with cores on the current machine. On a single-core container the
//! speedup column measures executor overhead (~1.0x).

use cqchase_core::chase::ChaseBudget;
use cqchase_core::containment::ChaseBudgetOpt;
use cqchase_core::{ContainmentOptions, ContainmentPair};
use cqchase_par::{check_batch, default_threads, evaluate_batch, BatchOptions};
use cqchase_workload::{chain_eval_batch, successor_containment_batch, DatabaseGen};
use serde_json::{json, Map, Value};

use super::ExperimentOutput;
use crate::table::Table;
use crate::util::time_median_us;

const PAIRS: usize = 256;
const POOL: usize = 12;
const EVAL_QUERIES: usize = 32;
const EVAL_TUPLES: usize = 600;

/// Runs E14 with the given chase budget (CLI-settable via
/// `--max-steps` / `--max-conjuncts`) and thread sweep (`--threads N`
/// replaces the default `{1, 2, 4}` with `{1, N}`).
pub fn run(budget: ChaseBudget, threads: Option<usize>) -> ExperimentOutput {
    let cores = default_threads();
    let thread_counts: Vec<usize> = match threads {
        Some(n) if n <= 1 => vec![1],
        Some(n) => vec![1, n],
        None => vec![1, 2, 4],
    };
    let batch = successor_containment_batch(7, POOL, PAIRS);
    let pairs: Vec<ContainmentPair> = batch
        .pairs
        .iter()
        .map(|&(q, q_prime)| ContainmentPair { q, q_prime })
        .collect();
    let opts = ContainmentOptions {
        budget: ChaseBudgetOpt(budget),
        ..Default::default()
    };
    let qs = chain_eval_batch(&batch.program, EVAL_QUERIES);
    let db = DatabaseGen {
        seed: 21,
        tuples_per_relation: EVAL_TUPLES,
        domain: (EVAL_TUPLES as i64 / 2).max(4),
    }
    .generate(&batch.program.catalog);

    let mut table = Table::new(&[
        "workload",
        "threads",
        "items",
        "median µs",
        "items/s",
        "vs 1t",
    ]);
    let mut rows = Vec::new();
    for (name, items) in [("containment", pairs.len()), ("evaluation", qs.len())] {
        let mut single_us = 0.0f64;
        for &threads in &thread_counts {
            let bopts = BatchOptions::with_threads(threads);
            let us = if name == "containment" {
                time_median_us(5, || {
                    let r = check_batch(
                        &batch.queries,
                        &pairs,
                        &batch.program.deps,
                        &batch.program.catalog,
                        &opts,
                        bopts,
                    );
                    assert_eq!(r.len(), pairs.len());
                })
            } else {
                time_median_us(5, || {
                    std::hint::black_box(evaluate_batch(&qs, &db, bopts).len());
                })
            };
            if threads == 1 {
                single_us = us;
            }
            let per_sec = items as f64 / (us * 1e-6);
            let speedup = single_us / us.max(1e-9);
            table.rowd(&[
                name.to_string(),
                threads.to_string(),
                items.to_string(),
                format!("{us:.0}"),
                format!("{per_sec:.0}"),
                format!("{speedup:.2}x"),
            ]);
            let mut row = Map::new();
            row.insert("workload".into(), Value::from(name));
            row.insert("threads".into(), Value::from(threads));
            row.insert("median_us".into(), Value::from((us * 10.0).round() / 10.0));
            row.insert("items_per_sec".into(), Value::from(per_sec.round()));
            row.insert(
                "speedup_vs_1t".into(),
                Value::from((speedup * 100.0).round() / 100.0),
            );
            rows.push(Value::Object(row));
        }
    }
    println!("{}", table.render());
    println!("(machine exposes {cores} core(s))");

    ExperimentOutput {
        id: "e14",
        title: "batch throughput & thread scaling (parallel workload driver)",
        json: json!({
            "cores": cores,
            "pairs": PAIRS,
            "eval_queries": EVAL_QUERIES,
            "rows": Value::Array(rows),
        }),
    }
}
