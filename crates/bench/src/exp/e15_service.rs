//! **E15 — service load generator**: drives a real `cqchase-service`
//! instance over loopback TCP with concurrent clients and reports
//! sustained request throughput, endpoint latency percentiles, and
//! semantic-cache effectiveness.
//!
//! Two passes over the same containment workload separate the cache
//! regimes: the **cold** pass computes every isomorphism class once;
//! the **warm** pass is answered from the semantic cache. The gap
//! between the two is the value of residency — exactly the ROADMAP's
//! serving story. Not a paper artifact.

use std::sync::Arc;

use cqchase_ir::display;
use cqchase_par::default_threads;
use cqchase_service::{Client, ServeOptions, Server};
use cqchase_workload::successor_containment_batch;
use serde_json::{json, Map, Value};

use super::ExperimentOutput;
use crate::table::Table;

const POOL: usize = 12;
const PAIRS: usize = 192;
const CLIENTS: usize = 4;
const FACTS: usize = 64;

/// Renders the workload as a registerable program (schema + Σ + pool
/// queries + a successor cycle of ground facts).
pub fn render_service_program(
    program: &cqchase_ir::Program,
    queries: &[cqchase_ir::ConjunctiveQuery],
    facts: usize,
) -> String {
    let mut src = String::new();
    src.push_str(&display::catalog(&program.catalog).to_string());
    src.push('\n');
    src.push_str(&display::deps(&program.deps, &program.catalog).to_string());
    src.push('\n');
    for q in queries {
        src.push_str(&display::query(q, &program.catalog).to_string());
        src.push('\n');
    }
    for i in 0..facts {
        src.push_str(&format!("R({i}, {}).\n", (i + 1) % facts));
    }
    src
}

/// One timed pass: `CLIENTS` threads fire their strided slice of the
/// checks (plus one eval each per 16 checks). Returns (elapsed seconds,
/// requests issued).
fn run_pass(
    addr: std::net::SocketAddr,
    names: &Arc<Vec<String>>,
    pairs: &Arc<Vec<(usize, usize)>>,
) -> (f64, usize) {
    let start = std::time::Instant::now();
    let mut handles = Vec::new();
    for t in 0..CLIENTS {
        let names = Arc::clone(names);
        let pairs = Arc::clone(pairs);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect load client");
            let mut sent = 0usize;
            for (i, &(q, qp)) in pairs.iter().enumerate() {
                if i % CLIENTS != t {
                    continue;
                }
                client
                    .check("load", &names[q], &names[qp])
                    .expect("check succeeds");
                sent += 1;
                if i % 16 == t {
                    client.eval("load", &names[q]).expect("eval succeeds");
                    sent += 1;
                }
            }
            sent
        }));
    }
    let sent: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    (start.elapsed().as_secs_f64(), sent)
}

/// Runs E15. `threads` (the `--threads` flag) sets the server's batch
/// worker count; default: the machine's parallelism.
pub fn run(threads: Option<usize>) -> ExperimentOutput {
    let batch_threads = threads.unwrap_or_else(default_threads);
    let batch = successor_containment_batch(11, POOL, PAIRS);
    let program_src = render_service_program(&batch.program, &batch.queries, FACTS);
    let names: Arc<Vec<String>> = Arc::new(batch.queries.iter().map(|q| q.name.clone()).collect());
    let pairs = Arc::new(batch.pairs.clone());

    let (addr, handle) = Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".into(),
        batch_threads,
        conn_workers: CLIENTS + 2,
        sem_cache_capacity: 4096,
        ..Default::default()
    })
    .expect("spawn service");
    let mut admin = Client::connect(addr).expect("connect admin client");
    admin
        .register("load", &program_src)
        .expect("register workload session");

    let mut table = Table::new(&[
        "pass",
        "clients",
        "requests",
        "elapsed ms",
        "req/s",
        "cache hits",
    ]);
    let mut rows = Vec::new();
    let mut hits_before = 0u64;
    let mut warm_req_s = 0f64;
    let mut cold_req_s = 0f64;
    for pass in ["cold", "warm"] {
        let (elapsed, sent) = run_pass(addr, &names, &pairs);
        let stats = admin.stats().expect("stats");
        let hits_total = stats["semantic_cache"]["hits"].as_u64().unwrap_or(0);
        let hits = hits_total - hits_before;
        hits_before = hits_total;
        let req_s = sent as f64 / elapsed.max(1e-9);
        if pass == "cold" {
            cold_req_s = req_s;
        } else {
            warm_req_s = req_s;
        }
        table.rowd(&[
            pass.to_string(),
            CLIENTS.to_string(),
            sent.to_string(),
            format!("{:.1}", elapsed * 1e3),
            format!("{req_s:.0}"),
            hits.to_string(),
        ]);
        let mut row = Map::new();
        row.insert("pass".into(), Value::from(pass));
        row.insert("requests".into(), Value::from(sent));
        row.insert(
            "elapsed_ms".into(),
            Value::from((elapsed * 1e4).round() / 10.0),
        );
        row.insert("req_per_sec".into(), Value::from(req_s.round()));
        row.insert("cache_hits".into(), Value::from(hits));
        rows.push(Value::Object(row));
    }

    let stats = admin.stats().expect("final stats");
    let check_p50 = stats["endpoints"]["check"]["p50_us"].as_u64().unwrap_or(0);
    let check_p99 = stats["endpoints"]["check"]["p99_us"].as_u64().unwrap_or(0);
    let sem = &stats["semantic_cache"];
    let (hits, misses) = (
        sem["hits"].as_u64().unwrap_or(0),
        sem["misses"].as_u64().unwrap_or(0),
    );
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let coalesced = stats["batching"]["coalesced_items"].as_u64().unwrap_or(0);
    println!("{}", table.render());
    println!(
        "server batch threads: {batch_threads}   check p50: {check_p50} µs   p99: {check_p99} µs"
    );
    println!(
        "semantic cache: {hits} hits / {misses} misses ({:.0}% hit rate)   coalesced in-flight: {coalesced}",
        hit_rate * 100.0
    );
    println!(
        "warm/cold throughput: {:.1}x",
        warm_req_s / cold_req_s.max(1e-9)
    );

    admin.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server run");

    ExperimentOutput {
        id: "e15",
        title: "service load generator (throughput, latency, semantic-cache effect)",
        json: json!({
            "batch_threads": batch_threads,
            "clients": CLIENTS,
            "pairs": PAIRS,
            "pool": POOL,
            "check_p50_us": check_p50,
            "check_p99_us": check_p99,
            "cache_hit_rate": (hit_rate * 1000.0).round() / 1000.0,
            "coalesced_items": coalesced,
            "warm_over_cold_speedup": ((warm_req_s / cold_req_s.max(1e-9)) * 100.0).round() / 100.0,
            "rows": Value::Array(rows),
        }),
    }
}
