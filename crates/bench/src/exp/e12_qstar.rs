//! **E12 — Theorem 3 / Figures 2–3**: the finite `Q*` construction.
//! For width-1 IND workloads we build `Q*`, check that (a) it satisfies
//! Σ as a database, (b) a summary-preserving homomorphism `Q′ → Q*`
//! exists *iff* `Σ ⊨ Q ⊆∞ Q′` — the finite-controllability equivalence.

use cqchase_core::chase::ChaseBudget;
use cqchase_core::finite::qstar::{build_qstar, query_graph_diameter};
use cqchase_core::hom::find_hom;
use cqchase_core::{contained, ContainmentOptions};
use cqchase_ir::parse_program;
use cqchase_storage::satisfies;
use serde_json::json;

use super::ExperimentOutput;
use crate::table::Table;

/// Runs E12.
pub fn run(budget: ChaseBudget) -> ExperimentOutput {
    let mut table = Table::new(&[
        "case", "d", "kΣ", "cutoff", "|Q*|", "prefix", "Σ ok", "⊆∞", "Q* hom", "agree",
    ]);
    let mut all_agree = true;
    let opts = ContainmentOptions::default();

    // Width-1 IND families with positive and negative Q′ cases.
    let programs = [
        // Successor cycle.
        (
            "succ",
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y).
             P1(x) :- R(x, y), R(y, z).
             P2(x) :- R(x, y), R(y, z), R(z, w), R(w, u).
             N1(x) :- R(y, x).
             N2(x) :- R(x, y), R(z, y).",
        ),
        // Two-relation round trip.
        (
            "pingpong",
            "relation R(a, b). relation S(x, y).
             ind R[2] <= S[1]. ind S[2] <= R[1].
             Q(x) :- R(x, y).
             P1(x) :- R(x, y), S(y, z).
             P2(x) :- R(x, y), S(y, z), R(z, w).
             N1(x) :- S(x, y).",
        ),
        // Key-based case (k_Σ = 1).
        (
            "key-based",
            "relation E(k, a). relation D(k2, b).
             fd E: k -> a. fd D: k2 -> b.
             ind E[2] <= D[1].
             Q(x) :- E(x, y).
             P1(x) :- E(x, y), D(y, z).
             N1(x) :- D(x, y).",
        ),
    ];

    for (family, src) in &programs {
        let p = parse_program(src).unwrap();
        let q = p.query("Q").unwrap();
        for qp in p.queries.iter().filter(|qq| qq.name != "Q") {
            let d = query_graph_diameter(qp);
            let qs = match build_qstar(q, &p.deps, &p.catalog, d, budget) {
                Ok(qs) => qs,
                Err(e) => {
                    all_agree = false;
                    println!("{family}/{}: Q* failed: {e:?}", qp.name);
                    continue;
                }
            };
            let sat = satisfies(&qs.to_database(&p.catalog), &p.deps);
            let inf = contained(q, qp, &p.deps, &p.catalog, &opts)
                .unwrap()
                .contained;
            let hom = find_hom(qp, &qs.hom_target(&p.catalog)).is_some();
            let agree = inf == hom && sat;
            all_agree &= agree;
            table.rowd(&[
                format!("{family}/{}", qp.name),
                d.to_string(),
                qs.k_sigma.to_string(),
                qs.cutoff.to_string(),
                qs.len().to_string(),
                qs.prefix_len.to_string(),
                sat.to_string(),
                inf.to_string(),
                hom.to_string(),
                agree.to_string(),
            ]);
        }
    }

    println!("{}", table.render());
    println!("Q* hom ⟺ infinite containment on all cases (Theorem 3): {all_agree}");

    ExperimentOutput {
        id: "e12",
        title: "Theorem 3 — the finite Q* decides unrestricted containment",
        json: json!({ "rows": table.to_json(), "all_agree": all_agree }),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e12_qstar_decides() {
        let out = super::run(cqchase_core::chase::ChaseBudget::default());
        assert_eq!(out.json["all_agree"], true);
        let rows = out.json["rows"].as_array().unwrap();
        assert!(rows.len() >= 8);
        // Positive and negative cases both present.
        assert!(rows.iter().any(|r| r["⊆∞"] == "true"));
        assert!(rows.iter().any(|r| r["⊆∞"] == "false"));
    }
}
