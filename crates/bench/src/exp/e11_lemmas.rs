//! **E11 — Lemma 2 and Lemma 6 validation** on random key-based
//! workloads.
//!
//! *Lemma 2*: in the R-chase of a key-based Σ, all FD applications
//! precede all IND applications — operationally, after the initial FD
//! phase the driver never fires another FD (`fd_steps` stays at its
//! initialization value).
//!
//! *Lemma 6*: no symbol occurs at levels `i` and `j` with `|i − j| > 1`.

use std::collections::HashMap;

use cqchase_core::chase::{CTerm, Chase, ChaseBudget, ChaseMode};
use cqchase_workload::{KeyBasedGen, QueryGen};
use serde_json::json;

use super::ExperimentOutput;
use crate::table::Table;

/// Max level span of any symbol in the chase.
fn max_symbol_span(state: &cqchase_core::chase::ChaseState) -> u32 {
    let mut range: HashMap<u32, (u32, u32)> = HashMap::new();
    for (_, c) in state.alive_conjuncts() {
        for t in &c.terms {
            if let CTerm::Var(v) = t {
                let e = range.entry(v.0).or_insert((c.level, c.level));
                e.0 = e.0.min(c.level);
                e.1 = e.1.max(c.level);
            }
        }
    }
    range.values().map(|(lo, hi)| hi - lo).max().unwrap_or(0)
}

/// Runs E11.
pub fn run(budget: ChaseBudget) -> ExperimentOutput {
    let mut table = Table::new(&[
        "seed",
        "|Σ|",
        "init FD steps",
        "post-init FD steps",
        "max symbol span",
        "lemma2 ok",
        "lemma6 ok",
    ]);
    let mut all_ok = true;

    for seed in 0..10u64 {
        let (catalog, sigma) = KeyBasedGen {
            seed,
            num_relations: 3,
            key_width: 1,
            nonkey_width: 2,
            num_inds: 4,
            ind_width: 1,
            acyclic: false,
        }
        .generate();
        let q = QueryGen {
            seed: seed + 500,
            num_atoms: 3,
            num_vars: 4,
            num_dvs: 1,
            const_prob: 0.0,
            const_pool: 1,
        }
        .generate("Q", &catalog);

        let mut ch = Chase::new(&q, &sigma, &catalog, ChaseMode::Required);
        let init_fd = ch.fd_steps();
        ch.expand_to_level(6, budget);
        let post_fd = ch.fd_steps() - init_fd;
        let span = max_symbol_span(ch.state());
        let lemma2 = post_fd == 0;
        let lemma6 = span <= 1;
        all_ok &= lemma2 && lemma6;
        table.rowd(&[
            seed.to_string(),
            sigma.len().to_string(),
            init_fd.to_string(),
            post_fd.to_string(),
            span.to_string(),
            lemma2.to_string(),
            lemma6.to_string(),
        ]);
    }

    println!("{}", table.render());
    println!("Lemma 2 (FDs before INDs) and Lemma 6 (span ≤ 1) hold on all seeds: {all_ok}");

    ExperimentOutput {
        id: "e11",
        title: "Lemma 2 & Lemma 6 — key-based R-chase structure",
        json: json!({ "rows": table.to_json(), "all_ok": all_ok }),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e11_lemmas_hold() {
        let out = super::run(cqchase_core::chase::ChaseBudget::default());
        assert_eq!(out.json["all_ok"], true);
    }
}
