//! **E1 — Figure 1**: the O-chase and R-chase of
//! `Q(c) :- R(a, b, c)` w.r.t.
//! `Σ = {R[1] ⊆ T[1], R[1,3] ⊆ S[1,2], S[1,3] ⊆ R[1,2]}`.
//!
//! The paper's figure shows both chases are infinite; we materialize the
//! first levels, print the graphs and tabulate conjuncts per level. The
//! qualitative checks: level 1 holds a `T` and an `S` conjunct in both
//! chases; neither chase completes; the O-chase is at least as large as
//! the R-chase level by level.

use cqchase_core::chase::{graph, Chase, ChaseBudget, ChaseMode};
use cqchase_workload::families::figure1;
use serde_json::json;

use super::ExperimentOutput;
use crate::table::Table;

const DEPTH: u32 = 5;

/// Runs E1.
pub fn run(budget: ChaseBudget) -> ExperimentOutput {
    let p = figure1();
    let q = p.query("Q").unwrap();
    let mut table = Table::new(&["level", "R-chase conjuncts", "O-chase conjuncts"]);

    let mut states = Vec::new();
    for mode in [ChaseMode::Required, ChaseMode::Oblivious] {
        let mut ch = Chase::new(q, &p.deps, &p.catalog, mode);
        ch.expand_to_level(DEPTH, budget);
        assert!(!ch.is_complete(), "Figure 1's chases are infinite");
        states.push(ch);
    }
    let rh = states[0].state().level_histogram();
    let oh = states[1].state().level_histogram();
    for level in 0..=DEPTH as usize {
        table.rowd(&[
            level.to_string(),
            rh.get(level).copied().unwrap_or(0).to_string(),
            oh.get(level).copied().unwrap_or(0).to_string(),
        ]);
    }

    println!("--- R-chase (first {DEPTH} levels) ---");
    println!("{}", graph::render_levels(states[0].state()));
    println!("--- O-chase (first {DEPTH} levels) ---");
    println!("{}", graph::render_levels(states[1].state()));
    println!("{}", table.render());
    println!(
        "both chases infinite: true; O ≥ R per level: {}",
        rh.iter().zip(&oh).all(|(a, b)| b >= a)
    );

    ExperimentOutput {
        id: "e1",
        title: "Figure 1 — O-chase and R-chase of the running example (both infinite)",
        json: json!({
            "levels": table.to_json(),
            "r_chase_infinite": true,
            "o_chase_infinite": true,
            "dot_r": graph::render_dot(states[0].state(), "Rchase"),
        }),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e1_structure() {
        let out = super::run(cqchase_core::chase::ChaseBudget::default());
        let levels = out.json["levels"].as_array().unwrap();
        // Level 0: exactly the single original conjunct in both chases.
        assert_eq!(levels[0]["R-chase conjuncts"], 1);
        assert_eq!(levels[0]["O-chase conjuncts"], 1);
        // Level 1: T and S conjuncts (2) in both.
        assert_eq!(levels[1]["R-chase conjuncts"], 2);
        assert_eq!(levels[1]["O-chase conjuncts"], 2);
        // Every level is populated (infinite chases).
        for row in levels {
            assert!(row["R-chase conjuncts"].as_i64().unwrap() >= 1);
        }
    }
}
