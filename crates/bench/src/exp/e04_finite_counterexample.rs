//! **E4 — Section 4's finite/infinite separation**: with
//! `Σ = {R: {2}→1, R[2] ⊆ R[1]}`, `Q1 ⊆f Q2` holds on *every* finite
//! Σ-instance we can enumerate, yet `Q1 ⊆∞ Q2` fails (the chase of `Q1`
//! is an incoming-edge-free infinite chain). Ablations: dropping either
//! dependency breaks the finite containment.

use cqchase_core::finite::{finite_contained_exhaustive, section4_example};
use cqchase_core::{contained, ContainmentOptions};
use cqchase_ir::parse_program;
use serde_json::json;

use super::ExperimentOutput;
use crate::table::Table;

/// Runs E4.
pub fn run() -> ExperimentOutput {
    let ex = section4_example();
    let opts = ContainmentOptions::default();

    let mut table = Table::new(&["sigma", "domain", "instances", "Σ-satisfying", "Q1 ⊆f Q2"]);
    for domain in [2i64, 3] {
        let rep = finite_contained_exhaustive(&ex.q1, &ex.q2, &ex.sigma, &ex.catalog, domain)
            .expect("enumerable");
        table.rowd(&[
            "FD + IND".to_string(),
            domain.to_string(),
            rep.instances_total.to_string(),
            rep.instances_satisfying.to_string(),
            rep.holds().to_string(),
        ]);
    }

    // Ablations.
    for (label, src) in [
        (
            "IND only",
            "relation R(a, b). ind R[2] <= R[1].
             Q1(x) :- R(x, y). Q2(x) :- R(x, y), R(yp, x).",
        ),
        (
            "FD only",
            "relation R(a, b). fd R: 2 -> 1.
             Q1(x) :- R(x, y). Q2(x) :- R(x, y), R(yp, x).",
        ),
    ] {
        let p = parse_program(src).unwrap();
        let rep = finite_contained_exhaustive(
            p.query("Q1").unwrap(),
            p.query("Q2").unwrap(),
            &p.deps,
            &p.catalog,
            3,
        )
        .unwrap();
        table.rowd(&[
            label.to_string(),
            "3".to_string(),
            rep.instances_total.to_string(),
            rep.instances_satisfying.to_string(),
            rep.holds().to_string(),
        ]);
    }

    let infinite = contained(&ex.q1, &ex.q2, &ex.sigma, &ex.catalog, &opts).unwrap();
    println!("{}", table.render());
    println!(
        "Q1 ⊆∞ Q2 (chase-based): {}   — finite containment holds, infinite fails: separation reproduced",
        infinite.contained
    );

    ExperimentOutput {
        id: "e4",
        title: "Section 4 — Q1 ⊆f Q2 but Q1 ⊄∞ Q2 under {R:2→1, R[2]⊆R[1]}",
        json: json!({
            "rows": table.to_json(),
            "infinitely_contained": infinite.contained,
        }),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e4_separation() {
        let out = super::run();
        assert_eq!(out.json["infinitely_contained"], false);
        let rows = out.json["rows"].as_array().unwrap();
        // Full Σ: finite containment holds on both domains.
        assert_eq!(rows[0]["Q1 ⊆f Q2"], "true");
        assert_eq!(rows[1]["Q1 ⊆f Q2"], "true");
        // Ablations: both fail.
        assert_eq!(rows[2]["Q1 ⊆f Q2"], "false");
        assert_eq!(rows[3]["Q1 ⊆f Q2"], "false");
    }
}
