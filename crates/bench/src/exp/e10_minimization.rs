//! **E10 — minimization payoff**: how many conjuncts do INDs let the
//! optimizer delete? The intro motivates containment testing through
//! exactly this (the `DEP` join is free under the foreign key). We
//! measure conjunct reduction across workload families with and without
//! their dependencies.

use cqchase_core::{minimize, ContainmentOptions};
use cqchase_ir::{parse_program, DependencySet};
use cqchase_workload::{chain_query, star_query, QueryGen};
use serde_json::json;

use super::ExperimentOutput;
use crate::table::Table;

/// Runs E10.
pub fn run() -> ExperimentOutput {
    let opts = ContainmentOptions::default();
    let mut table = Table::new(&["family", "with Σ", "atoms before", "atoms after", "removed"]);

    // Foreign-key star schema: FACT references three dimensions.
    let p = parse_program(
        "relation FACT(f, d1, d2, d3).
         relation DIM1(k1, v1). relation DIM2(k2, v2). relation DIM3(k3, v3).
         ind FACT[2] <= DIM1[1]. ind FACT[3] <= DIM2[1]. ind FACT[4] <= DIM3[1].
         Star(f) :- FACT(f, a, b, c), DIM1(a, x), DIM2(b, y), DIM3(c, z).",
    )
    .unwrap();
    let star = p.query("Star").unwrap();
    for (label, sigma) in [("yes", p.deps.clone()), ("no", DependencySet::new())] {
        let m = minimize(star, &sigma, &p.catalog, &opts).unwrap();
        table.rowd(&[
            "fk-star".to_string(),
            label.to_string(),
            star.num_atoms().to_string(),
            m.query.num_atoms().to_string(),
            m.removed.len().to_string(),
        ]);
    }

    // Chain unfolding under the successor IND: chains fold back to one
    // atom because the chase regenerates them.
    let p2 = parse_program(
        "relation R(a, b).
         ind R[2] <= R[1].",
    )
    .unwrap();
    for n in [2usize, 3, 4] {
        let q = chain_query("C", &p2.catalog, "R", n).unwrap();
        for (label, sigma) in [("yes", p2.deps.clone()), ("no", DependencySet::new())] {
            let m = minimize(&q, &sigma, &p2.catalog, &opts).unwrap();
            table.rowd(&[
                format!("chain-{n}"),
                label.to_string(),
                q.num_atoms().to_string(),
                m.query.num_atoms().to_string(),
                m.removed.len().to_string(),
            ]);
        }
    }

    // Stars fold without any dependencies (Chandra–Merlin core).
    let star5 = star_query("S", &p2.catalog, "R", 5).unwrap();
    let m = minimize(&star5, &DependencySet::new(), &p2.catalog, &opts).unwrap();
    table.rowd(&[
        "star-5".to_string(),
        "no".to_string(),
        star5.num_atoms().to_string(),
        m.query.num_atoms().to_string(),
        m.removed.len().to_string(),
    ]);

    // Random queries, aggregated.
    let mut cat3 = cqchase_ir::Catalog::new();
    cat3.declare("R", ["a", "b"]).unwrap();
    let sigma_succ = p2.deps.clone();
    let qs = QueryGen {
        seed: 7,
        num_atoms: 4,
        num_vars: 4,
        num_dvs: 1,
        const_prob: 0.0,
        const_pool: 1,
    }
    .generate_many("Rq", &cat3, 8);
    let mut before = 0;
    let mut after_no = 0;
    let mut after_yes = 0;
    for q in &qs {
        before += q.num_atoms();
        after_no += minimize(q, &DependencySet::new(), &cat3, &opts)
            .unwrap()
            .query
            .num_atoms();
        after_yes += minimize(q, &sigma_succ, &cat3, &opts)
            .unwrap()
            .query
            .num_atoms();
    }
    table.rowd(&[
        "random×8".to_string(),
        "no".to_string(),
        before.to_string(),
        after_no.to_string(),
        (before - after_no).to_string(),
    ]);
    table.rowd(&[
        "random×8".to_string(),
        "yes".to_string(),
        before.to_string(),
        after_yes.to_string(),
        (before - after_yes).to_string(),
    ]);

    println!("{}", table.render());
    println!("dependencies strictly increase deletions (Σ-aware ≤ Σ-free atom counts)");

    ExperimentOutput {
        id: "e10",
        title: "Minimization under INDs — redundant-join elimination rates",
        json: json!({ "rows": table.to_json() }),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e10_fk_star_collapses() {
        let out = super::run();
        let rows = out.json["rows"].as_array().unwrap();
        // fk-star with Σ collapses to 1 atom; without Σ stays at 4.
        assert_eq!(rows[0]["atoms after"], 1);
        assert_eq!(rows[1]["atoms after"], 4);
        // chains fold completely under the successor IND.
        assert_eq!(rows[2]["atoms after"], 1);
        // star-5 folds without any deps.
        let star_row = rows.iter().find(|r| r["family"] == "star-5").unwrap();
        assert_eq!(star_row["atoms after"], 1);
    }
}
