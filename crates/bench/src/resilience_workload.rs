//! The request-lifecycle resilience workloads: what cooperative
//! cancellation costs when it never fires, and how promptly it fires
//! when it does.
//!
//! **Cancellation-check overhead** replays the canonical `bench_service`
//! containment batch (same seed, same pool, same pairs) through the
//! core batch engine twice: once token-free (`cancels: None` — the
//! engines take the exact pre-lifecycle path) and once with a live
//! deadline-armed token per pair (far-future deadline, so every
//! coalesced check pays the full price: one atomic load *and* one clock
//! read). The throughput ratio `tokened/tokenfree` is the dimensionless
//! overhead of threading cancellation through the join loops; the
//! lifecycle budget caps it at 10% (efficiency ≥ 0.90). Answers are
//! asserted identical between the two runs.
//!
//! **Deadline promptness** runs a deliberately expensive evaluation
//! (3-hop chain over a complete digraph — Θ(n⁴) candidate rows of
//! uniform cost) under short deadlines and measures how far past each
//! deadline the engine runs before unwinding (`CancelToken::overrun_us`
//! at return). The reference scale is the *check interval measured in
//! time*: the same join is run with an unlimited token that is fired
//! externally mid-join, and the worst observed fire-to-return lag is,
//! by construction, about one full inter-check gap (the engine was at
//! worst [`CANCEL_CHECK_INTERVAL`] candidates away from noticing) plus
//! the unwind. The gated ratio `2·interval / p99 overrun` must stay
//! ≥ 1.0 — a deadline may overrun by at most twice the coalesced check
//! interval, so a lost check in some join loop (overruns of many
//! intervals) craters it immediately.
//!
//! [`CANCEL_CHECK_INTERVAL`]: cqchase_index::CANCEL_CHECK_INTERVAL

use std::time::Instant;

use cqchase_core::{check_batch_cancellable, ContainmentOptions, ContainmentPair};
use cqchase_index::{CancelToken, JoinScratch, PlanCache};
use cqchase_storage::{evaluate_indexed_with, Database, DbIndex};
use cqchase_workload::chain_query;
use cqchase_workload::families::successor_cycle;

use crate::service_workload::ServiceWorkload;

/// Side of the complete digraph behind the deadline workload: the 3-hop
/// chain enumerates ~`n⁴` candidate rows, far more work than any
/// deadline we arm, so the join never completes on its own.
pub const DENSE_N: i64 = 48;

/// Deadline armed per overrun sample, in milliseconds: long enough that
/// the join is deep in its steady state when it fires, short enough
/// that a sample costs single-digit milliseconds.
pub const DEADLINE_MS: u64 = 2;

/// Overrun samples per measurement: enough that the p99 index sits
/// below the maximum, so a single scheduler hiccup cannot masquerade as
/// a promptness regression.
pub const OVERRUN_SAMPLES: usize = 100;

/// Externally-fired samples per measurement. The reference side uses
/// the *same* sample count and the same p99 estimator as the overrun
/// side: the two lags are identically distributed (time to the next
/// coalesced check plus the unwind), so matching estimators keep the
/// ratio centered instead of comparing a deep quantile against a
/// shallow one.
pub const REACTION_SAMPLES: usize = 100;

/// One measured pair of batch-check throughputs.
#[derive(Debug, Clone, Copy)]
pub struct OverheadMeasurement {
    /// Checks/sec with no tokens threaded (`cancels: None`).
    pub tokenfree_cps: f64,
    /// Checks/sec with a deadline-armed (never-firing) token per pair.
    pub tokened_cps: f64,
}

impl OverheadMeasurement {
    /// `tokened/tokenfree`: the fraction of token-free throughput kept
    /// with live cancellation checks (1.0 = free; the lifecycle budget
    /// floors this at 0.90).
    pub fn efficiency(&self) -> f64 {
        self.tokened_cps / self.tokenfree_cps.max(1e-9)
    }
}

/// One measured deadline-promptness pair, both sides in microseconds.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineMeasurement {
    /// p99 fire-to-return lag with an externally fired token: the
    /// check interval expressed in wall time on this machine (the fire
    /// lands uniformly inside an inter-check gap, so the deep quantile
    /// is about one full gap), plus one unwind.
    pub interval_us: f64,
    /// p99 of `overrun_us` across the deadline-armed samples.
    pub overrun_p99_us: f64,
}

impl DeadlineMeasurement {
    /// `2·interval / p99 overrun`: ≥ 1.0 means every observed overrun
    /// fits inside two coalesced check intervals — the "deadline
    /// honored" gate.
    pub fn headroom(&self) -> f64 {
        2.0 * self.interval_us / self.overrun_p99_us.max(1.0)
    }
}

/// Batch executions inside one timed region: a single pass is
/// single-digit milliseconds, too short to time reliably on a busy
/// machine, so each side is timed over this many consecutive passes.
const CHECK_PASSES: usize = 3;

fn run_checks(w: &ServiceWorkload, tokens: Option<&[CancelToken]>) -> (f64, Vec<(bool, bool)>) {
    let pairs: Vec<ContainmentPair> = w
        .batch
        .pairs
        .iter()
        .map(|&(q, q_prime)| ContainmentPair { q, q_prime })
        .collect();
    let opts = ContainmentOptions::default();
    let mut shape: Vec<(bool, bool)> = Vec::new();
    let t0 = Instant::now();
    for pass in 0..CHECK_PASSES {
        let answers = check_batch_cancellable(
            &w.batch.queries,
            &pairs,
            &w.batch.program.deps,
            &w.batch.program.catalog,
            &opts,
            tokens,
        );
        if pass == 0 {
            shape = answers
                .iter()
                .map(|r| match r {
                    Ok(a) => (a.contained, a.exact),
                    Err(_) => panic!("the canonical batch never errors"),
                })
                .collect();
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    (
        (pairs.len() * CHECK_PASSES) as f64 / elapsed.max(1e-9),
        shape,
    )
}

/// Measures both configurations on one workload build, asserting the
/// answers are bit-identical (a token that never fires must be
/// invisible). The two sides are interleaved and each keeps its best of
/// three passes: the batch is short (single-digit milliseconds), so
/// best-of strips scheduler noise and leaves the intrinsic per-check
/// cost the ratio is meant to expose.
pub fn measure_cancel_overhead(w: &ServiceWorkload) -> OverheadMeasurement {
    // Deadline-armed so every coalesced check reads the clock — the
    // most expensive steady state a served request can be in.
    let tokens: Vec<CancelToken> = (0..w.batch.pairs.len())
        .map(|_| CancelToken::with_deadline_ms(3_600_000))
        .collect();
    let mut tokenfree_cps = 0f64;
    let mut tokened_cps = 0f64;
    for _ in 0..3 {
        let (free_cps, free_shape) = run_checks(w, None);
        let (tok_cps, tokened_shape) = run_checks(w, Some(&tokens));
        assert_eq!(free_shape, tokened_shape, "unfired tokens changed answers");
        tokenfree_cps = tokenfree_cps.max(free_cps);
        tokened_cps = tokened_cps.max(tok_cps);
    }
    OverheadMeasurement {
        tokenfree_cps,
        tokened_cps,
    }
}

/// Median-of-`runs` overhead measurement, keyed by efficiency (the
/// ratio is medianed, not the sides, so one noisy run cannot split a
/// pair).
pub fn measure_cancel_overhead_median(w: &ServiceWorkload, runs: usize) -> OverheadMeasurement {
    let mut all: Vec<OverheadMeasurement> = (0..runs.max(1))
        .map(|_| measure_cancel_overhead(w))
        .collect();
    all.sort_by(|a, b| a.efficiency().total_cmp(&b.efficiency()));
    all[all.len() / 2]
}

/// The deadline workload: a 3-hop chain query over the complete digraph
/// on [`DENSE_N`] vertices, prebuilt index included.
pub struct DeadlineWorkload {
    query: cqchase_ir::ConjunctiveQuery,
    idx: DbIndex,
}

/// Builds the dense evaluation instance once (the index is shared,
/// read-only, across all samples).
pub fn deadline_workload() -> DeadlineWorkload {
    let program = successor_cycle();
    let query = chain_query("QDense3", &program.catalog, "R", 3).expect("chain query");
    let mut db = Database::new(&program.catalog);
    for i in 0..DENSE_N {
        for j in 0..DENSE_N {
            db.insert_named("R", [i, j]).expect("insert");
        }
    }
    DeadlineWorkload {
        query,
        idx: DbIndex::build(&db),
    }
}

/// Runs the dense join under `token` until it fires; panics if the join
/// completes first (the instance is sized so it cannot).
fn run_until_cancelled(w: &DeadlineWorkload, token: &CancelToken) {
    let mut cache = PlanCache::new();
    let mut scratch = JoinScratch::new();
    scratch.set_cancel(token.clone());
    let rows = evaluate_indexed_with(&w.query, &w.idx, &mut cache, &mut scratch);
    assert!(
        scratch.cancelled(),
        "the dense join must never outrun its token ({} rows)",
        rows.len()
    );
    scratch.clear_cancel();
}

/// The p99 of a sample set (nearest-rank, so one outlier in a hundred
/// samples is tolerated rather than defining the estimate).
fn p99(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    let idx = ((samples.len() as f64 * 0.99).ceil() as usize)
        .saturating_sub(1)
        .min(samples.len() - 1);
    samples[idx]
}

/// Measures deadline promptness: p99 overrun under armed deadlines
/// against the externally-fired check-interval reference.
///
/// The two sample kinds are **interleaved** (one reference lag, one
/// overrun, repeat) rather than collected in separate phases: a burst
/// of background load lasting a fraction of the measurement then
/// inflates both sides of the ratio together instead of landing
/// entirely on one side and cratering (or flattering) the headroom.
pub fn measure_deadline(w: &DeadlineWorkload) -> DeadlineMeasurement {
    let mut lags: Vec<f64> = Vec::with_capacity(REACTION_SAMPLES);
    let mut overruns: Vec<f64> = Vec::with_capacity(OVERRUN_SAMPLES);
    for _ in 0..REACTION_SAMPLES.max(OVERRUN_SAMPLES) {
        // Reference side: fire the token by hand mid-join and time
        // how long the engine takes to notice and unwind — the check
        // interval expressed in wall time (a deep-quantile lag is one
        // full inter-check gap: the fire landed right after a check).
        if lags.len() < REACTION_SAMPLES {
            let token = CancelToken::unlimited();
            let lag = std::thread::scope(|s| {
                let worker = {
                    let token = token.clone();
                    s.spawn(move || {
                        run_until_cancelled(w, &token);
                        Instant::now()
                    })
                };
                std::thread::sleep(std::time::Duration::from_millis(DEADLINE_MS));
                let fired_at = Instant::now();
                token.cancel();
                let done_at = worker.join().expect("worker");
                done_at.duration_since(fired_at).as_secs_f64() * 1e6
            });
            lags.push(lag);
        }

        // Measured side: an armed deadline, overrun read the moment
        // the engine returns.
        if overruns.len() < OVERRUN_SAMPLES {
            let token = CancelToken::with_deadline_ms(DEADLINE_MS);
            run_until_cancelled(w, &token);
            overruns.push(token.overrun_us() as f64);
        }
    }
    DeadlineMeasurement {
        interval_us: p99(lags),
        overrun_p99_us: p99(overruns),
    }
}

/// Median-of-`runs` deadline measurement, keyed by headroom.
pub fn measure_deadline_median(w: &DeadlineWorkload, runs: usize) -> DeadlineMeasurement {
    let mut all: Vec<DeadlineMeasurement> = (0..runs.max(1)).map(|_| measure_deadline(w)).collect();
    all.sort_by(|a, b| a.headroom().total_cmp(&b.headroom()));
    all[all.len() / 2]
}
