//! Experiment driver: regenerates every figure and worked example of
//! Johnson & Klug (PODS 1982).
//!
//! ```text
//! experiments all              # run E1–E13
//! experiments e4 e12           # run a subset
//! experiments all --json out.json
//! ```

use std::io::Write as _;

use cqchase_bench::exp;
use serde_json::{Map, Value};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_path = it.next(),
            "-h" | "--help" => {
                eprintln!("usage: experiments [all | e1 … e13]... [--json FILE]");
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = exp::ALL.iter().map(|s| s.to_string()).collect();
    }

    let mut results = Map::new();
    for id in &ids {
        println!("\n================================================================");
        println!("{}", id.to_uppercase());
        println!("================================================================");
        match exp::run(id) {
            Some(out) => {
                println!(">>> {}", out.title);
                results.insert(out.id.to_string(), out.json);
            }
            None => {
                eprintln!("unknown experiment id `{id}` (expected e1 … e13)");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = json_path {
        let mut f = std::fs::File::create(&path).expect("create JSON output file");
        let doc = Value::Object(results);
        f.write_all(serde_json::to_string_pretty(&doc).unwrap().as_bytes())
            .expect("write JSON");
        eprintln!("wrote {path}");
    }
}
