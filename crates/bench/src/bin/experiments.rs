//! Experiment driver: regenerates every figure and worked example of
//! Johnson & Klug (PODS 1982).
//!
//! ```text
//! experiments all              # run E1–E15
//! experiments e4 e12           # run a subset
//! experiments all --json out.json
//! experiments e6 --max-steps 50000 --max-conjuncts 10000
//! experiments e14 e15 --threads 8
//! ```
//!
//! `--max-steps` / `--max-conjuncts` override the chase budget the
//! chase-driven experiments run under (defaults:
//! [`DEFAULT_MAX_STEPS`](cqchase_core::chase::DEFAULT_MAX_STEPS) /
//! [`DEFAULT_MAX_CONJUNCTS`](cqchase_core::chase::DEFAULT_MAX_CONJUNCTS)).
//! `--threads N` overrides the thread counts of the parallel-workload
//! experiments: E14 sweeps `{1, N}` instead of `{1, 2, 4}`, and E15
//! runs its service with `N` batch workers.

use std::io::Write as _;

use cqchase_bench::exp;
use cqchase_core::chase::ChaseBudget;
use serde_json::{Map, Value};

fn parse_usize(flag: &str, value: Option<String>) -> usize {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a positive integer argument");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut budget = ChaseBudget::default();
    let mut threads: Option<usize> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_path = it.next(),
            "--max-steps" => budget.max_steps = parse_usize("--max-steps", it.next()),
            "--max-conjuncts" => budget.max_conjuncts = parse_usize("--max-conjuncts", it.next()),
            "--threads" => threads = Some(parse_usize("--threads", it.next())),
            "-h" | "--help" => {
                eprintln!(
                    "usage: experiments [all | e1 … e15]... [--json FILE] \
                     [--max-steps N] [--max-conjuncts N] [--threads N]"
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = exp::ALL.iter().map(|s| s.to_string()).collect();
    }

    let mut results = Map::new();
    for id in &ids {
        println!("\n================================================================");
        println!("{}", id.to_uppercase());
        println!("================================================================");
        match exp::run_with(id, budget, threads) {
            Some(out) => {
                println!(">>> {}", out.title);
                results.insert(out.id.to_string(), out.json);
            }
            None => {
                eprintln!("unknown experiment id `{id}` (expected e1 … e15)");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = json_path {
        let mut f = std::fs::File::create(&path).expect("create JSON output file");
        let doc = Value::Object(results);
        f.write_all(serde_json::to_string_pretty(&doc).unwrap().as_bytes())
            .expect("write JSON");
        eprintln!("wrote {path}");
    }
}
