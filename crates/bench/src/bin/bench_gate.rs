//! Bench regression gate.
//!
//! ```text
//! bench_gate --check-baseline    # re-measure, compare, exit 1 on regression
//! bench_gate --list              # re-measure and print, but never fail
//! ```
//!
//! The gate re-measures the workspace's *dimensionless* performance
//! metrics — speedup ratios, which survive moving between machines —
//! and compares them against the committed baselines under
//! `crates/bench/baselines/*.json`. A metric regresses when the current
//! value is more than 1.5x worse than the committed one
//! (`current < baseline / 1.5` for higher-is-better ratios); any
//! regression makes the process exit nonzero, which is what CI's smoke
//! job keys off.
//!
//! Absolute nanosecond entries in the baselines are documentation, not
//! gates: they describe the recording machine. Thread-scaling metrics
//! are informational (with a note) unless both the recording machine
//! and the current one expose >= 4 cores: a single-core "speedup" is
//! executor overhead, not scaling, and hard-gating a never-measured
//! target would make CI nondeterministic on shared runners.
//!
//! Every metric declares whether values below 1.0 are expected via its
//! `min_floor`. For a naive-vs-indexed speedup, sub-1.0 means the
//! indexed engine *lost* to the reference — a qualitative failure that
//! a purely relative tolerance would wave through whenever the
//! committed baseline was itself a loss (a 0.85x baseline yields a 0.57x
//! floor). Such metrics carry `min_floor: 1.0` (or higher for
//! headline wins), so regressing from a win back to a loss fails CI no
//! matter what the baseline says. Metrics where sub-1.0 is legitimate
//! (hit rates, flatness ratios near 1.0) declare `min_floor: 0.0`.

use cqchase_bench::churn_workload::{
    churn_workload, measure_barrier_speedup, measure_delete_flatness,
};
use cqchase_bench::many_workload::{many_workload, measure_lane_throughput, measure_memory_dedup};
use cqchase_bench::obs_workload::measure_obs_median;
use cqchase_bench::recovery_workload::{measure_restore, measure_wal_overhead, recovery_workload};
use cqchase_bench::resilience_workload::{
    deadline_workload, measure_cancel_overhead_median, measure_deadline_median,
};
use cqchase_bench::service_workload::service_workload;
use cqchase_bench::update_workload::{measure_update, update_workload, ROUNDS};
use cqchase_bench::util::time_median;
use cqchase_core::chase::{Chase, ChaseBudget, ChaseMode};
use cqchase_core::hom::{naive, HomFinder, HomTarget};
use cqchase_core::{ContainmentOptions, ContainmentPair};
use cqchase_par::{check_batch, default_threads, evaluate_batch, BatchOptions};
use cqchase_service::{Client, ServeOptions, Server};
use cqchase_storage::{eval, Database};
use cqchase_workload::families::successor_cycle;
use cqchase_workload::{
    chain_eval_batch, chain_query, cycle_query, star_query, successor_containment_batch,
    DatabaseGen,
};
use serde_json::Value;

/// Tolerated slowdown factor before the gate fails.
const TOLERANCE: f64 = 1.5;

struct Metric {
    name: &'static str,
    baseline: f64,
    current: f64,
    /// `false`: informational only (e.g. scaling on a small machine).
    gated: bool,
    /// Absolute floor the current value must also clear, independent of
    /// the relative tolerance. `1.0` (or higher) declares "sub-1.0 is a
    /// loss, never expected"; `0.0` declares sub-1.0 values legitimate.
    min_floor: f64,
}

fn baseline_path(file: &str) -> String {
    format!("{}/baselines/{file}", env!("CARGO_MANIFEST_DIR"))
}

fn load_baseline(file: &str) -> Option<Value> {
    let text = std::fs::read_to_string(baseline_path(file)).ok()?;
    serde_json::from_str(&text).ok()
}

/// `bench_index.json` entry lookup: the recorded speedup for `bench` at
/// the given sweep key/value (`depth` or `tuples`).
fn index_speedup(doc: &Value, bench: &str, key: &str, val: u64) -> Option<f64> {
    doc["entries"].as_array()?.iter().find_map(|e| {
        (e["bench"] == bench && e[key].as_u64() == Some(val)).then(|| e["speedup"].as_f64())?
    })
}

/// Re-measures the `bench_index` ratios (naive vs indexed) on a reduced
/// iteration count: hom search into a depth-1024 chase — the chain
/// (positive) probe through the cached-plan production path and the
/// cycle (negative, headline) probe — plus 1000-tuple chain evaluation
/// and the 100-tuple star family (the acyclic fast path).
fn measure_index_metrics(doc: &Value, out: &mut Vec<Metric>) {
    let program = successor_cycle();
    let q = program.query("Q").unwrap();
    let mut ch = Chase::new(q, &program.deps, &program.catalog, ChaseMode::Required);
    ch.expand_to_level(1024, ChaseBudget::default());
    let target = HomTarget::from_chase(ch.state(), u32::MAX);

    let chain3 = chain_query("Qp", &program.catalog, "R", 3).unwrap();
    let naive_t = time_median(5, || {
        assert!(naive::find_hom(&chain3, &target).is_some());
    });
    let mut finder = HomFinder::new(&chain3, &target);
    let indexed_t = time_median(5, || {
        assert!(finder.find().is_some());
    });
    if let Some(b) = index_speedup(doc, "hom_chain3_into_chase", "depth", 1024) {
        out.push(Metric {
            name: "index.hom_chain3_depth1024_speedup",
            baseline: b,
            current: naive_t.as_secs_f64() / indexed_t.as_secs_f64().max(1e-12),
            gated: true,
            // The headline planner win: this probe was a sub-1.0 *loss*
            // before cost-based planning; it must never fall back below
            // a decisive win.
            min_floor: 1.3,
        });
    }

    let cycle = cycle_query("Qc", &program.catalog, "R", 3).unwrap();
    let naive_t = time_median(5, || {
        assert!(naive::find_hom(&cycle, &target).is_none());
    });
    let mut finder = HomFinder::new(&cycle, &target);
    let indexed_t = time_median(5, || {
        assert!(finder.find().is_none());
    });
    if let Some(b) = index_speedup(doc, "hom_cycle3_into_chase", "depth", 1024) {
        out.push(Metric {
            name: "index.hom_cycle3_depth1024_speedup",
            baseline: b,
            current: naive_t.as_secs_f64() / indexed_t.as_secs_f64().max(1e-12),
            gated: true,
            min_floor: 1.0,
        });
    }

    let db: Database = DatabaseGen {
        seed: 7,
        tuples_per_relation: 1000,
        domain: 500,
    }
    .generate(&program.catalog);
    let chain = chain_query("Chain3g", &program.catalog, "R", 3).unwrap();
    let naive_t = time_median(5, || {
        std::hint::black_box(eval::naive::evaluate(&chain, &db).len());
    });
    let indexed_t = time_median(5, || {
        std::hint::black_box(eval::evaluate(&chain, &db).len());
    });
    if let Some(b) = index_speedup(doc, "eval_chain3", "tuples", 1000) {
        out.push(Metric {
            name: "index.eval_chain3_1000t_speedup",
            baseline: b,
            current: naive_t.as_secs_f64() / indexed_t.as_secs_f64().max(1e-12),
            gated: true,
            min_floor: 1.0,
        });
    }

    // Star evaluation: the Yannakakis acyclic fast path must keep
    // winning by orders of magnitude (naive is product-sized here, so
    // the small instance suffices and the 1.5x tolerance is generous).
    let db: Database = DatabaseGen {
        seed: 7,
        tuples_per_relation: 100,
        domain: 50,
    }
    .generate(&program.catalog);
    let star = star_query("Star8g", &program.catalog, "R", 8).unwrap();
    let naive_t = time_median(3, || {
        std::hint::black_box(eval::naive::evaluate(&star, &db).len());
    });
    let indexed_t = time_median(5, || {
        std::hint::black_box(eval::evaluate(&star, &db).len());
    });
    if let Some(b) = index_speedup(doc, "eval_star8", "tuples", 100) {
        out.push(Metric {
            name: "index.eval_star8_100t_speedup",
            baseline: b,
            current: naive_t.as_secs_f64() / indexed_t.as_secs_f64().max(1e-12),
            gated: true,
            min_floor: 1.0,
        });
    }
}

/// Re-measures the `bench_parallel` thread-scaling ratios (the same
/// workload the baseline recorded, reduced iteration count).
fn measure_parallel_metrics(doc: &Value, out: &mut Vec<Metric>) {
    let cores_now = default_threads();
    let cores_then = doc["cores"].as_u64().unwrap_or(0) as usize;
    // Scaling is comparable only when both sides measured real hardware
    // parallelism: this machine needs >= 4 cores to reproduce the
    // number, and a baseline recorded on a small machine (speedup
    // ≈ 1.0 is executor overhead, not scaling) is not a scaling
    // reference at all. Anything else stays informational — a hard
    // floor against a never-measured target would make CI
    // nondeterministic on shared runners. Re-record the baseline on a
    // >= 4-core machine to arm these gates.
    let scaling_meaningful = cores_now >= 4 && cores_then >= 4;

    let batch = successor_containment_batch(5, 12, 384);
    let pairs: Vec<ContainmentPair> = batch
        .pairs
        .iter()
        .map(|&(q, q_prime)| ContainmentPair { q, q_prime })
        .collect();
    let opts = ContainmentOptions::default();
    let mut times = [0f64; 2];
    for (slot, threads) in [1usize, 4].into_iter().enumerate() {
        let bopts = BatchOptions::with_threads(threads);
        times[slot] = time_median(5, || {
            let r = check_batch(
                &batch.queries,
                &pairs,
                &batch.program.deps,
                &batch.program.catalog,
                &opts,
                bopts,
            );
            std::hint::black_box(r.len());
        })
        .as_secs_f64();
    }
    if let Some(b) = doc["containment_speedup_4t"].as_f64() {
        out.push(Metric {
            name: "parallel.containment_speedup_4t",
            baseline: b,
            current: times[0] / times[1].max(1e-12),
            gated: scaling_meaningful,
            // When armed (both machines >= 4 cores), sub-1.0 scaling
            // means threads made it slower — never expected.
            min_floor: 1.0,
        });
    }

    let qs = chain_eval_batch(&batch.program, 48);
    let db = DatabaseGen {
        seed: 9,
        tuples_per_relation: 800,
        domain: 400,
    }
    .generate(&batch.program.catalog);
    let seq = cqchase_storage::evaluate_batch(&qs, &db);
    for (slot, threads) in [1usize, 4].into_iter().enumerate() {
        let bopts = BatchOptions::with_threads(threads);
        // Correctness check once, outside the timed region (a serial
        // comparison inside it would deflate the measured ratio).
        assert_eq!(evaluate_batch(&qs, &db, bopts), seq);
        times[slot] = time_median(5, || {
            std::hint::black_box(evaluate_batch(&qs, &db, bopts).len());
        })
        .as_secs_f64();
    }
    if let Some(b) = doc["eval_speedup_4t"].as_f64() {
        out.push(Metric {
            name: "parallel.eval_speedup_4t",
            baseline: b,
            current: times[0] / times[1].max(1e-12),
            gated: scaling_meaningful,
            min_floor: 1.0,
        });
    }
    if !scaling_meaningful {
        println!(
            "note: thread-scaling metrics are informational only (this machine \
             exposes {cores_now} core(s); baseline recorded on {cores_then}). \
             Re-record bench_parallel on a >= 4-core machine to arm these gates."
        );
    }
}

/// Re-measures the `bench_service` metrics by replaying the canonical
/// deterministic workload (same seed, same request sequence as the
/// baseline recorder) against a fresh in-process server.
///
/// The **cache hit rate** is the gated metric: it is a property of the
/// workload and the semantic cache's keying, not of the machine, so it
/// reproduces exactly anywhere. Requests/sec is absolute and stays
/// informational (it documents the recording machine).
fn measure_service_metrics(doc: &Value, out: &mut Vec<Metric>) {
    let w = service_workload();
    let (addr, handle) = Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".into(),
        sem_cache_capacity: 4096,
        ..Default::default()
    })
    .expect("spawn service");
    let mut client = Client::connect(addr).expect("connect");
    client.register("bench", &w.program_src).expect("register");
    let t0 = std::time::Instant::now();
    let mut sent = 0usize;
    for _pass in 0..2 {
        for &(q, qp) in &w.batch.pairs {
            client
                .check("bench", &w.names[q], &w.names[qp])
                .expect("check");
            sent += 1;
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = client.stats().expect("stats");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server run");

    let hits = stats["semantic_cache"]["hits"].as_u64().unwrap_or(0);
    let misses = stats["semantic_cache"]["misses"].as_u64().unwrap_or(0);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    if let Some(b) = doc["cache_hit_rate"].as_f64() {
        out.push(Metric {
            name: "service.cache_hit_rate",
            baseline: b,
            current: hit_rate,
            gated: true,
            // A hit rate is a fraction — sub-1.0 is its normal range.
            min_floor: 0.0,
        });
    }
    if let Some(b) = doc["requests_per_sec_1c"].as_f64() {
        out.push(Metric {
            name: "service.requests_per_sec_1c",
            baseline: b,
            current: sent as f64 / elapsed.max(1e-9),
            // Absolute throughput describes the recording machine.
            gated: false,
            min_floor: 0.0,
        });
    }
}

/// Re-measures the `bench_service_many` metrics by replaying the
/// canonical many-tenant script (1000 sessions on one shared catalog,
/// zipf eval traffic) through 1-lane and 4-lane queue sets.
///
/// The **memory dedup factor** is the gated metric: a same-process
/// dimensionless ratio of resident fact bytes (rebuild-per-tenant over
/// shared-catalog), machine-independent, with a hard 2x floor — the
/// shared path must keep each tenant at most half the duplicate cost.
/// The lane speedup follows the thread-scaling convention from
/// `bench_parallel`: informational unless both the recording and the
/// current machine expose >= 4 cores, and armed it carries the
/// headline 1.3x floor.
fn measure_service_many_metrics(doc: &Value, out: &mut Vec<Metric>) {
    let cores_now = default_threads();
    let cores_then = doc["cores"].as_u64().unwrap_or(0) as usize;
    let scaling_meaningful = cores_now >= 4 && cores_then >= 4;

    let w = many_workload();
    let mut rates = [0f64; 2];
    let mut checksum = 0u64;
    for (slot, lanes) in [1usize, 4].into_iter().enumerate() {
        let mut runs: Vec<f64> = (0..3)
            .map(|_| {
                let r = measure_lane_throughput(&w, lanes);
                if checksum == 0 {
                    checksum = r.checksum;
                }
                // Lane counts must be answer-invariant before their
                // throughput ratio means anything.
                assert_eq!(r.checksum, checksum, "lanes={lanes} answer checksum");
                r.ops_per_sec
            })
            .collect();
        runs.sort_by(f64::total_cmp);
        rates[slot] = runs[1];
    }
    if let Some(b) = doc["lanes_speedup_4v1"].as_f64() {
        out.push(Metric {
            name: "service_many.lanes_speedup_4v1",
            baseline: b,
            current: rates[1] / rates[0].max(1e-12),
            gated: scaling_meaningful,
            // Armed, sharding must pay for itself decisively: the
            // headline many-tenant scaling claim.
            min_floor: 1.3,
        });
    }
    if let Some(b) = doc["memory_dedup_factor"].as_f64() {
        out.push(Metric {
            name: "service_many.memory_dedup_factor",
            baseline: b,
            current: measure_memory_dedup(&w).factor(),
            gated: true,
            // The shared-catalog promise: per-tenant residency at most
            // half the rebuild-per-tenant path, no matter the machine.
            min_floor: 2.0,
        });
    }
    if !scaling_meaningful {
        println!(
            "note: lane-scaling metric is informational only (this machine \
             exposes {cores_now} core(s); baseline recorded on {cores_then}). \
             Re-record bench_service_many on a >= 4-core machine to arm it."
        );
    }
}

/// Re-measures the `bench_obs` tracing-cost ratio by replaying the
/// canonical service sequence against a tracing-off and a tracing-on
/// server (see `obs_workload`).
///
/// The **efficiency** (on/off throughput) is the gated metric: a
/// same-process dimensionless ratio. Its floor is just under the
/// recorder's strict 1/1.25 budget — the recorder (median of 3)
/// enforces the budget where the baseline is minted, the gate's single
/// re-measurement keeps a little jitter headroom. The off-side
/// throughput relative to the committed `bench_service` number is
/// absolute (describes the recording machine) and stays informational.
fn measure_obs_metrics(doc: &Value, out: &mut Vec<Metric>) {
    let m = measure_obs_median(1);
    if let Some(b) = doc["tracing_on_efficiency"].as_f64() {
        out.push(Metric {
            name: "obs.tracing_on_efficiency",
            baseline: b,
            current: m.efficiency(),
            gated: true,
            // 0.75 ≈ the 1/1.25 tracing budget with ~6% jitter headroom
            // for a single CI measurement.
            min_floor: 0.75,
        });
    }
    if let Some(pr7) =
        load_baseline("bench_service.json").and_then(|s| s["requests_per_sec_1c"].as_f64())
    {
        if let Some(b) = doc["tracing_off_vs_service"].as_f64() {
            out.push(Metric {
                name: "obs.tracing_off_vs_service",
                baseline: b,
                current: m.off_rps / pr7.max(1e-9),
                // Absolute throughput ratio against the recording
                // machine's service baseline: informational.
                gated: false,
                min_floor: 0.0,
            });
        }
    }
}

/// Re-measures the `bench_update` ratio by replaying the canonical
/// delta script (same seed, same rounds as the baseline recorder)
/// through both the incremental and the teardown/re-register path.
///
/// The **speedup ratio** is the gated metric: both paths run on the
/// same machine in the same process, so the ratio survives moving
/// between machines the way the index/parallel ratios do. Each
/// `measure_update` call internally asserts both paths' evaluation
/// rows are bit-identical.
fn measure_update_metrics(doc: &Value, out: &mut Vec<Metric>) {
    let w = update_workload(ROUNDS);
    let mut runs: Vec<f64> = (0..3).map(|_| measure_update(&w).speedup()).collect();
    runs.sort_by(f64::total_cmp);
    if let Some(b) = doc["incremental_vs_teardown_speedup"].as_f64() {
        out.push(Metric {
            name: "update.incremental_vs_teardown_speedup",
            baseline: b,
            current: runs[runs.len() / 2],
            gated: true,
            // Incremental must beat teardown/re-register outright.
            min_floor: 1.0,
        });
    }
}

/// Re-measures the `bench_churn` ratios by replaying the canonical
/// two-session script under both barrier modes (answers asserted
/// identical inside `measure_barrier_speedup`) and re-timing the
/// delete-scaling sweep.
///
/// Both are dimensionless same-process ratios, so they survive moving
/// between machines and are gated: the barrier speedup is the
/// multi-session win of per-session barriers, the delete flatness is
/// the O(1)-deletion guarantee (per-tuple cost at 10k vs 100k tuples —
/// a reintroduced O(n) scan would crater it to ~0.1).
fn measure_churn_metrics(doc: &Value, out: &mut Vec<Metric>) {
    let w = churn_workload();
    let mut runs: Vec<f64> = (0..3).map(|_| measure_barrier_speedup(&w)).collect();
    runs.sort_by(f64::total_cmp);
    if let Some(b) = doc["two_session_barrier_speedup"].as_f64() {
        out.push(Metric {
            name: "churn.two_session_barrier_speedup",
            baseline: b,
            current: runs[runs.len() / 2],
            gated: true,
            // Per-session barriers must beat the global-barrier mode.
            min_floor: 1.0,
        });
    }
    let (_, _, flatness) = measure_delete_flatness();
    if let Some(b) = doc["delete_flatness_10k_to_100k"].as_f64() {
        out.push(Metric {
            name: "churn.delete_flatness_10k_to_100k",
            baseline: b,
            current: flatness,
            gated: true,
            // Flatness hovers around 1.0 by construction; slightly
            // sub-1.0 is measurement jitter, not a loss.
            min_floor: 0.0,
        });
    }
}

/// Re-measures the `bench_recovery` ratios by replaying the canonical
/// script (same seed, same batches as the baseline recorder) through
/// the durable and the plain path over in-memory storage.
///
/// Both are dimensionless same-process ratios and gated: snapshot
/// restore must beat re-register+re-apply from the raw script by the
/// headline 1.5x no matter what the baseline says, and the durable
/// update path must stay within 1.3x of the no-durability one
/// (efficiency floor 0.77). Answers are asserted identical inside the
/// measurement functions.
fn measure_recovery_metrics(doc: &Value, out: &mut Vec<Metric>) {
    let w = recovery_workload();
    let mut runs: Vec<f64> = (0..3).map(|_| measure_restore(&w).speedup()).collect();
    runs.sort_by(f64::total_cmp);
    if let Some(b) = doc["restore_vs_replay_speedup"].as_f64() {
        out.push(Metric {
            name: "recovery.restore_vs_replay_speedup",
            baseline: b,
            current: runs[runs.len() / 2],
            gated: true,
            // The headline durability win: restore must stay decisively
            // cheaper than rebuilding from the raw script.
            min_floor: 1.5,
        });
    }
    let mut runs: Vec<f64> = (0..3)
        .map(|_| measure_wal_overhead(&w).efficiency())
        .collect();
    runs.sort_by(f64::total_cmp);
    if let Some(b) = doc["wal_append_efficiency"].as_f64() {
        out.push(Metric {
            name: "recovery.wal_append_efficiency",
            baseline: b,
            current: runs[runs.len() / 2],
            gated: true,
            // 0.77 ≈ 1/1.3: durability may cost at most 1.3x the plain
            // incremental path.
            min_floor: 0.77,
        });
    }
}

/// Re-measures the `bench_resilience` ratios: cancellation-check
/// overhead on the canonical service containment batch (token-free vs
/// deadline-armed tokens, answers asserted identical inside the
/// measurement) and deadline promptness on the dense chain-3 eval.
///
/// Both are dimensionless same-process ratios and gated: threading
/// cancellation through the join loops may cost at most 10% (the
/// lifecycle budget, floor 0.90 no matter the baseline), and the p99
/// overrun past a deadline must fit inside two coalesced check
/// intervals (headroom floor 1.0) — a join loop that lost its token
/// check overruns by many intervals and craters the headroom.
fn measure_resilience_metrics(doc: &Value, out: &mut Vec<Metric>) {
    let w = service_workload();
    let m = measure_cancel_overhead_median(&w, 3);
    if let Some(b) = doc["cancel_check_efficiency"].as_f64() {
        out.push(Metric {
            name: "resilience.cancel_check_efficiency",
            baseline: b,
            current: m.efficiency(),
            gated: true,
            // The lifecycle budget: live tokens may never cost more
            // than 10% of token-free throughput.
            min_floor: 0.90,
        });
    }
    let dw = deadline_workload();
    let d = measure_deadline_median(&dw, 3);
    if let Some(b) = doc["deadline_overrun_headroom"].as_f64() {
        out.push(Metric {
            name: "resilience.deadline_overrun_headroom",
            baseline: b,
            current: d.headroom(),
            gated: true,
            // p99 overrun must fit in two check intervals outright.
            min_floor: 1.0,
        });
    }
}

fn run(check: bool) -> i32 {
    let mut metrics = Vec::new();
    match load_baseline("bench_index.json") {
        Some(doc) => measure_index_metrics(&doc, &mut metrics),
        None => println!("warning: baselines/bench_index.json missing or unparsable"),
    }
    match load_baseline("bench_update.json") {
        Some(doc) => measure_update_metrics(&doc, &mut metrics),
        None => println!("warning: baselines/bench_update.json missing or unparsable"),
    }
    match load_baseline("bench_churn.json") {
        Some(doc) => measure_churn_metrics(&doc, &mut metrics),
        None => println!("warning: baselines/bench_churn.json missing or unparsable"),
    }
    match load_baseline("bench_parallel.json") {
        Some(doc) => measure_parallel_metrics(&doc, &mut metrics),
        None => println!("warning: baselines/bench_parallel.json missing or unparsable"),
    }
    match load_baseline("bench_service.json") {
        Some(doc) => measure_service_metrics(&doc, &mut metrics),
        None => println!("warning: baselines/bench_service.json missing or unparsable"),
    }
    match load_baseline("bench_service_many.json") {
        Some(doc) => measure_service_many_metrics(&doc, &mut metrics),
        None => println!("warning: baselines/bench_service_many.json missing or unparsable"),
    }
    match load_baseline("bench_recovery.json") {
        Some(doc) => measure_recovery_metrics(&doc, &mut metrics),
        None => println!("warning: baselines/bench_recovery.json missing or unparsable"),
    }
    match load_baseline("bench_obs.json") {
        Some(doc) => measure_obs_metrics(&doc, &mut metrics),
        None => println!("warning: baselines/bench_obs.json missing or unparsable"),
    }
    match load_baseline("bench_resilience.json") {
        Some(doc) => measure_resilience_metrics(&doc, &mut metrics),
        None => println!("warning: baselines/bench_resilience.json missing or unparsable"),
    }

    let mut failures = 0;
    println!(
        "\n{:<42} {:>10} {:>10} {:>8}  verdict",
        "metric", "baseline", "current", "floor"
    );
    for m in &metrics {
        let floor = (m.baseline / TOLERANCE).max(m.min_floor);
        let ok = !m.gated || m.current >= floor;
        if !ok {
            failures += 1;
        }
        println!(
            "{:<42} {:>9.2}x {:>9.2}x {:>7.2}x  {}",
            m.name,
            m.baseline,
            m.current,
            floor,
            if !m.gated {
                "info-only"
            } else if ok {
                "ok"
            } else {
                "REGRESSED"
            }
        );
    }
    if metrics.is_empty() {
        println!("no baselines found — nothing to gate");
        return if check { 2 } else { 0 };
    }
    if failures > 0 {
        println!("\n{failures} metric(s) regressed by more than {TOLERANCE}x");
        return 1;
    }
    println!("\nall gated metrics within {TOLERANCE}x of baseline");
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check-baseline") => std::process::exit(run(true)),
        Some("--list") | None => {
            // Same measurement run as --check-baseline (it re-times the
            // gated workloads, a few seconds in release), but the exit
            // code never fails — useful locally.
            run(false);
        }
        Some(other) => {
            eprintln!("usage: bench_gate [--check-baseline | --list]  (got `{other}`)");
            std::process::exit(2);
        }
    }
}
