//! The deterministic crash-recovery benchmark workload, shared by the
//! `bench_recovery` baseline recorder and the `bench_gate` re-measurer
//! so both sides of a gate comparison replay the identical script.
//!
//! Two questions, both answered as dimensionless same-process ratios
//! (the only kind that survives moving between machines):
//!
//! * **restore vs replay** — booting a 10k-tuple mutated session from
//!   its snapshot (+ WAL tail) must beat the durability-free
//!   alternative: re-executing the **raw request script**, the JSON
//!   `register`/`update` lines a client (or a request log) would
//!   resubmit on restart, each parsed by `Request::from_line` and
//!   dispatched. The snapshot carries the facts in binary and
//!   consolidates every delta, so restore must win by over the gated
//!   1.5x.
//! * **WAL append overhead** — the durable update path (validate +
//!   encode + CRC + append + fsync before apply) must stay within 1.3x
//!   of the plain in-memory path on `bench_update`'s incremental
//!   update+eval rounds; the gate carries it as the inverted
//!   `plain/durable` *efficiency* ratio with a 0.77 floor.
//!
//! Both measurements run over [`MemIo`], so they time the durability
//! machinery itself (framing, CRC, recovery protocol) deterministically
//! rather than the host's disk.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use cqchase_ir::{parse_program, Constant, RelId};
use cqchase_service::durable::{MemIo, StorageIo};
use cqchase_service::{Durability, Request, Session, SessionRegistry};
use cqchase_storage::{Tuple, Value};
use cqchase_workload::{split_deltas, DeltaScriptGen};

/// Live tuples at registration.
pub const TUPLES: usize = 10_000;
/// Deltas per update round.
pub const DELTA_OPS: usize = 64;
/// Update rounds after registration.
pub const ROUNDS: usize = 8;
/// Script seed.
pub const SEED: u64 = 13;

/// The schema + query pool; the registered program appends the
/// [`TUPLES`] successor-cycle facts as surface text, exactly as a
/// client's `register` request carries them.
const SCHEMA: &str = "relation R(a, b).
    A(x) :- R(x, y).
    B(x) :- R(x, y), R(y, z).";

/// The 2-chain query B — the per-round evaluation.
const EVAL_Q: usize = 1;

/// The wire-shaped fact lists updates take.
pub type FactSpecs = Vec<(String, Vec<Constant>)>;
/// One update batch: `(inserts, deletes)`.
pub type Batch = (FactSpecs, FactSpecs);

/// The raw request script: the registration program and every update.
pub struct RecoveryWorkload {
    /// Registration program text — schema, queries, and the seed facts
    /// as fact lines (what travels in a `register` request).
    pub program: String,
    /// The [`ROUNDS`] seeded delta rounds, one update batch each.
    pub rounds: Vec<Batch>,
    /// The same script as raw protocol lines (`register`, then one
    /// `update` per round) — what a durability-free restart replays.
    pub script: Vec<String>,
}

/// Builds the canonical workload (see the module docs).
pub fn recovery_workload() -> RecoveryWorkload {
    let catalog = parse_program(SCHEMA).expect("static schema parses").catalog;
    let r = catalog.resolve("R").unwrap();
    let mut program = SCHEMA.to_owned();
    let mut initial: Vec<(RelId, Tuple)> = Vec::with_capacity(TUPLES);
    for i in 0..TUPLES as i64 {
        let j = (i + 1) % TUPLES as i64;
        let _ = write!(program, "\nR({i}, {j}).");
        initial.push((
            r,
            vec![
                Value::Const(Constant::Int(i)),
                Value::Const(Constant::Int(j)),
            ],
        ));
    }
    // One generator across all rounds (later rounds can delete earlier
    // inserts), split per round — as in `update_workload`.
    let gen = DeltaScriptGen {
        seed: SEED,
        ops: DELTA_OPS * ROUNDS,
        domain: 2 * TUPLES as i64,
        delete_fraction: 0.5,
    };
    let script = gen.generate(&catalog, &initial);
    let spec = |(rel, t): (RelId, Tuple)| -> (String, Vec<Constant>) {
        (
            catalog.name(rel).to_owned(),
            t.iter()
                .map(|v| v.as_const().expect("delta values are constants").clone())
                .collect(),
        )
    };
    let rounds: Vec<Batch> = script
        .chunks(DELTA_OPS)
        .map(|chunk| {
            let (ins, del) = split_deltas(chunk);
            (
                ins.into_iter().map(spec).collect(),
                del.into_iter().map(spec).collect(),
            )
        })
        .collect();
    let mut lines = vec![Request::Register {
        session: "live".into(),
        program: program.clone(),
    }
    .to_value()
    .to_string()];
    for (insert, delete) in &rounds {
        lines.push(
            Request::Update {
                session: "live".into(),
                insert: insert.clone(),
                delete: delete.clone(),
                deadline_ms: None,
            }
            .to_value()
            .to_string(),
        );
    }
    RecoveryWorkload {
        program,
        rounds,
        script: lines,
    }
}

fn open_durability(io: &Arc<MemIo>, dir: &Path) -> (Arc<Durability>, Arc<SessionRegistry>) {
    let registry = Arc::new(SessionRegistry::new());
    let (d, _) = Durability::open(
        Arc::clone(io) as Arc<dyn StorageIo>,
        dir,
        None,
        Arc::clone(&registry),
        64,
        64,
    )
    .expect("open durability over MemIo");
    (Arc::new(d), registry)
}

/// One restore-vs-replay measurement (answers asserted identical).
#[derive(Debug, Clone, Copy)]
pub struct RestoreMeasurement {
    /// Seconds to boot the session from its snapshot + WAL.
    pub restore_s: f64,
    /// Seconds to re-register the program text and re-apply the script.
    pub replay_s: f64,
}

impl RestoreMeasurement {
    /// How many times snapshot restore beat raw-script replay.
    pub fn speedup(&self) -> f64 {
        self.replay_s / self.restore_s.max(1e-12)
    }
}

/// Builds the durable state once (register + update rounds + snapshot),
/// then times booting from the snapshot against rebuilding from the raw
/// request script, asserting both end states answer identically.
pub fn measure_restore(w: &RecoveryWorkload) -> RestoreMeasurement {
    let dir = Path::new("/bench");
    let io = Arc::new(MemIo::new());
    let (d, _registry) = open_durability(&io, dir);
    let live = d.register("live", &w.program).expect("register");
    for batch in &w.rounds {
        for r in d.apply_updates(&live, std::slice::from_ref(batch)) {
            r.expect("workload batches are valid");
        }
    }
    let (seq, _) = d.persist().expect("persist");
    let snap_path = dir.join(format!("snap-{seq}"));
    let wal_path = dir.join(format!("wal-{seq}"));
    let snap = io.dump(&snap_path).expect("snapshot bytes");
    let wal = io.dump(&wal_path).expect("wal bytes");
    let expect_rows = live.eval(EVAL_Q);

    // Restore path: recovery boot over the captured files.
    let t0 = Instant::now();
    let io2 = Arc::new(MemIo::new());
    io2.set_file(&snap_path, snap);
    io2.set_file(&wal_path, wal);
    let (_d2, reg2) = open_durability(&io2, dir);
    let restored = reg2.get("live").expect("restored session");
    let restore_s = t0.elapsed().as_secs_f64();

    // Replay path: the state rebuilt the only way a durability-free
    // server could — re-execute the raw request script, line by line.
    let t0 = Instant::now();
    let mut fresh: Option<Session> = None;
    for line in &w.script {
        match Request::from_line(line).expect("script lines are valid requests") {
            Request::Register { session, program } => {
                fresh = Some(Session::new(&session, &program, 64, 64).expect("register fresh"));
            }
            Request::Update { insert, delete, .. } => {
                let s = fresh.as_ref().expect("register precedes updates");
                for r in s.apply_updates(&[(insert, delete)]) {
                    r.expect("workload batches are valid");
                }
            }
            _ => unreachable!("the raw script holds register/update lines only"),
        }
    }
    let fresh = fresh.expect("script registers the session");
    let replay_s = t0.elapsed().as_secs_f64();

    assert_eq!(restored.eval(EVAL_Q), expect_rows, "restore diverged");
    assert_eq!(fresh.eval(EVAL_Q), expect_rows, "replay diverged");
    RestoreMeasurement {
        restore_s,
        replay_s,
    }
}

/// One WAL-overhead measurement (answers asserted identical).
#[derive(Debug, Clone, Copy)]
pub struct OverheadMeasurement {
    /// Seconds for the plain in-memory update+eval rounds.
    pub plain_s: f64,
    /// Seconds for the same rounds through the durable path.
    pub durable_s: f64,
}

impl OverheadMeasurement {
    /// `plain / durable`: 1.0 means free durability, the 0.77 gate
    /// floor means "within 1.3x of no-durability".
    pub fn efficiency(&self) -> f64 {
        self.plain_s / self.durable_s.max(1e-12)
    }
}

/// Replays the delta rounds through a plain session and a durable one
/// (identical update+eval per round), timing each path.
pub fn measure_wal_overhead(w: &RecoveryWorkload) -> OverheadMeasurement {
    let plain = Session::new("plain", &w.program, 64, 64).expect("register plain");
    let dir = Path::new("/bench");
    let io = Arc::new(MemIo::new());
    let (d, _registry) = open_durability(&io, dir);
    let durable = d.register("durable", &w.program).expect("register durable");

    let t0 = Instant::now();
    let mut plain_counts = Vec::with_capacity(w.rounds.len());
    for batch in &w.rounds {
        for r in plain.apply_updates(std::slice::from_ref(batch)) {
            r.expect("workload batches are valid");
        }
        plain_counts.push(plain.eval(EVAL_Q).len());
    }
    let plain_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let mut durable_counts = Vec::with_capacity(w.rounds.len());
    for batch in &w.rounds {
        for r in d.apply_updates(&durable, std::slice::from_ref(batch)) {
            r.expect("workload batches are valid");
        }
        durable_counts.push(durable.eval(EVAL_Q).len());
    }
    let durable_s = t0.elapsed().as_secs_f64();

    assert_eq!(plain_counts, durable_counts, "per-round answers diverged");
    assert_eq!(
        plain.eval(EVAL_Q),
        durable.eval(EVAL_Q),
        "final answers diverged"
    );
    OverheadMeasurement { plain_s, durable_s }
}
