//! Minimal aligned-column table printing + JSON row capture for the
//! experiment harness.

use serde_json::{Map, Value};

/// An experiment table: headers, rows, and a JSON mirror of every row.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells; must match header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of `Display`able cells.
    pub fn rowd<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// The rows as JSON objects keyed by header.
    pub fn to_json(&self) -> Value {
        Value::Array(
            self.rows
                .iter()
                .map(|row| {
                    let mut obj = Map::new();
                    for (h, c) in self.headers.iter().zip(row) {
                        // Numbers stay numbers where they parse.
                        let v = c
                            .parse::<i64>()
                            .map(Value::from)
                            .or_else(|_| c.parse::<f64>().map(Value::from))
                            .unwrap_or_else(|_| Value::String(c.clone()));
                        obj.insert(h.clone(), v);
                    }
                    Value::Object(obj)
                })
                .collect(),
        )
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns() {
        let mut t = Table::new(&["a", "long_header"]);
        t.rowd(&["xxxxx", "1"]);
        t.rowd(&["y", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    "), "{s}");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn json_types() {
        let mut t = Table::new(&["name", "n", "x"]);
        t.rowd(&["abc", "42", "1.5"]);
        let j = t.to_json();
        assert_eq!(j[0]["n"], 42);
        assert_eq!(j[0]["x"], 1.5);
        assert_eq!(j[0]["name"], "abc");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_length_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.rowd(&["only one"]);
    }
}
