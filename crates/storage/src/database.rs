//! Databases: finite sets of relation instances over a catalog.

use std::fmt;

use cqchase_index::FxHashMap;
use cqchase_ir::{Catalog, IrError, IrResult, RelId};

use crate::value::{NullId, Value};

/// A row of a relation instance.
pub type Tuple = Vec<Value>;

/// Minimum tombstone count before a relation instance considers
/// compacting its slot vector (tiny relations are not worth the pass).
/// Shared with [`DbIndex`](crate::indexed::DbIndex) so database and
/// index reclaim in lockstep.
pub(crate) const COMPACT_MIN_DEAD: usize = 32;

/// The adaptive compaction trigger shared by [`RelationInstance`] and
/// [`DbIndex`](crate::indexed::DbIndex): compact when the dead-slot
/// count crosses a **size-tiered fraction of the live count** — small
/// relations wait until tombstones outnumber live rows (a pass there is
/// cheap but pointless earlier), large ones compact at dead > live/2,
/// and very large ones at dead > live/4. A compaction pass costs
/// O(live + dead) slot copies, so the tiered trigger bounds the
/// amortized cost per reclaimed slot at ~2, ~3, and ~5 copies
/// respectively while capping the memory a churn-heavy session wastes
/// on tombstones at 25% for relations where that waste is measured in
/// megabytes.
pub(crate) fn compaction_due(live: usize, dead: usize) -> bool {
    if dead < COMPACT_MIN_DEAD {
        return false;
    }
    let required = if live < 4_096 {
        live
    } else if live < 262_144 {
        live / 2
    } else {
        live / 4
    };
    dead > required
}

/// One relation's extent: a duplicate-free multiset of tuples in insertion
/// order (order is preserved so experiments print deterministically).
///
/// Removal is **O(1)**: a tuple→slot map finds the victim and the slot
/// is tombstoned rather than shifted out (mirroring
/// [`DbIndex`](crate::indexed::DbIndex)); tombstones are reclaimed by
/// the shared adaptive compaction policy ([`compaction_due`]), which
/// preserves the live tuples' relative order. Enumeration goes through
/// the live-slot view [`RelationInstance::tuples`], so every consumer
/// (the naive engines included) sees exactly the live tuples in
/// insertion order, never a tombstone.
#[derive(Debug, Clone, Default)]
pub struct RelationInstance {
    /// Slots in insertion order; tombstoned slots keep their tuple
    /// until compaction (the memory is reclaimed wholesale there).
    slots: Vec<Tuple>,
    /// Liveness per slot (`false` = tombstone).
    live: Vec<bool>,
    /// `tuple → slot` for the live tuples (the O(1) removal path;
    /// doubles as the duplicate probe).
    pos: FxHashMap<Tuple, u32>,
    /// Tombstoned slot count (compaction trigger).
    dead: usize,
}

impl RelationInstance {
    /// Inserts a tuple; returns `true` if it was new.
    pub fn insert(&mut self, t: Tuple) -> bool {
        if self.pos.contains_key(&t) {
            return false;
        }
        let slot = self.slots.len() as u32;
        self.pos.insert(t.clone(), slot);
        self.slots.push(t);
        self.live.push(true);
        true
    }

    /// Removes a tuple; returns `true` if it was present. O(1): the
    /// slot is found through the position map and tombstoned; insertion
    /// order of the survivors is preserved across the amortized
    /// compaction that eventually reclaims it.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        let Some(slot) = self.pos.remove(t) else {
            return false;
        };
        debug_assert!(self.live[slot as usize], "the position map maps live slots");
        self.live[slot as usize] = false;
        self.dead += 1;
        if compaction_due(self.pos.len(), self.dead) {
            self.compact();
        }
        true
    }

    /// Reclaims tombstones: drops dead slots, renumbers the survivors
    /// densely (relative order preserved), and shrinks slot and map
    /// capacity when occupancy fell below a quarter — a long-lived
    /// session must not hold peak-size allocations forever.
    fn compact(&mut self) {
        let mut keep = 0usize;
        for slot in 0..self.slots.len() {
            if !self.live[slot] {
                continue;
            }
            if keep != slot {
                self.slots.swap(keep, slot);
            }
            keep += 1;
        }
        self.slots.truncate(keep);
        self.live.clear();
        self.live.resize(keep, true);
        self.dead = 0;
        for (slot, t) in self.slots.iter().enumerate() {
            *self.pos.get_mut(t).expect("live tuples stay mapped") = slot as u32;
        }
        if self.slots.len() < self.slots.capacity() / 4 {
            self.slots.shrink_to_fit();
            self.live.shrink_to_fit();
            self.pos.shrink_to_fit();
        }
    }

    /// Whether the tuple is present.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.pos.contains_key(t)
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// The live tuples, in insertion order (the live-slot view —
    /// tombstones awaiting compaction are skipped).
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.slots
            .iter()
            .zip(&self.live)
            .filter_map(|(t, &alive)| alive.then_some(t))
    }

    /// Approximate resident bytes: slot tuples (including tombstones
    /// awaiting compaction), the liveness bitmap, and the position map
    /// whose keys clone every live tuple. An estimate for capacity
    /// planning, not an allocator measurement — string heap data inside
    /// values is not chased.
    pub fn approx_bytes(&self) -> usize {
        let val = std::mem::size_of::<Value>();
        let tup = std::mem::size_of::<Tuple>();
        let slot_payload: usize = self.slots.iter().map(|t| t.capacity() * val).sum();
        let key_payload: usize = self.pos.keys().map(|t| t.capacity() * val).sum();
        self.slots.capacity() * tup
            + slot_payload
            + self.live.capacity()
            + self.pos.capacity() * (tup + std::mem::size_of::<u32>() + 8)
            + key_payload
    }

    /// Rebuilds the instance applying `f` to every value (used by the data
    /// chase when unifying nulls). Collapses tuples that become equal and
    /// drops any accumulated tombstones.
    pub fn map_values(&mut self, f: impl Fn(&Value) -> Value) {
        let old = std::mem::take(&mut self.slots);
        let old_live = std::mem::take(&mut self.live);
        self.pos.clear();
        self.dead = 0;
        for (t, alive) in old.into_iter().zip(old_live) {
            if !alive {
                continue;
            }
            let t: Tuple = t.iter().map(&f).collect();
            self.insert(t);
        }
    }
}

/// Equality is extensional over the **live** tuples in insertion order:
/// two instances with different tombstone histories (slot layouts) but
/// identical live contents are equal.
impl PartialEq for RelationInstance {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.tuples().eq(other.tuples())
    }
}

impl Eq for RelationInstance {}

/// A database instance: one [`RelationInstance`] per catalog relation,
/// plus a counter for minting fresh labelled nulls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Database {
    catalog: Catalog,
    relations: Vec<RelationInstance>,
    next_null: u32,
}

impl Database {
    /// An empty database over `catalog`.
    pub fn new(catalog: &Catalog) -> Self {
        Database {
            catalog: catalog.clone(),
            relations: vec![RelationInstance::default(); catalog.len()],
            next_null: 0,
        }
    }

    /// The catalog this database is formatted against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The instance of relation `rel`.
    pub fn relation(&self, rel: RelId) -> &RelationInstance {
        &self.relations[rel.index()]
    }

    /// Mutable access to the instance of relation `rel`.
    pub fn relation_mut(&mut self, rel: RelId) -> &mut RelationInstance {
        &mut self.relations[rel.index()]
    }

    /// Inserts a tuple into `rel`, checking arity. Returns whether the
    /// tuple was new.
    pub fn insert(&mut self, rel: RelId, tuple: Tuple) -> IrResult<bool> {
        let arity = self.catalog.arity(rel);
        if tuple.len() != arity {
            return Err(IrError::ArityMismatch {
                relation: self.catalog.name(rel).to_owned(),
                expected: arity,
                found: tuple.len(),
            });
        }
        for v in &tuple {
            if let Value::Null(n) = v {
                self.next_null = self.next_null.max(n.0 + 1);
            }
        }
        Ok(self.relations[rel.index()].insert(tuple))
    }

    /// Removes a tuple from `rel`, checking arity. Returns whether the
    /// tuple was present.
    pub fn remove(&mut self, rel: RelId, tuple: &Tuple) -> IrResult<bool> {
        let arity = self.catalog.arity(rel);
        if tuple.len() != arity {
            return Err(IrError::ArityMismatch {
                relation: self.catalog.name(rel).to_owned(),
                expected: arity,
                found: tuple.len(),
            });
        }
        Ok(self.relations[rel.index()].remove(tuple))
    }

    /// Inserts by relation name; values convert via `Into<Value>`.
    pub fn insert_named(
        &mut self,
        rel: &str,
        tuple: impl IntoIterator<Item = impl Into<Value>>,
    ) -> IrResult<bool> {
        let rel = self.catalog.require(rel)?;
        self.insert(rel, tuple.into_iter().map(Into::into).collect())
    }

    /// Builds a database from parsed ground facts (e.g.
    /// [`Program::facts`](cqchase_ir::parse::Program)).
    pub fn from_facts(
        catalog: &Catalog,
        facts: &[(RelId, Vec<cqchase_ir::Constant>)],
    ) -> IrResult<Database> {
        let mut db = Database::new(catalog);
        for (rel, consts) in facts {
            db.insert(*rel, consts.iter().cloned().map(Value::Const).collect())?;
        }
        Ok(db)
    }

    /// Mints a fresh labelled null, unique within this database.
    pub fn fresh_null(&mut self) -> Value {
        let id = NullId(self.next_null);
        self.next_null += 1;
        Value::Null(id)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(RelationInstance::len).sum()
    }

    /// Approximate resident bytes across all relation instances
    /// ([`RelationInstance::approx_bytes`]); the catalog itself is not
    /// counted (it is shared, small, and identical across sessions).
    pub fn approx_bytes(&self) -> usize {
        self.relations
            .iter()
            .map(RelationInstance::approx_bytes)
            .sum()
    }

    /// Whether any value anywhere is a labelled null.
    pub fn has_nulls(&self) -> bool {
        self.relations
            .iter()
            .flat_map(|r| r.tuples())
            .flatten()
            .any(Value::is_null)
    }

    /// Applies `f` to every value in every relation (collapsing duplicate
    /// tuples that result).
    pub fn map_values(&mut self, f: impl Fn(&Value) -> Value + Copy) {
        for r in &mut self.relations {
            r.map_values(f);
        }
    }

    /// Iterator over `(rel, instance)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationInstance)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u32), r))
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (rel, inst) in self.iter() {
            if inst.is_empty() {
                continue;
            }
            for t in inst.tuples() {
                if !first {
                    writeln!(f)?;
                }
                first = false;
                write!(f, "{}(", self.catalog.name(rel))?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("S", ["x"]).unwrap();
        c
    }

    #[test]
    fn insert_and_dedup() {
        let c = cat();
        let mut db = Database::new(&c);
        assert!(db.insert_named("R", [1i64, 2]).unwrap());
        assert!(!db.insert_named("R", [1i64, 2]).unwrap());
        assert!(db.insert_named("R", [2i64, 1]).unwrap());
        assert_eq!(db.total_tuples(), 2);
        let r = c.resolve("R").unwrap();
        assert!(db.relation(r).contains(&vec![Value::int(1), Value::int(2)]));
    }

    #[test]
    fn remove_preserves_order_and_dedup() {
        let c = cat();
        let mut db = Database::new(&c);
        db.insert_named("R", [1i64, 2]).unwrap();
        db.insert_named("R", [3i64, 4]).unwrap();
        db.insert_named("R", [5i64, 6]).unwrap();
        let r = c.resolve("R").unwrap();
        let t = vec![Value::int(3), Value::int(4)];
        assert!(db.remove(r, &t).unwrap());
        assert!(!db.remove(r, &t).unwrap(), "second removal is a no-op");
        assert_eq!(db.total_tuples(), 2);
        assert!(!db.relation(r).contains(&t));
        // Survivors keep insertion order (through the live-slot view).
        assert_eq!(
            db.relation(r).tuples().cloned().collect::<Vec<_>>(),
            vec![
                vec![Value::int(1), Value::int(2)],
                vec![Value::int(5), Value::int(6)],
            ]
        );
        // Removed tuples can be reinserted (they are new again).
        assert!(db.insert(r, t.clone()).unwrap());
        assert_eq!(db.relation(r).tuples().last(), Some(&t));
        // Arity is checked.
        assert!(db.remove(r, &vec![Value::int(1)]).is_err());
    }

    #[test]
    fn equality_ignores_tombstone_history() {
        let c = cat();
        let mut a = Database::new(&c);
        a.insert_named("R", [1i64, 2]).unwrap();
        a.insert_named("R", [3i64, 4]).unwrap();
        let mut b = a.clone();
        let r = c.resolve("R").unwrap();
        // b takes a detour: insert + delete leaves a tombstone behind.
        b.insert(r, vec![Value::int(9), Value::int(9)]).unwrap();
        b.remove(r, &vec![Value::int(9), Value::int(9)]).unwrap();
        assert_eq!(a, b, "live contents equal ⇒ databases equal");
        b.remove(r, &vec![Value::int(1), Value::int(2)]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn churn_compacts_and_preserves_live_view() {
        let c = cat();
        let r = c.resolve("R").unwrap();
        let mut db = Database::new(&c);
        // Sliding window: keep ~64 live while deleting thousands — the
        // tombstone count repeatedly crosses the compaction trigger.
        let window = 64i64;
        for i in 0..4096i64 {
            db.insert(r, vec![Value::int(i), Value::int(i + 1)])
                .unwrap();
            if i >= window {
                let old = vec![Value::int(i - window), Value::int(i - window + 1)];
                assert!(db.remove(r, &old).unwrap());
            }
        }
        assert_eq!(db.relation(r).len(), window as usize);
        let live: Vec<Tuple> = db.relation(r).tuples().cloned().collect();
        assert_eq!(live.len(), window as usize);
        // Insertion order survives compaction.
        for (k, t) in live.iter().enumerate() {
            assert_eq!(t[0], Value::int(4096 - window + k as i64));
        }
        // The slot store was actually reclaimed, not grown without
        // bound: at most live + the compaction threshold slack remains.
        assert!(
            db.relation(r).slots.len() <= window as usize * 2 + COMPACT_MIN_DEAD,
            "tombstones unreclaimed: {} slots for {} live",
            db.relation(r).slots.len(),
            window
        );
    }

    #[test]
    fn arity_checked() {
        let c = cat();
        let mut db = Database::new(&c);
        assert!(db.insert_named("R", [1i64]).is_err());
        assert!(db.insert_named("NOPE", [1i64]).is_err());
    }

    #[test]
    fn fresh_nulls_distinct() {
        let c = cat();
        let mut db = Database::new(&c);
        let n1 = db.fresh_null();
        let n2 = db.fresh_null();
        assert_ne!(n1, n2);
        assert!(!db.has_nulls()); // not inserted anywhere yet
        let r = c.resolve("R").unwrap();
        db.insert(r, vec![n1, Value::int(1)]).unwrap();
        assert!(db.has_nulls());
    }

    #[test]
    fn null_counter_tracks_inserted_nulls() {
        let c = cat();
        let mut db = Database::new(&c);
        let r = c.resolve("R").unwrap();
        db.insert(r, vec![Value::Null(NullId(5)), Value::int(0)])
            .unwrap();
        // The next fresh null must not collide with null 5.
        assert_eq!(db.fresh_null(), Value::Null(NullId(6)));
    }

    #[test]
    fn map_values_collapses() {
        let c = cat();
        let mut db = Database::new(&c);
        db.insert_named("R", [1i64, 7]).unwrap();
        db.insert_named("R", [2i64, 7]).unwrap();
        // Map both keys to 9 — the tuples become identical and collapse.
        db.map_values(|v| {
            if v.as_const().and_then(|c| match c {
                cqchase_ir::Constant::Int(i) => Some(*i),
                _ => None,
            }) == Some(7)
            {
                v.clone()
            } else {
                Value::int(9)
            }
        });
        assert_eq!(db.total_tuples(), 1);
    }

    #[test]
    fn from_facts_roundtrip() {
        let p = cqchase_ir::parse_program("relation R(a, b). R(1, 2). R(2, 3).").unwrap();
        let db = Database::from_facts(&p.catalog, &p.facts).unwrap();
        assert_eq!(db.total_tuples(), 2);
        let r = p.catalog.resolve("R").unwrap();
        assert!(db.relation(r).contains(&vec![Value::int(2), Value::int(3)]));
    }

    #[test]
    fn display_lists_tuples() {
        let c = cat();
        let mut db = Database::new(&c);
        db.insert_named("R", [1i64, 2]).unwrap();
        db.insert_named("S", [3i64]).unwrap();
        let s = db.to_string();
        assert!(s.contains("R(1, 2)"));
        assert!(s.contains("S(3)"));
    }
}
