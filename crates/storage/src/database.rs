//! Databases: finite sets of relation instances over a catalog.

use std::collections::HashSet;
use std::fmt;

use cqchase_ir::{Catalog, IrError, IrResult, RelId};

use crate::value::{NullId, Value};

/// A row of a relation instance.
pub type Tuple = Vec<Value>;

/// One relation's extent: a duplicate-free multiset of tuples in insertion
/// order (order is preserved so experiments print deterministically).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelationInstance {
    tuples: Vec<Tuple>,
    index: HashSet<Tuple>,
}

impl RelationInstance {
    /// Inserts a tuple; returns `true` if it was new.
    pub fn insert(&mut self, t: Tuple) -> bool {
        if self.index.contains(&t) {
            return false;
        }
        self.index.insert(t.clone());
        self.tuples.push(t);
        true
    }

    /// Removes a tuple; returns `true` if it was present. Insertion
    /// order of the survivors is preserved (the position scan is O(n),
    /// which live-mutation callers amortize over batched deltas).
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if !self.index.remove(t) {
            return false;
        }
        let pos = self
            .tuples
            .iter()
            .position(|u| u == t)
            .expect("the dedup set and the tuple list agree");
        self.tuples.remove(pos);
        true
    }

    /// Whether the tuple is present.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.index.contains(t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples, in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Rebuilds the instance applying `f` to every value (used by the data
    /// chase when unifying nulls). Collapses tuples that become equal.
    pub fn map_values(&mut self, f: impl Fn(&Value) -> Value) {
        let old = std::mem::take(&mut self.tuples);
        self.index.clear();
        for t in old {
            let t: Tuple = t.iter().map(&f).collect();
            self.insert(t);
        }
    }
}

/// A database instance: one [`RelationInstance`] per catalog relation,
/// plus a counter for minting fresh labelled nulls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Database {
    catalog: Catalog,
    relations: Vec<RelationInstance>,
    next_null: u32,
}

impl Database {
    /// An empty database over `catalog`.
    pub fn new(catalog: &Catalog) -> Self {
        Database {
            catalog: catalog.clone(),
            relations: vec![RelationInstance::default(); catalog.len()],
            next_null: 0,
        }
    }

    /// The catalog this database is formatted against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The instance of relation `rel`.
    pub fn relation(&self, rel: RelId) -> &RelationInstance {
        &self.relations[rel.index()]
    }

    /// Mutable access to the instance of relation `rel`.
    pub fn relation_mut(&mut self, rel: RelId) -> &mut RelationInstance {
        &mut self.relations[rel.index()]
    }

    /// Inserts a tuple into `rel`, checking arity. Returns whether the
    /// tuple was new.
    pub fn insert(&mut self, rel: RelId, tuple: Tuple) -> IrResult<bool> {
        let arity = self.catalog.arity(rel);
        if tuple.len() != arity {
            return Err(IrError::ArityMismatch {
                relation: self.catalog.name(rel).to_owned(),
                expected: arity,
                found: tuple.len(),
            });
        }
        for v in &tuple {
            if let Value::Null(n) = v {
                self.next_null = self.next_null.max(n.0 + 1);
            }
        }
        Ok(self.relations[rel.index()].insert(tuple))
    }

    /// Removes a tuple from `rel`, checking arity. Returns whether the
    /// tuple was present.
    pub fn remove(&mut self, rel: RelId, tuple: &Tuple) -> IrResult<bool> {
        let arity = self.catalog.arity(rel);
        if tuple.len() != arity {
            return Err(IrError::ArityMismatch {
                relation: self.catalog.name(rel).to_owned(),
                expected: arity,
                found: tuple.len(),
            });
        }
        Ok(self.relations[rel.index()].remove(tuple))
    }

    /// Inserts by relation name; values convert via `Into<Value>`.
    pub fn insert_named(
        &mut self,
        rel: &str,
        tuple: impl IntoIterator<Item = impl Into<Value>>,
    ) -> IrResult<bool> {
        let rel = self.catalog.require(rel)?;
        self.insert(rel, tuple.into_iter().map(Into::into).collect())
    }

    /// Builds a database from parsed ground facts (e.g.
    /// [`Program::facts`](cqchase_ir::parse::Program)).
    pub fn from_facts(
        catalog: &Catalog,
        facts: &[(RelId, Vec<cqchase_ir::Constant>)],
    ) -> IrResult<Database> {
        let mut db = Database::new(catalog);
        for (rel, consts) in facts {
            db.insert(*rel, consts.iter().cloned().map(Value::Const).collect())?;
        }
        Ok(db)
    }

    /// Mints a fresh labelled null, unique within this database.
    pub fn fresh_null(&mut self) -> Value {
        let id = NullId(self.next_null);
        self.next_null += 1;
        Value::Null(id)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(RelationInstance::len).sum()
    }

    /// Whether any value anywhere is a labelled null.
    pub fn has_nulls(&self) -> bool {
        self.relations
            .iter()
            .flat_map(|r| r.tuples())
            .flatten()
            .any(Value::is_null)
    }

    /// Applies `f` to every value in every relation (collapsing duplicate
    /// tuples that result).
    pub fn map_values(&mut self, f: impl Fn(&Value) -> Value + Copy) {
        for r in &mut self.relations {
            r.map_values(f);
        }
    }

    /// Iterator over `(rel, instance)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationInstance)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u32), r))
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (rel, inst) in self.iter() {
            if inst.is_empty() {
                continue;
            }
            for t in inst.tuples() {
                if !first {
                    writeln!(f)?;
                }
                first = false;
                write!(f, "{}(", self.catalog.name(rel))?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("S", ["x"]).unwrap();
        c
    }

    #[test]
    fn insert_and_dedup() {
        let c = cat();
        let mut db = Database::new(&c);
        assert!(db.insert_named("R", [1i64, 2]).unwrap());
        assert!(!db.insert_named("R", [1i64, 2]).unwrap());
        assert!(db.insert_named("R", [2i64, 1]).unwrap());
        assert_eq!(db.total_tuples(), 2);
        let r = c.resolve("R").unwrap();
        assert!(db.relation(r).contains(&vec![Value::int(1), Value::int(2)]));
    }

    #[test]
    fn remove_preserves_order_and_dedup() {
        let c = cat();
        let mut db = Database::new(&c);
        db.insert_named("R", [1i64, 2]).unwrap();
        db.insert_named("R", [3i64, 4]).unwrap();
        db.insert_named("R", [5i64, 6]).unwrap();
        let r = c.resolve("R").unwrap();
        let t = vec![Value::int(3), Value::int(4)];
        assert!(db.remove(r, &t).unwrap());
        assert!(!db.remove(r, &t).unwrap(), "second removal is a no-op");
        assert_eq!(db.total_tuples(), 2);
        assert!(!db.relation(r).contains(&t));
        // Survivors keep insertion order.
        assert_eq!(
            db.relation(r).tuples(),
            &[
                vec![Value::int(1), Value::int(2)],
                vec![Value::int(5), Value::int(6)],
            ]
        );
        // Removed tuples can be reinserted (they are new again).
        assert!(db.insert(r, t.clone()).unwrap());
        assert_eq!(db.relation(r).tuples().last(), Some(&t));
        // Arity is checked.
        assert!(db.remove(r, &vec![Value::int(1)]).is_err());
    }

    #[test]
    fn arity_checked() {
        let c = cat();
        let mut db = Database::new(&c);
        assert!(db.insert_named("R", [1i64]).is_err());
        assert!(db.insert_named("NOPE", [1i64]).is_err());
    }

    #[test]
    fn fresh_nulls_distinct() {
        let c = cat();
        let mut db = Database::new(&c);
        let n1 = db.fresh_null();
        let n2 = db.fresh_null();
        assert_ne!(n1, n2);
        assert!(!db.has_nulls()); // not inserted anywhere yet
        let r = c.resolve("R").unwrap();
        db.insert(r, vec![n1, Value::int(1)]).unwrap();
        assert!(db.has_nulls());
    }

    #[test]
    fn null_counter_tracks_inserted_nulls() {
        let c = cat();
        let mut db = Database::new(&c);
        let r = c.resolve("R").unwrap();
        db.insert(r, vec![Value::Null(NullId(5)), Value::int(0)])
            .unwrap();
        // The next fresh null must not collide with null 5.
        assert_eq!(db.fresh_null(), Value::Null(NullId(6)));
    }

    #[test]
    fn map_values_collapses() {
        let c = cat();
        let mut db = Database::new(&c);
        db.insert_named("R", [1i64, 7]).unwrap();
        db.insert_named("R", [2i64, 7]).unwrap();
        // Map both keys to 9 — the tuples become identical and collapse.
        db.map_values(|v| {
            if v.as_const().and_then(|c| match c {
                cqchase_ir::Constant::Int(i) => Some(*i),
                _ => None,
            }) == Some(7)
            {
                v.clone()
            } else {
                Value::int(9)
            }
        });
        assert_eq!(db.total_tuples(), 1);
    }

    #[test]
    fn from_facts_roundtrip() {
        let p = cqchase_ir::parse_program("relation R(a, b). R(1, 2). R(2, 3).").unwrap();
        let db = Database::from_facts(&p.catalog, &p.facts).unwrap();
        assert_eq!(db.total_tuples(), 2);
        let r = p.catalog.resolve("R").unwrap();
        assert!(db.relation(r).contains(&vec![Value::int(2), Value::int(3)]));
    }

    #[test]
    fn display_lists_tuples() {
        let c = cat();
        let mut db = Database::new(&c);
        db.insert_named("R", [1i64, 2]).unwrap();
        db.insert_named("S", [3i64]).unwrap();
        let s = db.to_string();
        assert!(s.contains("R(1, 2)"));
        assert!(s.contains("S(3)"));
    }
}
