//! Dependency satisfaction checking over finite instances.

use std::collections::HashMap;
use std::fmt;

use cqchase_ir::{Dependency, DependencySet, Fd, Ind};

use crate::database::{Database, Tuple};
use crate::value::Value;

/// A concrete witness that an instance violates a dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two tuples of `fd.relation` agree on `fd.lhs` but differ on
    /// `fd.rhs`.
    Fd {
        /// The violated dependency.
        fd: Fd,
        /// Index (into the relation's tuple list) of the first tuple.
        first: usize,
        /// Index of the second tuple.
        second: usize,
    },
    /// A tuple of `ind.lhs_rel` whose `X`-projection has no witness in
    /// `ind.rhs_rel`.
    Ind {
        /// The violated dependency.
        ind: Ind,
        /// Index of the unwitnessed tuple.
        tuple: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Fd { fd, first, second } => write!(
                f,
                "FD violation on relation #{}: tuples {first} and {second} agree on {:?} but differ on column {}",
                fd.relation.0, fd.lhs, fd.rhs
            ),
            Violation::Ind { ind, tuple } => write!(
                f,
                "IND violation: tuple {tuple} of relation #{} has no witness in relation #{}",
                ind.lhs_rel.0, ind.rhs_rel.0
            ),
        }
    }
}

fn project(t: &Tuple, cols: &[usize]) -> Vec<Value> {
    cols.iter().map(|&c| t[c].clone()).collect()
}

/// All violations of `fd` in `db`, at most one per offending pair class
/// (the first conflicting pair per left-hand-side value is reported).
pub fn fd_violations(db: &Database, fd: &Fd) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut seen: HashMap<Vec<Value>, (usize, &Value)> = HashMap::new();
    for (i, t) in db.relation(fd.relation).tuples().enumerate() {
        let key = project(t, &fd.lhs);
        let rhs = &t[fd.rhs];
        match seen.get(&key) {
            None => {
                seen.insert(key, (i, rhs));
            }
            Some(&(j, prev)) => {
                if prev != rhs {
                    out.push(Violation::Fd {
                        fd: fd.clone(),
                        first: j,
                        second: i,
                    });
                }
            }
        }
    }
    out
}

/// All violations of `ind` in `db` (one per unwitnessed tuple).
pub fn ind_violations(db: &Database, ind: &Ind) -> Vec<Violation> {
    let mut out = Vec::new();
    // Index the right-hand side's Y-projections once.
    let rhs: std::collections::HashSet<Vec<Value>> = db
        .relation(ind.rhs_rel)
        .tuples()
        .map(|t| project(t, &ind.rhs_cols))
        .collect();
    for (i, t) in db.relation(ind.lhs_rel).tuples().enumerate() {
        if !rhs.contains(&project(t, &ind.lhs_cols)) {
            out.push(Violation::Ind {
                ind: ind.clone(),
                tuple: i,
            });
        }
    }
    out
}

/// Every violation of every dependency of Σ in `db`.
pub fn violations(db: &Database, deps: &DependencySet) -> Vec<Violation> {
    let mut out = Vec::new();
    for d in deps.iter() {
        match d {
            Dependency::Fd(fd) => out.extend(fd_violations(db, fd)),
            Dependency::Ind(ind) => out.extend(ind_violations(db, ind)),
        }
    }
    out
}

/// Whether `db` obeys every dependency of Σ (short-circuits).
pub fn satisfies(db: &Database, deps: &DependencySet) -> bool {
    deps.iter().all(|d| match d {
        Dependency::Fd(fd) => fd_violations(db, fd).is_empty(),
        Dependency::Ind(ind) => ind_violations(db, ind).is_empty(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::{Catalog, DependencySetBuilder};

    fn setup() -> (Catalog, DependencySet) {
        let mut c = Catalog::new();
        c.declare("EMP", ["eno", "sal", "dept"]).unwrap();
        c.declare("DEP", ["dno", "loc"]).unwrap();
        let deps = DependencySetBuilder::new(&c)
            .fd("EMP", ["eno"], "sal")
            .unwrap()
            .ind("EMP", ["dept"], "DEP", ["dno"])
            .unwrap()
            .build();
        (c, deps)
    }

    #[test]
    fn satisfied_instance() {
        let (c, deps) = setup();
        let mut db = Database::new(&c);
        db.insert_named("EMP", [1i64, 100, 10]).unwrap();
        db.insert_named("DEP", [10i64, 7]).unwrap();
        assert!(satisfies(&db, &deps));
        assert!(violations(&db, &deps).is_empty());
    }

    #[test]
    fn fd_violation_detected() {
        let (c, deps) = setup();
        let mut db = Database::new(&c);
        db.insert_named("EMP", [1i64, 100, 10]).unwrap();
        db.insert_named("EMP", [1i64, 200, 10]).unwrap();
        db.insert_named("DEP", [10i64, 7]).unwrap();
        let v = violations(&db, &deps);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            Violation::Fd {
                first: 0,
                second: 1,
                ..
            }
        ));
        assert!(!satisfies(&db, &deps));
    }

    #[test]
    fn ind_violation_detected() {
        let (c, deps) = setup();
        let mut db = Database::new(&c);
        db.insert_named("EMP", [1i64, 100, 10]).unwrap();
        let v = violations(&db, &deps);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::Ind { tuple: 0, .. }));
    }

    #[test]
    fn nulls_are_values_for_checking() {
        // Two distinct nulls in the FD's rhs column *are* a violation:
        // labelled nulls are distinct values until unified.
        let (c, deps) = setup();
        let mut db = Database::new(&c);
        let n1 = db.fresh_null();
        let n2 = db.fresh_null();
        let emp = c.resolve("EMP").unwrap();
        db.insert(emp, vec![Value::int(1), n1, Value::int(10)])
            .unwrap();
        db.insert(emp, vec![Value::int(1), n2, Value::int(10)])
            .unwrap();
        db.insert_named("DEP", [10i64, 7]).unwrap();
        assert!(!satisfies(&db, &deps));
    }

    #[test]
    fn empty_database_satisfies_everything() {
        let (c, deps) = setup();
        let db = Database::new(&c);
        assert!(satisfies(&db, &deps));
    }

    #[test]
    fn wide_ind() {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b", "c"]).unwrap();
        c.declare("S", ["x", "y"]).unwrap();
        let deps = DependencySetBuilder::new(&c)
            .ind("R", ["a", "c"], "S", ["y", "x"])
            .unwrap()
            .build();
        let mut db = Database::new(&c);
        db.insert_named("R", [1i64, 99, 2]).unwrap();
        db.insert_named("S", [2i64, 1]).unwrap(); // S(y=1 at col x? S(x=2,y=1): Y=[y,x] -> (1,2)? no
                                                  // R[a,c] = (1,2) must appear in S[y,x]; S(2,1) has (y,x) = (1,2). OK.
        assert!(satisfies(&db, &deps));
        let mut db2 = Database::new(&c);
        db2.insert_named("R", [1i64, 99, 2]).unwrap();
        db2.insert_named("S", [1i64, 2]).unwrap(); // (y,x) = (2,1) ≠ (1,2)
        assert!(!satisfies(&db2, &deps));
    }
}
