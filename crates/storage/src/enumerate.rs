//! Exhaustive enumeration of small database instances.
//!
//! Section 4 of the paper separates finite from unrestricted containment
//! with a concrete Σ. To verify such claims *empirically* we need to walk
//! every instance over a small domain: each possible tuple is a "cell",
//! and every subset of cells is an instance. The count is
//! `2^(Σ_R n^arity(R))`, so callers keep domains tiny (the experiments use
//! binary relations with domains of 2–4 elements).

use cqchase_ir::{Catalog, RelId};

use crate::database::Database;
use crate::value::Value;

/// Hard cap on the number of cells (tuple slots) we are willing to
/// enumerate over: `2^MAX_CELLS` instances.
pub const MAX_CELLS: u32 = 24;

/// All tuples over domain `{0, …, domain-1}` of the given arity, in
/// lexicographic order.
fn all_tuples(arity: usize, domain: i64) -> Vec<Vec<Value>> {
    let mut out = Vec::new();
    let total = (domain as u64).pow(arity as u32);
    for code in 0..total {
        let mut t = Vec::with_capacity(arity);
        let mut c = code;
        for _ in 0..arity {
            t.push(Value::int((c % domain as u64) as i64));
            c /= domain as u64;
        }
        out.push(t);
    }
    out
}

/// An iterator over **every** database instance over `catalog` whose
/// values are drawn from `{0, …, domain-1}`.
///
/// Returns `None` when the cell count exceeds [`MAX_CELLS`] (the caller
/// should sample instead of enumerating).
pub fn all_instances(catalog: &Catalog, domain: i64) -> Option<AllInstances> {
    let mut cells: Vec<(RelId, Vec<Value>)> = Vec::new();
    for (rel, schema) in catalog.iter() {
        for t in all_tuples(schema.arity(), domain) {
            cells.push((rel, t));
        }
    }
    if cells.len() as u32 > MAX_CELLS {
        return None;
    }
    Some(AllInstances {
        catalog: catalog.clone(),
        cells,
        next: 0,
        total: None,
    })
}

/// See [`all_instances`].
pub struct AllInstances {
    catalog: Catalog,
    cells: Vec<(RelId, Vec<Value>)>,
    next: u64,
    total: Option<u64>,
}

impl AllInstances {
    /// Number of instances this iterator will yield.
    pub fn count_total(&self) -> u64 {
        1u64 << self.cells.len()
    }
}

impl Iterator for AllInstances {
    type Item = Database;

    fn next(&mut self) -> Option<Database> {
        let total = *self.total.get_or_insert_with(|| 1u64 << self.cells.len());
        if self.next >= total {
            return None;
        }
        let mask = self.next;
        self.next += 1;
        let mut db = Database::new(&self.catalog);
        for (i, (rel, t)) in self.cells.iter().enumerate() {
            if mask & (1u64 << i) != 0 {
                db.insert(*rel, t.clone()).expect("cell arity is correct");
            }
        }
        Some(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::satisfies;
    use cqchase_ir::DependencySetBuilder;

    #[test]
    fn counts_match() {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        // domain 2, binary relation: 4 cells, 16 instances.
        let it = all_instances(&c, 2).unwrap();
        assert_eq!(it.count_total(), 16);
        assert_eq!(it.count(), 16);
    }

    #[test]
    fn first_is_empty_last_is_full() {
        let mut c = Catalog::new();
        c.declare("R", ["a"]).unwrap();
        let mut it = all_instances(&c, 2).unwrap();
        let first = it.next().unwrap();
        assert_eq!(first.total_tuples(), 0);
        let last = it.last().unwrap();
        assert_eq!(last.total_tuples(), 2);
    }

    #[test]
    fn too_many_cells_refused() {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b", "c"]).unwrap();
        // domain 3: 27 cells > 24.
        assert!(all_instances(&c, 3).is_none());
    }

    #[test]
    fn satisfying_instances_are_found() {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let deps = DependencySetBuilder::new(&c)
            .fd("R", ["b"], "a")
            .unwrap()
            .ind("R", ["b"], "R", ["a"])
            .unwrap()
            .build();
        let sat = all_instances(&c, 2)
            .unwrap()
            .filter(|db| satisfies(db, &deps))
            .count();
        // At least the empty instance and the two self-loops satisfy Σ.
        assert!(sat >= 3, "found {sat}");
    }

    #[test]
    fn multi_relation_enumeration() {
        let mut c = Catalog::new();
        c.declare("R", ["a"]).unwrap();
        c.declare("S", ["x"]).unwrap();
        // 2 + 2 cells = 16 instances.
        let it = all_instances(&c, 2).unwrap();
        assert_eq!(it.count(), 16);
    }
}
