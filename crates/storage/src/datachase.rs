//! The instance-level chase: repair a finite database so it satisfies a
//! set of FDs and INDs.
//!
//! This is the classical Maier–Mendelzon–Sagiv chase lifted from queries
//! to instances with labelled nulls:
//!
//! * **FD step** `R: Z → A`: two tuples agree on `Z` but differ on `A` ⇒
//!   unify the two `A`-values. Constant/constant disagreement is a hard
//!   inconsistency (mirroring the query chase's "delete all conjuncts and
//!   halt"); a null unifies with anything; null/null unification keeps the
//!   lower-numbered null.
//! * **IND step** `R[X] ⊆ S[Y]`: a tuple of `R` with no witness in `S` ⇒
//!   insert a new `S`-tuple carrying the `X`-projection in columns `Y` and
//!   fresh labelled nulls elsewhere (the *required* discipline — instances
//!   never need the oblivious variant).
//!
//! IND chases need not terminate (e.g. `R[2] ⊆ R[1]` over a tuple with
//! distinct values), so every run carries a [`DataChaseBudget`].

use cqchase_index::{FxHashMap, Sym};
use cqchase_ir::{Dependency, DependencySet, Fd, Ind};

use crate::database::{Database, Tuple};
use crate::indexed::DbIndex;
use crate::value::Value;

/// Resource limits for one instance-chase run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataChaseBudget {
    /// Maximum number of chase steps (FD unifications + IND insertions).
    pub max_steps: usize,
    /// Maximum total number of tuples the database may grow to.
    pub max_tuples: usize,
}

impl Default for DataChaseBudget {
    fn default() -> Self {
        DataChaseBudget {
            max_steps: 100_000,
            max_tuples: 100_000,
        }
    }
}

/// The result of chasing an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataChaseOutcome {
    /// The chase terminated; the database now satisfies Σ.
    Satisfied(Database),
    /// An FD forced two distinct constants to be equal — no repair exists
    /// that only unifies nulls and adds tuples.
    Inconsistent,
    /// The budget ran out first (the chase may be genuinely infinite).
    BudgetExhausted(Database),
}

impl DataChaseOutcome {
    /// The repaired database, if the chase succeeded.
    pub fn into_satisfied(self) -> Option<Database> {
        match self {
            DataChaseOutcome::Satisfied(db) => Some(db),
            _ => None,
        }
    }
}

/// Unifies two values through the whole database. A value rewrite can
/// collapse tuples arbitrarily, so the caller must rebuild its index.
fn unify(db: &mut Database, a: &Value, b: &Value) -> Result<(), ()> {
    let (from, to) = match (a, b) {
        (Value::Const(x), Value::Const(y)) => {
            return if x == y { Ok(()) } else { Err(()) };
        }
        (Value::Null(_), Value::Const(_)) => (a.clone(), b.clone()),
        (Value::Const(_), Value::Null(_)) => (b.clone(), a.clone()),
        (Value::Null(x), Value::Null(y)) => {
            if x == y {
                return Ok(());
            } else if x < y {
                (b.clone(), a.clone())
            } else {
                (a.clone(), b.clone())
            }
        }
    };
    db.map_values(|v| if *v == from { to.clone() } else { v.clone() });
    Ok(())
}

/// One pass: find the first FD violation (hash-grouped over the indexed
/// rows). Returns the two right-hand-side values to unify, or `None` if
/// no FD is applicable.
fn find_fd_violation(idx: &DbIndex, fds: &[&Fd]) -> Option<(Value, Value)> {
    for fd in fds {
        let mut seen: FxHashMap<Vec<Sym>, Sym> = FxHashMap::default();
        for row in idx.live_rows(fd.relation) {
            let syms = cqchase_index::FactSource::row_syms(idx, fd.relation, row);
            let key: Vec<Sym> = fd.lhs.iter().map(|&c| syms[c]).collect();
            let rhs = syms[fd.rhs];
            match seen.get(&key) {
                None => {
                    seen.insert(key, rhs);
                }
                Some(&prev) => {
                    if prev != rhs {
                        return Some((idx.value_of(prev).clone(), idx.value_of(rhs).clone()));
                    }
                }
            }
        }
    }
    None
}

/// One pass: find the first IND violation, probing for witnesses
/// through the column index instead of materializing projection sets.
/// Returns the violated IND's index and the witness-less projection, or
/// `None` when every IND is satisfied.
fn find_ind_violation(idx: &DbIndex, inds: &[&Ind]) -> Option<(usize, Vec<Sym>)> {
    for (i, ind) in inds.iter().enumerate() {
        let missing: Option<Vec<Sym>> = idx
            .live_rows(ind.lhs_rel)
            .map(|row| {
                let syms = cqchase_index::FactSource::row_syms(idx, ind.lhs_rel, row);
                ind.lhs_cols.iter().map(|&c| syms[c]).collect::<Vec<Sym>>()
            })
            .find(|proj| !idx.has_row_with(ind.rhs_rel, &ind.rhs_cols, proj));
        if let Some(proj) = missing {
            return Some((i, proj));
        }
    }
    None
}

/// Repairs one found IND violation: inserts the missing witness tuple
/// (projection values in the right-hand columns, fresh nulls elsewhere).
fn apply_ind_step(db: &mut Database, idx: &mut DbIndex, ind: &Ind, proj: &[Sym]) {
    let arity = db.catalog().arity(ind.rhs_rel);
    let mut new_tuple: Tuple = Vec::with_capacity(arity);
    for col in 0..arity {
        match ind.rhs_cols.iter().position(|&c| c == col) {
            Some(k) => new_tuple.push(idx.value_of(proj[k]).clone()),
            None => new_tuple.push(db.fresh_null()),
        }
    }
    let inserted = db
        .insert(ind.rhs_rel, new_tuple.clone())
        .expect("arity is correct by construction");
    debug_assert!(inserted, "a missing witness cannot already exist");
    idx.note_insert(ind.rhs_rel, &new_tuple);
}

/// Chases `db` with respect to `deps` under `budget`.
///
/// FD steps are exhausted before each IND step, mirroring the query
/// chase's schedule; the result (when `Satisfied`) obeys every dependency.
pub fn chase_instance(
    db: &Database,
    deps: &DependencySet,
    budget: DataChaseBudget,
) -> DataChaseOutcome {
    let mut db = db.clone();
    let fds: Vec<&Fd> = deps.fds().collect();
    let inds: Vec<&Ind> = deps
        .iter()
        .filter_map(Dependency::as_ind)
        .filter(|i| !i.is_trivial())
        .collect();
    let mut idx = DbIndex::build(&db);
    let mut steps = 0usize;
    loop {
        // Exhaust FDs. Each unification rewrites values wholesale, so
        // the index is rebuilt; IND insertions below keep it incremental.
        while let Some((x, y)) = find_fd_violation(&idx, &fds) {
            if unify(&mut db, &x, &y).is_err() {
                return DataChaseOutcome::Inconsistent;
            }
            idx = DbIndex::build(&db);
            steps += 1;
            if steps >= budget.max_steps {
                return DataChaseOutcome::BudgetExhausted(db);
            }
        }
        // One IND repair, then re-check FDs. The tuple budget is
        // enforced *before* inserting: a repair at the boundary must not
        // push the database past `max_tuples` (the old post-check let
        // the final step overshoot the budget — by one tuple normally,
        // and without bound relative to an already-over-budget input).
        // An instance that needs no repair is `Satisfied` regardless of
        // its size.
        let Some((i, proj)) = find_ind_violation(&idx, &inds) else {
            return DataChaseOutcome::Satisfied(db);
        };
        if db.total_tuples() >= budget.max_tuples {
            return DataChaseOutcome::BudgetExhausted(db);
        }
        apply_ind_step(&mut db, &mut idx, inds[i], &proj);
        steps += 1;
        if steps >= budget.max_steps {
            return DataChaseOutcome::BudgetExhausted(db);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::satisfies;
    use cqchase_ir::{Catalog, DependencySetBuilder};

    fn emp_dep() -> (Catalog, DependencySet) {
        let mut c = Catalog::new();
        c.declare("EMP", ["eno", "sal", "dept"]).unwrap();
        c.declare("DEP", ["dno", "loc"]).unwrap();
        let deps = DependencySetBuilder::new(&c)
            .fd("EMP", ["eno"], "sal")
            .unwrap()
            .ind("EMP", ["dept"], "DEP", ["dno"])
            .unwrap()
            .build();
        (c, deps)
    }

    #[test]
    fn repairs_missing_ind_witness() {
        let (c, deps) = emp_dep();
        let mut db = Database::new(&c);
        db.insert_named("EMP", [1i64, 100, 10]).unwrap();
        let out = chase_instance(&db, &deps, DataChaseBudget::default());
        let repaired = out.into_satisfied().expect("chase terminates");
        assert!(satisfies(&repaired, &deps));
        let dep = c.resolve("DEP").unwrap();
        assert_eq!(repaired.relation(dep).len(), 1);
        // The new DEP tuple carries the department key and a null location.
        let t = repaired.relation(dep).tuples().next().unwrap();
        assert_eq!(t[0], Value::int(10));
        assert!(t[1].is_null());
    }

    #[test]
    fn fd_unifies_nulls() {
        let (c, deps) = emp_dep();
        let mut db = Database::new(&c);
        let n1 = db.fresh_null();
        let n2 = db.fresh_null();
        let emp = c.resolve("EMP").unwrap();
        db.insert(emp, vec![Value::int(1), n1, Value::int(10)])
            .unwrap();
        db.insert(emp, vec![Value::int(1), n2, Value::int(10)])
            .unwrap();
        db.insert_named("DEP", [10i64, 0]).unwrap();
        let repaired = chase_instance(&db, &deps, DataChaseBudget::default())
            .into_satisfied()
            .unwrap();
        assert!(satisfies(&repaired, &deps));
        // The two EMP tuples collapsed into one.
        assert_eq!(repaired.relation(emp).len(), 1);
    }

    #[test]
    fn fd_constant_clash_is_inconsistent() {
        let (c, deps) = emp_dep();
        let mut db = Database::new(&c);
        db.insert_named("EMP", [1i64, 100, 10]).unwrap();
        db.insert_named("EMP", [1i64, 200, 10]).unwrap();
        db.insert_named("DEP", [10i64, 0]).unwrap();
        assert_eq!(
            chase_instance(&db, &deps, DataChaseBudget::default()),
            DataChaseOutcome::Inconsistent
        );
    }

    #[test]
    fn nonterminating_chase_hits_budget() {
        // R[2] ⊆ R[1] with an FD is the paper's Section 4 Σ; without the
        // FD the pure IND chase on R(0, 1) runs forever adding R(1, ⊥),
        // R(⊥, ⊥'), ...
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let deps = DependencySetBuilder::new(&c)
            .ind("R", ["b"], "R", ["a"])
            .unwrap()
            .build();
        let mut db = Database::new(&c);
        db.insert_named("R", [0i64, 1]).unwrap();
        let out = chase_instance(
            &db,
            &deps,
            DataChaseBudget {
                max_steps: 50,
                max_tuples: 50,
            },
        );
        assert!(matches!(out, DataChaseOutcome::BudgetExhausted(_)));
    }

    #[test]
    fn tuple_budget_never_overshoots() {
        // Pure IND cycle: the chase on R(0, 1) is infinite. Whatever
        // budget we set, the returned database must respect it exactly —
        // the regression was a final IND step landing past `max_tuples`.
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let deps = DependencySetBuilder::new(&c)
            .ind("R", ["b"], "R", ["a"])
            .unwrap()
            .build();
        let mut db = Database::new(&c);
        db.insert_named("R", [0i64, 1]).unwrap();
        for max_tuples in 1..6usize {
            let out = chase_instance(
                &db,
                &deps,
                DataChaseBudget {
                    max_steps: 1000,
                    max_tuples,
                },
            );
            let DataChaseOutcome::BudgetExhausted(result) = out else {
                panic!("infinite chase must exhaust the budget");
            };
            assert!(
                result.total_tuples() <= max_tuples,
                "budget {max_tuples} overshot: {} tuples",
                result.total_tuples()
            );
        }
    }

    #[test]
    fn over_budget_input_is_not_grown() {
        // An input already past the tuple budget gains no tuples at all
        // (previously one more IND step ran before the check).
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let deps = DependencySetBuilder::new(&c)
            .ind("R", ["b"], "R", ["a"])
            .unwrap()
            .build();
        let mut db = Database::new(&c);
        for i in 0..4i64 {
            db.insert_named("R", [10 * i, 10 * i + 1]).unwrap();
        }
        let out = chase_instance(
            &db,
            &deps,
            DataChaseBudget {
                max_steps: 1000,
                max_tuples: 2,
            },
        );
        let DataChaseOutcome::BudgetExhausted(result) = out else {
            panic!("violating over-budget input must report exhaustion");
        };
        assert_eq!(result.total_tuples(), db.total_tuples());
    }

    #[test]
    fn satisfied_over_budget_input_is_satisfied() {
        // Budget pressure must not misreport an instance that needs no
        // repair: satisfaction wins over size.
        let (c, deps) = emp_dep();
        let mut db = Database::new(&c);
        db.insert_named("EMP", [1i64, 100, 10]).unwrap();
        db.insert_named("DEP", [10i64, 0]).unwrap();
        let out = chase_instance(
            &db,
            &deps,
            DataChaseBudget {
                max_steps: 1000,
                max_tuples: 1,
            },
        );
        assert_eq!(out, DataChaseOutcome::Satisfied(db));
    }

    #[test]
    fn section4_sigma_terminates_on_instances() {
        // With the FD R:{2}→1 *and* the IND R[2]⊆R[1], chasing the single
        // tuple R(0, 1): IND adds R(1, ⊥0); IND on ⊥0 adds R(⊥0, ⊥1); ...
        // but the FD forces agreement when second columns coincide. On
        // this seed the chase is still infinite in general — check that a
        // *closed* instance passes untouched instead.
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let deps = DependencySetBuilder::new(&c)
            .fd("R", ["b"], "a")
            .unwrap()
            .ind("R", ["b"], "R", ["a"])
            .unwrap()
            .build();
        let mut db = Database::new(&c);
        // A 2-cycle: R(0,1), R(1,0) — satisfies both dependencies.
        db.insert_named("R", [0i64, 1]).unwrap();
        db.insert_named("R", [1i64, 0]).unwrap();
        let out = chase_instance(&db, &deps, DataChaseBudget::default());
        let repaired = out.into_satisfied().unwrap();
        assert_eq!(repaired.total_tuples(), 2);
    }

    #[test]
    fn already_satisfied_is_identity() {
        let (c, deps) = emp_dep();
        let mut db = Database::new(&c);
        db.insert_named("EMP", [1i64, 100, 10]).unwrap();
        db.insert_named("DEP", [10i64, 0]).unwrap();
        let repaired = chase_instance(&db, &deps, DataChaseBudget::default())
            .into_satisfied()
            .unwrap();
        assert_eq!(repaired.total_tuples(), db.total_tuples());
    }
}
