//! Values stored in relation instances: constants and labelled nulls.

use std::fmt;

use cqchase_ir::Constant;

/// Identifier of a labelled null within one database.
///
/// Labelled nulls are the instance-level analogue of the chase's created
/// NDVs: fresh, mutually distinct placeholders that the data chase may
/// later unify with constants or with each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NullId(pub u32);

/// One cell of a tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An ordinary constant.
    Const(Constant),
    /// A labelled null (distinct nulls are distinct values until the data
    /// chase unifies them).
    Null(NullId),
}

impl Value {
    /// Integer constant shorthand.
    pub fn int(i: i64) -> Self {
        Value::Const(Constant::int(i))
    }

    /// String constant shorthand.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Const(Constant::str(s))
    }

    /// Whether this is a labelled null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// The constant inside, if any.
    pub fn as_const(&self) -> Option<&Constant> {
        match self {
            Value::Const(c) => Some(c),
            Value::Null(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(c) => write!(f, "{c}"),
            Value::Null(n) => write!(f, "⊥{}", n.0),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<Constant> for Value {
    fn from(c: Constant) -> Self {
        Value::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let v = Value::int(3);
        assert!(!v.is_null());
        assert_eq!(v.as_const(), Some(&Constant::Int(3)));
        let n = Value::Null(NullId(0));
        assert!(n.is_null());
        assert_eq!(n.as_const(), None);
    }

    #[test]
    fn distinct_nulls_differ() {
        assert_ne!(Value::Null(NullId(0)), Value::Null(NullId(1)));
        assert_eq!(Value::Null(NullId(2)), Value::Null(NullId(2)));
    }

    #[test]
    fn display() {
        assert_eq!(Value::int(1).to_string(), "1");
        assert_eq!(Value::Null(NullId(4)).to_string(), "⊥4");
    }
}
