//! Conjunctive-query evaluation over finite instances.
//!
//! The paper defines `Q(B)` via homomorphisms: a tuple `ā` is in `Q(B)`
//! iff some function from the symbols of `Q` to the values of `B` fixes
//! constants, maps every conjunct onto a tuple of the corresponding
//! relation, and sends the summary row to `ā`. We implement exactly that
//! with the shared backtracking-join engine of [`cqchase_index`],
//! running over a [`DbIndex`] — the same ordering and pruning as the
//! homomorphism searches in `cqchase-core`, with per-atom candidates
//! produced by posting-list intersection instead of relation scans.
//!
//! The seed's scan-based evaluator is retained in [`naive`] as the
//! differential-testing and benchmarking reference.

use std::collections::BTreeSet;

use cqchase_index::{compile, join, join_unbound_distinct, JoinScratch, PlanCache, Sym};
use cqchase_ir::{ConjunctiveQuery, Term};

use crate::database::{Database, Tuple};
use crate::indexed::DbIndex;
use crate::value::Value;

fn summary_image(q: &ConjunctiveQuery, idx: &DbIndex, bind: &[Option<Sym>]) -> Tuple {
    q.head
        .iter()
        .map(|t| match t {
            Term::Const(c) => Value::Const(c.clone()),
            Term::Var(v) => idx
                .value_of(bind[v.index()].expect("head variables are body-safe, hence bound"))
                .clone(),
        })
        .collect()
}

/// Evaluates `Q(B)` against a prebuilt index: the set of distinct
/// summary-row images, sorted for deterministic output. Use this entry
/// point when evaluating several queries over one instance.
pub fn evaluate_indexed(q: &ConjunctiveQuery, idx: &DbIndex) -> Vec<Tuple> {
    // One-shot path: compile directly — a throwaway plan cache would
    // only add key hashing and structure clones.
    let Some(cq) = compile(q, idx) else {
        return Vec::new();
    };
    let mut out: BTreeSet<Tuple> = BTreeSet::new();
    // Distinct-witness mode: only the head image matters here, so
    // acyclic plans may collapse head-irrelevant subtrees instead of
    // enumerating their cross product.
    join_unbound_distinct(idx, &cq, &mut JoinScratch::new(), |bind, _| {
        out.insert(summary_image(q, idx, bind));
        false
    });
    out.into_iter().collect()
}

/// Evaluates `Q(B)`: the set of distinct summary-row images, sorted for
/// deterministic output.
pub fn evaluate(q: &ConjunctiveQuery, db: &Database) -> Vec<Tuple> {
    evaluate_indexed(q, &DbIndex::build(db))
}

/// Evaluates a batch of queries over one instance: the index is built
/// once and one plan cache plus one join scratch are shared across the
/// whole batch, so repeated queries skip compilation and the steady
/// state allocates only result tuples. Answers are exactly
/// `qs.map(|q| evaluate(q, db))` — the differential property tests hold
/// the batch path to that.
///
/// This is the sequential reference engine; `cqchase-par` runs the same
/// computation across worker threads.
pub fn evaluate_batch(qs: &[ConjunctiveQuery], db: &Database) -> Vec<Vec<Tuple>> {
    evaluate_batch_indexed(qs, &DbIndex::build(db))
}

/// [`evaluate_batch`] against a prebuilt index.
pub fn evaluate_batch_indexed(qs: &[ConjunctiveQuery], idx: &DbIndex) -> Vec<Vec<Tuple>> {
    let mut cache = PlanCache::new();
    let mut scratch = JoinScratch::new();
    qs.iter()
        .map(|q| evaluate_indexed_with(q, idx, &mut cache, &mut scratch))
        .collect()
}

/// [`evaluate_indexed`] with a caller-owned plan cache and join scratch —
/// the per-item primitive the batch engines (sequential above, parallel
/// in `cqchase-par`) are built from. The cache must be dedicated to
/// `idx` (plans embed index-resolved symbols).
pub fn evaluate_indexed_with(
    q: &ConjunctiveQuery,
    idx: &DbIndex,
    cache: &mut PlanCache,
    scratch: &mut JoinScratch,
) -> Vec<Tuple> {
    let Some(cq) = cache.get_or_compile(q, idx) else {
        return Vec::new();
    };
    let mut out: BTreeSet<Tuple> = BTreeSet::new();
    join_unbound_distinct(idx, cq, scratch, |bind, _| {
        out.insert(summary_image(q, idx, bind));
        false
    });
    out.into_iter().collect()
}

/// [`evaluate_boolean`] against a prebuilt index — use when probing
/// several queries over one instance (the index build dominates a
/// single cheap existence check).
pub fn evaluate_boolean_indexed(q: &ConjunctiveQuery, idx: &DbIndex) -> bool {
    let Some(cq) = compile(q, idx) else {
        return false;
    };
    // Distinct mode turns an acyclic existence check into pure semijoin
    // reduction: with no head variables, every subtree collapses.
    join_unbound_distinct(idx, &cq, &mut JoinScratch::new(), |_, _| true)
        == cqchase_index::JoinOutcome::Stopped
}

/// Evaluates a Boolean query (or any query) for mere satisfiability of
/// the body — `true` iff `Q(B)` is nonempty.
pub fn evaluate_boolean(q: &ConjunctiveQuery, db: &Database) -> bool {
    evaluate_boolean_indexed(q, &DbIndex::build(db))
}

/// [`contains_tuple`] against a prebuilt index — use when probing many
/// tuples over one instance.
pub fn contains_tuple_indexed(q: &ConjunctiveQuery, idx: &DbIndex, t: &Tuple) -> bool {
    if t.len() != q.output_arity() {
        return false;
    }
    let Some(cq) = compile(q, idx) else {
        return false;
    };
    let mut pre: Vec<Option<Sym>> = vec![None; cq.num_vars];
    for (ht, v) in q.head.iter().zip(t.iter()) {
        match ht {
            Term::Const(c) => {
                if !matches!(v, Value::Const(vc) if vc == c) {
                    return false;
                }
            }
            Term::Var(var) => {
                // A head variable is body-safe: binding it to a value
                // absent from the instance can never satisfy the body.
                let Some(sym) = idx.sym_of_value(v) else {
                    return false;
                };
                match pre[var.index()] {
                    Some(b) if b != sym => return false,
                    _ => pre[var.index()] = Some(sym),
                }
            }
        }
    }
    join(idx, &cq, pre, |_, _| true) == cqchase_index::JoinOutcome::Stopped
}

/// Whether `t ∈ Q(B)` — decided by pre-binding the head and searching,
/// which avoids enumerating the whole answer.
pub fn contains_tuple(q: &ConjunctiveQuery, db: &Database, t: &Tuple) -> bool {
    contains_tuple_indexed(q, &DbIndex::build(db), t)
}

/// The seed's scan-based evaluator, retained verbatim as the reference
/// implementation the indexed engine is differential-tested and
/// benchmarked against. Per atom it loops over **all** tuples of the
/// atom's relation.
pub mod naive {
    use std::collections::BTreeSet;

    use cqchase_ir::{ConjunctiveQuery, Term, VarId};

    use crate::database::{Database, Tuple};
    use crate::value::Value;

    /// Partial assignment from query variables to database values.
    struct Bindings {
        slots: Vec<Option<Value>>,
    }

    impl Bindings {
        fn new(n: usize) -> Self {
            Bindings {
                slots: vec![None; n],
            }
        }

        fn get(&self, v: VarId) -> Option<&Value> {
            self.slots[v.index()].as_ref()
        }

        fn set(&mut self, v: VarId, val: Value) {
            self.slots[v.index()] = Some(val);
        }

        fn clear(&mut self, v: VarId) {
            self.slots[v.index()] = None;
        }
    }

    /// Attempts to extend the bindings so that `atom` maps onto `tuple`.
    /// Returns the variables newly bound (for backtracking), or `None`
    /// if the tuple is incompatible.
    fn try_match(atom_terms: &[Term], tuple: &Tuple, b: &mut Bindings) -> Option<Vec<VarId>> {
        let mut newly = Vec::new();
        for (t, v) in atom_terms.iter().zip(tuple.iter()) {
            let ok = match t {
                Term::Const(c) => matches!(v, Value::Const(vc) if vc == c),
                Term::Var(var) => match b.get(*var) {
                    Some(bound) => bound == v,
                    None => {
                        b.set(*var, v.clone());
                        newly.push(*var);
                        true
                    }
                },
            };
            if !ok {
                for &u in &newly {
                    b.clear(u);
                }
                return None;
            }
        }
        Some(newly)
    }

    /// Greedy atom ordering: repeatedly pick the atom with the most
    /// already-bound symbols (constants count), breaking ties by fewer
    /// candidate tuples.
    fn atom_order(q: &ConjunctiveQuery, db: &Database) -> Vec<usize> {
        let n = q.atoms.len();
        let mut order = Vec::with_capacity(n);
        let mut used = vec![false; n];
        let mut bound: BTreeSet<VarId> = BTreeSet::new();
        for _ in 0..n {
            let mut best: Option<(usize, usize, usize)> = None;
            for (i, atom) in q.atoms.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let score = atom
                    .terms
                    .iter()
                    .filter(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => bound.contains(v),
                    })
                    .count();
                let size = db.relation(atom.relation).len();
                let better = match best {
                    None => true,
                    Some((_, s, sz)) => score > s || (score == s && size < sz),
                };
                if better {
                    best = Some((i, score, size));
                }
            }
            let (i, _, _) = best.expect("an unused atom exists");
            used[i] = true;
            bound.extend(q.atoms[i].vars());
            order.push(i);
        }
        order
    }

    fn search(
        q: &ConjunctiveQuery,
        db: &Database,
        order: &[usize],
        depth: usize,
        b: &mut Bindings,
        emit: &mut dyn FnMut(&Bindings) -> bool,
    ) -> bool {
        if depth == order.len() {
            return emit(b);
        }
        let atom = &q.atoms[order[depth]];
        for tuple in db.relation(atom.relation).tuples() {
            if let Some(newly) = try_match(&atom.terms, tuple, b) {
                let stop = search(q, db, order, depth + 1, b, emit);
                for v in newly {
                    b.clear(v);
                }
                if stop {
                    return true;
                }
            }
        }
        false
    }

    fn summary_image(q: &ConjunctiveQuery, b: &Bindings) -> Tuple {
        q.head
            .iter()
            .map(|t| match t {
                Term::Const(c) => Value::Const(c.clone()),
                Term::Var(v) => b
                    .get(*v)
                    .expect("head variables are body-safe, hence bound")
                    .clone(),
            })
            .collect()
    }

    /// The scan-based equivalent of [`super::evaluate`].
    pub fn evaluate(q: &ConjunctiveQuery, db: &Database) -> Vec<Tuple> {
        let order = atom_order(q, db);
        let mut b = Bindings::new(q.vars.len());
        let mut out: BTreeSet<Tuple> = BTreeSet::new();
        search(q, db, &order, 0, &mut b, &mut |b| {
            out.insert(summary_image(q, b));
            false
        });
        out.into_iter().collect()
    }

    /// The scan-based equivalent of [`super::evaluate_boolean`].
    pub fn evaluate_boolean(q: &ConjunctiveQuery, db: &Database) -> bool {
        let order = atom_order(q, db);
        let mut b = Bindings::new(q.vars.len());
        search(q, db, &order, 0, &mut b, &mut |_| true)
    }

    /// The scan-based equivalent of [`super::contains_tuple`].
    pub fn contains_tuple(q: &ConjunctiveQuery, db: &Database, t: &Tuple) -> bool {
        if t.len() != q.output_arity() {
            return false;
        }
        let mut b = Bindings::new(q.vars.len());
        for (ht, v) in q.head.iter().zip(t.iter()) {
            match ht {
                Term::Const(c) => {
                    if !matches!(v, Value::Const(vc) if vc == c) {
                        return false;
                    }
                }
                Term::Var(var) => match b.get(*var) {
                    Some(bound) => {
                        if bound != v {
                            return false;
                        }
                    }
                    None => b.set(*var, v.clone()),
                },
            }
        }
        let order = atom_order(q, db);
        search(q, db, &order, 0, &mut b, &mut |_| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::{parse_program, Catalog};

    fn setup() -> (Catalog, Vec<ConjunctiveQuery>, Database) {
        let p = parse_program(
            r#"
            relation EMP(eno, sal, dept).
            relation DEP(dno, loc).
            Q1(e) :- EMP(e, s, d), DEP(d, l).
            Q2(e) :- EMP(e, s, d).
            "#,
        )
        .unwrap();
        let mut db = Database::new(&p.catalog);
        db.insert_named("EMP", [1i64, 100, 10]).unwrap();
        db.insert_named("EMP", [2i64, 120, 20]).unwrap();
        db.insert_named("DEP", [10i64, 7]).unwrap();
        (p.catalog, p.queries, db)
    }

    #[test]
    fn intro_queries_differ_without_ind() {
        let (_, qs, db) = setup();
        // Employee 2's department 20 has no DEP row, so Q1 misses it.
        assert_eq!(evaluate(&qs[0], &db), vec![vec![Value::int(1)]]);
        assert_eq!(
            evaluate(&qs[1], &db),
            vec![vec![Value::int(1)], vec![Value::int(2)]]
        );
    }

    #[test]
    fn contains_tuple_matches_evaluate() {
        let (_, qs, db) = setup();
        assert!(contains_tuple(&qs[0], &db, &vec![Value::int(1)]));
        assert!(!contains_tuple(&qs[0], &db, &vec![Value::int(2)]));
        assert!(contains_tuple(&qs[1], &db, &vec![Value::int(2)]));
        assert!(!contains_tuple(&qs[1], &db, &vec![Value::int(9)]));
        // Wrong arity.
        assert!(!contains_tuple(
            &qs[1],
            &db,
            &vec![Value::int(1), Value::int(1)]
        ));
    }

    #[test]
    fn repeated_variable_forces_equality() {
        let p = parse_program("relation R(a, b). Q(x) :- R(x, x).").unwrap();
        let mut db = Database::new(&p.catalog);
        db.insert_named("R", [1i64, 1]).unwrap();
        db.insert_named("R", [1i64, 2]).unwrap();
        assert_eq!(evaluate(&p.queries[0], &db), vec![vec![Value::int(1)]]);
    }

    #[test]
    fn constants_in_body() {
        let p = parse_program("relation R(a, b). Q(x) :- R(x, 7).").unwrap();
        let mut db = Database::new(&p.catalog);
        db.insert_named("R", [1i64, 7]).unwrap();
        db.insert_named("R", [2i64, 8]).unwrap();
        assert_eq!(evaluate(&p.queries[0], &db), vec![vec![Value::int(1)]]);
    }

    #[test]
    fn boolean_query_eval() {
        let p = parse_program("relation R(a, b). Q() :- R(x, x).").unwrap();
        let mut db = Database::new(&p.catalog);
        db.insert_named("R", [1i64, 2]).unwrap();
        assert!(!evaluate_boolean(&p.queries[0], &db));
        db.insert_named("R", [3i64, 3]).unwrap();
        assert!(evaluate_boolean(&p.queries[0], &db));
        // A Boolean query's answer set is {()} when satisfied.
        assert_eq!(evaluate(&p.queries[0], &db), vec![Vec::<Value>::new()]);
    }

    #[test]
    fn join_across_relations() {
        let p = parse_program("relation R(a, b). relation S(b, c). Q(x, z) :- R(x, y), S(y, z).")
            .unwrap();
        let mut db = Database::new(&p.catalog);
        db.insert_named("R", [1i64, 2]).unwrap();
        db.insert_named("S", [2i64, 3]).unwrap();
        db.insert_named("S", [2i64, 4]).unwrap();
        db.insert_named("R", [5i64, 6]).unwrap();
        let ans = evaluate(&p.queries[0], &db);
        assert_eq!(
            ans,
            vec![
                vec![Value::int(1), Value::int(3)],
                vec![Value::int(1), Value::int(4)],
            ]
        );
    }

    #[test]
    fn nulls_join_like_values() {
        // Labelled nulls participate in joins as ordinary (distinct)
        // values — needed when evaluating over chased instances.
        let p = parse_program("relation R(a, b). Q(x) :- R(x, y), R(y, x).").unwrap();
        let mut db = Database::new(&p.catalog);
        let n = db.fresh_null();
        let r = p.catalog.resolve("R").unwrap();
        db.insert(r, vec![Value::int(1), n.clone()]).unwrap();
        db.insert(r, vec![n, Value::int(1)]).unwrap();
        let ans = evaluate(&p.queries[0], &db);
        assert_eq!(ans.len(), 2); // x = 1 and x = ⊥0 both work
    }

    #[test]
    fn empty_relation_gives_empty_answer() {
        let p = parse_program("relation R(a). Q(x) :- R(x).").unwrap();
        let db = Database::new(&p.catalog);
        assert!(evaluate(&p.queries[0], &db).is_empty());
    }

    #[test]
    fn indexed_agrees_with_naive() {
        let p = parse_program(
            "relation R(a, b). relation S(b, c).
             Q1(x, z) :- R(x, y), S(y, z).
             Q2(x) :- R(x, x).
             Q3(x) :- R(x, y), S(y, 3).
             Q4() :- R(x, y), R(y, x).",
        )
        .unwrap();
        let mut db = Database::new(&p.catalog);
        for (a, b) in [(1i64, 2), (2, 1), (2, 3), (3, 3), (5, 6)] {
            db.insert_named("R", [a, b]).unwrap();
        }
        for (a, b) in [(2i64, 3), (3, 3), (6, 1)] {
            db.insert_named("S", [a, b]).unwrap();
        }
        for q in &p.queries {
            assert_eq!(evaluate(q, &db), naive::evaluate(q, &db), "{}", q.name);
            assert_eq!(
                evaluate_boolean(q, &db),
                naive::evaluate_boolean(q, &db),
                "{}",
                q.name
            );
        }
        let probe = vec![Value::int(2), Value::int(3)];
        assert_eq!(
            contains_tuple(&p.queries[0], &db, &probe),
            naive::contains_tuple(&p.queries[0], &db, &probe)
        );
    }
}
