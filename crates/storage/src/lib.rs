//! # cqchase-storage — in-memory relational database substrate
//!
//! The paper quantifies containment over *databases* (finite or infinite).
//! This crate supplies the finite side of that story:
//!
//! * [`Database`] — a set of named relation instances over a
//!   [`Catalog`](cqchase_ir::Catalog), with values that are constants or
//!   **labelled nulls** (needed by the instance-level chase);
//! * [`check`] — deciding whether an instance *obeys* a set of FDs and
//!   INDs, reporting concrete violations;
//! * [`datachase`] — the classical instance-level chase: repairs an
//!   arbitrary instance into one satisfying Σ (or reports inconsistency /
//!   budget exhaustion — IND chases may not terminate);
//! * [`eval`] — conjunctive-query evaluation `Q(B)` by homomorphism
//!   enumeration, exactly the paper's Section 2 semantics;
//! * [`enumerate`] — exhaustive enumeration of small instances, used to
//!   verify finite-containment claims empirically (Section 4 experiments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod database;
pub mod datachase;
pub mod enumerate;
pub mod eval;
pub mod indexed;
pub mod value;

pub use check::{satisfies, violations, Violation};
pub use database::{Database, RelationInstance, Tuple};
pub use datachase::{chase_instance, DataChaseBudget, DataChaseOutcome};
pub use eval::{
    contains_tuple, contains_tuple_indexed, evaluate, evaluate_batch, evaluate_batch_indexed,
    evaluate_boolean, evaluate_boolean_indexed, evaluate_indexed, evaluate_indexed_with,
};
pub use indexed::DbIndex;
pub use value::{NullId, Value};
