//! Column indexes over a [`Database`], shared by query evaluation and
//! the instance-level chase.
//!
//! A [`DbIndex`] interns every [`Value`] of the instance into the
//! [`Sym`] space of [`cqchase_index`] and maintains per-relation,
//! per-column posting lists. It implements [`FactSource`], so the shared
//! backtracking-join engine evaluates conjunctive queries over it with
//! the same most-constrained-first ordering and index-intersection
//! candidate generation as homomorphism search in `cqchase-core` — one
//! engine, three consumers.
//!
//! The index is derived data: build it from a database, and keep it in
//! sync tuple by tuple — [`DbIndex::note_insert`] after appending (the
//! data chase and the service's live-update path do) and
//! [`DbIndex::note_remove`] after deleting. Deletion **tombstones** the
//! row: its slot keeps its symbols but drops out of every posting list,
//! the dedup map, and live-row enumeration, so in-flight plans never see
//! it. Tombstones are reclaimed by amortized per-relation compaction
//! (the size-tiered adaptive trigger shared with
//! [`RelationInstance`](crate::database::RelationInstance): the dead
//! fraction required decays as the relation grows), which renumbers rows
//! and rebuilds that relation's postings — but **never** the symbol
//! pool: interned symbols are stable for the index's whole lifetime, so
//! compiled plans (which embed resolved constant symbols) survive every
//! mutation. The one plan invalidation mutation can cause is an insert
//! interning a *new* constant, which falsifies cached "unsatisfiable"
//! plans — watch [`DbIndex::num_syms`] and call
//! [`PlanCache::drop_unsatisfiable`](cqchase_index::PlanCache::drop_unsatisfiable)
//! when it grows. Wholesale value rewrites ([`Database::map_values`])
//! still invalidate everything; rebuild afterwards.

use cqchase_index::{ColumnIndex, DedupIndex, FactSource, Sym, SymPool};
use cqchase_ir::{Constant, RelId};

use crate::database::{compaction_due, Database, Tuple};
use crate::value::Value;

#[cfg(test)]
use crate::database::COMPACT_MIN_DEAD;

/// Posting lists, dedup map, and interned rows for one [`Database`],
/// maintained incrementally under insertion and deletion.
#[derive(Debug, Clone)]
pub struct DbIndex {
    pool: SymPool<Value>,
    cols: ColumnIndex,
    /// Whole-row lookup `(rel, syms) → live slot` (the deletion path's
    /// row finder; doubles as a duplicate probe).
    dedup: DedupIndex,
    /// Interned tuples, flattened per relation (arity-strided). Slots
    /// of removed rows keep their symbols until compaction.
    sym_rows: Vec<Vec<Sym>>,
    /// Liveness per slot (`false` = tombstone). The slot count itself
    /// (`live[rel].len()`) is not derivable from `sym_rows` for
    /// zero-arity relations.
    live: Vec<Vec<bool>>,
    /// Live rows per relation.
    live_counts: Vec<usize>,
    /// Tombstoned slots per relation (compaction trigger).
    dead: Vec<usize>,
    arities: Vec<usize>,
    compactions: u64,
    /// Tombstoned slots reclaimed by compaction so far.
    slots_reclaimed: u64,
    /// Approximate bytes released by compaction and capacity shrinking
    /// (reclaimed row symbols + shrunk posting/dedup capacity).
    bytes_reclaimed: u64,
}

impl DbIndex {
    /// Builds the index for the current contents of `db`.
    pub fn build(db: &Database) -> DbIndex {
        let catalog = db.catalog();
        let arities: Vec<usize> = catalog.rel_ids().map(|r| catalog.arity(r)).collect();
        let mut idx = DbIndex {
            pool: SymPool::new(),
            cols: ColumnIndex::new(arities.iter().copied()),
            dedup: DedupIndex::new(),
            sym_rows: vec![Vec::new(); catalog.len()],
            live: vec![Vec::new(); catalog.len()],
            live_counts: vec![0; catalog.len()],
            dead: vec![0; catalog.len()],
            arities,
            compactions: 0,
            slots_reclaimed: 0,
            bytes_reclaimed: 0,
        };
        for (rel, inst) in db.iter() {
            for t in inst.tuples() {
                idx.note_insert(rel, t);
            }
        }
        idx
    }

    /// Registers a tuple just appended to `rel` (must be called once per
    /// *new* tuple — the owner's [`Database`] deduplicates).
    pub fn note_insert(&mut self, rel: RelId, tuple: &Tuple) {
        let slot = self.live[rel.index()].len() as u32;
        self.live[rel.index()].push(true);
        self.live_counts[rel.index()] += 1;
        let start = self.sym_rows[rel.index()].len();
        for v in tuple {
            let sym = self.pool.intern(v);
            self.sym_rows[rel.index()].push(sym);
        }
        let syms = &self.sym_rows[rel.index()][start..];
        self.cols.insert_row(rel, slot, syms);
        self.dedup.insert(rel, syms, slot);
    }

    /// Unregisters a tuple just removed from `rel`: tombstones its slot,
    /// drops it from every posting list and the dedup map, and compacts
    /// the relation when tombstones outnumber live rows. Returns whether
    /// the tuple was indexed (mirrors [`Database::remove`]'s answer).
    pub fn note_remove(&mut self, rel: RelId, tuple: &Tuple) -> bool {
        let mut syms = Vec::with_capacity(tuple.len());
        for v in tuple {
            // A value the pool never saw cannot be in any row.
            let Some(sym) = self.pool.get(v) else {
                return false;
            };
            syms.push(sym);
        }
        let Some(slot) = self.dedup.get(rel, &syms) else {
            return false;
        };
        debug_assert!(
            self.live[rel.index()][slot as usize],
            "dedup maps live slots"
        );
        self.live[rel.index()][slot as usize] = false;
        self.live_counts[rel.index()] -= 1;
        self.dead[rel.index()] += 1;
        self.cols.remove_row(rel, slot, &syms);
        self.dedup.remove(rel, &syms, slot);
        if compaction_due(self.live_counts[rel.index()], self.dead[rel.index()]) {
            self.compact(rel);
        }
        true
    }

    /// Reclaims `rel`'s tombstones: renumbers the live rows densely,
    /// rebuilds that relation's postings and dedup entries, and shrinks
    /// posting-list and dedup-shard capacity when occupancy fell below
    /// a quarter (very wide relations must not pin peak-size
    /// allocations for a long-lived session). The symbol pool is
    /// untouched (symbols are stable for the index's lifetime).
    fn compact(&mut self, rel: RelId) {
        let a = self.arities[rel.index()];
        let old_rows = std::mem::take(&mut self.sym_rows[rel.index()]);
        let old_live = std::mem::take(&mut self.live[rel.index()]);
        self.cols.clear_rel(rel);
        self.dedup.clear_rel(rel);
        let keep = self.live_counts[rel.index()];
        let mut rows = Vec::with_capacity(keep * a);
        for (slot, alive) in old_live.iter().enumerate() {
            if !alive {
                continue;
            }
            // Zero-arity relations hold at most one (empty) row, whose
            // new slot is 0 — which `rows.len() / 1` also yields.
            let new_slot = (rows.len() / a.max(1)) as u32;
            let start = rows.len();
            rows.extend_from_slice(&old_rows[slot * a..slot * a + a]);
            let syms = &rows[start..];
            self.cols.insert_row(rel, new_slot, syms);
            self.dedup.insert(rel, syms, new_slot);
        }
        self.sym_rows[rel.index()] = rows;
        self.live[rel.index()] = vec![true; keep];
        let reclaimed = std::mem::take(&mut self.dead[rel.index()]);
        self.compactions += 1;
        self.slots_reclaimed += reclaimed as u64;
        let shrunk = self.cols.shrink_rel(rel) + self.dedup.shrink_rel(rel);
        self.bytes_reclaimed += ((reclaimed * a + shrunk) * std::mem::size_of::<Sym>()) as u64;
    }

    /// Number of live (indexed, not tombstoned) rows of `rel`.
    pub fn num_rows(&self, rel: RelId) -> usize {
        self.live_counts[rel.index()]
    }

    /// The live row ids of `rel`, ascending (slot ids; tombstones are
    /// skipped). Consumers scanning whole relations must use this, not
    /// `0..num_rows`, once deletions are in play.
    pub fn live_rows(&self, rel: RelId) -> impl Iterator<Item = u32> + '_ {
        self.live[rel.index()]
            .iter()
            .enumerate()
            .filter_map(|(slot, &alive)| alive.then_some(slot as u32))
    }

    /// Number of distinct symbols interned so far. Grows monotonically;
    /// a growth after inserts means a brand-new constant appeared, which
    /// falsifies any cached "unsatisfiable" plan.
    pub fn num_syms(&self) -> usize {
        self.pool.len()
    }

    /// Number of compaction passes run so far (observability).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Tombstoned slots reclaimed by compaction so far (observability).
    pub fn slots_reclaimed(&self) -> u64 {
        self.slots_reclaimed
    }

    /// Approximate **bytes** released by compaction and capacity
    /// shrinking so far: reclaimed row symbols plus shrunk
    /// posting-list/dedup-shard capacity entries, each costed at
    /// `size_of::<Sym>()` (observability; an estimate, not an
    /// allocator measurement — map entries are larger than one `Sym`,
    /// so shrink reclamation is undercounted).
    pub fn bytes_reclaimed(&self) -> u64 {
        self.bytes_reclaimed
    }

    /// Approximate resident bytes of the whole index: symbol pool,
    /// posting lists, dedup map, and the interned row storage. An
    /// estimate for capacity planning (the shared-catalog memory gate),
    /// not an allocator measurement.
    pub fn approx_bytes(&self) -> usize {
        let sym = std::mem::size_of::<Sym>();
        let rows: usize = self.sym_rows.iter().map(|r| r.capacity() * sym).sum();
        let live: usize = self.live.iter().map(Vec::capacity).sum();
        self.pool.approx_bytes()
            + self.cols.approx_bytes()
            + self.dedup.approx_bytes()
            + rows
            + live
    }

    /// The interned symbol of a value, if it occurs in the instance.
    pub fn sym_of_value(&self, v: &Value) -> Option<Sym> {
        self.pool.get(v)
    }

    /// The value behind an interned symbol.
    pub fn value_of(&self, sym: Sym) -> &Value {
        self.pool.resolve(sym)
    }

    /// Number of distinct symbols in column `col` of `rel` among live
    /// rows — the planner's selectivity statistic, maintained
    /// incrementally by the posting maps through insert, delete, and
    /// compaction (deletes remove a symbol's entry the moment its
    /// posting list empties, so tombstones never inflate the count).
    pub fn distinct_count(&self, rel: RelId, col: usize) -> usize {
        self.cols.distinct_count(rel, col)
    }

    /// Whether some live row of `rel` carries exactly `syms` at `cols` —
    /// the IND-witness probe of the data chase, via posting intersection.
    pub fn has_row_with(&self, rel: RelId, cols: &[usize], syms: &[Sym]) -> bool {
        debug_assert_eq!(cols.len(), syms.len());
        let bound: Vec<(usize, Sym)> = cols.iter().copied().zip(syms.iter().copied()).collect();
        if bound.is_empty() {
            return self.num_rows(rel) > 0;
        }
        let mut out = Vec::new();
        self.cols
            .candidates(rel, &bound, |row| self.row(rel, row), &mut out);
        !out.is_empty()
    }

    #[inline]
    fn row(&self, rel: RelId, row: u32) -> &[Sym] {
        let a = self.arities[rel.index()];
        let start = row as usize * a;
        &self.sym_rows[rel.index()][start..start + a]
    }
}

impl FactSource for DbIndex {
    fn rel_size(&self, rel: RelId) -> usize {
        self.num_rows(rel)
    }

    fn row_syms(&self, rel: RelId, row: u32) -> &[Sym] {
        self.row(rel, row)
    }

    fn posting_len(&self, rel: RelId, col: usize, sym: Sym) -> usize {
        self.cols.posting_len(rel, col, sym)
    }

    fn candidates(&self, rel: RelId, bound: &[(usize, Sym)], out: &mut Vec<u32>) {
        if bound.is_empty() {
            out.extend(self.live_rows(rel));
        } else {
            self.cols
                .candidates(rel, bound, |row| self.row(rel, row), out);
        }
    }

    fn sym_of_const(&self, c: &Constant) -> Option<Sym> {
        self.pool.get(&Value::Const(c.clone()))
    }

    fn distinct_count(&self, rel: RelId, col: usize) -> usize {
        self.cols.distinct_count(rel, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::Catalog;

    fn db() -> (Catalog, Database) {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("S", ["x"]).unwrap();
        let mut db = Database::new(&c);
        db.insert_named("R", [1i64, 2]).unwrap();
        db.insert_named("R", [2i64, 2]).unwrap();
        db.insert_named("S", [2i64]).unwrap();
        (c, db)
    }

    #[test]
    fn build_and_probe() {
        let (c, db) = db();
        let idx = DbIndex::build(&db);
        let r = c.resolve("R").unwrap();
        let s = c.resolve("S").unwrap();
        assert_eq!(idx.num_rows(r), 2);
        assert_eq!(idx.num_rows(s), 1);
        let two = idx.sym_of_value(&Value::int(2)).unwrap();
        assert_eq!(idx.posting_len(r, 1, two), 2);
        assert_eq!(idx.posting_len(r, 0, two), 1);
        assert!(idx.has_row_with(s, &[0], &[two]));
        let one = idx.sym_of_value(&Value::int(1)).unwrap();
        assert!(!idx.has_row_with(s, &[0], &[one]));
    }

    #[test]
    fn note_insert_keeps_pace() {
        let (c, mut db) = db();
        let mut idx = DbIndex::build(&db);
        let s = c.resolve("S").unwrap();
        let t: Tuple = vec![Value::int(9)];
        assert!(db.insert(s, t.clone()).unwrap());
        idx.note_insert(s, &t);
        assert_eq!(idx.num_rows(s), 2);
        let nine = idx.sym_of_value(&Value::int(9)).unwrap();
        assert!(idx.has_row_with(s, &[0], &[nine]));
    }

    #[test]
    fn note_remove_tombstones_the_row() {
        let (c, mut db) = db();
        let mut idx = DbIndex::build(&db);
        let r = c.resolve("R").unwrap();
        let t: Tuple = vec![Value::int(1), Value::int(2)];
        assert!(db.remove(r, &t).unwrap());
        assert!(idx.note_remove(r, &t));
        assert_eq!(idx.num_rows(r), 1);
        let one = idx.sym_of_value(&Value::int(1)).unwrap();
        let two = idx.sym_of_value(&Value::int(2)).unwrap();
        assert_eq!(idx.posting_len(r, 0, one), 0);
        assert_eq!(idx.posting_len(r, 1, two), 1);
        assert!(!idx.has_row_with(r, &[0], &[one]));
        assert_eq!(idx.live_rows(r).collect::<Vec<_>>(), vec![1]);
        // Removing it again (or a never-seen tuple) is a no-op.
        assert!(!idx.note_remove(r, &t));
        assert!(!idx.note_remove(r, &vec![Value::int(7), Value::int(7)]));
    }

    #[test]
    fn delete_then_reinsert_identical_tuple() {
        let (c, mut db) = db();
        let mut idx = DbIndex::build(&db);
        let r = c.resolve("R").unwrap();
        let t: Tuple = vec![Value::int(1), Value::int(2)];
        assert!(db.remove(r, &t).unwrap());
        assert!(idx.note_remove(r, &t));
        assert!(db.insert(r, t.clone()).unwrap());
        idx.note_insert(r, &t);
        assert_eq!(idx.num_rows(r), 2);
        let one = idx.sym_of_value(&Value::int(1)).unwrap();
        assert_eq!(idx.posting_len(r, 0, one), 1);
        assert!(idx.has_row_with(
            r,
            &[0, 1],
            &[one, idx.sym_of_value(&Value::int(2)).unwrap()]
        ));
        // The reinserted tuple is removable again through the fresh
        // dedup entry (tombstone of the old slot does not shadow it).
        assert!(idx.note_remove(r, &t));
        assert_eq!(idx.num_rows(r), 1);
    }

    #[test]
    fn compaction_reclaims_tombstones_and_preserves_answers() {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let r = c.resolve("R").unwrap();
        let mut db = Database::new(&c);
        let n = 3 * COMPACT_MIN_DEAD as i64;
        for i in 0..n {
            db.insert(r, vec![Value::int(i), Value::int(i + 1)])
                .unwrap();
        }
        let mut idx = DbIndex::build(&db);
        // Delete two of every three tuples: dead outnumbers live well
        // past the minimum threshold, so compaction must trigger.
        for i in 0..n {
            if i % 3 == 0 {
                continue;
            }
            let t = vec![Value::int(i), Value::int(i + 1)];
            assert!(db.remove(r, &t).unwrap());
            assert!(idx.note_remove(r, &t));
        }
        assert!(idx.compactions() > 0, "compaction must have triggered");
        assert_eq!(idx.num_rows(r), n as usize / 3);
        // Renumbered rows still answer probes and enumerate densely.
        let fresh = DbIndex::build(&db);
        for i in 0..n {
            let sym_live = idx
                .sym_of_value(&Value::int(i))
                .map(|s| idx.posting_len(r, 0, s))
                .unwrap_or(0);
            let sym_fresh = fresh
                .sym_of_value(&Value::int(i))
                .map(|s| fresh.posting_len(r, 0, s))
                .unwrap_or(0);
            assert_eq!(sym_live, sym_fresh, "posting lengths for key {i}");
        }
        let live: Vec<u32> = idx.live_rows(r).collect();
        assert_eq!(live.len(), idx.num_rows(r));
        // Amortized reclamation bound: tombstones never outnumber live
        // rows by more than the compaction minimum.
        let max_slot = *live.last().unwrap() as usize + 1;
        assert!(
            max_slot - live.len() <= live.len() + COMPACT_MIN_DEAD,
            "tombstones unreclaimed: {} slots for {} live rows",
            max_slot,
            live.len()
        );
        // Symbols survived compaction (plans stay valid).
        assert!(idx.sym_of_value(&Value::int(0)).is_some());
    }

    #[test]
    fn adaptive_compaction_fires_earlier_on_large_relations() {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let r = c.resolve("R").unwrap();
        let mut db = Database::new(&c);
        let n = 10_000i64;
        for i in 0..n {
            db.insert(r, vec![Value::int(i), Value::int(i + 1)])
                .unwrap();
        }
        let mut idx = DbIndex::build(&db);
        // Delete 4000 of 10000: dead crosses live/2 (the mid size
        // tier's trigger) on the way, while never reaching the small
        // tier's dead > live — the adaptive policy must compact where
        // the fixed policy would not have.
        for i in 0..4_000 {
            let t = vec![Value::int(i), Value::int(i + 1)];
            assert!(db.remove(r, &t).unwrap());
            assert!(idx.note_remove(r, &t));
        }
        assert!(idx.compactions() > 0, "mid-tier trigger must have fired");
        assert!(idx.slots_reclaimed() > 0);
        assert!(idx.bytes_reclaimed() > 0);
        assert_eq!(idx.num_rows(r), 6_000);
        // The live view and a fresh rebuild agree.
        let fresh = DbIndex::build(&db);
        assert_eq!(idx.live_rows(r).count(), fresh.live_rows(r).count(),);
    }

    #[test]
    fn num_syms_grows_only_on_new_constants() {
        let (c, mut db) = db();
        let mut idx = DbIndex::build(&db);
        let s = c.resolve("S").unwrap();
        let before = idx.num_syms();
        let t: Tuple = vec![Value::int(2)]; // already interned
        db.remove(s, &t).unwrap();
        idx.note_remove(s, &t);
        db.insert(s, t.clone()).unwrap();
        idx.note_insert(s, &t);
        assert_eq!(idx.num_syms(), before);
        let t9: Tuple = vec![Value::int(9)];
        db.insert(s, t9.clone()).unwrap();
        idx.note_insert(s, &t9);
        assert_eq!(idx.num_syms(), before + 1);
    }
}
