//! Column indexes over a [`Database`], shared by query evaluation and
//! the instance-level chase.
//!
//! A [`DbIndex`] interns every [`Value`] of the instance into the
//! [`Sym`] space of [`cqchase_index`] and maintains per-relation,
//! per-column posting lists. It implements [`FactSource`], so the shared
//! backtracking-join engine evaluates conjunctive queries over it with
//! the same most-constrained-first ordering and index-intersection
//! candidate generation as homomorphism search in `cqchase-core` — one
//! engine, three consumers.
//!
//! The index is derived data: build it from a database, and keep it in
//! sync with [`DbIndex::note_insert`] when appending tuples (the data
//! chase does). Wholesale value rewrites ([`Database::map_values`])
//! invalidate it; rebuild afterwards.

use cqchase_index::{ColumnIndex, FactSource, Sym, SymPool};
use cqchase_ir::{Constant, RelId};

use crate::database::{Database, Tuple};
use crate::value::Value;

/// Posting lists and interned rows for one [`Database`] snapshot.
#[derive(Debug, Clone)]
pub struct DbIndex {
    pool: SymPool<Value>,
    cols: ColumnIndex,
    /// Interned tuples, flattened per relation (arity-strided).
    sym_rows: Vec<Vec<Sym>>,
    /// Row count per relation (not derivable from `sym_rows` for
    /// zero-arity relations).
    counts: Vec<usize>,
    arities: Vec<usize>,
}

impl DbIndex {
    /// Builds the index for the current contents of `db`.
    pub fn build(db: &Database) -> DbIndex {
        let catalog = db.catalog();
        let arities: Vec<usize> = catalog.rel_ids().map(|r| catalog.arity(r)).collect();
        let mut idx = DbIndex {
            pool: SymPool::new(),
            cols: ColumnIndex::new(arities.iter().copied()),
            sym_rows: vec![Vec::new(); catalog.len()],
            counts: vec![0; catalog.len()],
            arities,
        };
        for (rel, inst) in db.iter() {
            for t in inst.tuples() {
                idx.note_insert(rel, t);
            }
        }
        idx
    }

    /// Registers a tuple just appended to `rel` (must be called in
    /// insertion order, once per *new* tuple).
    pub fn note_insert(&mut self, rel: RelId, tuple: &Tuple) {
        let row = self.counts[rel.index()] as u32;
        self.counts[rel.index()] += 1;
        let start = self.sym_rows[rel.index()].len();
        for v in tuple {
            let sym = self.pool.intern(v);
            self.sym_rows[rel.index()].push(sym);
        }
        let syms = &self.sym_rows[rel.index()][start..];
        self.cols.insert_row(rel, row, syms);
    }

    /// Number of indexed rows of `rel`.
    pub fn num_rows(&self, rel: RelId) -> usize {
        self.counts[rel.index()]
    }

    /// The interned symbol of a value, if it occurs in the instance.
    pub fn sym_of_value(&self, v: &Value) -> Option<Sym> {
        self.pool.get(v)
    }

    /// The value behind an interned symbol.
    pub fn value_of(&self, sym: Sym) -> &Value {
        self.pool.resolve(sym)
    }

    /// Whether some row of `rel` carries exactly `syms` at `cols` — the
    /// IND-witness probe of the data chase, via posting intersection.
    pub fn has_row_with(&self, rel: RelId, cols: &[usize], syms: &[Sym]) -> bool {
        debug_assert_eq!(cols.len(), syms.len());
        let bound: Vec<(usize, Sym)> = cols.iter().copied().zip(syms.iter().copied()).collect();
        if bound.is_empty() {
            return self.num_rows(rel) > 0;
        }
        let mut out = Vec::new();
        self.cols
            .candidates(rel, &bound, |row| self.row(rel, row), &mut out);
        !out.is_empty()
    }

    #[inline]
    fn row(&self, rel: RelId, row: u32) -> &[Sym] {
        let a = self.arities[rel.index()];
        let start = row as usize * a;
        &self.sym_rows[rel.index()][start..start + a]
    }
}

impl FactSource for DbIndex {
    fn rel_size(&self, rel: RelId) -> usize {
        self.num_rows(rel)
    }

    fn row_syms(&self, rel: RelId, row: u32) -> &[Sym] {
        self.row(rel, row)
    }

    fn posting_len(&self, rel: RelId, col: usize, sym: Sym) -> usize {
        self.cols.posting_len(rel, col, sym)
    }

    fn candidates(&self, rel: RelId, bound: &[(usize, Sym)], out: &mut Vec<u32>) {
        if bound.is_empty() {
            out.extend(0..self.num_rows(rel) as u32);
        } else {
            self.cols
                .candidates(rel, bound, |row| self.row(rel, row), out);
        }
    }

    fn sym_of_const(&self, c: &Constant) -> Option<Sym> {
        self.pool.get(&Value::Const(c.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::Catalog;

    fn db() -> (Catalog, Database) {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("S", ["x"]).unwrap();
        let mut db = Database::new(&c);
        db.insert_named("R", [1i64, 2]).unwrap();
        db.insert_named("R", [2i64, 2]).unwrap();
        db.insert_named("S", [2i64]).unwrap();
        (c, db)
    }

    #[test]
    fn build_and_probe() {
        let (c, db) = db();
        let idx = DbIndex::build(&db);
        let r = c.resolve("R").unwrap();
        let s = c.resolve("S").unwrap();
        assert_eq!(idx.num_rows(r), 2);
        assert_eq!(idx.num_rows(s), 1);
        let two = idx.sym_of_value(&Value::int(2)).unwrap();
        assert_eq!(idx.posting_len(r, 1, two), 2);
        assert_eq!(idx.posting_len(r, 0, two), 1);
        assert!(idx.has_row_with(s, &[0], &[two]));
        let one = idx.sym_of_value(&Value::int(1)).unwrap();
        assert!(!idx.has_row_with(s, &[0], &[one]));
    }

    #[test]
    fn note_insert_keeps_pace() {
        let (c, mut db) = db();
        let mut idx = DbIndex::build(&db);
        let s = c.resolve("S").unwrap();
        let t: Tuple = vec![Value::int(9)];
        assert!(db.insert(s, t.clone()).unwrap());
        idx.note_insert(s, &t);
        assert_eq!(idx.num_rows(s), 2);
        let nine = idx.sym_of_value(&Value::int(9)).unwrap();
        assert!(idx.has_row_with(s, &[0], &[nine]));
    }
}
