//! Property tests on the storage substrate: the data chase repairs into
//! Σ-satisfying instances, evaluation is monotone, and the evaluation
//! entry points agree.

use cqchase_ir::{parse_program, Catalog, DependencySet, Fd, Ind, RelId};
use cqchase_storage::{
    chase_instance, contains_tuple, evaluate, evaluate_boolean, satisfies, DataChaseBudget,
    DataChaseOutcome, Database, Value,
};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.declare("R", ["a", "b"]).unwrap();
    c.declare("S", ["x"]).unwrap();
    c
}

/// A random instance over R (binary) and S (unary) with domain 0..4.
fn instances() -> impl Strategy<Value = Database> {
    (
        proptest::collection::vec((0i64..4, 0i64..4), 0..6),
        proptest::collection::vec(0i64..4, 0..4),
    )
        .prop_map(|(rs, ss)| {
            let c = catalog();
            let mut db = Database::new(&c);
            for (a, b) in rs {
                db.insert_named("R", [a, b]).unwrap();
            }
            for s in ss {
                db.insert_named("S", [s]).unwrap();
            }
            db
        })
}

/// Random Σ: possibly an FD on R, possibly the acyclic IND R[b] ⊆ S[x].
fn sigmas() -> impl Strategy<Value = DependencySet> {
    (any::<bool>(), any::<bool>()).prop_map(|(fd, ind)| {
        let c = catalog();
        let r = c.resolve("R").unwrap();
        let s = c.resolve("S").unwrap();
        let mut out = DependencySet::new();
        if fd {
            out.push(Fd::new(r, vec![0], 1));
        }
        if ind {
            out.push(Ind::new(r, vec![1], s, vec![0]));
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A successful data chase yields an instance satisfying Σ, and never
    /// loses the answer tuples of queries over the *original* data
    /// (homomorphic repairs only merge and add).
    #[test]
    fn data_chase_repairs(db in instances(), sigma in sigmas()) {
        match chase_instance(&db, &sigma, DataChaseBudget::default()) {
            DataChaseOutcome::Satisfied(repaired) => {
                prop_assert!(satisfies(&repaired, &sigma));
            }
            DataChaseOutcome::Inconsistent => {
                // Only FDs over constants can be inconsistent.
                prop_assert!(sigma.num_fds() > 0);
            }
            DataChaseOutcome::BudgetExhausted(_) => {
                // The acyclic Σ here always terminates.
                prop_assert!(false, "acyclic data chase must terminate");
            }
        }
    }

    /// Already-satisfying instances pass through the chase unchanged.
    #[test]
    fn chase_is_identity_on_satisfying(db in instances(), sigma in sigmas()) {
        if satisfies(&db, &sigma) {
            let out = chase_instance(&db, &sigma, DataChaseBudget::default());
            match out {
                DataChaseOutcome::Satisfied(repaired) => {
                    prop_assert_eq!(repaired, db);
                }
                _ => prop_assert!(false, "satisfying instance must stay satisfied"),
            }
        }
    }

    /// CQ answers are monotone under tuple insertion.
    #[test]
    fn evaluation_monotone(db in instances(), extra in (0i64..4, 0i64..4)) {
        let p = parse_program(
            "relation R(a, b). relation S(x).
             Q(u) :- R(u, v), S(v).",
        )
        .unwrap();
        let q = p.query("Q").unwrap();
        let before = evaluate(q, &db);
        let mut bigger = db.clone();
        bigger.insert_named("R", [extra.0, extra.1]).unwrap();
        let after = evaluate(q, &bigger);
        for t in &before {
            prop_assert!(after.contains(t), "answers must be monotone");
        }
    }

    /// `contains_tuple` agrees with full evaluation.
    #[test]
    fn contains_agrees_with_evaluate(db in instances(), probe in 0i64..4) {
        let p = parse_program(
            "relation R(a, b). relation S(x).
             Q(u) :- R(u, v).",
        )
        .unwrap();
        let q = p.query("Q").unwrap();
        let all = evaluate(q, &db);
        let t = vec![Value::int(probe)];
        prop_assert_eq!(contains_tuple(q, &db, &t), all.contains(&t));
    }

    /// Boolean evaluation = nonempty answer.
    #[test]
    fn boolean_agrees(db in instances()) {
        let p = parse_program(
            "relation R(a, b). relation S(x).
             Q(u) :- R(u, v), R(v, w).",
        )
        .unwrap();
        let q = p.query("Q").unwrap();
        prop_assert_eq!(evaluate_boolean(q, &db), !evaluate(q, &db).is_empty());
    }

    /// Enumeration covers exactly the advertised count and every yielded
    /// instance is well-formed.
    #[test]
    fn enumeration_counts(domain in 1i64..=2) {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let it = cqchase_storage::enumerate::all_instances(&c, domain).unwrap();
        let expect = it.count_total();
        let r = RelId(0);
        let mut n = 0u64;
        for db in it {
            n += 1;
            for t in db.relation(r).tuples() {
                prop_assert_eq!(t.len(), 2);
            }
        }
        prop_assert_eq!(n, expect);
    }
}
