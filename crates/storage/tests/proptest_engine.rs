//! Differential property tests: the indexed join engine and the
//! retained naive scan-based evaluator must return identical `Q(B)`
//! result sets (not just cardinalities) on random queries and instances.

use cqchase_index::{
    compile, join_unbound, join_unbound_distinct, CompiledQuery, JoinScratch, Sym,
};
use cqchase_ir::builder::TermSpec;
use cqchase_ir::{Catalog, ConjunctiveQuery, QueryBuilder};
use cqchase_storage::eval::naive;
use cqchase_storage::{
    contains_tuple, evaluate, evaluate_batch, evaluate_boolean, Database, DbIndex, Value,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.declare("R", ["a", "b"]).unwrap();
    c.declare("S", ["x", "y"]).unwrap();
    c
}

/// Random instances over two binary relations, domain 0..4.
fn instances() -> impl Strategy<Value = Database> {
    (
        proptest::collection::vec((0i64..4, 0i64..4), 0..8),
        proptest::collection::vec((0i64..4, 0i64..4), 0..8),
    )
        .prop_map(|(rs, ss)| {
            let c = catalog();
            let mut db = Database::new(&c);
            for (a, b) in rs {
                db.insert_named("R", [a, b]).unwrap();
            }
            for (a, b) in ss {
                db.insert_named("S", [a, b]).unwrap();
            }
            db
        })
}

/// Random queries: 1–4 atoms over R/S, variables v0..v3 (v0 the head),
/// occasional constants in the second position.
fn queries() -> impl Strategy<Value = ConjunctiveQuery> {
    let atom = (any::<bool>(), 0usize..4, 0usize..4, 0usize..8);
    proptest::collection::vec(atom, 1..4).prop_map(|atoms| {
        let cat = catalog();
        let mut b = QueryBuilder::new("Q", &cat).head_vars(["v0"]);
        for (i, (use_s, x, y, c)) in atoms.iter().enumerate() {
            let rel = if *use_s { "S" } else { "R" };
            let x = if i == 0 { 0 } else { *x };
            b = if *c < 2 {
                b.atom(
                    rel,
                    [TermSpec::Var(format!("v{x}")), TermSpec::from(*c as i64)],
                )
                .unwrap()
            } else {
                b.atom(rel, [format!("v{x}"), format!("v{y}")]).unwrap()
            };
        }
        b.build().unwrap()
    })
}

/// Every full-enumeration solution (complete variable assignment) the
/// engine emits, sorted. Tuples are deduplicated per relation, so a
/// full binding determines the witness rows — the bindings alone are a
/// faithful multiset fingerprint of the enumeration.
fn all_solutions(idx: &DbIndex, cq: &CompiledQuery) -> Vec<Vec<Option<Sym>>> {
    let mut out = Vec::new();
    join_unbound(idx, cq, &mut JoinScratch::new(), |bind, _| {
        out.push(bind.to_vec());
        false
    });
    out.sort();
    out
}

fn head_image(cq: &CompiledQuery, solutions: &[Vec<Option<Sym>>]) -> BTreeSet<Vec<Option<Sym>>> {
    solutions
        .iter()
        .map(|bind| cq.head_vars.iter().map(|&v| bind[v as usize]).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The full answer sets agree, element for element.
    #[test]
    fn evaluate_agrees(q in queries(), db in instances()) {
        prop_assert_eq!(evaluate(&q, &db), naive::evaluate(&q, &db));
    }

    /// Boolean satisfiability agrees.
    #[test]
    fn boolean_agrees(q in queries(), db in instances()) {
        prop_assert_eq!(evaluate_boolean(&q, &db), naive::evaluate_boolean(&q, &db));
    }

    /// The batch evaluator (shared index, plan cache, join scratch)
    /// returns exactly the per-query answer sets, against the naive
    /// scan reference.
    #[test]
    fn evaluate_batch_agrees(
        qs in proptest::collection::vec(queries(), 1..6),
        db in instances(),
    ) {
        let batch = evaluate_batch(&qs, &db);
        prop_assert_eq!(batch.len(), qs.len());
        for (q, got) in qs.iter().zip(batch.iter()) {
            prop_assert_eq!(got, &naive::evaluate(q, &db), "query {}", q.name);
        }
    }

    /// The acyclic fast path (when the planner takes it) enumerates
    /// exactly the same solution multiset as pure backtracking: strip
    /// the Yannakakis plan off a clone of the compiled query so the
    /// engine is forced down the backtracking search, and compare
    /// solution-for-solution.
    #[test]
    fn acyclic_agrees_with_forced_backtracking(q in queries(), db in instances()) {
        let idx = DbIndex::build(&db);
        let Some(cq) = compile(&q, &idx) else { return Ok(()); };
        let mut forced = cq.clone();
        forced.acyclic = None;
        prop_assert_eq!(all_solutions(&idx, &cq), all_solutions(&idx, &forced));
    }

    /// Distinct-witness mode may skip solutions that differ only outside
    /// the head, but its head-variable image must equal full
    /// enumeration's, and every emission must be a genuine solution.
    #[test]
    fn distinct_mode_preserves_head_image(q in queries(), db in instances()) {
        let idx = DbIndex::build(&db);
        let Some(cq) = compile(&q, &idx) else { return Ok(()); };
        let full = all_solutions(&idx, &cq);
        let full_set: BTreeSet<_> = full.iter().cloned().collect();
        let mut dist = Vec::new();
        join_unbound_distinct(&idx, &cq, &mut JoinScratch::new(), |bind, _| {
            dist.push(bind.to_vec());
            false
        });
        for bind in &dist {
            prop_assert!(full_set.contains(bind), "distinct emitted a non-solution");
        }
        prop_assert_eq!(head_image(&cq, &dist), head_image(&cq, &full));
    }

    /// Membership probes agree on every domain value.
    #[test]
    fn contains_agrees(q in queries(), db in instances()) {
        for v in 0i64..4 {
            let t = vec![Value::int(v)];
            prop_assert_eq!(
                contains_tuple(&q, &db, &t),
                naive::contains_tuple(&q, &db, &t),
                "probe {}", v
            );
        }
    }
}
