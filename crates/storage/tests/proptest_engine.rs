//! Differential property tests: the indexed join engine and the
//! retained naive scan-based evaluator must return identical `Q(B)`
//! result sets (not just cardinalities) on random queries and instances.

use cqchase_ir::builder::TermSpec;
use cqchase_ir::{Catalog, ConjunctiveQuery, QueryBuilder};
use cqchase_storage::eval::naive;
use cqchase_storage::{
    contains_tuple, evaluate, evaluate_batch, evaluate_boolean, Database, Value,
};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.declare("R", ["a", "b"]).unwrap();
    c.declare("S", ["x", "y"]).unwrap();
    c
}

/// Random instances over two binary relations, domain 0..4.
fn instances() -> impl Strategy<Value = Database> {
    (
        proptest::collection::vec((0i64..4, 0i64..4), 0..8),
        proptest::collection::vec((0i64..4, 0i64..4), 0..8),
    )
        .prop_map(|(rs, ss)| {
            let c = catalog();
            let mut db = Database::new(&c);
            for (a, b) in rs {
                db.insert_named("R", [a, b]).unwrap();
            }
            for (a, b) in ss {
                db.insert_named("S", [a, b]).unwrap();
            }
            db
        })
}

/// Random queries: 1–4 atoms over R/S, variables v0..v3 (v0 the head),
/// occasional constants in the second position.
fn queries() -> impl Strategy<Value = ConjunctiveQuery> {
    let atom = (any::<bool>(), 0usize..4, 0usize..4, 0usize..8);
    proptest::collection::vec(atom, 1..4).prop_map(|atoms| {
        let cat = catalog();
        let mut b = QueryBuilder::new("Q", &cat).head_vars(["v0"]);
        for (i, (use_s, x, y, c)) in atoms.iter().enumerate() {
            let rel = if *use_s { "S" } else { "R" };
            let x = if i == 0 { 0 } else { *x };
            b = if *c < 2 {
                b.atom(
                    rel,
                    [TermSpec::Var(format!("v{x}")), TermSpec::from(*c as i64)],
                )
                .unwrap()
            } else {
                b.atom(rel, [format!("v{x}"), format!("v{y}")]).unwrap()
            };
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The full answer sets agree, element for element.
    #[test]
    fn evaluate_agrees(q in queries(), db in instances()) {
        prop_assert_eq!(evaluate(&q, &db), naive::evaluate(&q, &db));
    }

    /// Boolean satisfiability agrees.
    #[test]
    fn boolean_agrees(q in queries(), db in instances()) {
        prop_assert_eq!(evaluate_boolean(&q, &db), naive::evaluate_boolean(&q, &db));
    }

    /// The batch evaluator (shared index, plan cache, join scratch)
    /// returns exactly the per-query answer sets, against the naive
    /// scan reference.
    #[test]
    fn evaluate_batch_agrees(
        qs in proptest::collection::vec(queries(), 1..6),
        db in instances(),
    ) {
        let batch = evaluate_batch(&qs, &db);
        prop_assert_eq!(batch.len(), qs.len());
        for (q, got) in qs.iter().zip(batch.iter()) {
            prop_assert_eq!(got, &naive::evaluate(q, &db), "query {}", q.name);
        }
    }

    /// Membership probes agree on every domain value.
    #[test]
    fn contains_agrees(q in queries(), db in instances()) {
        for v in 0i64..4 {
            let t = vec![Value::int(v)];
            prop_assert_eq!(
                contains_tuple(&q, &db, &t),
                naive::contains_tuple(&q, &db, &t),
                "probe {}", v
            );
        }
    }
}
