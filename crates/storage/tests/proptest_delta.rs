//! Differential property tests for incremental index maintenance: any
//! interleaving of inserts, deletes, and evaluations over a live
//! [`DbIndex`] must be indistinguishable from rebuilding the index from
//! scratch at every observation point.
//!
//! The domain is deliberately tiny (0..4) so scripts constantly delete
//! tuples that are absent, reinsert tuples identical to previously
//! deleted ones (the dedup/tombstone interaction), and delete tuples
//! twice — the edge cases a posting-list/tombstone bug would corrupt.

use cqchase_ir::builder::TermSpec;
use cqchase_ir::{Catalog, ConjunctiveQuery, QueryBuilder};
use cqchase_storage::eval::naive;
use cqchase_storage::{evaluate_indexed, Database, DbIndex, Value};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.declare("R", ["a", "b"]).unwrap();
    c.declare("S", ["x", "y"]).unwrap();
    c
}

/// One scripted operation over the live database.
#[derive(Debug, Clone)]
enum DeltaOp {
    /// Insert (relation choice, a, b) — may be a duplicate no-op.
    Insert(bool, i64, i64),
    /// Delete (relation choice, a, b) — may be an absent no-op.
    Delete(bool, i64, i64),
    /// Evaluate the query at this index in the pool and compare.
    Eval(usize),
}

fn ops() -> impl Strategy<Value = Vec<DeltaOp>> {
    // (kind, rel-choice, a, b): kind 0–2 insert, 3–5 delete (equal
    // weight keeps churn high), 6 eval (b picks the query).
    let op = (0u8..7, any::<bool>(), 0i64..4, 0i64..4).prop_map(|(kind, r, a, b)| match kind {
        0..=2 => DeltaOp::Insert(r, a, b),
        3..=5 => DeltaOp::Delete(r, a, b),
        _ => DeltaOp::Eval(b as usize),
    });
    proptest::collection::vec(op, 1..40)
}

/// A pool of four fixed query shapes exercising joins, self-joins,
/// constants, and cross-relation joins.
fn query_pool(cat: &Catalog) -> Vec<ConjunctiveQuery> {
    let q1 = QueryBuilder::new("Q1", cat)
        .head_vars(["v0"])
        .atom("R", ["v0", "v1"])
        .unwrap()
        .build()
        .unwrap();
    let q2 = QueryBuilder::new("Q2", cat)
        .head_vars(["v0"])
        .atom("R", ["v0", "v0"])
        .unwrap()
        .build()
        .unwrap();
    let q3 = QueryBuilder::new("Q3", cat)
        .head_vars(["v0"])
        .atom("R", ["v0", "v1"])
        .unwrap()
        .atom("S", ["v1", "v2"])
        .unwrap()
        .build()
        .unwrap();
    let q4 = QueryBuilder::new("Q4", cat)
        .head_vars(["v0"])
        .atom("S", [TermSpec::Var("v0".into()), TermSpec::from(2i64)])
        .unwrap()
        .build()
        .unwrap();
    vec![q1, q2, q3, q4]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Replay a random delta script, keeping one index incrementally in
    /// sync; at every eval point the incremental index must answer
    /// bit-identically to a from-scratch rebuild AND to the naive
    /// scan evaluator over the same database.
    #[test]
    fn incremental_index_equals_rebuild(script in ops()) {
        let cat = catalog();
        let queries = query_pool(&cat);
        let r = cat.resolve("R").unwrap();
        let s = cat.resolve("S").unwrap();
        let mut db = Database::new(&cat);
        let mut idx = DbIndex::build(&db);
        for (step, op) in script.iter().enumerate() {
            match op {
                DeltaOp::Insert(use_s, a, b) => {
                    let rel = if *use_s { s } else { r };
                    let t = vec![Value::int(*a), Value::int(*b)];
                    if db.insert(rel, t.clone()).unwrap() {
                        idx.note_insert(rel, &t);
                    }
                }
                DeltaOp::Delete(use_s, a, b) => {
                    let rel = if *use_s { s } else { r };
                    let t = vec![Value::int(*a), Value::int(*b)];
                    let in_db = db.remove(rel, &t).unwrap();
                    let in_idx = idx.note_remove(rel, &t);
                    prop_assert_eq!(in_db, in_idx, "step {}: membership disagreement", step);
                }
                DeltaOp::Eval(qi) => {
                    let q = &queries[*qi];
                    let live = evaluate_indexed(q, &idx);
                    let rebuilt = evaluate_indexed(q, &DbIndex::build(&db));
                    prop_assert_eq!(&live, &rebuilt, "step {}: live vs rebuild, {}", step, &q.name);
                    prop_assert_eq!(&live, &naive::evaluate(q, &db), "step {}: vs naive", step);
                }
            }
            // Structural invariants hold at every step, not just evals.
            prop_assert_eq!(
                idx.num_rows(r) + idx.num_rows(s),
                db.total_tuples(),
                "step {}: live counts drifted", step
            );
        }
        // Final state: full agreement on every query in the pool.
        for q in &queries {
            prop_assert_eq!(evaluate_indexed(q, &idx), naive::evaluate(q, &db), "{}", &q.name);
        }
    }

    /// The planner's per-column statistics (live-row counts and
    /// distinct-value counts) maintained incrementally through an
    /// arbitrary insert/delete script — including the adaptive
    /// compactions the deletes trigger — equal the statistics of an
    /// index rebuilt from scratch, after every single operation.
    #[test]
    fn incremental_stats_equal_rebuild(script in ops()) {
        let cat = catalog();
        let r = cat.resolve("R").unwrap();
        let s = cat.resolve("S").unwrap();
        let mut db = Database::new(&cat);
        let mut idx = DbIndex::build(&db);
        for (step, op) in script.iter().enumerate() {
            match op {
                DeltaOp::Insert(use_s, a, b) => {
                    let rel = if *use_s { s } else { r };
                    let t = vec![Value::int(*a), Value::int(*b)];
                    if db.insert(rel, t.clone()).unwrap() {
                        idx.note_insert(rel, &t);
                    }
                }
                DeltaOp::Delete(use_s, a, b) => {
                    let rel = if *use_s { s } else { r };
                    let t = vec![Value::int(*a), Value::int(*b)];
                    if db.remove(rel, &t).unwrap() {
                        idx.note_remove(rel, &t);
                    }
                }
                DeltaOp::Eval(_) => {}
            }
            let rebuilt = DbIndex::build(&db);
            for rel in [r, s] {
                prop_assert_eq!(
                    idx.num_rows(rel),
                    rebuilt.num_rows(rel),
                    "step {}: live-row count drifted for {:?}", step, rel
                );
                for col in 0..2 {
                    prop_assert_eq!(
                        idx.distinct_count(rel, col),
                        rebuilt.distinct_count(rel, col),
                        "step {}: distinct count drifted for {:?} col {}", step, rel, col
                    );
                }
            }
        }
    }

    /// Delete-then-reinsert of the *same* tuple (any number of times,
    /// interleaved with probes) keeps dedup, postings, and liveness
    /// coherent — the tombstone interaction called out in the issue.
    #[test]
    fn delete_reinsert_cycles_stay_coherent(
        cycles in proptest::collection::vec((0i64..3, 0i64..3, any::<bool>()), 1..24),
    ) {
        let cat = catalog();
        let r = cat.resolve("R").unwrap();
        let queries = query_pool(&cat);
        let mut db = Database::new(&cat);
        let mut idx = DbIndex::build(&db);
        for (a, b, reinsert) in cycles {
            let t = vec![Value::int(a), Value::int(b)];
            if db.insert(r, t.clone()).unwrap() {
                idx.note_insert(r, &t);
            }
            prop_assert!(db.remove(r, &t).unwrap());
            prop_assert!(idx.note_remove(r, &t));
            if reinsert {
                prop_assert!(db.insert(r, t.clone()).unwrap());
                idx.note_insert(r, &t);
            }
            let rebuilt = DbIndex::build(&db);
            prop_assert_eq!(idx.num_rows(r), rebuilt.num_rows(r));
            for q in &queries {
                prop_assert_eq!(
                    evaluate_indexed(q, &idx),
                    evaluate_indexed(q, &rebuilt),
                    "{}", &q.name
                );
            }
        }
    }
}
