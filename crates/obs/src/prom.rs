//! Prometheus-style text exposition of a JSON stats snapshot.
//!
//! The service's `stats` verb returns one nested JSON document; the
//! `metrics` verb must expose the *same numbers* as flat
//! Prometheus-style text. Rather than hand-maintaining two renderers
//! that drift, both sides are defined against one canonical
//! **flattening** ([`flatten_numeric`]) from a JSON tree to
//! `metric-name{labels} → f64`:
//!
//! * every numeric (or boolean) leaf becomes one sample named by its
//!   path, prefixed `cqchase_` and joined with `_`
//!   (`stats.batching.batches` → `cqchase_batching_batches`);
//! * an array named `*histogram_us_pow2` becomes a cumulative
//!   Prometheus histogram: `<path>_bucket{le="E"}` lines whose edges
//!   are the buckets' inclusive integer upper bounds (`0`, `1`, `3`,
//!   `7`, … `2^i - 1`) with the final overflow bucket as `+Inf`;
//! * any other all-numeric array gets an index label (`{i="3"}`);
//! * the object under a `sessions_detail` key is treated as
//!   per-session gauges: child key = session name, emitted as
//!   `cqchase_session_<leaf>{session="name"}`;
//! * strings, nulls, and mixed arrays carry no numeric value and are
//!   skipped.
//!
//! [`render_prometheus`] prints that flattening as exposition text and
//! [`parse_prometheus`] reads the text back into the same map, so
//! `parse(render(v)) == flatten(v)` is a pure-function property the
//! test suite checks exhaustively (and the service never has to).

use std::collections::BTreeMap;

use serde_json::Value;

/// Metric-name prefix for every exposed sample.
const PREFIX: &str = "cqchase";

/// Canonically flattens a stats JSON tree into Prometheus samples:
/// `fully_qualified_name{labels}` → value. See the module docs for the
/// exact rules.
pub fn flatten_numeric(v: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    walk(v, PREFIX, &mut out);
    out
}

fn sanitize(seg: &str) -> String {
    seg.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// The numeric value of a scalar leaf, with booleans as 0/1 gauges.
fn scalar(v: &Value) -> Option<f64> {
    match v {
        Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
        _ => v.as_f64(),
    }
}

fn walk(v: &Value, path: &str, out: &mut BTreeMap<String, f64>) {
    match v {
        Value::Object(map) => {
            for (k, child) in map.iter() {
                if k == "sessions_detail" {
                    sessions_detail(child, out);
                } else {
                    walk(child, &format!("{path}_{}", sanitize(k)), out);
                }
            }
        }
        Value::Array(items) => {
            let Some(nums) = all_numeric(items) else {
                return;
            };
            if path.ends_with("histogram_us_pow2") {
                let mut cum = 0.0;
                for (i, n) in nums.iter().enumerate() {
                    cum += n;
                    out.insert(
                        format!("{path}_bucket{{le=\"{}\"}}", edge(i, nums.len())),
                        cum,
                    );
                }
            } else {
                for (i, n) in nums.iter().enumerate() {
                    out.insert(format!("{path}{{i=\"{i}\"}}"), *n);
                }
            }
        }
        _ => {
            if let Some(n) = scalar(v) {
                out.insert(path.to_string(), n);
            }
        }
    }
}

/// The inclusive upper edge label of power-of-two latency bucket `i`
/// (bucket 0 holds only `0 µs`; bucket `i ≥ 1` covers
/// `[2^(i-1), 2^i)` µs, so its largest integer member is `2^i - 1`;
/// the final bucket is the overflow).
fn edge(i: usize, len: usize) -> String {
    if i + 1 == len {
        "+Inf".to_string()
    } else if i == 0 {
        "0".to_string()
    } else if i < 64 {
        ((1u64 << i) - 1).to_string()
    } else {
        "+Inf".to_string()
    }
}

fn all_numeric(items: &[Value]) -> Option<Vec<f64>> {
    items.iter().map(scalar).collect()
}

/// Per-session gauges: `sessions_detail.<name>.<leaf…>` becomes
/// `cqchase_session_<leaf…>{session="<name>"}`.
fn sessions_detail(v: &Value, out: &mut BTreeMap<String, f64>) {
    let Some(map) = v.as_object() else { return };
    for (session, stats) in map.iter() {
        let mut flat = BTreeMap::new();
        walk(stats, &format!("{PREFIX}_session"), &mut flat);
        for (name, value) in flat {
            // Inject the session label before any existing label set.
            let keyed = match name.find('{') {
                Some(b) => format!(
                    "{}{{session=\"{}\",{}",
                    &name[..b],
                    escape_label(session),
                    &name[b + 1..]
                ),
                None => format!("{name}{{session=\"{}\"}}", escape_label(session)),
            };
            out.insert(keyed, value);
        }
    }
}

fn escape_label(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '\\' => vec!['\\', '\\'],
            '"' => vec!['\\', '"'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

fn unescape_label(s: &str) -> String {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Renders a stats JSON tree as Prometheus-style exposition text: one
/// `name{labels} value` sample per flattened entry, `# TYPE` comments
/// for histogram families.
pub fn render_prometheus(v: &Value) -> String {
    let flat = flatten_numeric(v);
    let mut out = String::new();
    let mut last_family = String::new();
    for (key, value) in &flat {
        let family = key.split('{').next().unwrap_or(key);
        if family != last_family {
            if let Some(base) = family.strip_suffix("_bucket") {
                out.push_str(&format!("# TYPE {base} histogram\n"));
            }
            last_family = family.to_string();
        }
        out.push_str(&format!("{key} {}\n", fmt_value(*value)));
    }
    out
}

/// Formats a sample value so it re-parses to the identical `f64`
/// (Rust's shortest-round-trip float formatting).
fn fmt_value(v: f64) -> String {
    format!("{v}")
}

/// Parses Prometheus-style exposition text back into the flat
/// `name{labels} → value` map produced by [`flatten_numeric`].
/// Comment and blank lines are skipped; malformed lines are ignored
/// (the round-trip property is only over text this module rendered).
pub fn parse_prometheus(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // The sample name may contain a quoted label set with spaces —
        // split at the first whitespace *outside* quotes, tracking
        // backslash escapes so `"…\\"` still closes its quote.
        let mut in_quotes = false;
        let mut escaped = false;
        let mut split_at = None;
        for (i, c) in line.char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' if in_quotes => escaped = true,
                '"' => in_quotes = !in_quotes,
                ' ' | '\t' if !in_quotes => {
                    split_at = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let Some(at) = split_at else { continue };
        let (key, raw) = (line[..at].to_string(), line[at..].trim());
        if let Ok(v) = raw.parse::<f64>() {
            out.insert(key, v);
        }
    }
    out
}

/// The session-label view of a parsed/flattened map: every
/// `cqchase_session_*{session="name",…}` entry, decoded back to
/// `(session, metric, value)`. Convenience for tests and operators.
pub fn session_gauges(flat: &BTreeMap<String, f64>) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for (key, value) in flat {
        let Some(rest) = key.strip_prefix("cqchase_session_") else {
            continue;
        };
        let Some(brace) = rest.find('{') else {
            continue;
        };
        let metric = rest[..brace].to_string();
        let labels = &rest[brace + 1..rest.len() - 1];
        let Some(sess) = labels.strip_prefix("session=\"") else {
            continue;
        };
        let Some(end) = find_quote_end(sess) else {
            continue;
        };
        out.push((unescape_label(&sess[..end]), metric, *value));
    }
    out
}

fn find_quote_end(s: &str) -> Option<usize> {
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        match c {
            '\\' if !escaped => escaped = true,
            '"' if !escaped => return Some(i),
            _ => escaped = false,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn flattens_nested_numeric_leaves() {
        let v = json!({
            "batching": json!({ "batches": 7u64, "rate": 0.5 }),
            "enabled": true,
            "name": "ignored",
        });
        let flat = flatten_numeric(&v);
        assert_eq!(flat.get("cqchase_batching_batches"), Some(&7.0));
        assert_eq!(flat.get("cqchase_batching_rate"), Some(&0.5));
        assert_eq!(flat.get("cqchase_enabled"), Some(&1.0));
        assert!(!flat.keys().any(|k| k.contains("name")));
    }

    #[test]
    fn histograms_render_cumulative_with_integer_edges() {
        let v = json!({ "check": json!({ "histogram_us_pow2": vec![2u64, 3, 0, 5] }) });
        let flat = flatten_numeric(&v);
        assert_eq!(
            flat.get("cqchase_check_histogram_us_pow2_bucket{le=\"0\"}"),
            Some(&2.0)
        );
        assert_eq!(
            flat.get("cqchase_check_histogram_us_pow2_bucket{le=\"1\"}"),
            Some(&5.0)
        );
        assert_eq!(
            flat.get("cqchase_check_histogram_us_pow2_bucket{le=\"3\"}"),
            Some(&5.0)
        );
        assert_eq!(
            flat.get("cqchase_check_histogram_us_pow2_bucket{le=\"+Inf\"}"),
            Some(&10.0)
        );
        let text = render_prometheus(&v);
        assert!(text.contains("# TYPE cqchase_check_histogram_us_pow2 histogram\n"));
    }

    #[test]
    fn plain_arrays_get_index_labels_and_mixed_are_skipped() {
        let v = json!({
            "xs": vec![1u64, 2],
            "mixed": Value::Array(vec![Value::from(1u64), Value::from("no")]),
        });
        let flat = flatten_numeric(&v);
        assert_eq!(flat.get("cqchase_xs{i=\"1\"}"), Some(&2.0));
        assert!(!flat.keys().any(|k| k.starts_with("cqchase_mixed")));
    }

    #[test]
    fn sessions_detail_becomes_labeled_gauges() {
        let inner = json!({ "facts": 64u64, "epoch": 3u64 });
        let mut sessions = serde_json::Map::new();
        sessions.insert("tenant-a".to_string(), inner);
        let mut root = serde_json::Map::new();
        root.insert("sessions_detail".to_string(), Value::Object(sessions));
        let v = Value::Object(root);
        let flat = flatten_numeric(&v);
        assert_eq!(
            flat.get("cqchase_session_facts{session=\"tenant-a\"}"),
            Some(&64.0)
        );
        let gauges = session_gauges(&flat);
        assert!(gauges.contains(&("tenant-a".to_string(), "epoch".to_string(), 3.0)));
    }

    #[test]
    fn parse_inverts_render() {
        let v = json!({
            "server": json!({ "uptime_s": 12.25, "version": "0.1.0" }),
            "check": json!({ "count": 3u64, "histogram_us_pow2": vec![1u64, 2, 0] }),
            "weird key!": -4,
        });
        let flat = flatten_numeric(&v);
        assert_eq!(flat.get("cqchase_weird_key_"), Some(&-4.0));
        assert_eq!(parse_prometheus(&render_prometheus(&v)), flat);
    }

    #[test]
    fn label_escaping_survives_round_trip() {
        let inner = json!({ "facts": 1u64 });
        let mut sessions = serde_json::Map::new();
        sessions.insert("we\"ird\\name".to_string(), inner);
        let mut root = serde_json::Map::new();
        root.insert("sessions_detail".to_string(), Value::Object(sessions));
        let v = Value::Object(root);
        let flat = flatten_numeric(&v);
        assert_eq!(parse_prometheus(&render_prometheus(&v)), flat);
        let gauges = session_gauges(&flat);
        assert_eq!(gauges[0].0, "we\"ird\\name");
    }
}
