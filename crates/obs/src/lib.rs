//! Request tracing and unified metrics exposition.
//!
//! Two independent pieces live here, both dependency-free on the rest
//! of the workspace so every layer (service, durability, benches) can
//! use them without cycles:
//!
//! * **[`Tracer`]** — a lock-free span recorder. Producers on the
//!   request hot path write timed spans (admission-queue wait, batch
//!   drain, plan compile vs cache hit, join execution, cache lookups,
//!   durability fsync) into a pre-allocated ring of atomic slots; the
//!   slow-query logger reads a request's spans back out by trace id.
//!   When tracing is **off**, every producer call is a single relaxed
//!   atomic load and an early return — no allocation, no time reads,
//!   no stores.
//! * **[`prom`]** — rendering of the service's JSON `stats` snapshot
//!   into Prometheus-style exposition text, plus the inverse parser and
//!   the canonical numeric flattening both sides are defined against
//!   (so "text output parses back to the snapshot" is a testable
//!   pure-function property).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prom;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// The span vocabulary: every timed section a traced request can pass
/// through, end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SpanKind {
    /// The whole request, accept-to-reply (the root span).
    Request = 0,
    /// Time spent queued in the admission queue before a batch leader
    /// picked the item up.
    AdmissionWait = 1,
    /// The batch-leader drain that executed the item (shared by every
    /// item in the batch).
    BatchDrain = 2,
    /// Semantic (isomorphism-class) result-cache probe.
    SemCacheLookup = 3,
    /// Epoch-tagged eval result-cache probe.
    EvalCacheLookup = 4,
    /// Query plan compilation (a plan-cache miss or drift replan).
    PlanCompile = 5,
    /// Query plan served from the plan cache without compiling.
    PlanCacheHit = 6,
    /// Join execution (the engine actually scanning candidates).
    JoinExec = 7,
    /// Durability WAL append + fsync before acknowledgement.
    Fsync = 8,
    /// The interval between a request's cancellation firing (deadline
    /// expiry or client disconnect) and its structured error being
    /// written — how long the cooperative unwind actually took.
    Cancelled = 9,
}

/// Every [`SpanKind`], in wire order (for exposition and docs).
pub const ALL_SPAN_KINDS: [SpanKind; 10] = [
    SpanKind::Request,
    SpanKind::AdmissionWait,
    SpanKind::BatchDrain,
    SpanKind::SemCacheLookup,
    SpanKind::EvalCacheLookup,
    SpanKind::PlanCompile,
    SpanKind::PlanCacheHit,
    SpanKind::JoinExec,
    SpanKind::Fsync,
    SpanKind::Cancelled,
];

impl SpanKind {
    /// Stable lower-snake name (the slow-query log's `kind` field).
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::AdmissionWait => "admission_wait",
            SpanKind::BatchDrain => "batch_drain",
            SpanKind::SemCacheLookup => "sem_cache_lookup",
            SpanKind::EvalCacheLookup => "eval_cache_lookup",
            SpanKind::PlanCompile => "plan_compile",
            SpanKind::PlanCacheHit => "plan_cache_hit",
            SpanKind::JoinExec => "join_exec",
            SpanKind::Fsync => "fsync",
            SpanKind::Cancelled => "cancelled",
        }
    }

    fn from_u64(v: u64) -> Option<SpanKind> {
        ALL_SPAN_KINDS.into_iter().find(|k| *k as u64 == v)
    }
}

/// One recorded span, decoded out of the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The request this span belongs to.
    pub trace_id: u64,
    /// Which timed section it measures.
    pub kind: SpanKind,
    /// Start, in microseconds of the tracer's clock ([`Tracer::now_us`]).
    pub start_us: u64,
    /// End, same clock.
    pub end_us: u64,
}

impl Span {
    /// The span's duration in microseconds (saturating).
    pub fn dur_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// One ring slot: a seqlock sequence word plus the span fields. Writers
/// bump `seq` to odd, store the fields, bump back to even; readers
/// retry/skip on an odd or changed sequence, so a torn concurrent
/// overwrite is *skipped*, never misread.
#[derive(Debug, Default)]
struct Slot {
    seq: AtomicU64,
    trace_id: AtomicU64,
    kind: AtomicU64,
    start_us: AtomicU64,
    end_us: AtomicU64,
}

/// A lock-free, fixed-capacity span recorder.
///
/// All storage is pre-allocated at construction. Recording a span is
/// wait-free: one `fetch_add` to claim a slot and a handful of atomic
/// stores. The ring overwrites oldest-first, so it holds the most
/// recent `capacity` spans — sized so that any single request's spans
/// comfortably fit (a request records well under 16 spans; the default
/// service capacity is 4096).
///
/// Trace ids are non-zero; `0` is the sentinel for "untraced" and is
/// never returned by [`Tracer::next_trace_id`] while enabled, so
/// producers can thread a plain `u64` through queues without an
/// `Option`.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    next_id: AtomicU64,
    cursor: AtomicU64,
    slots: Box<[Slot]>,
    epoch: Instant,
}

impl Tracer {
    /// A tracer with room for `capacity` spans (at least 1), initially
    /// disabled.
    pub fn new(capacity: usize) -> Tracer {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, Slot::default);
        Tracer {
            enabled: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            cursor: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
            epoch: Instant::now(),
        }
    }

    /// Turns recording on or off. Off is the zero-cost state: every
    /// producer entry point early-returns on one relaxed load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Microseconds since this tracer was created — the clock every
    /// span's `start_us`/`end_us` is expressed in.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// A fresh non-zero trace id, or `0` ("untraced") while disabled.
    pub fn next_trace_id(&self) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Records one timed span. A no-op while disabled or for the
    /// untraced id `0`.
    pub fn record(&self, trace_id: u64, kind: SpanKind, start_us: u64, end_us: u64) {
        if trace_id == 0 || !self.is_enabled() {
            return;
        }
        let at = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        let slot = &self.slots[at];
        slot.seq.fetch_add(1, Ordering::Acquire);
        slot.trace_id.store(trace_id, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.start_us.store(start_us, Ordering::Relaxed);
        slot.end_us.store(end_us, Ordering::Relaxed);
        slot.seq.fetch_add(1, Ordering::Release);
    }

    /// All spans currently in the ring for `trace_id`, sorted by start
    /// time (ties broken by kind). Spans being overwritten concurrently
    /// are skipped, never misread. O(capacity) — called only off the
    /// hot path (slow-query logging, tests).
    pub fn spans_for(&self, trace_id: u64) -> Vec<Span> {
        let mut out = Vec::new();
        if trace_id == 0 {
            return out;
        }
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before % 2 != 0 {
                continue;
            }
            let tid = slot.trace_id.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let start_us = slot.start_us.load(Ordering::Relaxed);
            let end_us = slot.end_us.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != before {
                continue;
            }
            if tid != trace_id {
                continue;
            }
            let Some(kind) = SpanKind::from_u64(kind) else {
                continue;
            };
            out.push(Span {
                trace_id: tid,
                kind,
                start_us,
                end_us,
            });
        }
        out.sort_by_key(|s| (s.start_us, s.kind));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(16);
        assert!(!t.is_enabled());
        assert_eq!(t.next_trace_id(), 0);
        t.record(7, SpanKind::JoinExec, 1, 2);
        assert!(t.spans_for(7).is_empty());
    }

    #[test]
    fn spans_round_trip_by_trace_id() {
        let t = Tracer::new(16);
        t.set_enabled(true);
        let a = t.next_trace_id();
        let b = t.next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        t.record(a, SpanKind::Request, 0, 100);
        t.record(b, SpanKind::Request, 5, 50);
        t.record(a, SpanKind::JoinExec, 10, 40);
        let spans = t.spans_for(a);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::Request);
        assert_eq!(spans[1].kind, SpanKind::JoinExec);
        assert_eq!(spans[1].dur_us(), 30);
        assert_eq!(t.spans_for(b).len(), 1);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let t = Tracer::new(4);
        t.set_enabled(true);
        let id = t.next_trace_id();
        for i in 0..8u64 {
            t.record(id, SpanKind::Fsync, i, i + 1);
        }
        let spans = t.spans_for(id);
        assert_eq!(spans.len(), 4);
        // Only the most recent four survive.
        assert_eq!(spans[0].start_us, 4);
        assert_eq!(spans[3].start_us, 7);
    }

    #[test]
    fn concurrent_writers_never_corrupt_reads() {
        let t = Arc::new(Tracer::new(64));
        t.set_enabled(true);
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let id = w * 10_000 + i + 1;
                    t.record(id, SpanKind::BatchDrain, i, i + w);
                }
            }));
        }
        for i in 0..200 {
            // Reads interleaved with the writers must only ever see
            // well-formed spans.
            for s in t.spans_for(10_000 + i + 1) {
                assert_eq!(s.kind, SpanKind::BatchDrain);
                assert!(s.end_us >= s.start_us);
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        let id = 1u64; // writer 0, i = 0
        for s in t.spans_for(id) {
            assert_eq!(s.start_us, 0);
        }
    }

    #[test]
    fn span_kind_names_are_stable() {
        for k in ALL_SPAN_KINDS {
            assert_eq!(SpanKind::from_u64(k as u64), Some(k));
            assert!(!k.as_str().is_empty());
        }
        assert_eq!(SpanKind::AdmissionWait.as_str(), "admission_wait");
        assert_eq!(SpanKind::from_u64(255), None);
    }
}
