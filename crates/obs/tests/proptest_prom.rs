//! Round-trip property for the Prometheus exposition: for any
//! stats-shaped JSON tree, the rendered text parses back to exactly the
//! canonical numeric flattening of the tree. The service's `metrics`
//! verb renders its live `stats` snapshot through the same pure
//! functions, so this property is what "the text exposes the same
//! values as the JSON stats" rests on.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use serde_json::{Map, Value};

use cqchase_obs::prom::{flatten_numeric, parse_prometheus, render_prometheus, session_gauges};

/// A random stats-shaped tree: nested objects of numeric leaves,
/// `histogram_us_pow2` bucket arrays, plain numeric arrays, skipped
/// string/null leaves, and an occasional `sessions_detail` block with
/// label-hostile session names.
fn gen_stats(rng: &mut TestRng, depth: usize) -> Value {
    let len = 1 + rng.below(4) as usize;
    let mut map = Map::new();
    for i in 0..len {
        let key = format!("{}{i}", gen_key(rng));
        map.insert(key, gen_entry(rng, depth));
    }
    if depth > 0 && rng.below(3) == 0 {
        let mut sessions = Map::new();
        for i in 0..1 + rng.below(3) {
            sessions.insert(format!("{}#{i}", gen_session_name(rng)), gen_stats(rng, 0));
        }
        map.insert("sessions_detail".to_string(), Value::Object(sessions));
    }
    Value::Object(map)
}

fn gen_entry(rng: &mut TestRng, depth: usize) -> Value {
    match rng.below(if depth == 0 { 6 } else { 8 }) {
        0 => gen_number(rng),
        1 => Value::Bool(rng.next_u64() & 1 == 1),
        2 => Value::String("skipped".to_string()),
        3 => Value::Null,
        4 => {
            // A pow2 histogram bucket array (the realistic 20 buckets).
            let buckets: Vec<Value> = (0..20).map(|_| Value::from(rng.below(1000))).collect();
            let mut inner = Map::new();
            inner.insert("histogram_us_pow2".to_string(), Value::Array(buckets));
            inner.insert("count".to_string(), Value::from(rng.below(1000)));
            Value::Object(inner)
        }
        5 => {
            let len = rng.below(5) as usize;
            Value::Array((0..len).map(|_| gen_number(rng)).collect())
        }
        _ => gen_stats(rng, depth - 1),
    }
}

fn gen_number(rng: &mut TestRng) -> Value {
    match rng.below(3) {
        0 => Value::from(rng.next_u64()), // u64 counters, incl. > 2^53
        1 => Value::from(rng.next_u64() as i64),
        _ => {
            let mantissa = rng.next_u64() as i32;
            let exp = rng.below(13) as i32 - 6;
            Value::from(f64::from(mantissa) * 10f64.powi(exp))
        }
    }
}

fn gen_key(rng: &mut TestRng) -> String {
    let len = 1 + rng.below(8) as usize;
    (0..len)
        .map(|_| match rng.below(8) {
            0 => ' ',
            1 => '.',
            2 => '-',
            _ => char::from(b'a' + rng.below(26) as u8),
        })
        .collect()
}

/// Session names get quoted into label values, so exercise the escape
/// path: quotes, backslashes (including trailing), newlines, braces.
fn gen_session_name(rng: &mut TestRng) -> String {
    let len = rng.below(8) as usize;
    (0..len)
        .map(|_| match rng.below(10) {
            0 => '"',
            1 => '\\',
            2 => '\n',
            3 => '{',
            4 => '}',
            5 => ',',
            _ => char::from(b'a' + rng.below(26) as u8),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prometheus_text_parses_back_to_the_flattened_snapshot(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let stats = gen_stats(&mut rng, 3);
        let flat = flatten_numeric(&stats);
        let text = render_prometheus(&stats);
        let parsed = parse_prometheus(&text);
        prop_assert_eq!(&parsed, &flat, "text was:\n{}", text);
        // Session gauges decode without loss: one (session, metric)
        // entry per labeled sample.
        let n_labeled = flat.keys().filter(|k| k.starts_with("cqchase_session_")).count();
        prop_assert_eq!(session_gauges(&flat).len(), n_labeled);
    }
}
