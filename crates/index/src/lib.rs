//! # cqchase-index — indexed fact stores and the shared join core
//!
//! Every decision procedure in this workspace bottoms out in the same
//! operation: find an assignment of query variables to the symbols of
//! some finite fact store such that every atom maps onto a stored row.
//! The paper uses it three ways — the Chandra–Merlin homomorphism test,
//! the chase's "is this dependency application required?" checks, and
//! finite evaluation `Q(B)` — and the seed implemented it three times
//! with per-atom linear scans.
//!
//! This crate is the shared substrate:
//!
//! * [`Sym`] / [`SymPool`] — interned `u32` symbols, so the hot paths
//!   compare and hash machine words instead of cloning [`Constant`]s;
//! * [`ColumnIndex`] — per-relation, per-column posting lists
//!   `(rel, col, sym) → sorted row ids`, maintained incrementally under
//!   insertion, deletion, and symbol substitution;
//! * [`DedupIndex`] — hash-based duplicate detection of whole rows (the
//!   chase's "sets of conjuncts don't duplicate" rule as an O(1) lookup);
//! * [`FactSource`] + [`join`] — the join engine: compile-time
//!   cost-based atom ordering (selectivities from live-row and
//!   per-column distinct counts), a Yannakakis semijoin fast path for
//!   α-acyclic bodies ([`acyclic`]), backtracking with
//!   index-intersection candidate generation for cyclic ones.
//!
//! Consumers implement [`FactSource`] over their own storage
//! (`HomTarget`, `ChaseState`, `Database`) and share one search.
//!
//! The batch/parallel layer builds on three further pieces:
//!
//! * [`fx`] — a hand-rolled FxHash-style hasher ([`FxHashMap`] /
//!   [`FxHashSet`]) for every hot map; keys are interned symbols we
//!   produce ourselves, so SipHash's DoS resistance is pure overhead;
//! * [`PlanCache`] — memoized [`CompiledQuery`] plans keyed by query
//!   identity, so repeated checks of one query skip `compile`;
//! * [`JoinScratch`] + [`join_with`] — caller-owned working memory, so
//!   steady-state batch search allocates nothing per join.
//!
//! [`Constant`]: cqchase_ir::Constant

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acyclic;
pub mod cancel;
pub mod engine;
pub mod fx;
pub mod plan;
pub mod store;
pub mod sym;

pub use acyclic::AcyclicPlan;
pub use cancel::{CancelToken, CANCEL_CHECK_INTERVAL};
pub use engine::{
    compile, join, join_unbound, join_unbound_distinct, join_with, CompiledAtom, CompiledQuery,
    ExecStats, FactSource, JoinOutcome, JoinScratch, Slot,
};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use plan::{query_key, PlanCache, QueryKey};
pub use store::{ColumnIndex, DedupIndex};
pub use sym::{FrozenSymPool, Sym, SymPool};
