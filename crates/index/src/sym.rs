//! Interned symbols.
//!
//! A [`Sym`] is a dense `u32` naming one symbol of one fact source —
//! a constant, a chase variable, a labelled null, whatever the source
//! stores in its rows. The engine compares and hashes `Sym`s only; what
//! a `Sym` *means* is private to the source that interned it.

use std::hash::Hash;

use crate::fx::FxHashMap;

/// An interned symbol of one fact source.
///
/// `Sym`s from different sources are unrelated; never mix them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The symbol as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interning pool mapping source-level symbols to dense [`Sym`]s and
/// back.
///
/// Once interning is over, [`SymPool::freeze`] converts the pool into a
/// read-only [`FrozenSymPool`] that can be shared across threads.
#[derive(Debug, Clone)]
pub struct SymPool<T> {
    ids: FxHashMap<T, Sym>,
    items: Vec<T>,
}

impl<T> Default for SymPool<T> {
    fn default() -> Self {
        SymPool {
            ids: FxHashMap::default(),
            items: Vec::new(),
        }
    }
}

impl<T: Eq + Hash + Clone> SymPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        SymPool::default()
    }

    /// Interns `item`, returning its (new or existing) symbol.
    pub fn intern(&mut self, item: &T) -> Sym {
        if let Some(&s) = self.ids.get(item) {
            return s;
        }
        let s = Sym(self.items.len() as u32);
        self.ids.insert(item.clone(), s);
        self.items.push(item.clone());
        s
    }

    /// Looks up an already-interned item.
    pub fn get(&self, item: &T) -> Option<Sym> {
        self.ids.get(item).copied()
    }

    /// The item behind a symbol.
    pub fn resolve(&self, sym: Sym) -> &T {
        &self.items[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Approximate resident bytes: interned items (shallow) plus the
    /// id map's capacity, costed per entry. An estimate for capacity
    /// planning, not an allocator measurement — heap data behind `T`
    /// (e.g. string contents) is not chased.
    pub fn approx_bytes(&self) -> usize {
        let item = std::mem::size_of::<T>();
        self.items.capacity() * item + self.ids.capacity() * (item + std::mem::size_of::<Sym>() + 8)
    }

    /// Consumes the pool into an immutable snapshot.
    ///
    /// Freezing is free (no copies) and marks, in the type system, the
    /// point after which no new symbols appear — a [`FrozenSymPool`] is
    /// `Send + Sync` whenever `T` is, so sources built once and queried
    /// many times (hom targets, database indexes) can be shared across
    /// the batch executor's worker threads without locks.
    pub fn freeze(self) -> FrozenSymPool<T> {
        FrozenSymPool {
            ids: self.ids,
            items: self.items,
        }
    }
}

/// A read-only snapshot of a [`SymPool`]: lookups and reverse lookups
/// only, shareable by reference across threads.
#[derive(Debug, Clone)]
pub struct FrozenSymPool<T> {
    ids: FxHashMap<T, Sym>,
    items: Vec<T>,
}

impl<T: Eq + Hash> FrozenSymPool<T> {
    /// Looks up an interned item.
    pub fn get(&self, item: &T) -> Option<Sym> {
        self.ids.get(item).copied()
    }

    /// The item behind a symbol.
    pub fn resolve(&self, sym: Sym) -> &T {
        &self.items[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut p: SymPool<String> = SymPool::new();
        let a = p.intern(&"x".to_string());
        let b = p.intern(&"y".to_string());
        assert_ne!(a, b);
        assert_eq!(p.intern(&"x".to_string()), a);
        assert_eq!(p.len(), 2);
        assert_eq!(p.resolve(a), "x");
        assert_eq!(p.get(&"y".to_string()), Some(b));
        assert_eq!(p.get(&"z".to_string()), None);
    }

    #[test]
    fn freeze_preserves_contents() {
        let mut p: SymPool<String> = SymPool::new();
        let a = p.intern(&"x".to_string());
        let b = p.intern(&"y".to_string());
        let f = p.freeze();
        assert_eq!(f.get(&"x".to_string()), Some(a));
        assert_eq!(f.resolve(b), "y");
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    fn frozen_pool_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenSymPool<String>>();
        assert_send_sync::<SymPool<String>>();
    }
}
