//! Interned symbols.
//!
//! A [`Sym`] is a dense `u32` naming one symbol of one fact source —
//! a constant, a chase variable, a labelled null, whatever the source
//! stores in its rows. The engine compares and hashes `Sym`s only; what
//! a `Sym` *means* is private to the source that interned it.

use std::collections::HashMap;
use std::hash::Hash;

/// An interned symbol of one fact source.
///
/// `Sym`s from different sources are unrelated; never mix them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The symbol as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interning pool mapping source-level symbols to dense [`Sym`]s and
/// back.
#[derive(Debug, Clone)]
pub struct SymPool<T> {
    ids: HashMap<T, Sym>,
    items: Vec<T>,
}

impl<T> Default for SymPool<T> {
    fn default() -> Self {
        SymPool {
            ids: HashMap::new(),
            items: Vec::new(),
        }
    }
}

impl<T: Eq + Hash + Clone> SymPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        SymPool {
            ids: HashMap::new(),
            items: Vec::new(),
        }
    }

    /// Interns `item`, returning its (new or existing) symbol.
    pub fn intern(&mut self, item: &T) -> Sym {
        if let Some(&s) = self.ids.get(item) {
            return s;
        }
        let s = Sym(self.items.len() as u32);
        self.ids.insert(item.clone(), s);
        self.items.push(item.clone());
        s
    }

    /// Looks up an already-interned item.
    pub fn get(&self, item: &T) -> Option<Sym> {
        self.ids.get(item).copied()
    }

    /// The item behind a symbol.
    pub fn resolve(&self, sym: Sym) -> &T {
        &self.items[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut p: SymPool<String> = SymPool::new();
        let a = p.intern(&"x".to_string());
        let b = p.intern(&"y".to_string());
        assert_ne!(a, b);
        assert_eq!(p.intern(&"x".to_string()), a);
        assert_eq!(p.len(), 2);
        assert_eq!(p.resolve(a), "x");
        assert_eq!(p.get(&"y".to_string()), Some(b));
        assert_eq!(p.get(&"z".to_string()), None);
    }
}
