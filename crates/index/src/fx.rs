//! A hand-rolled FxHash-style hasher for the hot-path maps.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! DoS-resistant, which costs ~2–4x per probe over a multiply-rotate
//! mix. Every hot map in this workspace is keyed by interned `u32`
//! symbols (or small tuples/vectors of them) produced *by us*, never by
//! untrusted input — an attacker cannot choose keys to collide, so the
//! DoS resistance buys nothing. [`FxHasher`] is the classic
//! multiply-by-large-odd-constant mix used by rustc: one `wrapping_mul`
//! and one xor-rotate per word.
//!
//! Use the [`FxHashMap`] / [`FxHashSet`] aliases; they are drop-in
//! replacements (`FxHashMap::default()` instead of `HashMap::new()`).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit FxHash state: `h = (rotl5(h) ^ word) * K` per ingested word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// The large odd multiplier (2^64 / φ, forced odd) — the same constant
/// rustc's FxHash uses.
const K: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" | "c" and "a" | "bc" differ.
            self.add_word(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_word(i as u64);
        self.add_word((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]. Construct with `FxHashMap::default()`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`]. Construct with `FxHashSet::default()`.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        FxBuildHasher::default().hash_one(t)
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_ne!(hash_of(&42u32), hash_of(&43u32));
        assert_ne!(hash_of(&[1u32, 2]), hash_of(&[2u32, 1]));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
        // Unaligned tails must not collide by prefix.
        assert_ne!(hash_of(&"abcdefgh"), hash_of(&"abcdefghi"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        m.insert(1, 2);
        assert_eq!(m.get(&1), Some(&2));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn low_collision_on_dense_u32_keys() {
        // Interned symbols are dense u32s — the common key shape. The
        // hash must spread them across 64 bits.
        let hashes: FxHashSet<u64> = (0u32..10_000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 10_000);
    }
}
