//! Incremental per-relation indexes over rows of interned symbols.
//!
//! Rows live with their owner (chase state, hom target, database); the
//! structures here are *derived* data the owner keeps in sync. Row ids
//! are caller-chosen `u32`s (conjunct ids for the chase, per-relation
//! row numbers for databases and hom targets) — the index treats them as
//! opaque keys and keeps posting lists sorted by them.

use cqchase_ir::RelId;

use crate::fx::FxHashMap;
use crate::sym::Sym;

/// Posting lists `(relation, column, symbol) → sorted row ids`.
///
/// Supports incremental insertion, deletion, and symbol substitution, so
/// mutating owners (the chase under FD merges) never rebuild. Maps hash
/// with [`FxHasher`](crate::fx::FxHasher): keys are interned symbols we
/// produce ourselves, so SipHash's DoS resistance buys nothing and its
/// cost sits on the join engine's innermost probe.
#[derive(Debug, Clone, Default)]
pub struct ColumnIndex {
    /// One map per relation per column.
    rels: Vec<Vec<FxHashMap<Sym, Vec<u32>>>>,
}

impl ColumnIndex {
    /// An index over relations with the given arities.
    pub fn new(arities: impl IntoIterator<Item = usize>) -> Self {
        ColumnIndex {
            rels: arities
                .into_iter()
                .map(|a| vec![FxHashMap::default(); a])
                .collect(),
        }
    }

    /// Registers `row` (with symbols `syms`) under every column of `rel`.
    pub fn insert_row(&mut self, rel: RelId, row: u32, syms: &[Sym]) {
        for (col, &sym) in syms.iter().enumerate() {
            let list = self.rels[rel.index()][col].entry(sym).or_default();
            match list.binary_search(&row) {
                Ok(_) => {}
                Err(pos) => list.insert(pos, row),
            }
        }
    }

    /// Removes `row` (with symbols `syms`) from every column of `rel`.
    pub fn remove_row(&mut self, rel: RelId, row: u32, syms: &[Sym]) {
        for (col, &sym) in syms.iter().enumerate() {
            if let Some(list) = self.rels[rel.index()][col].get_mut(&sym) {
                if let Ok(pos) = list.binary_search(&row) {
                    list.remove(pos);
                }
                if list.is_empty() {
                    self.rels[rel.index()][col].remove(&sym);
                }
            }
        }
    }

    /// Moves `row` from `from`'s posting list to `to`'s in column `col`
    /// of `rel` (the FD substitution primitive).
    pub fn replace_in_col(&mut self, rel: RelId, col: usize, row: u32, from: Sym, to: Sym) {
        let maps = &mut self.rels[rel.index()][col];
        if let Some(list) = maps.get_mut(&from) {
            if let Ok(pos) = list.binary_search(&row) {
                list.remove(pos);
            }
            if list.is_empty() {
                maps.remove(&from);
            }
        }
        let list = maps.entry(to).or_default();
        if let Err(pos) = list.binary_search(&row) {
            list.insert(pos, row);
        }
    }

    /// The sorted row ids with `sym` in column `col` of `rel`. Columns
    /// the index never saw a row for (e.g. a relation with no rows at
    /// all, whose arity the owner could not derive) read as empty.
    pub fn posting(&self, rel: RelId, col: usize, sym: Sym) -> &[u32] {
        self.rels[rel.index()]
            .get(col)
            .and_then(|m| m.get(&sym))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Length of [`ColumnIndex::posting`] without materializing it.
    pub fn posting_len(&self, rel: RelId, col: usize, sym: Sym) -> usize {
        self.posting(rel, col, sym).len()
    }

    /// Intersects the posting lists for the given `(col, sym)`
    /// constraints: probes the shortest list and verifies the remaining
    /// constraints via `syms_of`, pushing surviving row ids (ascending)
    /// into `out`.
    ///
    /// `bound` must be nonempty; full enumeration is the owner's job
    /// (only it knows its live-row universe).
    pub fn candidates<'a>(
        &self,
        rel: RelId,
        bound: &[(usize, Sym)],
        syms_of: impl Fn(u32) -> &'a [Sym],
        out: &mut Vec<u32>,
    ) {
        debug_assert!(!bound.is_empty());
        let probe = (0..bound.len())
            .min_by_key(|&i| self.posting_len(rel, bound[i].0, bound[i].1))
            .expect("bound is nonempty");
        let (c0, s0) = bound[probe];
        'rows: for &row in self.posting(rel, c0, s0) {
            let syms = syms_of(row);
            for &(c, s) in bound {
                if syms[c] != s {
                    continue 'rows;
                }
            }
            out.push(row);
        }
    }

    /// Like [`ColumnIndex::candidates`], but stops at the first
    /// intersection row `accept` returns `true` for and returns it —
    /// the early-exit probe for existence checks (witness lookups, FD
    /// applicability). Rows are visited in ascending id order, so the
    /// returned row is the minimal accepted match.
    pub fn first_candidate<'a>(
        &self,
        rel: RelId,
        bound: &[(usize, Sym)],
        syms_of: impl Fn(u32) -> &'a [Sym],
        mut accept: impl FnMut(u32) -> bool,
    ) -> Option<u32> {
        debug_assert!(!bound.is_empty());
        let probe = (0..bound.len())
            .min_by_key(|&i| self.posting_len(rel, bound[i].0, bound[i].1))
            .expect("bound is nonempty");
        let (c0, s0) = bound[probe];
        'rows: for &row in self.posting(rel, c0, s0) {
            let syms = syms_of(row);
            for &(c, s) in bound {
                if syms[c] != s {
                    continue 'rows;
                }
            }
            if accept(row) {
                return Some(row);
            }
        }
        None
    }
}

/// Hash-based whole-row duplicate detection: `(relation, symbols) → row`.
#[derive(Debug, Clone, Default)]
pub struct DedupIndex {
    map: FxHashMap<(RelId, Vec<Sym>), u32>,
}

impl DedupIndex {
    /// An empty dedup index.
    pub fn new() -> Self {
        DedupIndex::default()
    }

    /// The row already holding `(rel, syms)`, if any.
    pub fn get(&self, rel: RelId, syms: &[Sym]) -> Option<u32> {
        self.map.get(&(rel, syms.to_vec())).copied()
    }

    /// Registers `(rel, syms) → row`; returns the previous holder if the
    /// key was taken (the caller decides who survives).
    pub fn insert(&mut self, rel: RelId, syms: &[Sym], row: u32) -> Option<u32> {
        self.map.insert((rel, syms.to_vec()), row)
    }

    /// Registers `(rel, syms) → row` only when the key is free; returns
    /// the existing holder otherwise (without overwriting it). One key
    /// allocation for the combined probe-and-insert — the substitution
    /// hot path's primitive.
    pub fn try_insert(&mut self, rel: RelId, syms: &[Sym], row: u32) -> Option<u32> {
        use std::collections::hash_map::Entry;
        match self.map.entry((rel, syms.to_vec())) {
            Entry::Occupied(e) => Some(*e.get()),
            Entry::Vacant(e) => {
                e.insert(row);
                None
            }
        }
    }

    /// Removes the entry for `(rel, syms)` when it points at `row`.
    pub fn remove(&mut self, rel: RelId, syms: &[Sym], row: u32) {
        use std::collections::hash_map::Entry;
        if let Entry::Occupied(e) = self.map.entry((rel, syms.to_vec())) {
            if *e.get() == row {
                e.remove();
            }
        }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no keys are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}
