//! Incremental per-relation indexes over rows of interned symbols.
//!
//! Rows live with their owner (chase state, hom target, database); the
//! structures here are *derived* data the owner keeps in sync. Row ids
//! are caller-chosen `u32`s (conjunct ids for the chase, per-relation
//! row numbers for databases and hom targets) — the index treats them as
//! opaque keys and keeps posting lists sorted by them.

use cqchase_ir::RelId;

use crate::fx::FxHashMap;
use crate::sym::Sym;

/// Posting lists `(relation, column, symbol) → sorted row ids`.
///
/// Supports incremental insertion, deletion, and symbol substitution, so
/// mutating owners (the chase under FD merges) never rebuild. Maps hash
/// with [`FxHasher`](crate::fx::FxHasher): keys are interned symbols we
/// produce ourselves, so SipHash's DoS resistance buys nothing and its
/// cost sits on the join engine's innermost probe.
#[derive(Debug, Clone, Default)]
pub struct ColumnIndex {
    /// One map per relation per column.
    rels: Vec<Vec<FxHashMap<Sym, Vec<u32>>>>,
}

impl ColumnIndex {
    /// An index over relations with the given arities.
    pub fn new(arities: impl IntoIterator<Item = usize>) -> Self {
        ColumnIndex {
            rels: arities
                .into_iter()
                .map(|a| vec![FxHashMap::default(); a])
                .collect(),
        }
    }

    /// Registers `row` (with symbols `syms`) under every column of `rel`.
    pub fn insert_row(&mut self, rel: RelId, row: u32, syms: &[Sym]) {
        for (col, &sym) in syms.iter().enumerate() {
            let list = self.rels[rel.index()][col].entry(sym).or_default();
            match list.binary_search(&row) {
                Ok(_) => {}
                Err(pos) => list.insert(pos, row),
            }
        }
    }

    /// Removes `row` (with symbols `syms`) from every column of `rel`.
    pub fn remove_row(&mut self, rel: RelId, row: u32, syms: &[Sym]) {
        for (col, &sym) in syms.iter().enumerate() {
            if let Some(list) = self.rels[rel.index()][col].get_mut(&sym) {
                if let Ok(pos) = list.binary_search(&row) {
                    list.remove(pos);
                }
                if list.is_empty() {
                    self.rels[rel.index()][col].remove(&sym);
                }
            }
        }
    }

    /// Drops every posting list of `rel` (the owner is renumbering its
    /// rows wholesale — amortized compaction after deletions — and will
    /// re-register the survivors with [`ColumnIndex::insert_row`]).
    /// Column maps are retained empty, so arities stay stable.
    pub fn clear_rel(&mut self, rel: RelId) {
        for m in &mut self.rels[rel.index()] {
            m.clear();
        }
    }

    /// Releases excess capacity held by `rel`'s column maps and posting
    /// lists: any map or list whose occupancy fell below a quarter of
    /// its capacity is shrunk to fit. Owners call this after compacting
    /// a relation that shrank a lot — a long-lived session must not
    /// hold peak-size allocations forever. Returns the approximate
    /// number of capacity entries released (map slots + posting-list
    /// row ids), for the owner's bytes-reclaimed accounting.
    pub fn shrink_rel(&mut self, rel: RelId) -> usize {
        let mut freed = 0usize;
        for m in &mut self.rels[rel.index()] {
            for list in m.values_mut() {
                if list.len() < list.capacity() / 4 {
                    freed += list.capacity() - list.len();
                    list.shrink_to_fit();
                }
            }
            if m.len() < m.capacity() / 4 {
                freed += m.capacity() - m.len();
                m.shrink_to_fit();
            }
        }
        freed
    }

    /// Moves `row` from `from`'s posting list to `to`'s in column `col`
    /// of `rel` (the FD substitution primitive).
    pub fn replace_in_col(&mut self, rel: RelId, col: usize, row: u32, from: Sym, to: Sym) {
        let maps = &mut self.rels[rel.index()][col];
        if let Some(list) = maps.get_mut(&from) {
            if let Ok(pos) = list.binary_search(&row) {
                list.remove(pos);
            }
            if list.is_empty() {
                maps.remove(&from);
            }
        }
        let list = maps.entry(to).or_default();
        if let Err(pos) = list.binary_search(&row) {
            list.insert(pos, row);
        }
    }

    /// The sorted row ids with `sym` in column `col` of `rel`. Columns
    /// the index never saw a row for (e.g. a relation with no rows at
    /// all, whose arity the owner could not derive) read as empty.
    pub fn posting(&self, rel: RelId, col: usize, sym: Sym) -> &[u32] {
        self.rels[rel.index()]
            .get(col)
            .and_then(|m| m.get(&sym))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Length of [`ColumnIndex::posting`] without materializing it.
    pub fn posting_len(&self, rel: RelId, col: usize, sym: Sym) -> usize {
        self.posting(rel, col, sym).len()
    }

    /// Number of distinct symbols currently indexed in column `col` of
    /// `rel` — the posting map's key count, which [`insert_row`] and
    /// [`remove_row`] keep exact incrementally (a symbol's entry is
    /// dropped the moment its posting list empties). This is the
    /// selectivity statistic the cost-based planner feeds on.
    ///
    /// [`insert_row`]: ColumnIndex::insert_row
    /// [`remove_row`]: ColumnIndex::remove_row
    pub fn distinct_count(&self, rel: RelId, col: usize) -> usize {
        self.rels[rel.index()].get(col).map_or(0, FxHashMap::len)
    }

    /// Approximate resident bytes of the posting maps: map capacity
    /// costed per entry plus posting-list capacity in row ids. An
    /// estimate for capacity planning (the many-session bench's
    /// shared-vs-duplicate catalog gate), not an allocator measurement.
    pub fn approx_bytes(&self) -> usize {
        let entry = std::mem::size_of::<Sym>() + std::mem::size_of::<Vec<u32>>() + 8;
        let mut bytes = 0usize;
        for cols in &self.rels {
            for m in cols {
                bytes += m.capacity() * entry;
                bytes += m
                    .values()
                    .map(|list| list.capacity() * std::mem::size_of::<u32>())
                    .sum::<usize>();
            }
        }
        bytes
    }

    /// Intersects the posting lists for the given `(col, sym)`
    /// constraints: probes the shortest list and verifies the remaining
    /// constraints via `syms_of`, pushing surviving row ids (ascending)
    /// into `out`.
    ///
    /// `bound` must be nonempty; full enumeration is the owner's job
    /// (only it knows its live-row universe).
    pub fn candidates<'a>(
        &self,
        rel: RelId,
        bound: &[(usize, Sym)],
        syms_of: impl Fn(u32) -> &'a [Sym],
        out: &mut Vec<u32>,
    ) {
        debug_assert!(!bound.is_empty());
        let probe = (0..bound.len())
            .min_by_key(|&i| self.posting_len(rel, bound[i].0, bound[i].1))
            .expect("bound is nonempty");
        let (c0, s0) = bound[probe];
        'rows: for &row in self.posting(rel, c0, s0) {
            let syms = syms_of(row);
            for &(c, s) in bound {
                if syms[c] != s {
                    continue 'rows;
                }
            }
            out.push(row);
        }
    }

    /// Like [`ColumnIndex::candidates`], but stops at the first
    /// intersection row `accept` returns `true` for and returns it —
    /// the early-exit probe for existence checks (witness lookups, FD
    /// applicability). Rows are visited in ascending id order, so the
    /// returned row is the minimal accepted match.
    pub fn first_candidate<'a>(
        &self,
        rel: RelId,
        bound: &[(usize, Sym)],
        syms_of: impl Fn(u32) -> &'a [Sym],
        mut accept: impl FnMut(u32) -> bool,
    ) -> Option<u32> {
        debug_assert!(!bound.is_empty());
        let probe = (0..bound.len())
            .min_by_key(|&i| self.posting_len(rel, bound[i].0, bound[i].1))
            .expect("bound is nonempty");
        let (c0, s0) = bound[probe];
        'rows: for &row in self.posting(rel, c0, s0) {
            let syms = syms_of(row);
            for &(c, s) in bound {
                if syms[c] != s {
                    continue 'rows;
                }
            }
            if accept(row) {
                return Some(row);
            }
        }
        None
    }
}

/// Hash-based whole-row duplicate detection: `(relation, symbols) → row`.
///
/// Sharded per relation (like [`ColumnIndex`]) so that per-relation
/// wholesale operations — [`DedupIndex::clear_rel`], the amortized
/// compaction primitive — cost O(that relation's keys), not O(every
/// key in the database). Shards grow on demand, so no arity/relation
/// count is needed at construction.
#[derive(Debug, Clone, Default)]
pub struct DedupIndex {
    /// One map per relation, indexed by `RelId`.
    rels: Vec<FxHashMap<Vec<Sym>, u32>>,
    len: usize,
}

impl DedupIndex {
    /// An empty dedup index.
    pub fn new() -> Self {
        DedupIndex::default()
    }

    fn shard_mut(&mut self, rel: RelId) -> &mut FxHashMap<Vec<Sym>, u32> {
        if self.rels.len() <= rel.index() {
            self.rels.resize_with(rel.index() + 1, FxHashMap::default);
        }
        &mut self.rels[rel.index()]
    }

    /// The row already holding `(rel, syms)`, if any.
    pub fn get(&self, rel: RelId, syms: &[Sym]) -> Option<u32> {
        self.rels.get(rel.index())?.get(syms).copied()
    }

    /// Registers `(rel, syms) → row`; returns the previous holder if the
    /// key was taken (the caller decides who survives).
    pub fn insert(&mut self, rel: RelId, syms: &[Sym], row: u32) -> Option<u32> {
        let prev = self.shard_mut(rel).insert(syms.to_vec(), row);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Registers `(rel, syms) → row` only when the key is free; returns
    /// the existing holder otherwise (without overwriting it). One key
    /// allocation for the combined probe-and-insert — the substitution
    /// hot path's primitive.
    pub fn try_insert(&mut self, rel: RelId, syms: &[Sym], row: u32) -> Option<u32> {
        use std::collections::hash_map::Entry;
        match self.shard_mut(rel).entry(syms.to_vec()) {
            Entry::Occupied(e) => Some(*e.get()),
            Entry::Vacant(e) => {
                e.insert(row);
                self.len += 1;
                None
            }
        }
    }

    /// Drops every key of `rel` (the compaction counterpart of
    /// [`ColumnIndex::clear_rel`]; survivors are re-registered under
    /// their new row ids). Costs only the cleared relation's keys.
    pub fn clear_rel(&mut self, rel: RelId) {
        if let Some(shard) = self.rels.get_mut(rel.index()) {
            self.len -= shard.len();
            shard.clear();
        }
    }

    /// Releases excess capacity held by `rel`'s shard when its
    /// occupancy fell below a quarter of capacity (the compaction
    /// counterpart of [`ColumnIndex::shrink_rel`]). Returns the
    /// approximate number of capacity entries released.
    pub fn shrink_rel(&mut self, rel: RelId) -> usize {
        let Some(shard) = self.rels.get_mut(rel.index()) else {
            return 0;
        };
        if shard.len() < shard.capacity() / 4 {
            let freed = shard.capacity() - shard.len();
            shard.shrink_to_fit();
            freed
        } else {
            0
        }
    }

    /// Removes the entry for `(rel, syms)` when it points at `row`.
    pub fn remove(&mut self, rel: RelId, syms: &[Sym], row: u32) {
        use std::collections::hash_map::Entry;
        let Some(shard) = self.rels.get_mut(rel.index()) else {
            return;
        };
        if let Entry::Occupied(e) = shard.entry(syms.to_vec()) {
            if *e.get() == row {
                e.remove();
                self.len -= 1;
            }
        }
    }

    /// Approximate resident bytes of the dedup shards: shard capacity
    /// costed per entry plus each key row's symbol storage. An estimate
    /// (companion of [`ColumnIndex::approx_bytes`]).
    pub fn approx_bytes(&self) -> usize {
        let entry = std::mem::size_of::<Vec<Sym>>() + std::mem::size_of::<u32>() + 8;
        self.rels
            .iter()
            .map(|shard| {
                shard.capacity() * entry
                    + shard
                        .keys()
                        .map(|k| k.capacity() * std::mem::size_of::<Sym>())
                        .sum::<usize>()
            })
            .sum()
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no keys are registered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(i: u32) -> RelId {
        RelId(i)
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut idx = ColumnIndex::new([2usize]);
        let (a, b, c) = (Sym(0), Sym(1), Sym(2));
        idx.insert_row(rel(0), 0, &[a, b]);
        idx.insert_row(rel(0), 1, &[a, c]);
        assert_eq!(idx.posting(rel(0), 0, a), &[0, 1]);
        idx.remove_row(rel(0), 0, &[a, b]);
        assert_eq!(idx.posting(rel(0), 0, a), &[1]);
        assert!(idx.posting(rel(0), 1, b).is_empty());
    }

    #[test]
    fn clear_rel_drops_only_that_relation() {
        let mut idx = ColumnIndex::new([2usize, 1]);
        let (a, b) = (Sym(0), Sym(1));
        idx.insert_row(rel(0), 0, &[a, b]);
        idx.insert_row(rel(1), 0, &[a]);
        idx.clear_rel(rel(0));
        assert!(idx.posting(rel(0), 0, a).is_empty());
        assert!(idx.posting(rel(0), 1, b).is_empty());
        assert_eq!(idx.posting(rel(1), 0, a), &[0]);
        // Arities survive: re-registering rows works.
        idx.insert_row(rel(0), 7, &[b, a]);
        assert_eq!(idx.posting(rel(0), 0, b), &[7]);
    }

    #[test]
    fn shrink_rel_releases_capacity_after_mass_removal() {
        let mut idx = ColumnIndex::new([1usize]);
        // One symbol with a long posting list, then nearly empty it.
        for row in 0..4096u32 {
            idx.insert_row(rel(0), row, &[Sym(0)]);
        }
        for row in 8..4096u32 {
            idx.remove_row(rel(0), row, &[Sym(0)]);
        }
        assert_eq!(idx.posting_len(rel(0), 0, Sym(0)), 8);
        let freed = idx.shrink_rel(rel(0));
        assert!(freed > 0, "a 4096-capacity list holding 8 rows must shrink");
        assert_eq!(idx.posting(rel(0), 0, Sym(0)), &[0, 1, 2, 3, 4, 5, 6, 7]);

        let mut d = DedupIndex::new();
        for row in 0..4096u32 {
            d.insert(rel(0), &[Sym(row)], row);
        }
        for row in 8..4096u32 {
            d.remove(rel(0), &[Sym(row)], row);
        }
        assert!(d.shrink_rel(rel(0)) > 0);
        assert_eq!(d.len(), 8);
        assert_eq!(d.get(rel(0), &[Sym(3)]), Some(3));
        // A relation the dedup index never saw shrinks to nothing.
        assert_eq!(d.shrink_rel(rel(9)), 0);
    }

    #[test]
    fn dedup_clear_rel_drops_only_that_relation() {
        let mut d = DedupIndex::new();
        let syms = [Sym(0), Sym(1)];
        d.insert(rel(0), &syms, 0);
        d.insert(rel(1), &syms, 4);
        d.clear_rel(rel(0));
        assert_eq!(d.get(rel(0), &syms), None);
        assert_eq!(d.get(rel(1), &syms), Some(4));
        assert_eq!(d.len(), 1);
    }
}
