//! The shared backtracking-join engine.
//!
//! A conjunctive query is compiled against a [`FactSource`] into atoms
//! of [`Slot`]s (interned constants and dense variable slots). The
//! search then repeatedly picks the *most constrained* remaining atom —
//! the one whose already-bound slots admit the fewest candidate rows,
//! estimated from posting-list lengths — asks the source for the
//! matching rows (an index intersection, not a scan), and recurses.
//!
//! One engine serves all three homomorphism consumers of the paper:
//! query-to-query homomorphisms (Chandra–Merlin), query-to-chase
//! homomorphisms (Theorems 1/2), and finite evaluation `Q(B)`.

use cqchase_ir::{ConjunctiveQuery, Constant, RelId, Term};

use crate::sym::Sym;

/// A finite store of rows of interned symbols, queryable by column.
///
/// Row ids are source-chosen `u32`s, unique per relation and stable for
/// the duration of a [`join`] call.
pub trait FactSource {
    /// Number of live rows of `rel` (ordering heuristic).
    fn rel_size(&self, rel: RelId) -> usize;

    /// The symbols of live row `row` of `rel`.
    fn row_syms(&self, rel: RelId, row: u32) -> &[Sym];

    /// Upper bound on the number of live rows of `rel` carrying `sym` in
    /// column `col` (ordering heuristic; exactness not required).
    fn posting_len(&self, rel: RelId, col: usize, sym: Sym) -> usize;

    /// Pushes (in ascending order) every live row of `rel` that carries
    /// `sym` in column `col` for all `(col, sym)` in `bound` into `out`.
    /// An empty `bound` enumerates all live rows.
    fn candidates(&self, rel: RelId, bound: &[(usize, Sym)], out: &mut Vec<u32>);

    /// Resolves a query constant into this source's symbol space, or
    /// `None` when the constant occurs nowhere in the source.
    fn sym_of_const(&self, c: &Constant) -> Option<Sym>;
}

/// One compiled atom position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// A constant, pre-resolved to the source's symbol space.
    Const(Sym),
    /// A query variable (dense per-query index).
    Var(u32),
}

/// One compiled atom.
#[derive(Debug, Clone)]
pub struct CompiledAtom {
    /// The relation the atom ranges over.
    pub rel: RelId,
    /// One slot per column.
    pub slots: Vec<Slot>,
}

/// A query compiled against one source's symbol space.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// Atoms in the original query's order (the engine reorders
    /// dynamically during search; result rows stay indexed by this
    /// order).
    pub atoms: Vec<CompiledAtom>,
    /// Size of the variable table (bindings are indexed by `VarId`).
    pub num_vars: usize,
}

/// Compiles `q`'s body against `src`. Returns `None` when some body
/// constant does not occur in the source at all — no atom can then match,
/// so the query is unsatisfiable over this source.
pub fn compile(q: &ConjunctiveQuery, src: &impl FactSource) -> Option<CompiledQuery> {
    let mut atoms = Vec::with_capacity(q.atoms.len());
    for a in &q.atoms {
        let mut slots = Vec::with_capacity(a.terms.len());
        for t in &a.terms {
            slots.push(match t {
                Term::Var(v) => Slot::Var(v.0),
                Term::Const(c) => Slot::Const(src.sym_of_const(c)?),
            });
        }
        atoms.push(CompiledAtom {
            rel: a.relation,
            slots,
        });
    }
    Some(CompiledQuery {
        atoms,
        num_vars: q.vars.len(),
    })
}

/// What a [`join`] call found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOutcome {
    /// The emit callback requested a stop (it saw the solution it
    /// wanted).
    Stopped,
    /// The search space was exhausted; every solution was emitted.
    Exhausted,
}

/// Solution callback: `(bindings, chosen row per original atom)`;
/// returning `true` stops the search.
type EmitFn<'e> = dyn FnMut(&[Option<Sym>], &[u32]) -> bool + 'e;

/// Reusable working memory for [`join_with`].
///
/// A join needs a binding table, per-depth candidate and
/// newly-bound-variable buffers, and a bound-constraint scratch vector.
/// Allocating them per call is invisible for one search but dominates
/// steady-state batch workloads (millions of small joins); callers that
/// run many joins keep one `JoinScratch` per thread and the engine
/// performs no heap allocation after the buffers reach their
/// high-water marks.
#[derive(Debug, Default)]
pub struct JoinScratch {
    bind: Vec<Option<Sym>>,
    rows: Vec<u32>,
    done: Vec<bool>,
    /// Candidate buffers, one per depth.
    bufs: Vec<Vec<u32>>,
    /// Newly-bound-variable buffers, one per depth.
    newly: Vec<Vec<u32>>,
    /// Bound-constraint buffer.
    bound: Vec<(usize, Sym)>,
}

impl JoinScratch {
    /// Fresh (empty) scratch space.
    pub fn new() -> JoinScratch {
        JoinScratch::default()
    }

    /// Sizes the buffers for `cq` and seeds the binding table from
    /// `pre`, keeping existing heap capacity.
    fn reset(&mut self, cq: &CompiledQuery, pre: &[Option<Sym>]) {
        self.bind.clear();
        self.bind.extend_from_slice(pre);
        self.reset_rest(cq);
    }

    /// The binding-table-independent part of [`JoinScratch::reset`].
    fn reset_rest(&mut self, cq: &CompiledQuery) {
        let n = cq.atoms.len();
        self.rows.clear();
        self.rows.resize(n, 0);
        self.done.clear();
        self.done.resize(n, false);
        if self.bufs.len() < n {
            self.bufs.resize_with(n, Vec::new);
        }
        if self.newly.len() < n {
            self.newly.resize_with(n, Vec::new);
        }
        self.bound.clear();
    }
}

struct Search<'a, S: FactSource> {
    src: &'a S,
    cq: &'a CompiledQuery,
    scratch: &'a mut JoinScratch,
}

impl<S: FactSource> Search<'_, S> {
    /// Picks the unresolved atom with the fewest estimated candidates:
    /// the minimum posting length over its bound slots, or the full
    /// relation size when nothing is bound yet. Ties break toward more
    /// bound slots, then the smaller atom index (determinism).
    fn most_constrained(&self) -> usize {
        let mut best: Option<(usize, usize, usize)> = None; // (atom, est, bound_ct)
        for (i, atom) in self.cq.atoms.iter().enumerate() {
            if self.scratch.done[i] {
                continue;
            }
            let mut est = self.src.rel_size(atom.rel);
            let mut bound_ct = 0usize;
            for (col, slot) in atom.slots.iter().enumerate() {
                let sym = match slot {
                    Slot::Const(s) => Some(*s),
                    Slot::Var(v) => self.scratch.bind[*v as usize],
                };
                if let Some(s) = sym {
                    bound_ct += 1;
                    est = est.min(self.src.posting_len(atom.rel, col, s));
                }
            }
            let better = match best {
                None => true,
                Some((_, e, b)) => est < e || (est == e && bound_ct > b),
            };
            if better {
                best = Some((i, est, bound_ct));
            }
        }
        best.expect("an unresolved atom exists").0
    }

    fn solve(&mut self, depth: usize, emit: &mut EmitFn<'_>) -> bool {
        if depth == self.cq.atoms.len() {
            return emit(&self.scratch.bind, &self.scratch.rows);
        }
        let atom_idx = self.most_constrained();
        let (rel, nslots) = {
            let a = &self.cq.atoms[atom_idx];
            (a.rel, a.slots.len())
        };

        // Index-intersection candidate generation over the bound slots.
        self.scratch.bound.clear();
        for col in 0..nslots {
            let sym = match self.cq.atoms[atom_idx].slots[col] {
                Slot::Const(s) => Some(s),
                Slot::Var(v) => self.scratch.bind[v as usize],
            };
            if let Some(s) = sym {
                self.scratch.bound.push((col, s));
            }
        }
        let mut buf = std::mem::take(&mut self.scratch.bufs[depth]);
        buf.clear();
        self.src.candidates(rel, &self.scratch.bound, &mut buf);

        self.scratch.done[atom_idx] = true;
        let mut stopped = false;
        let mut newly = std::mem::take(&mut self.scratch.newly[depth]);
        'rows: for &row in &buf {
            // Bind the unbound slots from the row, verifying repeated
            // variables within the atom.
            newly.clear();
            for (col, slot) in self.cq.atoms[atom_idx].slots.iter().enumerate() {
                if let Slot::Var(v) = slot {
                    let sym = self.src.row_syms(rel, row)[col];
                    match self.scratch.bind[*v as usize] {
                        Some(b) if b == sym => {}
                        Some(_) => {
                            for &u in &newly {
                                self.scratch.bind[u as usize] = None;
                            }
                            continue 'rows;
                        }
                        None => {
                            self.scratch.bind[*v as usize] = Some(sym);
                            newly.push(*v);
                        }
                    }
                }
            }
            self.scratch.rows[atom_idx] = row;
            if self.solve(depth + 1, emit) {
                stopped = true;
                break;
            }
            for &u in &newly {
                self.scratch.bind[u as usize] = None;
            }
        }
        if stopped {
            // Keep bindings intact for the caller (witness extraction).
        } else {
            self.scratch.done[atom_idx] = false;
        }
        self.scratch.newly[depth] = newly;
        self.scratch.bufs[depth] = buf;
        stopped
    }
}

/// Runs the backtracking join of `cq` over `src`.
///
/// `pre` seeds variable bindings (e.g. from a summary-row constraint);
/// its length must be `cq.num_vars`. For every total assignment the
/// engine calls `emit(bindings, rows)` — `rows[i]` is the source row the
/// `i`-th atom mapped onto. Returning `true` from `emit` stops the
/// search with [`JoinOutcome::Stopped`] and leaves that solution's
/// bindings observable in the callback; returning `false` keeps
/// enumerating.
pub fn join<S: FactSource>(
    src: &S,
    cq: &CompiledQuery,
    pre: Vec<Option<Sym>>,
    emit: impl FnMut(&[Option<Sym>], &[u32]) -> bool,
) -> JoinOutcome {
    join_with(src, cq, &pre, &mut JoinScratch::new(), emit)
}

/// [`join_with`] with no pre-bound variables: the all-unbound binding
/// table is built inside the scratch, so even the `pre` vector costs
/// nothing per call. The batch evaluator's entry point.
pub fn join_unbound<S: FactSource>(
    src: &S,
    cq: &CompiledQuery,
    scratch: &mut JoinScratch,
    mut emit: impl FnMut(&[Option<Sym>], &[u32]) -> bool,
) -> JoinOutcome {
    scratch.bind.clear();
    scratch.bind.resize(cq.num_vars, None);
    scratch.reset_rest(cq);
    let mut search = Search { src, cq, scratch };
    if search.solve(0, &mut emit) {
        JoinOutcome::Stopped
    } else {
        JoinOutcome::Exhausted
    }
}

/// [`join`] with caller-owned scratch space: identical semantics, but
/// all working memory comes from (and returns to) `scratch`, so a caller
/// running many joins — the batch containment and evaluation engines —
/// allocates nothing per call once the buffers are warm.
pub fn join_with<S: FactSource>(
    src: &S,
    cq: &CompiledQuery,
    pre: &[Option<Sym>],
    scratch: &mut JoinScratch,
    mut emit: impl FnMut(&[Option<Sym>], &[u32]) -> bool,
) -> JoinOutcome {
    assert_eq!(pre.len(), cq.num_vars, "pre-binding length mismatch");
    scratch.reset(cq, pre);
    let mut search = Search { src, cq, scratch };
    if search.solve(0, &mut emit) {
        JoinOutcome::Stopped
    } else {
        JoinOutcome::Exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ColumnIndex;
    use crate::sym::SymPool;
    use cqchase_ir::{parse_program, Catalog};

    /// A toy source: rows stored flat, indexed by `ColumnIndex`.
    struct Toy {
        pool: SymPool<Constant>,
        cols: ColumnIndex,
        rows: Vec<Vec<Vec<Sym>>>,
    }

    impl Toy {
        fn new(catalog: &Catalog, facts: &[(&str, &[i64])]) -> Toy {
            let mut pool = SymPool::new();
            let mut cols = ColumnIndex::new(catalog.rel_ids().map(|r| catalog.arity(r)));
            let mut rows = vec![Vec::new(); catalog.len()];
            for (name, vals) in facts {
                let rel = catalog.resolve(name).unwrap();
                let syms: Vec<Sym> = vals
                    .iter()
                    .map(|v| pool.intern(&Constant::int(*v)))
                    .collect();
                let id = rows[rel.index()].len() as u32;
                cols.insert_row(rel, id, &syms);
                rows[rel.index()].push(syms);
            }
            Toy { pool, cols, rows }
        }
    }

    impl FactSource for Toy {
        fn rel_size(&self, rel: RelId) -> usize {
            self.rows[rel.index()].len()
        }

        fn row_syms(&self, rel: RelId, row: u32) -> &[Sym] {
            &self.rows[rel.index()][row as usize]
        }

        fn posting_len(&self, rel: RelId, col: usize, sym: Sym) -> usize {
            self.cols.posting_len(rel, col, sym)
        }

        fn candidates(&self, rel: RelId, bound: &[(usize, Sym)], out: &mut Vec<u32>) {
            if bound.is_empty() {
                out.extend(0..self.rows[rel.index()].len() as u32);
            } else {
                self.cols
                    .candidates(rel, bound, |row| &self.rows[rel.index()][row as usize], out);
            }
        }

        fn sym_of_const(&self, c: &Constant) -> Option<Sym> {
            self.pool.get(c)
        }
    }

    fn count_solutions(src: &Toy, q: &ConjunctiveQuery) -> usize {
        let Some(cq) = compile(q, src) else { return 0 };
        let mut n = 0;
        join(src, &cq, vec![None; cq.num_vars], |_, _| {
            n += 1;
            false
        });
        n
    }

    #[test]
    fn joins_across_relations() {
        let p = parse_program("relation R(a, b). relation S(b, c). Q(x, z) :- R(x, y), S(y, z).")
            .unwrap();
        let src = Toy::new(
            &p.catalog,
            &[
                ("R", &[1, 2]),
                ("R", &[5, 6]),
                ("S", &[2, 3]),
                ("S", &[2, 4]),
            ],
        );
        assert_eq!(count_solutions(&src, &p.queries[0]), 2);
    }

    #[test]
    fn repeated_vars_and_constants() {
        let p = parse_program(
            "relation R(a, b).
             Qxx(x) :- R(x, x).
             Qc(x) :- R(x, 7).",
        )
        .unwrap();
        let src = Toy::new(
            &p.catalog,
            &[("R", &[1, 1]), ("R", &[1, 2]), ("R", &[3, 7])],
        );
        assert_eq!(count_solutions(&src, p.query("Qxx").unwrap()), 1);
        assert_eq!(count_solutions(&src, p.query("Qc").unwrap()), 1);
    }

    #[test]
    fn missing_constant_is_unsatisfiable() {
        let p = parse_program("relation R(a, b). Q(x) :- R(x, 99).").unwrap();
        let src = Toy::new(&p.catalog, &[("R", &[1, 2])]);
        assert_eq!(count_solutions(&src, &p.queries[0]), 0);
    }

    #[test]
    fn early_stop_keeps_bindings() {
        let p = parse_program("relation R(a, b). Q(x) :- R(x, y).").unwrap();
        let src = Toy::new(&p.catalog, &[("R", &[1, 2]), ("R", &[3, 4])]);
        let cq = compile(&p.queries[0], &src).unwrap();
        let mut seen: Option<Vec<Option<Sym>>> = None;
        let outcome = join(&src, &cq, vec![None; cq.num_vars], |bind, rows| {
            assert_eq!(rows.len(), 1);
            seen = Some(bind.to_vec());
            true
        });
        assert_eq!(outcome, JoinOutcome::Stopped);
        let bind = seen.unwrap();
        assert!(bind.iter().all(Option::is_some));
    }

    #[test]
    fn pre_binding_restricts() {
        let p = parse_program("relation R(a, b). Q(x) :- R(x, y).").unwrap();
        let src = Toy::new(&p.catalog, &[("R", &[1, 2]), ("R", &[3, 4])]);
        let cq = compile(&p.queries[0], &src).unwrap();
        // Bind x (VarId 0 — head var interned first) to the sym of 3.
        let x_sym = src.sym_of_const(&Constant::int(3)).unwrap();
        let mut pre = vec![None; cq.num_vars];
        pre[0] = Some(x_sym);
        let mut n = 0;
        join(&src, &cq, pre, |bind, _| {
            assert_eq!(bind[0], Some(x_sym));
            n += 1;
            false
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn chain_on_path_has_expected_solutions() {
        // A 6-node path (5 edges); a 3-chain fits at 3 start edges.
        let p = parse_program("relation R(a, b). Q(x) :- R(x, y), R(y, z), R(z, w).").unwrap();
        let facts: Vec<(&str, Vec<i64>)> = (0..5).map(|i| ("R", vec![i, i + 1])).collect();
        let borrowed: Vec<(&str, &[i64])> = facts.iter().map(|(n, v)| (*n, v.as_slice())).collect();
        let src = Toy::new(&p.catalog, &borrowed);
        assert_eq!(count_solutions(&src, &p.queries[0]), 3);
    }
}
