//! The shared join engine: cost-based static orders + acyclic fast path.
//!
//! A conjunctive query is compiled against a [`FactSource`] into atoms
//! of [`Slot`]s (interned constants and dense variable slots). At
//! compile time the engine derives:
//!
//! * two **cost-based atom orders** (one for unbound searches, one for
//!   head-prebound searches) from per-relation live-row counts and
//!   per-column distinct-value counts — each greedy step picks the atom
//!   with the lowest estimated candidate count given the variables the
//!   already-ordered atoms bind;
//! * an **acyclicity certificate**: a GYO ear reduction over the body's
//!   hypergraph. Acyclic bodies get an [`AcyclicPlan`] executed as
//!   Yannakakis semijoin reduction + backtrack-free enumeration (see
//!   [`crate::acyclic`]); cyclic bodies keep the backtracking search;
//! * a **statistics snapshot** of the relation sizes the orders were
//!   derived from, so plan owners can detect cardinality drift
//!   ([`CompiledQuery::stats_drifted`]) and recompile.
//!
//! One engine serves all three homomorphism consumers of the paper:
//! query-to-query homomorphisms (Chandra–Merlin), query-to-chase
//! homomorphisms (Theorems 1/2), and finite evaluation `Q(B)`.

use cqchase_ir::{ConjunctiveQuery, Constant, RelId, Term};

use crate::acyclic::{self, AcyclicPlan};
use crate::cancel::{CancelToken, CANCEL_CHECK_INTERVAL};
use crate::sym::Sym;

/// A finite store of rows of interned symbols, queryable by column.
///
/// Row ids are source-chosen `u32`s, unique per relation and stable for
/// the duration of a [`join`] call.
pub trait FactSource {
    /// Number of live rows of `rel` (ordering heuristic).
    fn rel_size(&self, rel: RelId) -> usize;

    /// The symbols of live row `row` of `rel`.
    fn row_syms(&self, rel: RelId, row: u32) -> &[Sym];

    /// Upper bound on the number of live rows of `rel` carrying `sym` in
    /// column `col` (ordering heuristic; exactness not required).
    fn posting_len(&self, rel: RelId, col: usize, sym: Sym) -> usize;

    /// Pushes (in ascending order) every live row of `rel` that carries
    /// `sym` in column `col` for all `(col, sym)` in `bound` into `out`.
    /// An empty `bound` enumerates all live rows.
    fn candidates(&self, rel: RelId, bound: &[(usize, Sym)], out: &mut Vec<u32>);

    /// Resolves a query constant into this source's symbol space, or
    /// `None` when the constant occurs nowhere in the source.
    fn sym_of_const(&self, c: &Constant) -> Option<Sym>;

    /// Number of distinct symbols in column `col` of `rel` (selectivity
    /// estimation: a bound variable in that column keeps roughly a
    /// `1/distinct` fraction of the rows). Exactness is not required;
    /// the default assumes all-distinct columns, which reduces the cost
    /// model to "any bound atom is cheap" — sources backed by a
    /// [`ColumnIndex`](crate::store::ColumnIndex) should override with
    /// the exact per-column count.
    fn distinct_count(&self, rel: RelId, _col: usize) -> usize {
        self.rel_size(rel).max(1)
    }
}

/// One compiled atom position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// A constant, pre-resolved to the source's symbol space.
    Const(Sym),
    /// A query variable (dense per-query index).
    Var(u32),
}

/// One compiled atom.
#[derive(Debug, Clone)]
pub struct CompiledAtom {
    /// The relation the atom ranges over.
    pub rel: RelId,
    /// One slot per column.
    pub slots: Vec<Slot>,
}

/// A query compiled against one source's symbol space, carrying its
/// cost-based orders, acyclicity certificate, and stats snapshot.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// Atoms in the original query's order (the search follows a
    /// compile-time cost-based order; result rows stay indexed by this
    /// original order).
    pub atoms: Vec<CompiledAtom>,
    /// Size of the variable table (bindings are indexed by `VarId`).
    pub num_vars: usize,
    /// The query's head variables (deduplicated, in head order) — the
    /// variables whose distinct bindings evaluation cares about.
    pub head_vars: Vec<u32>,
    /// Cost-based atom order for searches starting with nothing bound.
    pub order: Vec<u32>,
    /// Cost-based atom order assuming the head variables are pre-bound
    /// (the containment probes' shape: `bind_summary` seeds exactly the
    /// head variables).
    pub order_prebound: Vec<u32>,
    /// The Yannakakis join forest when the body is α-acyclic; `None`
    /// keeps the backtracking engine.
    pub acyclic: Option<AcyclicPlan>,
    /// Per-relation live-row counts observed at compile time (one entry
    /// per distinct body relation) — the drift detector's reference.
    pub stats: Vec<(RelId, usize)>,
    /// Estimated candidate count per atom (original atom index), as
    /// computed when the unbound cost order picked it. The "estimated"
    /// side of est-vs-actual diagnostics ([`ExecStats::atom_actual`]).
    pub atom_est: Vec<f64>,
}

/// Execution counters the join engines maintain as they run — the
/// "actuals" side of est-vs-actual planner diagnostics.
///
/// The scalar counters are **monotone**: they accumulate across every
/// join run with the same [`JoinScratch`], so owners meter a single
/// request by snapshotting before and differencing after (cloning is
/// cheap). `atom_actual` instead describes the **latest** join only —
/// it is re-zeroed at every entry, because its length and meaning are
/// per-plan.
///
/// Maintenance costs a few plain integer adds per candidate list — no
/// atomics, no allocation beyond the per-plan `atom_actual` reserve —
/// so the counters are always on.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ExecStats {
    /// Candidate rows produced by index probes, summed over all atoms
    /// (every one of these is at least inspected by the engine).
    pub candidates_scanned: u64,
    /// Candidate rows rejected or exhausted after binding — each one
    /// undid its bindings and moved to the next candidate.
    pub backtracks: u64,
    /// Semijoin `retain` passes executed by the acyclic fast path (one
    /// per non-root atom per run).
    pub semijoin_retain_passes: u64,
    /// Complete solutions handed to the emit callback.
    pub rows_emitted: u64,
    /// Candidate rows scanned per atom of the **latest** join, indexed
    /// by original atom index — compare against
    /// [`CompiledQuery::atom_est`] to see planner drift per atom.
    pub atom_actual: Vec<u64>,
}

/// Sizes below this floor never count as drift: orderings over a handful
/// of rows are all equally cheap, and tiny relations fluctuate wildly in
/// relative terms.
const DRIFT_FLOOR: usize = 8;

impl CompiledQuery {
    /// Whether the source's relation cardinalities have drifted ≥2x (in
    /// either direction) from the snapshot this plan was costed against.
    /// Plan owners recompile on drift so a stale ordering is never
    /// served forever; changes entirely below [`DRIFT_FLOOR`] rows are
    /// ignored.
    pub fn stats_drifted(&self, src: &impl FactSource) -> bool {
        self.stats.iter().any(|&(rel, then)| {
            let now = src.rel_size(rel);
            let lo = then.min(now).max(DRIFT_FLOOR);
            let hi = then.max(now).max(DRIFT_FLOOR);
            hi >= 2 * lo
        })
    }
}

/// Greedy cost-based atom ordering: repeatedly pick the atom with the
/// smallest estimated candidate count, where `est = rel_size × Π` over
/// bound slots of the slot's selectivity — exact posting fractions for
/// constants, `1/distinct_count` for bound variables. Ties break toward
/// more bound slots, then the smaller atom index (determinism). Each
/// pick binds the atom's variables for the remaining steps. Returns
/// each picked atom paired with the estimate it was picked at (the
/// per-atom estimated cardinality exposed as
/// [`CompiledQuery::atom_est`]).
fn cost_order<S: FactSource>(
    atoms: &[CompiledAtom],
    num_vars: usize,
    src: &S,
    prebound: &[u32],
) -> Vec<(u32, f64)> {
    let n = atoms.len();
    let mut bound = vec![false; num_vars];
    for &v in prebound {
        bound[v as usize] = true;
    }
    let mut done = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best: Option<(f64, usize, usize)> = None; // (est, bound_ct, atom)
        for (i, a) in atoms.iter().enumerate() {
            if done[i] {
                continue;
            }
            let size = src.rel_size(a.rel);
            let mut est = size as f64;
            let mut bound_ct = 0usize;
            for (col, slot) in a.slots.iter().enumerate() {
                match slot {
                    Slot::Const(s) => {
                        bound_ct += 1;
                        let frac = src.posting_len(a.rel, col, *s) as f64 / size.max(1) as f64;
                        est *= frac.min(1.0);
                    }
                    Slot::Var(v) => {
                        if bound[*v as usize] {
                            bound_ct += 1;
                            est *= 1.0 / src.distinct_count(a.rel, col).max(1) as f64;
                        }
                    }
                }
            }
            let better = match &best {
                None => true,
                Some((e, b, _)) => est < *e || (est == *e && bound_ct > *b),
            };
            if better {
                best = Some((est, bound_ct, i));
            }
        }
        let (est, _, pick) = best.expect("an unordered atom remains");
        done[pick] = true;
        order.push((pick as u32, est));
        for slot in &atoms[pick].slots {
            if let Slot::Var(v) = slot {
                bound[*v as usize] = true;
            }
        }
    }
    order
}

/// Compiles `q`'s body against `src`: slot resolution, cost-based
/// ordering, GYO acyclicity test, and a stats snapshot. Returns `None`
/// when some body constant does not occur in the source at all — no atom
/// can then match, so the query is unsatisfiable over this source.
pub fn compile(q: &ConjunctiveQuery, src: &impl FactSource) -> Option<CompiledQuery> {
    let mut atoms = Vec::with_capacity(q.atoms.len());
    for a in &q.atoms {
        let mut slots = Vec::with_capacity(a.terms.len());
        for t in &a.terms {
            slots.push(match t {
                Term::Var(v) => Slot::Var(v.0),
                Term::Const(c) => Slot::Const(src.sym_of_const(c)?),
            });
        }
        atoms.push(CompiledAtom {
            rel: a.relation,
            slots,
        });
    }
    let num_vars = q.vars.len();
    let mut head_vars: Vec<u32> = Vec::with_capacity(q.head.len());
    for t in &q.head {
        if let Term::Var(v) = t {
            if !head_vars.contains(&v.0) {
                head_vars.push(v.0);
            }
        }
    }
    let ordered = cost_order(&atoms, num_vars, src, &[]);
    let mut atom_est = vec![0.0; atoms.len()];
    for &(pick, est) in &ordered {
        atom_est[pick as usize] = est;
    }
    let order: Vec<u32> = ordered.into_iter().map(|(a, _)| a).collect();
    let order_prebound: Vec<u32> = cost_order(&atoms, num_vars, src, &head_vars)
        .into_iter()
        .map(|(a, _)| a)
        .collect();
    let acyclic = acyclic::build(&atoms, &head_vars);
    let mut stats: Vec<(RelId, usize)> = Vec::new();
    for a in &atoms {
        if !stats.iter().any(|&(r, _)| r == a.rel) {
            stats.push((a.rel, src.rel_size(a.rel)));
        }
    }
    Some(CompiledQuery {
        atoms,
        num_vars,
        head_vars,
        order,
        order_prebound,
        acyclic,
        stats,
        atom_est,
    })
}

/// What a [`join`] call found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOutcome {
    /// The emit callback requested a stop (it saw the solution it
    /// wanted).
    Stopped,
    /// The search space was exhausted; every solution was emitted.
    Exhausted,
}

/// Solution callback: `(bindings, chosen row per original atom)`;
/// returning `true` stops the search.
pub(crate) type EmitFn<'e> = dyn FnMut(&[Option<Sym>], &[u32]) -> bool + 'e;

/// The scratch-resident half of cooperative cancellation: an optional
/// [`CancelToken`] plus the coalescing counter, so the engines consult
/// the token only every [`CANCEL_CHECK_INTERVAL`] work units.
#[derive(Debug, Default)]
pub(crate) struct CancelState {
    token: Option<CancelToken>,
    /// Work units charged since the token was last consulted.
    pending: u64,
    /// Latched once the token reported stop during the current run.
    fired: bool,
}

impl CancelState {
    /// Called at every join entry: resets the per-run latch and refuses
    /// immediately when the token has already fired.
    #[inline]
    fn begin_run(&mut self) {
        self.pending = 0;
        self.fired = match &self.token {
            Some(t) => t.should_stop(),
            None => false,
        };
    }

    /// Charges `n` work units; returns `true` when the search must stop.
    /// Consults the token at most once per [`CANCEL_CHECK_INTERVAL`]
    /// units — two predictable branches and an add otherwise.
    #[inline]
    pub(crate) fn charge(&mut self, n: u64) -> bool {
        if self.fired {
            return true;
        }
        let Some(token) = &self.token else {
            return false;
        };
        self.pending += n;
        if self.pending < CANCEL_CHECK_INTERVAL {
            return false;
        }
        self.pending = 0;
        if token.should_stop() {
            self.fired = true;
        }
        self.fired
    }
}

/// Reusable working memory for [`join_with`].
///
/// A join needs a binding table, per-depth candidate and
/// newly-bound-variable buffers, and a bound-constraint scratch vector.
/// Allocating them per call is invisible for one search but dominates
/// steady-state batch workloads (millions of small joins); callers that
/// run many joins keep one `JoinScratch` per thread and the engine
/// performs no heap allocation after the buffers reach their
/// high-water marks.
#[derive(Debug, Default)]
pub struct JoinScratch {
    pub(crate) bind: Vec<Option<Sym>>,
    pub(crate) rows: Vec<u32>,
    /// Candidate buffers — one per depth for backtracking, one per atom
    /// for the acyclic executor (the code paths are disjoint).
    pub(crate) bufs: Vec<Vec<u32>>,
    /// Newly-bound-variable buffers, one per depth.
    pub(crate) newly: Vec<Vec<u32>>,
    /// Bound-constraint buffer.
    pub(crate) bound: Vec<(usize, Sym)>,
    /// Execution counters (see [`ExecStats`] for reset semantics).
    pub(crate) exec: ExecStats,
    /// Cooperative cancellation state (token + coalescing counter).
    pub(crate) cancel: CancelState,
}

impl JoinScratch {
    /// Fresh (empty) scratch space.
    pub fn new() -> JoinScratch {
        JoinScratch::default()
    }

    /// The execution counters accumulated by joins run with this
    /// scratch. Snapshot (clone) before a run and difference after to
    /// meter a single request.
    pub fn exec(&self) -> &ExecStats {
        &self.exec
    }

    /// Installs a [`CancelToken`] checked (at coalesced intervals) by
    /// every subsequent join run with this scratch. Replaces any
    /// previous token.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = CancelState {
            token: Some(token),
            pending: 0,
            fired: false,
        };
    }

    /// Removes the installed token, if any.
    pub fn clear_cancel(&mut self) {
        self.cancel = CancelState::default();
    }

    /// Whether the **latest** join run with this scratch was stopped by
    /// its cancel token. A cancelled run reports
    /// [`JoinOutcome::Stopped`] without a final emission, so its results
    /// are partial — callers must consult this before trusting a
    /// negative (no-solution) or aggregate answer.
    pub fn cancelled(&self) -> bool {
        self.cancel.fired
    }

    /// Sizes the buffers for `cq` and seeds the binding table from
    /// `pre`, keeping existing heap capacity.
    fn reset(&mut self, cq: &CompiledQuery, pre: &[Option<Sym>]) {
        self.bind.clear();
        self.bind.extend_from_slice(pre);
        self.reset_rest(cq);
    }

    /// The binding-table-independent part of [`JoinScratch::reset`].
    fn reset_rest(&mut self, cq: &CompiledQuery) {
        let n = cq.atoms.len();
        self.rows.clear();
        self.rows.resize(n, 0);
        if self.bufs.len() < n {
            self.bufs.resize_with(n, Vec::new);
        }
        if self.newly.len() < n {
            self.newly.resize_with(n, Vec::new);
        }
        self.bound.clear();
        self.exec.atom_actual.clear();
        self.exec.atom_actual.resize(n, 0);
        self.cancel.begin_run();
    }
}

struct Search<'a, S: FactSource> {
    src: &'a S,
    cq: &'a CompiledQuery,
    /// The compile-time cost-based atom order the search follows.
    order: &'a [u32],
    scratch: &'a mut JoinScratch,
}

impl<S: FactSource> Search<'_, S> {
    fn solve(&mut self, depth: usize, emit: &mut EmitFn<'_>) -> bool {
        // A fired token unwinds the search exactly like an emit stop
        // (charging one unit per call also covers emit-heavy leaves).
        if self.scratch.cancel.charge(1) {
            return true;
        }
        if depth == self.cq.atoms.len() {
            self.scratch.exec.rows_emitted += 1;
            return emit(&self.scratch.bind, &self.scratch.rows);
        }
        let atom_idx = self.order[depth] as usize;
        let (rel, nslots) = {
            let a = &self.cq.atoms[atom_idx];
            (a.rel, a.slots.len())
        };

        // Index-intersection candidate generation over the bound slots.
        self.scratch.bound.clear();
        for col in 0..nslots {
            let sym = match self.cq.atoms[atom_idx].slots[col] {
                Slot::Const(s) => Some(s),
                Slot::Var(v) => self.scratch.bind[v as usize],
            };
            if let Some(s) = sym {
                self.scratch.bound.push((col, s));
            }
        }
        let mut buf = std::mem::take(&mut self.scratch.bufs[depth]);
        buf.clear();
        self.src.candidates(rel, &self.scratch.bound, &mut buf);
        self.scratch.exec.candidates_scanned += buf.len() as u64;
        self.scratch.exec.atom_actual[atom_idx] += buf.len() as u64;
        if self.scratch.cancel.charge(buf.len() as u64) {
            self.scratch.bufs[depth] = buf;
            return true;
        }

        let mut stopped = false;
        let mut newly = std::mem::take(&mut self.scratch.newly[depth]);
        'rows: for &row in &buf {
            // Bind the unbound slots from the row, verifying repeated
            // variables within the atom.
            newly.clear();
            for (col, slot) in self.cq.atoms[atom_idx].slots.iter().enumerate() {
                if let Slot::Var(v) = slot {
                    let sym = self.src.row_syms(rel, row)[col];
                    match self.scratch.bind[*v as usize] {
                        Some(b) if b == sym => {}
                        Some(_) => {
                            for &u in &newly {
                                self.scratch.bind[u as usize] = None;
                            }
                            self.scratch.exec.backtracks += 1;
                            continue 'rows;
                        }
                        None => {
                            self.scratch.bind[*v as usize] = Some(sym);
                            newly.push(*v);
                        }
                    }
                }
            }
            self.scratch.rows[atom_idx] = row;
            if self.solve(depth + 1, emit) {
                stopped = true;
                break;
            }
            for &u in &newly {
                self.scratch.bind[u as usize] = None;
            }
            self.scratch.exec.backtracks += 1;
        }
        // On a stop, bindings stay intact for the caller (witness
        // extraction); otherwise the row loop above unbound everything.
        self.scratch.newly[depth] = newly;
        self.scratch.bufs[depth] = buf;
        stopped
    }
}

/// Runs the backtracking join of `cq` over `src`.
///
/// `pre` seeds variable bindings (e.g. from a summary-row constraint);
/// its length must be `cq.num_vars`. For every total assignment the
/// engine calls `emit(bindings, rows)` — `rows[i]` is the source row the
/// `i`-th atom mapped onto. Returning `true` from `emit` stops the
/// search with [`JoinOutcome::Stopped`] and leaves that solution's
/// bindings observable in the callback; returning `false` keeps
/// enumerating.
pub fn join<S: FactSource>(
    src: &S,
    cq: &CompiledQuery,
    pre: Vec<Option<Sym>>,
    emit: impl FnMut(&[Option<Sym>], &[u32]) -> bool,
) -> JoinOutcome {
    join_with(src, cq, &pre, &mut JoinScratch::new(), emit)
}

/// [`join_with`] with no pre-bound variables: the all-unbound binding
/// table is built inside the scratch, so even the `pre` vector costs
/// nothing per call. The batch evaluator's entry point.
pub fn join_unbound<S: FactSource>(
    src: &S,
    cq: &CompiledQuery,
    scratch: &mut JoinScratch,
    mut emit: impl FnMut(&[Option<Sym>], &[u32]) -> bool,
) -> JoinOutcome {
    scratch.bind.clear();
    scratch.bind.resize(cq.num_vars, None);
    scratch.reset_rest(cq);
    if let Some(plan) = &cq.acyclic {
        return acyclic::run(src, cq, plan, scratch, false, &mut emit);
    }
    let mut search = Search {
        src,
        cq,
        order: &cq.order,
        scratch,
    };
    if search.solve(0, &mut emit) {
        JoinOutcome::Stopped
    } else {
        JoinOutcome::Exhausted
    }
}

/// [`join_unbound`] in *distinct-witness* mode: the evaluator's entry
/// point, for callers that only care about the distinct bindings of the
/// query's **head** variables (and deduplicate emissions themselves).
///
/// For acyclic plans, subtrees whose head variables are all bound are
/// collapsed to one representative row, so e.g. a Boolean query costs a
/// semijoin reduction instead of a full cross-product enumeration. Every
/// emission is still a genuine solution (bindings + witness rows), and
/// every distinct head binding is emitted at least once — but solutions
/// differing only outside the head may be skipped. Cyclic plans fall
/// back to full enumeration.
pub fn join_unbound_distinct<S: FactSource>(
    src: &S,
    cq: &CompiledQuery,
    scratch: &mut JoinScratch,
    mut emit: impl FnMut(&[Option<Sym>], &[u32]) -> bool,
) -> JoinOutcome {
    scratch.bind.clear();
    scratch.bind.resize(cq.num_vars, None);
    scratch.reset_rest(cq);
    if let Some(plan) = &cq.acyclic {
        return acyclic::run(src, cq, plan, scratch, true, &mut emit);
    }
    let mut search = Search {
        src,
        cq,
        order: &cq.order,
        scratch,
    };
    if search.solve(0, &mut emit) {
        JoinOutcome::Stopped
    } else {
        JoinOutcome::Exhausted
    }
}

/// [`join`] with caller-owned scratch space: identical semantics, but
/// all working memory comes from (and returns to) `scratch`, so a caller
/// running many joins — the batch containment and evaluation engines —
/// allocates nothing per call once the buffers are warm.
pub fn join_with<S: FactSource>(
    src: &S,
    cq: &CompiledQuery,
    pre: &[Option<Sym>],
    scratch: &mut JoinScratch,
    mut emit: impl FnMut(&[Option<Sym>], &[u32]) -> bool,
) -> JoinOutcome {
    assert_eq!(pre.len(), cq.num_vars, "pre-binding length mismatch");
    scratch.reset(cq, pre);
    let prebound = pre.iter().any(Option::is_some);
    if !prebound {
        if let Some(plan) = &cq.acyclic {
            return acyclic::run(src, cq, plan, scratch, false, &mut emit);
        }
    }
    let order = if prebound {
        &cq.order_prebound
    } else {
        &cq.order
    };
    let mut search = Search {
        src,
        cq,
        order,
        scratch,
    };
    if search.solve(0, &mut emit) {
        JoinOutcome::Stopped
    } else {
        JoinOutcome::Exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ColumnIndex;
    use crate::sym::SymPool;
    use cqchase_ir::{parse_program, Catalog};

    /// A toy source: rows stored flat, indexed by `ColumnIndex`.
    struct Toy {
        pool: SymPool<Constant>,
        cols: ColumnIndex,
        rows: Vec<Vec<Vec<Sym>>>,
    }

    impl Toy {
        fn new(catalog: &Catalog, facts: &[(&str, &[i64])]) -> Toy {
            let mut pool = SymPool::new();
            let mut cols = ColumnIndex::new(catalog.rel_ids().map(|r| catalog.arity(r)));
            let mut rows = vec![Vec::new(); catalog.len()];
            for (name, vals) in facts {
                let rel = catalog.resolve(name).unwrap();
                let syms: Vec<Sym> = vals
                    .iter()
                    .map(|v| pool.intern(&Constant::int(*v)))
                    .collect();
                let id = rows[rel.index()].len() as u32;
                cols.insert_row(rel, id, &syms);
                rows[rel.index()].push(syms);
            }
            Toy { pool, cols, rows }
        }
    }

    impl FactSource for Toy {
        fn rel_size(&self, rel: RelId) -> usize {
            self.rows[rel.index()].len()
        }

        fn row_syms(&self, rel: RelId, row: u32) -> &[Sym] {
            &self.rows[rel.index()][row as usize]
        }

        fn posting_len(&self, rel: RelId, col: usize, sym: Sym) -> usize {
            self.cols.posting_len(rel, col, sym)
        }

        fn candidates(&self, rel: RelId, bound: &[(usize, Sym)], out: &mut Vec<u32>) {
            if bound.is_empty() {
                out.extend(0..self.rows[rel.index()].len() as u32);
            } else {
                self.cols
                    .candidates(rel, bound, |row| &self.rows[rel.index()][row as usize], out);
            }
        }

        fn sym_of_const(&self, c: &Constant) -> Option<Sym> {
            self.pool.get(c)
        }
    }

    fn count_solutions(src: &Toy, q: &ConjunctiveQuery) -> usize {
        let Some(cq) = compile(q, src) else { return 0 };
        let mut n = 0;
        join(src, &cq, vec![None; cq.num_vars], |_, _| {
            n += 1;
            false
        });
        n
    }

    #[test]
    fn joins_across_relations() {
        let p = parse_program("relation R(a, b). relation S(b, c). Q(x, z) :- R(x, y), S(y, z).")
            .unwrap();
        let src = Toy::new(
            &p.catalog,
            &[
                ("R", &[1, 2]),
                ("R", &[5, 6]),
                ("S", &[2, 3]),
                ("S", &[2, 4]),
            ],
        );
        assert_eq!(count_solutions(&src, &p.queries[0]), 2);
    }

    #[test]
    fn repeated_vars_and_constants() {
        let p = parse_program(
            "relation R(a, b).
             Qxx(x) :- R(x, x).
             Qc(x) :- R(x, 7).",
        )
        .unwrap();
        let src = Toy::new(
            &p.catalog,
            &[("R", &[1, 1]), ("R", &[1, 2]), ("R", &[3, 7])],
        );
        assert_eq!(count_solutions(&src, p.query("Qxx").unwrap()), 1);
        assert_eq!(count_solutions(&src, p.query("Qc").unwrap()), 1);
    }

    #[test]
    fn missing_constant_is_unsatisfiable() {
        let p = parse_program("relation R(a, b). Q(x) :- R(x, 99).").unwrap();
        let src = Toy::new(&p.catalog, &[("R", &[1, 2])]);
        assert_eq!(count_solutions(&src, &p.queries[0]), 0);
    }

    #[test]
    fn early_stop_keeps_bindings() {
        let p = parse_program("relation R(a, b). Q(x) :- R(x, y).").unwrap();
        let src = Toy::new(&p.catalog, &[("R", &[1, 2]), ("R", &[3, 4])]);
        let cq = compile(&p.queries[0], &src).unwrap();
        let mut seen: Option<Vec<Option<Sym>>> = None;
        let outcome = join(&src, &cq, vec![None; cq.num_vars], |bind, rows| {
            assert_eq!(rows.len(), 1);
            seen = Some(bind.to_vec());
            true
        });
        assert_eq!(outcome, JoinOutcome::Stopped);
        let bind = seen.unwrap();
        assert!(bind.iter().all(Option::is_some));
    }

    #[test]
    fn pre_binding_restricts() {
        let p = parse_program("relation R(a, b). Q(x) :- R(x, y).").unwrap();
        let src = Toy::new(&p.catalog, &[("R", &[1, 2]), ("R", &[3, 4])]);
        let cq = compile(&p.queries[0], &src).unwrap();
        // Bind x (VarId 0 — head var interned first) to the sym of 3.
        let x_sym = src.sym_of_const(&Constant::int(3)).unwrap();
        let mut pre = vec![None; cq.num_vars];
        pre[0] = Some(x_sym);
        let mut n = 0;
        join(&src, &cq, pre, |bind, _| {
            assert_eq!(bind[0], Some(x_sym));
            n += 1;
            false
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn exec_counters_meter_the_search() {
        // Cyclic body → backtracking engine (the acyclic path is
        // metered via its own module's callers).
        let p = parse_program("relation R(a, b). Q(x) :- R(x, y), R(y, z), R(z, x).").unwrap();
        let facts: Vec<(&str, Vec<i64>)> =
            vec![("R", vec![0, 1]), ("R", vec![1, 2]), ("R", vec![2, 0])];
        let borrowed: Vec<(&str, &[i64])> = facts.iter().map(|(n, v)| (*n, v.as_slice())).collect();
        let src = Toy::new(&p.catalog, &borrowed);
        let cq = compile(&p.queries[0], &src).unwrap();
        assert!(cq.acyclic.is_none(), "triangle is cyclic");
        assert_eq!(cq.atom_est.len(), 3);
        assert!(cq.atom_est.iter().all(|&e| e > 0.0));
        let mut scratch = JoinScratch::new();
        let outcome = join_unbound(&src, &cq, &mut scratch, |_, _| false);
        assert_eq!(outcome, JoinOutcome::Exhausted);
        let exec = scratch.exec().clone();
        // 3 triangle rotations found; every candidate row was scanned.
        assert_eq!(exec.rows_emitted, 3);
        assert!(exec.candidates_scanned >= 3);
        assert_eq!(exec.atom_actual.len(), 3);
        assert_eq!(
            exec.atom_actual.iter().sum::<u64>(),
            exec.candidates_scanned,
            "per-atom actuals partition the scan total"
        );
        // Scalars accumulate across runs; per-atom actuals reset.
        join_unbound(&src, &cq, &mut scratch, |_, _| false);
        assert_eq!(scratch.exec().rows_emitted, 6);
        assert_eq!(
            scratch.exec().candidates_scanned,
            2 * exec.candidates_scanned
        );
        assert_eq!(scratch.exec().atom_actual, exec.atom_actual);
    }

    #[test]
    fn exec_counters_meter_the_acyclic_path() {
        let p = parse_program("relation R(a, b). Q(x, z) :- R(x, y), R(y, z).").unwrap();
        let facts: Vec<(&str, Vec<i64>)> = (0..4).map(|i| ("R", vec![i, i + 1])).collect();
        let borrowed: Vec<(&str, &[i64])> = facts.iter().map(|(n, v)| (*n, v.as_slice())).collect();
        let src = Toy::new(&p.catalog, &borrowed);
        let cq = compile(&p.queries[0], &src).unwrap();
        assert!(cq.acyclic.is_some(), "chain2 is acyclic");
        let mut scratch = JoinScratch::new();
        join_unbound_distinct(&src, &cq, &mut scratch, |_, _| false);
        let exec = scratch.exec();
        assert_eq!(exec.rows_emitted, 3, "three 2-step paths");
        assert_eq!(exec.semijoin_retain_passes, 1, "one non-root atom");
        assert_eq!(exec.atom_actual, vec![4, 4], "full scans pre-reduction");
    }

    #[test]
    fn chain_on_path_has_expected_solutions() {
        // A 6-node path (5 edges); a 3-chain fits at 3 start edges.
        let p = parse_program("relation R(a, b). Q(x) :- R(x, y), R(y, z), R(z, w).").unwrap();
        let facts: Vec<(&str, Vec<i64>)> = (0..5).map(|i| ("R", vec![i, i + 1])).collect();
        let borrowed: Vec<(&str, &[i64])> = facts.iter().map(|(n, v)| (*n, v.as_slice())).collect();
        let src = Toy::new(&p.catalog, &borrowed);
        assert_eq!(count_solutions(&src, &p.queries[0]), 3);
    }
}
