//! Cooperative cancellation for long-running searches.
//!
//! The containment and evaluation problems this workspace decides are
//! NP-hard in the query size, so any serving layer must assume some
//! requests are pathologically expensive. A [`CancelToken`] is the
//! shared stop signal: a deadline (absolute, monotonic) plus an
//! explicit cancelled flag, both readable with relaxed atomic loads, so
//! one token can be cloned across the request path — connection
//! handler, admission queue, batch workers, join engines — and fire
//! everywhere at once.
//!
//! Checking time on every candidate row would dominate short probes, so
//! the engines *coalesce* checks: a counter in [`JoinScratch`] charges
//! one unit per candidate row (and per solution emitted) and consults
//! the token only every [`CANCEL_CHECK_INTERVAL`] units. The flag load
//! itself is one relaxed atomic read; the clock is read only when a
//! deadline is armed. A fired token makes the engine unwind exactly
//! like an emit-requested stop, leaving all data structures in the same
//! state a completed search would — cancellation never corrupts
//! scratch, plans, or caches.
//!
//! [`JoinScratch`]: crate::JoinScratch

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many work units (candidate rows scanned, solutions emitted) an
/// engine may process between token checks. Bounds both the per-check
/// overhead (amortized to ~one atomic load per thousand rows) and the
/// overrun past a deadline (at most the time those rows take).
pub const CANCEL_CHECK_INTERVAL: u64 = 1024;

/// Sentinel for "no deadline armed".
const NO_DEADLINE: u64 = u64::MAX;

#[derive(Debug)]
struct Inner {
    /// Explicit cancellation (peer disconnect, shutdown).
    cancelled: AtomicBool,
    /// Deadline in microseconds since `epoch`; [`NO_DEADLINE`] = none.
    deadline_us: AtomicU64,
    /// The token's private monotonic origin.
    epoch: Instant,
}

/// A cloneable stop signal: explicit cancellation plus an optional
/// monotonic deadline. Clones share state — firing one fires all.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::unlimited()
    }
}

impl CancelToken {
    /// A token with no deadline that nobody has cancelled — the engines'
    /// behavior under it is identical to having no token at all.
    pub fn unlimited() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline_us: AtomicU64::new(NO_DEADLINE),
                epoch: Instant::now(),
            }),
        }
    }

    /// A token whose deadline is `ms` milliseconds from now.
    pub fn with_deadline_ms(ms: u64) -> CancelToken {
        let t = CancelToken::unlimited();
        t.arm_ms(ms);
        t
    }

    /// Arms (or re-arms) the deadline to `ms` milliseconds from now.
    pub fn arm_ms(&self, ms: u64) {
        let d = self
            .now_us()
            .saturating_add(ms.saturating_mul(1000))
            .min(NO_DEADLINE - 1);
        self.inner.deadline_us.store(d, Ordering::Relaxed);
    }

    /// Microseconds elapsed since this token was created.
    pub fn now_us(&self) -> u64 {
        self.inner
            .epoch
            .elapsed()
            .as_micros()
            .min(u128::from(u64::MAX)) as u64
    }

    /// Requests cancellation (e.g. the peer disconnected). Irrevocable.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] was called — distinguishes an
    /// explicit cancellation from a deadline expiry for attribution.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Whether a deadline is armed at all.
    pub fn has_deadline(&self) -> bool {
        self.inner.deadline_us.load(Ordering::Relaxed) != NO_DEADLINE
    }

    /// Whether the armed deadline (if any) has passed.
    pub fn expired(&self) -> bool {
        let d = self.inner.deadline_us.load(Ordering::Relaxed);
        d != NO_DEADLINE && self.now_us() >= d
    }

    /// The single check the engines make: cancelled or past deadline.
    /// One relaxed load when no deadline is armed; one clock read
    /// otherwise.
    #[inline]
    pub fn should_stop(&self) -> bool {
        self.is_cancelled() || self.expired()
    }

    /// Microseconds left until the deadline: `None` when no deadline is
    /// armed, `Some(0)` once it has passed.
    pub fn remaining_us(&self) -> Option<u64> {
        let d = self.inner.deadline_us.load(Ordering::Relaxed);
        if d == NO_DEADLINE {
            None
        } else {
            Some(d.saturating_sub(self.now_us()))
        }
    }

    /// Microseconds the token has run *past* its deadline (0 when no
    /// deadline is armed or it has not passed) — the "deadline honored"
    /// benchmark metric.
    pub fn overrun_us(&self) -> u64 {
        let d = self.inner.deadline_us.load(Ordering::Relaxed);
        if d == NO_DEADLINE {
            0
        } else {
            self.now_us().saturating_sub(d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_never_stops() {
        let t = CancelToken::unlimited();
        assert!(!t.should_stop());
        assert!(!t.expired());
        assert!(!t.has_deadline());
        assert_eq!(t.remaining_us(), None);
        assert_eq!(t.overrun_us(), 0);
    }

    #[test]
    fn cancel_fires_all_clones() {
        let t = CancelToken::unlimited();
        let c = t.clone();
        c.cancel();
        assert!(t.should_stop());
        assert!(t.is_cancelled());
        assert!(!t.expired());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let t = CancelToken::with_deadline_ms(0);
        assert!(t.expired());
        assert!(t.should_stop());
        assert!(!t.is_cancelled());
        assert_eq!(t.remaining_us(), Some(0));
    }

    #[test]
    fn future_deadline_counts_down() {
        let t = CancelToken::with_deadline_ms(60_000);
        assert!(!t.should_stop());
        let rem = t.remaining_us().unwrap();
        assert!(rem > 30_000_000, "{rem}");
        assert_eq!(t.overrun_us(), 0);
    }

    #[test]
    fn overrun_grows_past_deadline() {
        let t = CancelToken::with_deadline_ms(0);
        std::thread::sleep(Duration::from_millis(2));
        assert!(t.overrun_us() >= 1_000);
    }

    #[test]
    fn rearm_extends() {
        let t = CancelToken::with_deadline_ms(0);
        assert!(t.expired());
        t.arm_ms(60_000);
        assert!(!t.expired());
    }
}
