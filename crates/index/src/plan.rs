//! Caching of compiled query plans.
//!
//! [`compile`](crate::engine::compile) is cheap but not free — it walks
//! every atom, clones slot vectors, and resolves constants against the
//! source's symbol pool. Workloads that run the *same* query against the
//! same source many times (the containment engine probes `Q′` against a
//! growing chase once per level; batch evaluation probes one query per
//! tuple) pay that cost per call. A [`PlanCache`] memoizes compiled
//! plans keyed by the query's *structural identity*, so repeated checks
//! skip `compile` entirely.
//!
//! A cache is only valid against **one** fact source (plans embed
//! source-resolved constant symbols), and only while that source's
//! constant-symbol resolution is stable: interning new constants is fine
//! (existing symbols never change), rebuilding the source's pool is not.
//! Keep one cache per source, and drop it with the source.

use std::hash::{Hash, Hasher};

use cqchase_ir::{Atom, ConjunctiveQuery, Term};

use crate::engine::{compile, CompiledQuery, FactSource};
use crate::fx::{FxHashMap, FxHasher};

/// Structural identity of a conjunctive query: a 64-bit content hash
/// plus the cheap exact dimensions (atom, variable, head counts) as
/// collision guards. Two queries with equal keys compile to the same
/// plan against any given source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryKey {
    hash: u64,
    num_atoms: u32,
    num_vars: u32,
    head_len: u32,
}

/// Computes a query's [`QueryKey`] from its body and head structure
/// (names are ignored — only relations, variable ids, and constants
/// matter to the compiled plan).
pub fn query_key(q: &ConjunctiveQuery) -> QueryKey {
    let mut h = FxHasher::default();
    for atom in &q.atoms {
        atom.relation.0.hash(&mut h);
        for t in &atom.terms {
            match t {
                Term::Var(v) => {
                    h.write_u8(0);
                    v.0.hash(&mut h);
                }
                Term::Const(c) => {
                    h.write_u8(1);
                    c.hash(&mut h);
                }
            }
        }
    }
    for t in &q.head {
        t.hash(&mut h);
    }
    QueryKey {
        hash: h.finish(),
        num_atoms: q.atoms.len() as u32,
        num_vars: q.vars.len() as u32,
        head_len: q.head.len() as u32,
    }
}

/// One memoized plan plus the exact structure it was compiled from
/// (the collision guard — a [`QueryKey`] hash match alone is not
/// proof of structural equality).
#[derive(Debug)]
struct CachedPlan {
    atoms: Vec<Atom>,
    head: Vec<Term>,
    plan: Option<CompiledQuery>,
}

/// A memo table `query structure → compiled plan` for one fact source.
///
/// Lookup hashes the [`QueryKey`] and then verifies *exact* structural
/// equality (atoms and head) against the bucket's entries, so a 64-bit
/// hash collision costs one extra compile, never a wrong plan.
///
/// `None` values are cached too: a query whose constants are absent from
/// the source compiles to "unsatisfiable" and stays unsatisfiable for as
/// long as the cache is valid.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: FxHashMap<QueryKey, Vec<CachedPlan>>,
    hits: usize,
    misses: usize,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// The plan for `q` against `src`, compiling on first sight.
    /// Returns `None` when the query cannot match (some constant is
    /// absent from the source).
    pub fn get_or_compile(
        &mut self,
        q: &ConjunctiveQuery,
        src: &impl FactSource,
    ) -> Option<&CompiledQuery> {
        let key = query_key(q);
        let bucket = self.plans.entry(key).or_default();
        match bucket
            .iter()
            .position(|c| c.atoms == q.atoms && c.head == q.head)
        {
            Some(i) => {
                self.hits += 1;
                bucket[i].plan.as_ref()
            }
            None => {
                self.misses += 1;
                bucket.push(CachedPlan {
                    atoms: q.atoms.clone(),
                    head: q.head.clone(),
                    plan: compile(q, src),
                });
                bucket.last().expect("just pushed").plan.as_ref()
            }
        }
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of compilations (cache misses) so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of distinct plans held.
    pub fn len(&self) -> usize {
        self.plans.values().map(Vec::len).sum()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (for when the source is rebuilt).
    pub fn clear(&mut self) {
        self.plans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ColumnIndex;
    use crate::sym::{Sym, SymPool};
    use cqchase_ir::{parse_program, Constant, RelId};

    struct Toy {
        pool: SymPool<Constant>,
        cols: ColumnIndex,
        rows: Vec<Vec<Vec<Sym>>>,
    }

    impl FactSource for Toy {
        fn rel_size(&self, rel: RelId) -> usize {
            self.rows[rel.index()].len()
        }
        fn row_syms(&self, rel: RelId, row: u32) -> &[Sym] {
            &self.rows[rel.index()][row as usize]
        }
        fn posting_len(&self, rel: RelId, col: usize, sym: Sym) -> usize {
            self.cols.posting_len(rel, col, sym)
        }
        fn candidates(&self, rel: RelId, bound: &[(usize, Sym)], out: &mut Vec<u32>) {
            if bound.is_empty() {
                out.extend(0..self.rows[rel.index()].len() as u32);
            } else {
                self.cols
                    .candidates(rel, bound, |row| &self.rows[rel.index()][row as usize], out);
            }
        }
        fn sym_of_const(&self, c: &Constant) -> Option<Sym> {
            self.pool.get(c)
        }
    }

    fn toy() -> Toy {
        let p = parse_program("relation R(a, b). Q(x) :- R(x, y).").unwrap();
        let mut pool = SymPool::new();
        let mut cols = ColumnIndex::new(p.catalog.rel_ids().map(|r| p.catalog.arity(r)));
        let rel = p.catalog.resolve("R").unwrap();
        let syms = vec![
            pool.intern(&Constant::int(1)),
            pool.intern(&Constant::int(2)),
        ];
        cols.insert_row(rel, 0, &syms);
        Toy {
            pool,
            cols,
            rows: vec![vec![syms]],
        }
    }

    #[test]
    fn keys_distinguish_structure() {
        let p = parse_program(
            "relation R(a, b).
             Q1(x) :- R(x, y).
             Q2(x) :- R(y, x).
             Q3(x) :- R(x, 1).",
        )
        .unwrap();
        let keys: Vec<QueryKey> = p.queries.iter().map(query_key).collect();
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        assert_eq!(keys[0], query_key(&p.queries[0]));
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let p = parse_program(
            "relation R(a, b).
             Q(x) :- R(x, y).
             Qc(x) :- R(x, 99).",
        )
        .unwrap();
        let src = toy();
        let mut cache = PlanCache::new();
        assert!(cache.get_or_compile(&p.queries[0], &src).is_some());
        assert!(cache.get_or_compile(&p.queries[0], &src).is_some());
        // Unsatisfiable (constant 99 absent) is cached as None.
        assert!(cache.get_or_compile(&p.queries[1], &src).is_none());
        assert!(cache.get_or_compile(&p.queries[1], &src).is_none());
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }
}
