//! Caching of compiled query plans.
//!
//! [`compile`](crate::engine::compile) is cheap but not free — it walks
//! every atom, clones slot vectors, and resolves constants against the
//! source's symbol pool. Workloads that run the *same* query against the
//! same source many times (the containment engine probes `Q′` against a
//! growing chase once per level; batch evaluation probes one query per
//! tuple) pay that cost per call. A [`PlanCache`] memoizes compiled
//! plans keyed by the query's *structural identity*, so repeated checks
//! skip `compile` entirely.
//!
//! A cache is only valid against **one** fact source (plans embed
//! source-resolved constant symbols), and only while that source's
//! constant-symbol resolution is stable: interning new constants is fine
//! (existing symbols never change), rebuilding the source's pool is not.
//! Keep one cache per source, and drop it with the source.

use std::hash::{Hash, Hasher};

use cqchase_ir::{Atom, ConjunctiveQuery, Term};

use crate::engine::{compile, CompiledQuery, FactSource};
use crate::fx::{FxHashMap, FxHasher};

/// Structural identity of a conjunctive query: a 64-bit content hash
/// plus the cheap exact dimensions (atom, variable, head counts) as
/// collision guards. Two queries with equal keys compile to the same
/// plan against any given source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryKey {
    hash: u64,
    num_atoms: u32,
    num_vars: u32,
    head_len: u32,
}

/// Computes a query's [`QueryKey`] from its body and head structure
/// (names are ignored — only relations, variable ids, and constants
/// matter to the compiled plan).
pub fn query_key(q: &ConjunctiveQuery) -> QueryKey {
    let mut h = FxHasher::default();
    for atom in &q.atoms {
        atom.relation.0.hash(&mut h);
        for t in &atom.terms {
            match t {
                Term::Var(v) => {
                    h.write_u8(0);
                    v.0.hash(&mut h);
                }
                Term::Const(c) => {
                    h.write_u8(1);
                    c.hash(&mut h);
                }
            }
        }
    }
    for t in &q.head {
        t.hash(&mut h);
    }
    QueryKey {
        hash: h.finish(),
        num_atoms: q.atoms.len() as u32,
        num_vars: q.vars.len() as u32,
        head_len: q.head.len() as u32,
    }
}

/// One memoized plan plus the exact structure it was compiled from
/// (the collision guard — a [`QueryKey`] hash match alone is not
/// proof of structural equality) and its last-use tick for LRU
/// eviction.
#[derive(Debug, Clone)]
struct CachedPlan {
    atoms: Vec<Atom>,
    head: Vec<Term>,
    plan: Option<CompiledQuery>,
    last_used: u64,
}

/// A memo table `query structure → compiled plan` for one fact source.
///
/// Lookup hashes the [`QueryKey`] and then verifies *exact* structural
/// equality (atoms and head) against the bucket's entries, so a 64-bit
/// hash collision costs one extra compile, never a wrong plan.
///
/// `None` values are cached too: a query whose constants are absent from
/// the source compiles to "unsatisfiable" and stays unsatisfiable for as
/// long as the cache is valid.
///
/// A cache built with [`PlanCache::with_capacity`] is **bounded**: once
/// it holds `capacity` plans, inserting another evicts the
/// least-recently-used entry first. Eviction only ever discards memoized
/// work — an evicted query simply recompiles on next sight — so bounded
/// and unbounded caches return identical plans. Long-running processes
/// (the `cqchase-service` server keeps one cache per session, forever)
/// should always bound their caches.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: FxHashMap<QueryKey, Vec<CachedPlan>>,
    capacity: Option<usize>,
    tick: u64,
    len: usize,
    hits: usize,
    misses: usize,
    evictions: usize,
    replans: usize,
    acyclic_served: usize,
}

impl PlanCache {
    /// An empty, unbounded cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// An empty cache holding at most `capacity` plans (LRU eviction
    /// beyond that). A zero capacity caches nothing — every lookup
    /// compiles.
    pub fn with_capacity(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: Some(capacity),
            ..PlanCache::default()
        }
    }

    /// The plan for `q` against `src`, compiling on first sight.
    /// Returns `None` when the query cannot match (some constant is
    /// absent from the source).
    pub fn get_or_compile(
        &mut self,
        q: &ConjunctiveQuery,
        src: &impl FactSource,
    ) -> Option<&CompiledQuery> {
        if self.capacity == Some(0) {
            // Degenerate bound: no memoization at all. Compile into a
            // one-slot scratch bucket so the borrow can be returned.
            self.misses += 1;
            self.plans.clear();
            let plan = compile(q, src);
            if plan.as_ref().is_some_and(|p| p.acyclic.is_some()) {
                self.acyclic_served += 1;
            }
            let bucket = self.plans.entry(query_key(q)).or_default();
            bucket.push(CachedPlan {
                atoms: Vec::new(),
                head: Vec::new(),
                plan,
                last_used: 0,
            });
            return bucket.last().expect("just pushed").plan.as_ref();
        }
        self.tick += 1;
        let tick = self.tick;
        let key = query_key(q);
        let hit = {
            let bucket = self.plans.entry(key).or_default();
            match bucket
                .iter()
                .position(|c| c.atoms == q.atoms && c.head == q.head)
            {
                Some(i) => {
                    bucket[i].last_used = tick;
                    // Drift check: a plan costed against cardinalities
                    // that have since shifted ≥2x gets recompiled rather
                    // than served stale forever.
                    if bucket[i]
                        .plan
                        .as_ref()
                        .is_some_and(|p| p.stats_drifted(src))
                    {
                        bucket[i].plan = compile(q, src);
                        self.replans += 1;
                    }
                    true
                }
                None => false,
            }
        };
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            let plan = compile(q, src);
            self.plans.entry(key).or_default().push(CachedPlan {
                atoms: q.atoms.clone(),
                head: q.head.clone(),
                plan,
                last_used: tick,
            });
            self.len += 1;
            if let Some(cap) = self.capacity {
                if self.len > cap {
                    self.evict_lru(key);
                }
            }
        }
        let plan = self
            .plans
            .get(&key)
            .expect("the bucket queried or inserted into still exists")
            .iter()
            .find(|c| c.atoms == q.atoms && c.head == q.head)
            .expect("the just-touched entry is never the LRU victim")
            .plan
            .as_ref();
        if plan.is_some_and(|p| p.acyclic.is_some()) {
            self.acyclic_served += 1;
        }
        plan
    }

    /// Evicts the least-recently-used plan. `keep` names the bucket of
    /// the entry inserted this tick, which by construction has the
    /// newest `last_used` and is therefore never chosen.
    fn evict_lru(&mut self, keep: QueryKey) {
        let victim_key = self
            .plans
            .iter()
            .flat_map(|(k, bucket)| bucket.iter().map(|c| (c.last_used, *k)))
            .min_by_key(|&(tick, _)| tick);
        let Some((victim_tick, key)) = victim_key else {
            return;
        };
        let bucket = self.plans.get_mut(&key).expect("victim bucket exists");
        let pos = bucket
            .iter()
            .position(|c| c.last_used == victim_tick)
            .expect("victim entry exists");
        bucket.remove(pos);
        if bucket.is_empty() && key != keep {
            self.plans.remove(&key);
        }
        self.len -= 1;
        self.evictions += 1;
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of compilations (cache misses) so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of plans evicted by the capacity bound so far.
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// Number of recompilations triggered by cardinality drift (a cached
    /// plan's stats snapshot diverged ≥2x from the live source).
    pub fn replans(&self) -> usize {
        self.replans
    }

    /// Number of lookups that returned a plan carrying an acyclic
    /// (Yannakakis) fast-path certificate.
    pub fn acyclic_served(&self) -> usize {
        self.acyclic_served
    }

    /// The capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of distinct plans held.
    pub fn len(&self) -> usize {
        if self.capacity == Some(0) {
            return 0;
        }
        self.plans.values().map(Vec::len).sum()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of this cache carrying the memoized plans but **fresh
    /// counters** — for handing warm plans to a new owner whose source
    /// is a clone of this cache's source (same symbol pool, so the
    /// embedded symbols stay valid). The copy keeps `capacity` and the
    /// LRU ticks; hits/misses/evictions/replans start at zero because
    /// they describe the original owner's history, not the new one's.
    pub fn clone_warm(&self) -> PlanCache {
        PlanCache {
            plans: self.plans.clone(),
            capacity: self.capacity,
            tick: self.tick,
            len: self.len,
            ..PlanCache::default()
        }
    }

    /// Drops every cached plan (for when the source is rebuilt).
    pub fn clear(&mut self) {
        self.plans.clear();
        self.len = 0;
    }

    /// Drops only the cached **unsatisfiable** plans (`None` entries).
    ///
    /// A `None` plan records "some body constant is absent from the
    /// source" — a fact that stays true under deletions (symbols are
    /// never un-interned) but can be *falsified* by an insertion that
    /// interns the missing constant. Mutating owners call this whenever
    /// an insert grew the symbol pool; satisfiable plans embed stable
    /// symbols and survive untouched.
    pub fn drop_unsatisfiable(&mut self) {
        if self.capacity == Some(0) {
            // Degenerate bound: only the uncounted scratch bucket can
            // exist (`len` stays 0 on this path), and every lookup
            // recompiles anyway — clear it rather than underflow `len`.
            self.plans.clear();
            return;
        }
        let mut dropped = 0usize;
        for bucket in self.plans.values_mut() {
            let before = bucket.len();
            bucket.retain(|c| c.plan.is_some());
            dropped += before - bucket.len();
        }
        self.plans.retain(|_, bucket| !bucket.is_empty());
        self.len -= dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ColumnIndex;
    use crate::sym::{Sym, SymPool};
    use cqchase_ir::{parse_program, Constant, RelId};

    struct Toy {
        pool: SymPool<Constant>,
        cols: ColumnIndex,
        rows: Vec<Vec<Vec<Sym>>>,
    }

    impl FactSource for Toy {
        fn rel_size(&self, rel: RelId) -> usize {
            self.rows[rel.index()].len()
        }
        fn row_syms(&self, rel: RelId, row: u32) -> &[Sym] {
            &self.rows[rel.index()][row as usize]
        }
        fn posting_len(&self, rel: RelId, col: usize, sym: Sym) -> usize {
            self.cols.posting_len(rel, col, sym)
        }
        fn candidates(&self, rel: RelId, bound: &[(usize, Sym)], out: &mut Vec<u32>) {
            if bound.is_empty() {
                out.extend(0..self.rows[rel.index()].len() as u32);
            } else {
                self.cols
                    .candidates(rel, bound, |row| &self.rows[rel.index()][row as usize], out);
            }
        }
        fn sym_of_const(&self, c: &Constant) -> Option<Sym> {
            self.pool.get(c)
        }
    }

    fn toy() -> Toy {
        let p = parse_program("relation R(a, b). Q(x) :- R(x, y).").unwrap();
        let mut pool = SymPool::new();
        let mut cols = ColumnIndex::new(p.catalog.rel_ids().map(|r| p.catalog.arity(r)));
        let rel = p.catalog.resolve("R").unwrap();
        let syms = vec![
            pool.intern(&Constant::int(1)),
            pool.intern(&Constant::int(2)),
        ];
        cols.insert_row(rel, 0, &syms);
        Toy {
            pool,
            cols,
            rows: vec![vec![syms]],
        }
    }

    #[test]
    fn keys_distinguish_structure() {
        let p = parse_program(
            "relation R(a, b).
             Q1(x) :- R(x, y).
             Q2(x) :- R(y, x).
             Q3(x) :- R(x, 1).",
        )
        .unwrap();
        let keys: Vec<QueryKey> = p.queries.iter().map(query_key).collect();
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        assert_eq!(keys[0], query_key(&p.queries[0]));
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let p = parse_program(
            "relation R(a, b).
             Q(x) :- R(x, y).
             Qc(x) :- R(x, 99).",
        )
        .unwrap();
        let src = toy();
        let mut cache = PlanCache::new();
        assert!(cache.get_or_compile(&p.queries[0], &src).is_some());
        assert!(cache.get_or_compile(&p.queries[0], &src).is_some());
        // Unsatisfiable (constant 99 absent) is cached as None.
        assert!(cache.get_or_compile(&p.queries[1], &src).is_none());
        assert!(cache.get_or_compile(&p.queries[1], &src).is_none());
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    /// Runs a plan against the toy source and collects the bound rows —
    /// the observable behavior eviction must not change.
    fn rows_via(cache: &mut PlanCache, q: &cqchase_ir::ConjunctiveQuery, src: &Toy) -> Vec<u32> {
        let mut rows = Vec::new();
        match cache.get_or_compile(q, src) {
            None => {}
            Some(plan) => {
                crate::engine::join(src, plan, vec![None; plan.num_vars], |_, picked| {
                    rows.extend_from_slice(picked);
                    false
                });
            }
        }
        rows
    }

    #[test]
    fn eviction_preserves_correctness() {
        let p = parse_program(
            "relation R(a, b).
             Q1(x) :- R(x, y).
             Q2(x) :- R(y, x).
             Q3(x, y) :- R(x, y).
             Qc(x) :- R(x, 99).",
        )
        .unwrap();
        let src = toy();

        // Reference answers from an unbounded cache.
        let mut unbounded = PlanCache::new();
        let want: Vec<Vec<u32>> = p
            .queries
            .iter()
            .map(|q| rows_via(&mut unbounded, q, &src))
            .collect();

        // A 2-plan cache cycling through 4 queries evicts constantly;
        // every answer must still match the unbounded cache's.
        let mut bounded = PlanCache::with_capacity(2);
        for round in 0..3 {
            for (q, w) in p.queries.iter().zip(&want) {
                assert_eq!(rows_via(&mut bounded, q, &src), *w, "round {round}");
                assert!(bounded.len() <= 2, "capacity respected");
            }
        }
        assert!(bounded.evictions() > 0, "the bound actually evicted");
        assert_eq!(bounded.capacity(), Some(2));
        // Unsatisfiable plans (`None`) survive eviction/recompile too.
        assert!(bounded
            .get_or_compile(p.query("Qc").unwrap(), &src)
            .is_none());
    }

    #[test]
    fn lru_discipline_keeps_hot_entries() {
        let p = parse_program(
            "relation R(a, b).
             Q1(x) :- R(x, y).
             Q2(x) :- R(y, x).
             Q3(x, y) :- R(x, y).",
        )
        .unwrap();
        let src = toy();
        let mut cache = PlanCache::with_capacity(2);
        let (q1, q2, q3) = (&p.queries[0], &p.queries[1], &p.queries[2]);
        cache.get_or_compile(q1, &src); // miss
        cache.get_or_compile(q2, &src); // miss
        cache.get_or_compile(q1, &src); // hit — q1 becomes most recent
        cache.get_or_compile(q3, &src); // miss — evicts q2 (the LRU)
        let hits_before = cache.hits();
        cache.get_or_compile(q1, &src); // still cached
        assert_eq!(cache.hits(), hits_before + 1);
        let misses_before = cache.misses();
        cache.get_or_compile(q2, &src); // was evicted — recompiles
        assert_eq!(cache.misses(), misses_before + 1);
        assert_eq!(cache.evictions(), 2);
    }

    #[test]
    fn drop_unsatisfiable_keeps_satisfiable_plans() {
        let p = parse_program(
            "relation R(a, b).
             Q(x) :- R(x, y).
             Qc(x) :- R(x, 99).",
        )
        .unwrap();
        let mut src = toy();
        let mut cache = PlanCache::new();
        assert!(cache.get_or_compile(&p.queries[0], &src).is_some());
        assert!(cache.get_or_compile(&p.queries[1], &src).is_none());
        assert_eq!(cache.len(), 2);
        // The source learns constant 99 — the cached `None` must go.
        let rel = RelId(0);
        let syms = vec![
            src.pool.intern(&Constant::int(99)),
            src.pool.intern(&Constant::int(99)),
        ];
        src.cols.insert_row(rel, 1, &syms);
        src.rows[0].push(syms);
        cache.drop_unsatisfiable();
        assert_eq!(cache.len(), 1);
        // Recompiled against the grown source: now satisfiable.
        assert!(cache.get_or_compile(&p.queries[1], &src).is_some());
        // The satisfiable plan survived as a hit.
        let hits = cache.hits();
        assert!(cache.get_or_compile(&p.queries[0], &src).is_some());
        assert_eq!(cache.hits(), hits + 1);
    }

    #[test]
    fn cardinality_drift_triggers_replan() {
        let p = parse_program("relation R(a, b). Q(x) :- R(x, y).").unwrap();
        let mut src = toy(); // 1 row in R
        let mut cache = PlanCache::new();
        assert!(cache.get_or_compile(&p.queries[0], &src).is_some());
        assert_eq!(cache.replans(), 0);
        // Grow R from 1 to 20 rows — well past 2x beyond the drift floor.
        for i in 0..19 {
            let syms = vec![
                src.pool.intern(&Constant::int(100 + i)),
                src.pool.intern(&Constant::int(200 + i)),
            ];
            let row = src.rows[0].len() as u32;
            src.cols.insert_row(RelId(0), row, &syms);
            src.rows[0].push(syms);
        }
        let plan = cache.get_or_compile(&p.queries[0], &src).unwrap();
        assert_eq!(plan.stats, vec![(RelId(0), 20)], "snapshot refreshed");
        assert_eq!(cache.replans(), 1);
        assert_eq!(cache.hits(), 1, "a drift replan still counts as a hit");
        // The refreshed snapshot doesn't re-trigger.
        assert!(cache.get_or_compile(&p.queries[0], &src).is_some());
        assert_eq!(cache.replans(), 1);
        // The single-atom query is acyclic: every serve was counted.
        assert_eq!(cache.acyclic_served(), 3);
    }

    #[test]
    fn zero_capacity_never_caches() {
        let p = parse_program("relation R(a, b). Q(x) :- R(x, y).").unwrap();
        let src = toy();
        let mut cache = PlanCache::with_capacity(0);
        for _ in 0..3 {
            assert!(cache.get_or_compile(&p.queries[0], &src).is_some());
        }
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 3);
        assert!(cache.is_empty());
    }

    #[test]
    fn zero_capacity_drop_unsatisfiable_does_not_underflow() {
        // Regression: the capacity-0 scratch entry is not counted in
        // `len`, so dropping it must not decrement `len` below zero.
        let p = parse_program("relation R(a, b). Qc(x) :- R(x, 99).").unwrap();
        let src = toy();
        let mut cache = PlanCache::with_capacity(0);
        assert!(cache.get_or_compile(&p.queries[0], &src).is_none());
        cache.drop_unsatisfiable();
        assert!(cache.is_empty());
        // Still usable afterwards.
        assert!(cache.get_or_compile(&p.queries[0], &src).is_none());
    }
}
