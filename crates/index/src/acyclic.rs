//! The Yannakakis fast path for acyclic conjunctive queries.
//!
//! At compile time a GYO ear reduction tests the query body's hypergraph
//! (vertices = variables, hyperedges = atom variable sets) for
//! α-acyclicity. When the reduction succeeds, the witness edges form a
//! join forest with the running-intersection property, recorded as an
//! [`AcyclicPlan`].
//!
//! Execution is then provably linear in input + output instead of
//! backtracking:
//!
//! 1. **Candidates** — per atom, the rows matching its constant slots and
//!    intra-atom repeated variables, straight off the posting lists.
//! 2. **Bottom-up semijoin reduction** — leaves first, each atom's
//!    candidate list is sorted by its projection onto the variables
//!    shared with its parent, and parent rows with no matching child row
//!    are dropped. After this pass every surviving row extends to a full
//!    solution of its subtree.
//! 3. **Enumeration** — a pre-order walk over the forest. Each atom's
//!    matching rows are a contiguous run of its sorted candidate list
//!    (found by binary search on the parent-bound key), so enumeration
//!    never backtracks: every row tried completes to a solution.
//!
//! The running-intersection property guarantees that at enumeration time
//! the *only* already-bound variables of an atom are exactly the ones
//! shared with its parent — the binary-searched key — which is what makes
//! step 3 backtrack-free.
//!
//! In *distinct* mode (the evaluator's entry point, where only distinct
//! head-variable bindings matter), a subtree whose head variables are all
//! bound is collapsed to a single representative row: its choices cannot
//! change the head image, and the reduction pass already proved a
//! completion exists. Boolean queries collapse everything — evaluation
//! becomes a pure existence check.

use std::cmp::Ordering;

use cqchase_ir::RelId;

use crate::engine::{
    CompiledAtom, CompiledQuery, EmitFn, FactSource, JoinOutcome, JoinScratch, Slot,
};
use crate::sym::Sym;

/// Sentinel parent index for forest roots.
pub const NO_PARENT: u32 = u32::MAX;

/// A join forest over the atoms of an acyclic query, produced by GYO ear
/// reduction at compile time. All vectors are indexed by the *original*
/// atom index.
#[derive(Debug, Clone)]
pub struct AcyclicPlan {
    /// Pre-order walk of the forest (every parent precedes its subtree;
    /// roots and siblings in ascending atom order).
    pub order: Vec<u32>,
    /// Parent atom per atom, [`NO_PARENT`] for roots.
    pub parent: Vec<u32>,
    /// Per atom: the variables shared with its parent, ascending. Empty
    /// for roots. By the running-intersection property these are exactly
    /// the atom's variables that are bound when enumeration reaches it.
    pub key_vars: Vec<Vec<u32>>,
    /// Per atom: this atom's column carrying each key variable (aligned
    /// with `key_vars`; first occurrence).
    pub key_cols: Vec<Vec<u32>>,
    /// Per atom: the *parent's* column carrying each key variable
    /// (aligned with `key_vars`).
    pub parent_cols: Vec<Vec<u32>>,
    /// Per atom: the head variables occurring anywhere in its subtree
    /// (itself included), ascending. Drives distinct-mode collapsing.
    pub subtree_heads: Vec<Vec<u32>>,
    /// Per atom: column pairs `(i, j)` that carry the same variable and
    /// must therefore hold equal symbols (intra-atom repeated-variable
    /// filter applied during candidate generation).
    pub eq_pairs: Vec<Vec<(u32, u32)>>,
}

/// Runs the GYO ear reduction over `atoms`. Returns the join-forest plan
/// when the body is α-acyclic, `None` when it is cyclic (the caller then
/// keeps the backtracking engine).
pub(crate) fn build(atoms: &[CompiledAtom], head_vars: &[u32]) -> Option<AcyclicPlan> {
    let n = atoms.len();
    if n == 0 {
        return None;
    }
    // Variable sets per atom, sorted + deduplicated.
    let vars: Vec<Vec<u32>> = atoms
        .iter()
        .map(|a| {
            let mut vs: Vec<u32> = a
                .slots
                .iter()
                .filter_map(|s| match s {
                    Slot::Var(v) => Some(*v),
                    Slot::Const(_) => None,
                })
                .collect();
            vs.sort_unstable();
            vs.dedup();
            vs
        })
        .collect();

    let mut active = vec![true; n];
    let mut parent = vec![NO_PARENT; n];
    let mut shared: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut remaining = n;
    while remaining > 1 {
        let mut removed = false;
        for e in 0..n {
            if !active[e] {
                continue;
            }
            // Non-exclusive variables of `e`: those occurring in some
            // other still-active edge.
            let nonexcl: Vec<u32> = vars[e]
                .iter()
                .copied()
                .filter(|v| (0..n).any(|f| f != e && active[f] && vars[f].binary_search(v).is_ok()))
                .collect();
            if nonexcl.is_empty() {
                // Isolated edge: root of its own component.
                active[e] = false;
                remaining -= 1;
                removed = true;
                continue;
            }
            // `e` is an ear if one other active edge covers all its
            // non-exclusive variables; that edge becomes its parent.
            let witness = (0..n).find(|&f| {
                f != e && active[f] && nonexcl.iter().all(|v| vars[f].binary_search(v).is_ok())
            });
            if let Some(f) = witness {
                parent[e] = f as u32;
                shared[e] = nonexcl;
                active[e] = false;
                remaining -= 1;
                removed = true;
            }
        }
        if !removed {
            return None; // no ear left with >1 edge standing: cyclic
        }
    }

    // Forest structure: children lists and a deterministic pre-order.
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for e in 0..n {
        if parent[e] != NO_PARENT {
            children[parent[e] as usize].push(e as u32);
        }
    }
    for c in &mut children {
        c.sort_unstable();
    }
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<u32> = (0..n as u32)
        .rev()
        .filter(|&e| parent[e as usize] == NO_PARENT)
        .collect();
    while let Some(a) = stack.pop() {
        order.push(a);
        stack.extend(children[a as usize].iter().rev());
    }
    debug_assert_eq!(order.len(), n, "the forest spans every atom");

    // Key columns: for each non-root, where the shared variables sit in
    // the atom itself and in its parent (first occurrence each).
    let col_of = |atom: &CompiledAtom, v: u32| -> u32 {
        atom.slots
            .iter()
            .position(|s| *s == Slot::Var(v))
            .expect("a shared variable occurs in both atoms") as u32
    };
    let mut key_cols = vec![Vec::new(); n];
    let mut parent_cols = vec![Vec::new(); n];
    for e in 0..n {
        if parent[e] == NO_PARENT {
            continue;
        }
        let f = parent[e] as usize;
        key_cols[e] = shared[e].iter().map(|&v| col_of(&atoms[e], v)).collect();
        parent_cols[e] = shared[e].iter().map(|&v| col_of(&atoms[f], v)).collect();
    }

    // Head variables per subtree: accumulate children into parents by
    // walking the pre-order backwards (children sit after their parent).
    let mut subtree_heads: Vec<Vec<u32>> = (0..n)
        .map(|e| {
            vars[e]
                .iter()
                .copied()
                .filter(|v| head_vars.contains(v))
                .collect()
        })
        .collect();
    for &a in order.iter().rev() {
        let a = a as usize;
        if parent[a] != NO_PARENT {
            let f = parent[a] as usize;
            let merged: Vec<u32> = subtree_heads[a].clone();
            let dst = &mut subtree_heads[f];
            dst.extend(merged);
            dst.sort_unstable();
            dst.dedup();
        }
    }

    // Intra-atom repeated-variable column pairs.
    let eq_pairs: Vec<Vec<(u32, u32)>> = atoms
        .iter()
        .map(|a| {
            let mut pairs = Vec::new();
            for j in 1..a.slots.len() {
                if let Slot::Var(v) = a.slots[j] {
                    if let Some(i) = a.slots[..j].iter().position(|s| *s == Slot::Var(v)) {
                        pairs.push((i as u32, j as u32));
                    }
                }
            }
            pairs
        })
        .collect();

    Some(AcyclicPlan {
        order,
        parent,
        key_vars: shared,
        key_cols,
        parent_cols,
        subtree_heads,
        eq_pairs,
    })
}

/// Compares two rows of `rel` by their projection onto `cols`, breaking
/// ties by row id (total order ⇒ deterministic sorted candidate lists).
fn cmp_proj<S: FactSource>(src: &S, rel: RelId, cols: &[u32], r1: u32, r2: u32) -> Ordering {
    for &c in cols {
        let o = src.row_syms(rel, r1)[c as usize].cmp(&src.row_syms(rel, r2)[c as usize]);
        if o != Ordering::Equal {
            return o;
        }
    }
    r1.cmp(&r2)
}

/// Compares a child row's key projection against a parent row's.
fn cmp_child_parent<S: FactSource>(
    src: &S,
    rel_c: RelId,
    key_cols: &[u32],
    cr: u32,
    rel_p: RelId,
    parent_cols: &[u32],
    pr: u32,
) -> Ordering {
    for (kc, pc) in key_cols.iter().zip(parent_cols) {
        let o = src.row_syms(rel_c, cr)[*kc as usize].cmp(&src.row_syms(rel_p, pr)[*pc as usize]);
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

/// Executes an acyclic plan: candidate generation, bottom-up semijoin
/// reduction, backtrack-free pre-order enumeration. Entered only with an
/// all-unbound binding table (pre-bound searches keep the backtracking
/// engine, whose cost-based order exploits the bindings directly).
pub(crate) fn run<S: FactSource>(
    src: &S,
    cq: &CompiledQuery,
    plan: &AcyclicPlan,
    scratch: &mut JoinScratch,
    distinct: bool,
    emit: &mut EmitFn<'_>,
) -> JoinOutcome {
    let mut bufs = std::mem::take(&mut scratch.bufs);

    // 1. Per-atom candidates: constant slots + repeated-variable filter.
    for (i, a) in cq.atoms.iter().enumerate() {
        scratch.bound.clear();
        for (col, slot) in a.slots.iter().enumerate() {
            if let Slot::Const(s) = slot {
                scratch.bound.push((col, *s));
            }
        }
        let buf = &mut bufs[i];
        buf.clear();
        src.candidates(a.rel, &scratch.bound, buf);
        let eqp = &plan.eq_pairs[i];
        if !eqp.is_empty() {
            buf.retain(|&r| {
                let syms = src.row_syms(a.rel, r);
                eqp.iter()
                    .all(|&(x, y)| syms[x as usize] == syms[y as usize])
            });
        }
        scratch.exec.candidates_scanned += buf.len() as u64;
        scratch.exec.atom_actual[i] += buf.len() as u64;
        if buf.is_empty() {
            scratch.bufs = bufs;
            return JoinOutcome::Exhausted;
        }
        if scratch.cancel.charge(buf.len() as u64) {
            scratch.bufs = bufs;
            return JoinOutcome::Stopped;
        }
    }

    // 2. Bottom-up semijoin reduction, leaves first (reverse pre-order):
    // sort each non-root's candidates by its key projection, then drop
    // parent rows with no matching child row. Because children are
    // processed before their parent, every list is fully reduced below
    // before it filters upward.
    for &a in plan.order.iter().rev() {
        let a = a as usize;
        if plan.parent[a] == NO_PARENT {
            continue;
        }
        let f = plan.parent[a] as usize;
        let (kc, pc) = (&plan.key_cols[a], &plan.parent_cols[a]);
        let (rel_c, rel_p) = (cq.atoms[a].rel, cq.atoms[f].rel);
        bufs[a].sort_unstable_by(|&r1, &r2| cmp_proj(src, rel_c, kc, r1, r2));
        let child = std::mem::take(&mut bufs[a]);
        scratch.exec.semijoin_retain_passes += 1;
        bufs[f].retain(|&pr| {
            child
                .binary_search_by(|&cr| cmp_child_parent(src, rel_c, kc, cr, rel_p, pc, pr))
                .is_ok()
        });
        bufs[a] = child;
        if bufs[f].is_empty() {
            scratch.bufs = bufs;
            return JoinOutcome::Exhausted;
        }
        if scratch.cancel.charge(bufs[a].len() as u64) {
            scratch.bufs = bufs;
            return JoinOutcome::Stopped;
        }
    }

    // 3. Enumeration.
    let JoinScratch {
        bind,
        rows,
        newly,
        exec,
        cancel,
        ..
    } = scratch;
    let mut walk = Enumerate {
        src,
        cq,
        plan,
        bufs: &bufs,
        distinct,
        bind,
        rows,
        newly,
        exec,
        cancel,
    };
    let stopped = walk.solve(0, emit);
    scratch.bufs = bufs;
    if stopped {
        JoinOutcome::Stopped
    } else {
        JoinOutcome::Exhausted
    }
}

struct Enumerate<'a, S: FactSource> {
    src: &'a S,
    cq: &'a CompiledQuery,
    plan: &'a AcyclicPlan,
    bufs: &'a [Vec<u32>],
    distinct: bool,
    bind: &'a mut Vec<Option<Sym>>,
    rows: &'a mut Vec<u32>,
    newly: &'a mut Vec<Vec<u32>>,
    exec: &'a mut crate::engine::ExecStats,
    cancel: &'a mut crate::engine::CancelState,
}

impl<S: FactSource> Enumerate<'_, S> {
    /// The contiguous run of `bufs[a]` matching the (parent-bound) key
    /// variables of atom `a`.
    fn equal_range(&self, a: usize) -> (usize, usize) {
        let list = &self.bufs[a];
        let kv = &self.plan.key_vars[a];
        let kc = &self.plan.key_cols[a];
        let rel = self.cq.atoms[a].rel;
        let cmp = |r: u32| -> Ordering {
            for k in 0..kv.len() {
                let have = self.src.row_syms(rel, r)[kc[k] as usize];
                let want = self.bind[kv[k] as usize]
                    .expect("running intersection: key vars are parent-bound");
                match have.cmp(&want) {
                    Ordering::Equal => {}
                    o => return o,
                }
            }
            Ordering::Equal
        };
        let lo = list.partition_point(|&r| cmp(r) == Ordering::Less);
        let hi = lo + list[lo..].partition_point(|&r| cmp(r) == Ordering::Equal);
        (lo, hi)
    }

    fn solve(&mut self, d: usize, emit: &mut EmitFn<'_>) -> bool {
        // A fired token unwinds like an emit stop (see `Search::solve`).
        if self.cancel.charge(1) {
            return true;
        }
        if d == self.plan.order.len() {
            self.exec.rows_emitted += 1;
            return emit(self.bind, self.rows);
        }
        let a = self.plan.order[d] as usize;
        let rel = self.cq.atoms[a].rel;
        // Distinct mode: when every head variable of this subtree is
        // already bound, its row choices cannot change the head image —
        // one representative suffices (reduction proved it completes).
        let take_one = self.distinct
            && self.plan.subtree_heads[a]
                .iter()
                .all(|&v| self.bind[v as usize].is_some());
        let (lo, hi) = if self.plan.parent[a] == NO_PARENT {
            (0, self.bufs[a].len())
        } else {
            self.equal_range(a)
        };
        let mut newly = std::mem::take(&mut self.newly[d]);
        let mut stopped = false;
        'rows: for idx in lo..hi {
            let row = self.bufs[a][idx];
            newly.clear();
            for (col, slot) in self.cq.atoms[a].slots.iter().enumerate() {
                if let Slot::Var(v) = slot {
                    let sym = self.src.row_syms(rel, row)[col];
                    match self.bind[*v as usize] {
                        Some(b) if b == sym => {}
                        Some(_) => {
                            for &u in &newly {
                                self.bind[u as usize] = None;
                            }
                            self.exec.backtracks += 1;
                            continue 'rows;
                        }
                        None => {
                            self.bind[*v as usize] = Some(sym);
                            newly.push(*v);
                        }
                    }
                }
            }
            self.rows[a] = row;
            if self.solve(d + 1, emit) {
                stopped = true;
                break;
            }
            for &u in &newly {
                self.bind[u as usize] = None;
            }
            if take_one {
                break;
            }
        }
        self.newly[d] = newly;
        stopped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::{parse_program, ConjunctiveQuery};

    fn plan_of(text: &str) -> (ConjunctiveQuery, Option<AcyclicPlan>) {
        let p = parse_program(text).unwrap();
        let q = p.queries[0].clone();
        let atoms: Vec<CompiledAtom> = q
            .atoms
            .iter()
            .map(|a| CompiledAtom {
                rel: a.relation,
                slots: a
                    .terms
                    .iter()
                    .map(|t| match t {
                        cqchase_ir::Term::Var(v) => Slot::Var(v.0),
                        cqchase_ir::Term::Const(_) => Slot::Const(Sym(0)),
                    })
                    .collect(),
            })
            .collect();
        let head: Vec<u32> = q
            .head
            .iter()
            .filter_map(|t| match t {
                cqchase_ir::Term::Var(v) => Some(v.0),
                _ => None,
            })
            .collect();
        let plan = build(&atoms, &head);
        (q, plan)
    }

    #[test]
    fn chains_and_stars_are_acyclic() {
        for text in [
            "relation R(a, b). Q(x) :- R(x, y), R(y, z), R(z, w).",
            "relation R(a, b). Q(c) :- R(c, x), R(c, y), R(c, z).",
            "relation R(a, b). relation S(b, c). Q(x) :- R(x, y), S(y, z).",
            "relation R(a, b). Q(x) :- R(x, x).",
        ] {
            let (_, plan) = plan_of(text);
            let plan = plan.expect("acyclic");
            assert_eq!(
                plan.parent.iter().filter(|&&p| p == NO_PARENT).count(),
                1,
                "connected bodies form a single tree"
            );
        }
    }

    #[test]
    fn cycles_are_rejected() {
        for text in [
            "relation R(a, b). Q(x) :- R(x, y), R(y, z), R(z, x).",
            "relation R(a, b). Q(x) :- R(x, y), R(y, z), R(z, w), R(w, x).",
        ] {
            let (_, plan) = plan_of(text);
            assert!(plan.is_none(), "cycle must fall back to backtracking");
        }
    }

    #[test]
    fn triangle_with_covering_atom_is_acyclic() {
        // α-acyclicity: a ternary atom covering the triangle makes the
        // body acyclic (every binary atom is an ear into T).
        let (_, plan) = plan_of(
            "relation R(a, b). relation T(a, b, c).
             Q(x) :- R(x, y), R(y, z), R(z, x), T(x, y, z).",
        );
        assert!(plan.is_some());
    }

    #[test]
    fn disconnected_bodies_form_a_forest() {
        let (_, plan) = plan_of("relation R(a, b). relation S(c, d). Q(x, u) :- R(x, y), S(u, v).");
        let plan = plan.unwrap();
        assert_eq!(plan.parent, vec![NO_PARENT, NO_PARENT]);
        assert_eq!(plan.order, vec![0, 1]);
    }

    #[test]
    fn key_columns_align_with_shared_vars() {
        // R(x,y), S(y,z): S… whichever becomes the child, the shared var
        // is y, sitting at col 1 of R and col 0 of S.
        let (_, plan) = plan_of("relation R(a, b). relation S(b, c). Q(x) :- R(x, y), S(y, z).");
        let plan = plan.unwrap();
        let child = (0..2).find(|&e| plan.parent[e] != NO_PARENT).unwrap();
        assert_eq!(plan.key_vars[child].len(), 1);
        let (kc, pc) = (plan.key_cols[child][0], plan.parent_cols[child][0]);
        if child == 0 {
            assert_eq!((kc, pc), (1, 0)); // y in R at 1, in S at 0
        } else {
            assert_eq!((kc, pc), (0, 1));
        }
    }

    #[test]
    fn subtree_heads_cover_descendants() {
        let (_, plan) = plan_of("relation R(a, b). Q(w) :- R(x, y), R(y, z), R(z, w).");
        let plan = plan.unwrap();
        // The root's subtree is the whole body, so it must list the head
        // variable; leaves not containing it must not.
        let root = (0..3).find(|&e| plan.parent[e] == NO_PARENT).unwrap();
        assert!(
            !plan.subtree_heads[root].is_empty(),
            "the root's subtree contains the whole body, hence the head var"
        );
    }
}
