//! End-to-end tests over a real loopback TCP server.
//!
//! The acceptance contract: a multi-client concurrent workload through
//! the server returns **bit-identical** answers to sequential
//! in-process `containment::contained` / `eval::evaluate` calls on the
//! same inputs.

use std::sync::Arc;

use cqchase_core::{contained, ContainmentOptions};
use cqchase_ir::display;
use cqchase_service::{Client, ServeOptions, Server};
use cqchase_storage::{evaluate, Database};
use cqchase_workload::successor_containment_batch;
use serde_json::Value;

/// Renders a full program (schema + Σ + queries + facts) as surface
/// text the `register` endpoint accepts.
fn render_program(
    p: &cqchase_ir::Program,
    queries: &[cqchase_ir::ConjunctiveQuery],
    facts: &[(i64, i64)],
) -> String {
    let mut src = String::new();
    src.push_str(&display::catalog(&p.catalog).to_string());
    src.push('\n');
    src.push_str(&display::deps(&p.deps, &p.catalog).to_string());
    src.push('\n');
    for q in queries {
        src.push_str(&display::query(q, &p.catalog).to_string());
        src.push('\n');
    }
    for (a, b) in facts {
        src.push_str(&format!("R({a}, {b}).\n"));
    }
    src
}

fn test_facts() -> Vec<(i64, i64)> {
    let mut f: Vec<(i64, i64)> = (0..40).map(|i| (i, (i + 1) % 40)).collect();
    f.extend((0..10).map(|i| (i, i)));
    f
}

fn spawn_server(
    sem_cache_capacity: usize,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".into(),
        batch_threads: 2,
        conn_workers: 6,
        sem_cache_capacity,
        ..Default::default()
    })
    .unwrap()
}

#[test]
fn concurrent_clients_bit_identical_to_library() {
    let batch = successor_containment_batch(5, 10, 80);
    let facts = test_facts();
    let program_src = render_program(&batch.program, &batch.queries, &facts);

    // Ground truth: the sequential in-process engines on the same inputs.
    let opts = ContainmentOptions::default();
    let direct: Vec<_> = batch
        .pairs
        .iter()
        .map(|&(q, qp)| {
            contained(
                &batch.queries[q],
                &batch.queries[qp],
                &batch.program.deps,
                &batch.program.catalog,
                &opts,
            )
            .expect("workload pairs decide under default options")
        })
        .collect();
    let reparsed = cqchase_ir::parse_program(&program_src).expect("rendered program parses");
    let db = Database::from_facts(&reparsed.catalog, &reparsed.facts).unwrap();
    let direct_rows: Vec<Vec<Vec<String>>> = batch
        .queries
        .iter()
        .map(|q| {
            evaluate(q, &db)
                .iter()
                .map(|row| row.iter().map(|v| v.to_string()).collect())
                .collect()
        })
        .collect();

    let (addr, handle) = spawn_server(1024);
    let mut admin = Client::connect(addr).unwrap();
    let reg = admin.register("w", &program_src).unwrap();
    assert_eq!(reg["class"], "IndsOnly(width=1)");

    // 4 concurrent clients, each firing a strided slice of the pairs
    // plus every tenth evaluation.
    let pairs = Arc::new(batch.pairs.clone());
    let names: Arc<Vec<String>> = Arc::new(batch.queries.iter().map(|q| q.name.clone()).collect());
    let mut handles = Vec::new();
    for t in 0..4usize {
        let pairs = Arc::clone(&pairs);
        let names = Arc::clone(&names);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut check_replies = Vec::new();
            let mut eval_replies = Vec::new();
            for (i, &(q, qp)) in pairs.iter().enumerate() {
                if i % 4 != t {
                    continue;
                }
                let v = client.check("w", &names[q], &names[qp]).unwrap();
                check_replies.push((i, v));
                if i % 10 == t {
                    let e = client.eval("w", &names[q]).unwrap();
                    eval_replies.push((q, e));
                }
            }
            (check_replies, eval_replies)
        }));
    }

    let mut answered = 0usize;
    for h in handles {
        let (checks, evals) = h.join().unwrap();
        for (i, v) in checks {
            let d = &direct[i];
            assert_eq!(v["contained"], d.contained, "pair {i}: contained");
            assert_eq!(v["exact"], d.exact, "pair {i}: exact");
            assert_eq!(v["empty_chase"], d.empty_chase, "pair {i}: empty_chase");
            assert_eq!(v["bound"], d.bound, "pair {i}: bound");
            assert_eq!(v["class"], "IndsOnly(width=1)", "pair {i}: class");
            answered += 1;
        }
        for (q, e) in evals {
            let rows = e["rows"].as_array().unwrap();
            assert_eq!(rows.len(), direct_rows[q].len(), "query {q}: row count");
            for (ri, row) in rows.iter().enumerate() {
                let got: Vec<&str> = row
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|c| c.as_str().unwrap())
                    .collect();
                let want: Vec<&str> = direct_rows[q][ri].iter().map(String::as_str).collect();
                assert_eq!(got, want, "query {q} row {ri}");
            }
        }
    }
    assert_eq!(answered, 80);

    // A second, sequential pass over every pair: answers must not
    // change now that the semantic cache is warm, and repeats of an
    // isomorphism class must be served from it.
    for (i, &(q, qp)) in batch.pairs.iter().enumerate() {
        let v = admin.check("w", &names[q], &names[qp]).unwrap();
        let d = &direct[i];
        assert_eq!(v["contained"], d.contained, "warm pair {i}");
        assert_eq!(v["exact"], d.exact, "warm pair {i}");
        assert_eq!(v["bound"], d.bound, "warm pair {i}");
        assert_eq!(v["cached"], true, "warm pair {i} must hit the cache");
    }

    let stats = admin.stats().unwrap();
    assert_eq!(stats["sessions"][0], "w");
    assert!(stats["endpoints"]["check"]["count"].as_u64().unwrap() >= 160);
    let hits = stats["semantic_cache"]["hits"].as_u64().unwrap();
    assert!(
        hits >= 80,
        "second pass must be all cache hits (got {hits})"
    );
    assert!(stats["batching"]["batches"].as_u64().unwrap() >= 1);
    // The planner block: eval queries were compiled (plan-cache misses),
    // and the chain/star shapes in the pool are acyclic, so the fast
    // path must have served at least once. Nothing mutated, so no
    // drift-triggered replans.
    let planner = &stats["planner"];
    assert!(planner["compiled"].as_u64().unwrap() >= 1, "plans compiled");
    assert!(
        planner["acyclic_hits"].as_u64().unwrap() >= 1,
        "acyclic fast path served"
    );
    assert_eq!(planner["replans"], 0, "no stat drift without mutation");

    admin.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn protocol_errors_leave_connection_usable() {
    let (addr, handle) = spawn_server(64);
    let mut c = Client::connect(addr).unwrap();

    // Garbage line.
    let v: Value = serde_json::from_str(&c.request_line("this is not json").unwrap()).unwrap();
    assert_eq!(v["ok"], false);
    // Unknown op.
    let v: Value = serde_json::from_str(&c.request_line(r#"{"op":"nope"}"#).unwrap()).unwrap();
    assert_eq!(v["ok"], false);
    // Unknown session.
    assert!(matches!(
        c.check("ghost", "A", "B"),
        Err(cqchase_service::ClientError::Server(_))
    ));
    // Bad program.
    assert!(c.register("s", "relation R(a). Q(x) :- S(x).").is_err());
    // The connection still works for a valid exchange.
    c.register("s", "relation R(a, b). Q(x) :- R(x, y). R(1, 2).")
        .unwrap();
    // Unknown query inside a valid session.
    assert!(c.check("s", "Q", "Nope").is_err());
    let e = c.eval("s", "Q").unwrap();
    assert_eq!(e["count"], 1);
    assert_eq!(e["rows"][0][0], "1");
    // Arity-mismatched pair is a per-request error, not a dead server.
    c.register(
        "s2",
        "relation R(a, b). Q(x) :- R(x, y). P(x, y) :- R(x, y).",
    )
    .unwrap();
    assert!(c.check("s2", "Q", "P").is_err());
    assert_eq!(c.classify("s2").unwrap()["class"], "Empty");

    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn overloaded_server_refuses_politely() {
    use std::io::Read;
    // 1 handler worker → at most 2 live connections admitted.
    let (addr, handle) = Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".into(),
        conn_workers: 1,
        ..Default::default()
    })
    .unwrap();
    let mut c1 = Client::connect(addr).unwrap();
    c1.register("s", "relation R(a). Q(x) :- R(x).").unwrap();
    let _c2 = std::net::TcpStream::connect(addr).unwrap(); // queued
                                                           // Give the acceptor time to admit c2 before probing the limit.
    std::thread::sleep(std::time::Duration::from_millis(100));
    // The third connection must get an overload error line, not hang.
    let mut c3 = std::net::TcpStream::connect(addr).unwrap();
    c3.set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    let mut line = String::new();
    c3.read_to_string(&mut line).unwrap();
    assert!(
        line.contains("\"ok\":false") && line.contains("overloaded"),
        "expected overload refusal, got {line:?}"
    );
    // The admitted connection still works.
    assert_eq!(c1.eval("s", "Q").unwrap()["count"], 0);
    c1.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn duplicate_register_is_rejected_and_update_mutates() {
    let (addr, handle) = spawn_server(64);
    let mut c = Client::connect(addr).unwrap();
    c.register("s", "relation R(a, b). Q(x) :- R(x, y). R(1, 2).")
        .unwrap();
    assert_eq!(c.eval("s", "Q").unwrap()["count"], 1);
    // Names are unique: a second register of `s` is an explicit error
    // (the live session is untouched), not a silent replace.
    match c.register("s", "relation R(a, b). Q(x) :- R(x, y). R(9, 9).") {
        Err(cqchase_service::ClientError::Server(msg)) => {
            assert!(msg.contains("already registered"), "{msg}")
        }
        other => panic!("duplicate register must fail, got {other:?}"),
    }
    // Growing the session goes through `update` instead.
    let fact = |a: i64, b: i64| -> cqchase_service::FactSpec {
        (
            "R".into(),
            vec![cqchase_ir::Constant::Int(a), cqchase_ir::Constant::Int(b)],
        )
    };
    let u = c.update("s", &[fact(3, 4)], &[]).unwrap();
    assert_eq!(u["inserted"], 1);
    assert_eq!(u["facts"], 2);
    assert_eq!(u["epoch"], 1u64);
    assert_eq!(c.eval("s", "Q").unwrap()["count"], 2);
    // Delete + reinsert of an identical tuple in one request: present.
    let u = c.update("s", &[fact(1, 2)], &[fact(1, 2)]).unwrap();
    assert_eq!(u["deleted"], 1);
    assert_eq!(u["inserted"], 1);
    assert_eq!(c.eval("s", "Q").unwrap()["count"], 2);
    // Deleting the original registered fact shrinks the answer.
    let u = c.update("s", &[], &[fact(1, 2)]).unwrap();
    assert_eq!(u["facts"], 1);
    let e = c.eval("s", "Q").unwrap();
    assert_eq!(e["count"], 1);
    assert_eq!(e["rows"][0][0], "3");
    // Unknown relation / wrong arity are per-request errors.
    assert!(c.update("s", &[("NOPE".into(), vec![])], &[]).is_err());
    assert!(c
        .update(
            "s",
            &[("R".into(), vec![cqchase_ir::Constant::Int(1)])],
            &[]
        )
        .is_err());
    // Updating an unregistered session errors politely.
    assert!(c.update("ghost", &[fact(1, 2)], &[]).is_err());
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn updated_session_answers_match_fresh_registration() {
    // The differential contract over TCP: after a mutation script, an
    // updated session answers every eval bit-identically to a session
    // registered from scratch on the mutated facts.
    let (addr, handle) = spawn_server(256);
    let mut c = Client::connect(addr).unwrap();
    let queries = "A(x) :- R(x, y). B(x) :- R(x, y), R(y, z). C(x, z) :- R(x, y), R(y, z).";
    let src = format!(
        "relation R(a, b). ind R[2] <= R[1]. {queries} {}",
        (0..20)
            .map(|i| format!("R({i}, {}).", (i + 1) % 20))
            .collect::<Vec<_>>()
            .join(" ")
    );
    c.register("live", &src).unwrap();
    let fact = |a: i64, b: i64| -> cqchase_service::FactSpec {
        (
            "R".into(),
            vec![cqchase_ir::Constant::Int(a), cqchase_ir::Constant::Int(b)],
        )
    };
    // Mutate: break the cycle in two places, add a chord and a loop.
    c.update(
        "live",
        &[fact(3, 17), fact(8, 8)],
        &[fact(5, 6), fact(12, 13)],
    )
    .unwrap();
    c.update("live", &[fact(5, 6)], &[fact(8, 8)]).unwrap();
    // Fresh session on the same final facts.
    let mut final_facts: Vec<(i64, i64)> = (0..20)
        .map(|i| (i, (i + 1) % 20))
        .filter(|&(a, b)| (a, b) != (12, 13))
        .collect();
    final_facts.push((3, 17));
    let fresh_src = format!(
        "relation R(a, b). ind R[2] <= R[1]. {queries} {}",
        final_facts
            .iter()
            .map(|(a, b)| format!("R({a}, {b})."))
            .collect::<Vec<_>>()
            .join(" ")
    );
    c.register("fresh", &fresh_src).unwrap();
    for q in ["A", "B", "C"] {
        let live = c.eval("live", q).unwrap();
        let fresh = c.eval("fresh", q).unwrap();
        assert_eq!(live["rows"], fresh["rows"], "query {q}");
        assert_eq!(live["count"], fresh["count"], "query {q}");
    }
    // Containment answers survive updates (they are facts-independent)
    // and still match a fresh session's.
    let live_ab = c.check("live", "A", "B").unwrap();
    let fresh_ab = c.check("fresh", "A", "B").unwrap();
    assert_eq!(live_ab["contained"], fresh_ab["contained"]);
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn stats_exposes_mutation_counters() {
    // The mutation fast path's observability: churn a session hard
    // enough to trigger index compaction, and check that `stats`
    // reports compaction work and the barrier/coalescing counters.
    let (addr, handle) = spawn_server(64);
    let mut c = Client::connect(addr).unwrap();
    let src = format!(
        "relation R(a, b). Q(x) :- R(x, y). {}",
        (0..64)
            .map(|i| format!("R({i}, {}).", i + 1))
            .collect::<Vec<_>>()
            .join(" ")
    );
    c.register("churn", &src).unwrap();
    let fact = |a: i64, b: i64| -> cqchase_service::FactSpec {
        (
            "R".into(),
            vec![cqchase_ir::Constant::Int(a), cqchase_ir::Constant::Int(b)],
        )
    };
    // Slide a window over the relation: hundreds of effective deletes
    // against a small live set crosses the compaction trigger.
    for round in 0..8i64 {
        let deletes: Vec<_> = (0..64)
            .map(|i| fact(round * 64 + i, round * 64 + i + 1))
            .collect();
        let inserts: Vec<_> = (0..64)
            .map(|i| fact((round + 1) * 64 + i, (round + 1) * 64 + i + 1))
            .collect();
        let u = c.update("churn", &inserts, &deletes).unwrap();
        assert_eq!(u["deleted"], 64);
        assert_eq!(u["inserted"], 64);
    }
    assert_eq!(c.eval("churn", "Q").unwrap()["count"], 64);
    let stats = c.stats().unwrap();
    let mutation = &stats["mutation"];
    assert!(
        mutation["compactions"].as_u64().unwrap() > 0,
        "window churn must compact: {mutation:?}"
    );
    assert!(mutation["slots_reclaimed"].as_u64().unwrap() >= 64);
    assert!(mutation["bytes_reclaimed"].as_u64().unwrap() > 0);
    // Counters exist (zero is fine for a sequential client — coalescing
    // needs concurrent traffic) and mirror the batching section.
    assert!(mutation["updates_coalesced"].as_u64().is_some());
    assert!(mutation["barrier_flushes"].as_u64().is_some());
    assert_eq!(
        stats["batching"]["updates_coalesced"],
        mutation["updates_coalesced"]
    );
    assert_eq!(
        stats["batching"]["barrier_flushes"],
        mutation["barrier_flushes"]
    );
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn stats_exposes_planner_counters() {
    // The cost-based planner's observability: compile a plan over a
    // tiny instance, grow the relation far past the 2x drift threshold,
    // re-evaluate, and check that `stats` reports the compile, the
    // acyclic fast-path serves, and the drift-triggered replan.
    let (addr, handle) = spawn_server(64);
    let mut c = Client::connect(addr).unwrap();
    c.register(
        "grow",
        "relation R(a, b). Q(x) :- R(x, y), R(y, z). R(0, 1). R(1, 2).",
    )
    .unwrap();
    assert_eq!(c.eval("grow", "Q").unwrap()["count"], 1);
    let fact = |a: i64, b: i64| -> cqchase_service::FactSpec {
        (
            "R".into(),
            vec![cqchase_ir::Constant::Int(a), cqchase_ir::Constant::Int(b)],
        )
    };
    let inserts: Vec<_> = (2..64).map(|i| fact(i, i + 1)).collect();
    c.update("grow", &inserts, &[]).unwrap();
    assert_eq!(c.eval("grow", "Q").unwrap()["count"], 63);
    let stats = c.stats().unwrap();
    let planner = &stats["planner"];
    assert!(
        planner["compiled"].as_u64().unwrap() >= 1,
        "eval must compile a plan: {planner:?}"
    );
    assert!(
        planner["acyclic_hits"].as_u64().unwrap() >= 2,
        "the chain query is acyclic, both evals take the fast path: {planner:?}"
    );
    assert!(
        planner["replans"].as_u64().unwrap() >= 1,
        "32x growth must trigger a drift replan: {planner:?}"
    );
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn oversized_request_line_is_refused_and_closed() {
    use std::io::{Read, Write};
    let (addr, handle) = spawn_server(64);
    let mut c = Client::connect(addr).unwrap();
    c.register("s", "relation R(a). Q(x) :- R(x). R(1).")
        .unwrap();
    // Stream > 8 MiB without a newline: the server must answer one
    // refusal line and close — never hang, never reuse the stream.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    let chunk = vec![b'x'; 64 << 10];
    // 8 MiB + 128 KiB, no newline anywhere.
    for _ in 0..130 {
        if raw.write_all(&chunk).is_err() {
            break; // server closed early — the refusal is already queued
        }
    }
    let mut refused = String::new();
    Read::read_to_string(&mut raw, &mut refused).unwrap();
    assert!(
        refused.contains("\"ok\":false") && refused.contains("maximum length"),
        "expected an oversized-line refusal, got {refused:?}"
    );
    assert!(
        !refused.trim_end().contains('\n'),
        "exactly one refusal line, got {refused:?}"
    );
    // The server survives and serves other connections.
    assert_eq!(c.eval("s", "Q").unwrap()["count"], 1);
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn invalid_utf8_line_is_rejected_explicitly() {
    use std::io::{BufRead, BufReader, Write};
    let (addr, handle) = spawn_server(64);
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    // 0xFF is never valid UTF-8.
    raw.write_all(b"{\"op\":\"stats\xff\"}\n").unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("\"ok\":false") && line.contains("bad utf-8"),
        "expected an explicit bad-utf-8 error, got {line:?}"
    );
    // The frame boundary was preserved: the connection still serves.
    raw.write_all(b"{\"op\":\"stats\"}\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":true"), "got {line:?}");
    let mut c = Client::connect(addr).unwrap();
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn semantic_cache_serves_isomorphic_clients() {
    let (addr, handle) = spawn_server(64);
    let mut c = Client::connect(addr).unwrap();
    c.register(
        "iso",
        "relation R(a, b).
         ind R[2] <= R[1].
         A(x) :- R(x, y).
         B(x) :- R(x, y), R(y, z).
         Bren(u) :- R(u, w), R(w, v).",
    )
    .unwrap();
    let first = c.check("iso", "A", "B").unwrap();
    assert_eq!(first["cached"], false);
    // A syntactically different but isomorphic Q′ from another client.
    let mut c2 = Client::connect(addr).unwrap();
    let second = c2.check("iso", "A", "Bren").unwrap();
    assert_eq!(second["cached"], true, "isomorphic repeat must hit");
    assert_eq!(second["contained"], first["contained"]);
    assert_eq!(second["exact"], first["exact"]);
    assert_eq!(second["bound"], first["bound"]);
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}
