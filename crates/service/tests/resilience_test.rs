//! End-to-end request-lifecycle resilience over a real loopback server:
//! deadlines produce structured errors in bounded time, expired work is
//! refused without running, client disconnects cancel in-flight work,
//! load shedding refuses with a retry hint, and `ping` stays answerable
//! throughout.

use std::time::{Duration, Instant};

use cqchase_service::{Client, ClientError, Request, RetryPolicy, ServeOptions, Server};

/// A program whose 3-hop chain query over a dense graph is expensive
/// enough (Θ(n⁴) result enumeration) that a tens-of-milliseconds
/// deadline always fires mid-join in a debug build.
fn dense_program(n: i64) -> String {
    let mut src = String::from(
        "relation R(a, b).
         Q(w, z) :- R(w, x), R(x, y), R(y, z).
         Small(x) :- R(x, x).\n",
    );
    for i in 0..n {
        for j in 0..n {
            src.push_str(&format!("R({i}, {j}).\n"));
        }
    }
    src
}

fn spawn(
    opts: ServeOptions,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".into(),
        batch_threads: 2,
        conn_workers: 6,
        ..opts
    })
    .unwrap()
}

#[test]
fn deadline_returns_structured_error_in_bounded_time() {
    let (addr, handle) = spawn(ServeOptions::default());
    let mut c = Client::connect(addr).unwrap();
    c.register("big", &dense_program(30)).unwrap();
    c.register("tiny", "relation S(a). P(x) :- S(x). S(1).")
        .unwrap();

    // A concurrent session keeps completing while the deadline-bound
    // eval burns its budget.
    let other = std::thread::spawn(move || {
        let mut c2 = Client::connect(addr).unwrap();
        for _ in 0..20 {
            let v = c2.eval("tiny", "P").unwrap();
            assert_eq!(v["count"], 1);
        }
    });

    let started = Instant::now();
    let err = c.eval_deadline("big", "Q", Some(50));
    let elapsed = started.elapsed();
    // Bounded: deadline plus queue wait plus the coalesced check
    // interval's reaction lag, with a generous debug-build margin —
    // nowhere near the seconds the full Θ(n⁴) join would take.
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline must bound the request, took {elapsed:?}"
    );
    match err {
        Err(ClientError::Server(msg)) => assert_eq!(msg, "deadline exceeded"),
        other => panic!("expected a deadline refusal, got {other:?}"),
    }
    // The structured shape: headline + detail + the deadline echoed.
    let raw = c
        .request(&Request::Eval {
            session: "big".into(),
            query: "Q".into(),
            deadline_ms: Some(50),
        })
        .unwrap();
    assert_eq!(raw["ok"], false);
    assert_eq!(raw["error"], "deadline exceeded");
    assert_eq!(raw["cancelled"], true);
    assert_eq!(raw["deadline_ms"], 50u64);
    assert!(raw["detail"].as_str().is_some_and(|d| !d.is_empty()));

    other.join().unwrap();

    // A deadline the work fits in still succeeds.
    let v = c.eval_deadline("big", "Small", Some(60_000)).unwrap();
    assert_eq!(v["count"], 30);

    let stats = c.stats().unwrap();
    let res = &stats["resilience"];
    assert!(
        res["deadline_exceeded"].as_u64().unwrap() >= 2,
        "both refusals counted: {res:?}"
    );
    assert!(
        res["deadline_overrun"]["count"].as_u64().unwrap() >= 3,
        "every deadline-carrying request records its overrun: {res:?}"
    );
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn expired_deadline_refuses_updates_all_or_nothing() {
    let (addr, handle) = spawn(ServeOptions::default());
    let mut c = Client::connect(addr).unwrap();
    c.register("s", "relation R(a, b). Q(x) :- R(x, y). R(1, 2).")
        .unwrap();
    let fact = |a: i64, b: i64| -> cqchase_service::FactSpec {
        (
            "R".into(),
            vec![cqchase_ir::Constant::Int(a), cqchase_ir::Constant::Int(b)],
        )
    };
    // deadline_ms:0 is expired on arrival: the update must be refused
    // before its commit point — never half-applied, never logged.
    match c.update_deadline("s", &[fact(3, 4)], &[fact(1, 2)], Some(0)) {
        Err(ClientError::Server(msg)) => assert_eq!(msg, "deadline exceeded"),
        other => panic!("expired update must be refused, got {other:?}"),
    }
    // Observable state is identical to never having submitted it.
    let v = c.eval("s", "Q").unwrap();
    assert_eq!(v["count"], 1);
    assert_eq!(v["rows"][0][0], "1");
    let cls = c.classify("s").unwrap();
    assert_eq!(cls["facts"], 1);
    assert_eq!(cls["facts_epoch"], 0u64);
    // The same update without the dead deadline applies normally.
    let u = c.update("s", &[fact(3, 4)], &[fact(1, 2)]).unwrap();
    assert_eq!(u["epoch"], 1u64);
    assert_eq!(c.eval("s", "Q").unwrap()["rows"][0][0], "3");
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn server_default_deadline_applies_to_hintless_requests() {
    let (addr, handle) = spawn(ServeOptions {
        default_deadline_ms: Some(40),
        ..Default::default()
    });
    let mut c = Client::connect(addr).unwrap();
    c.register("big", &dense_program(30)).unwrap();
    let raw = c
        .request(&Request::Eval {
            session: "big".into(),
            query: "Q".into(),
            deadline_ms: None,
        })
        .unwrap();
    assert_eq!(raw["ok"], false, "the server default must bound it");
    assert_eq!(raw["error"], "deadline exceeded");
    assert_eq!(raw["deadline_ms"], 40u64);
    // An explicit generous deadline overrides the default.
    let v = c.eval_deadline("big", "Small", Some(120_000)).unwrap();
    assert_eq!(v["count"], 30);
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn disconnect_mid_eval_cancels_the_work() {
    use std::io::Write;
    let (addr, handle) = spawn(ServeOptions::default());
    let mut admin = Client::connect(addr).unwrap();
    // Dense enough that the uncancelled join would run for many
    // seconds in a debug build — completion before the watcher's
    // ~20 ms poll is impossible.
    admin.register("big", &dense_program(40)).unwrap();

    let mut doomed = std::net::TcpStream::connect(addr).unwrap();
    doomed
        .write_all(b"{\"op\":\"eval\",\"session\":\"big\",\"query\":\"Q\"}\n")
        .unwrap();
    doomed.flush().unwrap();
    // Give the handler time to pick the line up and enter the engine,
    // then vanish without reading the reply.
    std::thread::sleep(Duration::from_millis(100));
    drop(doomed);

    // The watcher must fire the token and the engine must unwind; the
    // abandoned work's cancellation shows up in the counters.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = admin.stats().unwrap();
        if stats["resilience"]["cancelled_disconnect"]
            .as_u64()
            .unwrap()
            >= 1
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect was never detected: {:?}",
            stats["resilience"]
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    // The server is healthy and the session still answers.
    assert_eq!(admin.eval("big", "Small").unwrap()["count"], 40);
    admin.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn shedding_refuses_with_retry_hint_and_ping_stays_inline() {
    // Watermark 0: the queued verbs shed deterministically — admission
    // depth 0 is already "at" the watermark.
    let (addr, handle) = spawn(ServeOptions {
        shed_queue_depth: Some(0),
        ..Default::default()
    });
    let mut c = Client::connect(addr).unwrap();
    // Register is a handler-thread verb: never shed.
    c.register("s", "relation R(a). Q(x) :- R(x). R(1).")
        .unwrap();
    let raw = c
        .request(&Request::Eval {
            session: "s".into(),
            query: "Q".into(),
            deadline_ms: None,
        })
        .unwrap();
    assert_eq!(raw["ok"], false);
    assert_eq!(raw["shed"], true);
    assert!(raw["retry_after_ms"].as_u64().unwrap() > 0);
    assert!(raw["error"].as_str().unwrap().contains("server overloaded"));

    // The bounded retry helper backs off, honors the hint, and still
    // surfaces the refusal once retries are exhausted.
    let mut policy = RetryPolicy::new(2, 1, 20, 7);
    let started = Instant::now();
    match c.request_with_retry(
        &Request::Eval {
            session: "s".into(),
            query: "Q".into(),
            deadline_ms: None,
        },
        &mut policy,
    ) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("overloaded"), "{msg}"),
        other => panic!("persistent shedding must surface, got {other:?}"),
    }
    assert!(
        started.elapsed() >= Duration::from_millis(2),
        "retries must actually back off"
    );

    // Ping is answered inline — never queued, never shed — and reports
    // the shedding state.
    let p = c.ping().unwrap();
    assert_eq!(p["shedding"], true);
    assert!(p["shed_total"].as_u64().unwrap() >= 4, "{p:?}");
    assert_eq!(p["lanes"], cqchase_service::default_lanes());
    assert_eq!(p["sessions"], 1);
    assert_eq!(p["durability"], false);
    assert_eq!(p["recovery"], serde_json::Value::Null);
    assert!(p["uptime_s"].as_f64().unwrap() >= 0.0);

    let stats = c.stats().unwrap();
    assert!(stats["resilience"]["shed"].as_u64().unwrap() >= 4);
    assert_eq!(stats["server"]["shedding"], true);
    assert_eq!(stats["server"]["shed_queue_depth"], 0u64);
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn ping_works_on_an_unloaded_server() {
    let (addr, handle) = spawn(ServeOptions::default());
    let mut c = Client::connect(addr).unwrap();
    let p = c.ping().unwrap();
    assert_eq!(p["ok"], true);
    assert_eq!(p["op"], "ping");
    assert_eq!(p["shedding"], false);
    assert_eq!(p["shed_total"], 0u64);
    assert_eq!(p["sessions"], 0);
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}
