//! Lane-sharding acceptance tests over a real loopback TCP server:
//! churn in one lane stays out of another lane's queue (the isolation
//! contract sharding exists for), duplicate registrations racing onto
//! the same lane resolve to exactly one winner, and catalog sharing is
//! visible end to end through `stats`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use cqchase_service::{lane_of, Client, FactSpec, ServeOptions, Server};

const PROGRAM: &str = "relation R(a, b).
    ind R[2] <= R[1].
    A(x) :- R(x, y).
    B(x) :- R(x, y), R(y, z).
    R(0, 1). R(1, 2). R(2, 3).";

fn fact(a: i64, b: i64) -> FactSpec {
    (
        "R".into(),
        vec![cqchase_ir::Constant::Int(a), cqchase_ir::Constant::Int(b)],
    )
}

/// Finds a session name hashing to `lane` out of `lanes`.
fn name_in_lane(lane: usize, lanes: usize) -> String {
    (0..)
        .map(|i| format!("tenant-{i}"))
        .find(|n| lane_of(n, lanes) == lane)
        .expect("some name hashes to every lane")
}

#[test]
fn churn_in_one_lane_stays_out_of_the_other() {
    let (addr, handle) = Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".into(),
        batch_threads: 2,
        lanes: 2,
        conn_workers: 4,
        ..Default::default()
    })
    .unwrap();
    let churn_name = name_in_lane(0, 2);
    let quiet_name = name_in_lane(1, 2);

    let mut c = Client::connect(addr).unwrap();
    c.register(&churn_name, PROGRAM).unwrap();
    c.register(&quiet_name, PROGRAM).unwrap();

    // Lane 0: a churn client hammering updates. Lane 1: a quiet client
    // running evals concurrently. If routing leaked, lane 1's shard
    // would show the updates' barrier traffic.
    const CHURN_UPDATES: usize = 60;
    const QUIET_EVALS: usize = 40;
    let churn = {
        let churn_name = churn_name.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            for i in 0..CHURN_UPDATES {
                let t = 100 + i as i64;
                c.update(&churn_name, &[fact(t, t + 1)], &[fact(t - 1, t)])
                    .unwrap();
            }
        })
    };
    let mut quiet = Client::connect(addr).unwrap();
    for _ in 0..QUIET_EVALS {
        quiet.eval(&quiet_name, "B").unwrap();
    }
    churn.join().unwrap();

    let stats = c.stats().unwrap();
    assert_eq!(stats["lanes"]["count"], 2, "two lane shards exposed");
    let lane0 = &stats["lanes"]["detail"]["0"];
    let lane1 = &stats["lanes"]["detail"]["1"];
    // Lane 0 carried all the update churn…
    assert!(
        lane0["batched_items"].as_u64().unwrap() >= CHURN_UPDATES as u64,
        "churn lane batched its updates: {lane0:?}"
    );
    // …and none of it crossed into lane 1: no update ever entered the
    // quiet lane's queue, so its update-coalescing and barrier counters
    // never move.
    assert_eq!(
        lane1["updates_coalesced"], 0,
        "no update coalescing in the quiet lane: {lane1:?}"
    );
    assert_eq!(
        lane1["barrier_flushes"], 0,
        "no update barriers in the quiet lane: {lane1:?}"
    );
    // The quiet lane saw exactly its own evals.
    assert_eq!(
        lane1["batched_items"].as_u64().unwrap(),
        QUIET_EVALS as u64,
        "quiet lane batched exactly its evals: {lane1:?}"
    );
    assert_eq!(
        lane1["queue_wait"]["count"].as_u64().unwrap(),
        QUIET_EVALS as u64,
        "every quiet item's admission wait was recorded: {lane1:?}"
    );
    // Generous wall-clock sanity (structural assertions above are the
    // real isolation check — this only catches a quiet lane that was
    // actually stuck behind the churn's barriers): the quiet lane's
    // median admission wait stays far under the seconds a serialized
    // 60-update churn run would impose.
    let p50 = lane1["queue_wait"]["p50_us"].as_u64().unwrap();
    assert!(
        p50 < 1_000_000,
        "quiet lane p50 admission wait {p50}µs suggests cross-lane stalls"
    );
    // Queues drained: both gauges are back to zero.
    assert_eq!(lane0["queue_depth"], 0);
    assert_eq!(lane1["queue_depth"], 0);
    // Global aggregates stay authoritative: the shards decompose them.
    let total = stats["batching"]["batched_items"].as_u64().unwrap();
    assert_eq!(
        total,
        lane0["batched_items"].as_u64().unwrap() + lane1["batched_items"].as_u64().unwrap(),
        "lane shards sum to the global batched_items"
    );

    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn duplicate_registers_race_to_one_winner_in_one_lane() {
    let (addr, handle) = Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".into(),
        batch_threads: 2,
        lanes: 4,
        conn_workers: 4,
        ..Default::default()
    })
    .unwrap();
    // Both racers target the same name — same lane by construction —
    // so the loser must get the explicit duplicate error, never a
    // silent replacement or a second session.
    let name = "raced";
    let wins = Arc::new(AtomicUsize::new(0));
    let losses = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(2));
    let racers: Vec<_> = (0..2)
        .map(|_| {
            let (wins, losses, barrier) =
                (Arc::clone(&wins), Arc::clone(&losses), Arc::clone(&barrier));
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                barrier.wait();
                match c.register(name, PROGRAM) {
                    Ok(v) => {
                        assert_eq!(
                            v["lane"].as_u64().unwrap() as usize,
                            lane_of(name, 4),
                            "winner reports its deterministic lane"
                        );
                        wins.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(e) => {
                        assert!(
                            e.to_string().contains("already"),
                            "loser gets the duplicate-name error, got: {e}"
                        );
                        losses.fetch_add(1, Ordering::SeqCst);
                    }
                }
            })
        })
        .collect();
    for r in racers {
        r.join().unwrap();
    }
    assert_eq!(wins.load(Ordering::SeqCst), 1, "exactly one winner");
    assert_eq!(losses.load(Ordering::SeqCst), 1, "exactly one loser");
    let mut c = Client::connect(addr).unwrap();
    let stats = c.stats().unwrap();
    let sessions: Vec<&str> = stats["sessions"]
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_str().unwrap())
        .collect();
    assert_eq!(sessions, vec![name], "one session resident");
    // The survivor still serves.
    assert_eq!(c.eval(name, "A").unwrap()["ok"], true);
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn catalog_sharing_is_visible_in_stats() {
    let (addr, handle) = Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".into(),
        batch_threads: 1,
        lanes: 2,
        ..Default::default()
    })
    .unwrap();
    let mut c = Client::connect(addr).unwrap();
    // Three tenants on one program text (one build, two attaches), a
    // fourth on different facts (its own catalog).
    let r1 = c.register("share-a", PROGRAM).unwrap();
    assert_eq!(r1["shared"], true, "attached to the registry catalog");
    c.register("share-b", PROGRAM).unwrap();
    c.register("share-c", PROGRAM).unwrap();
    c.register("loner", &format!("{PROGRAM} R(7, 7).")).unwrap();

    let stats = c.stats().unwrap();
    let cat = &stats["catalogs"];
    assert_eq!(cat["distinct"], 2, "two frozen catalogs: {cat:?}");
    assert_eq!(cat["builds"], 2, "each text built once: {cat:?}");
    assert_eq!(cat["attaches"], 2, "two registrations deduped: {cat:?}");
    assert_eq!(cat["promotions"], 0, "no update yet: {cat:?}");
    assert!(
        cat["shared_resident_bytes"].as_u64().unwrap() > 0,
        "the shared bases are accounted: {cat:?}"
    );

    // One tenant updates: it promotes off the base, siblings unmoved.
    c.update("share-b", &[fact(9, 9)], &[]).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stats["catalogs"]["promotions"], 1);
    let detail = &stats["sessions_detail"];
    assert_eq!(detail["share-a"]["shared_catalog"], true);
    assert_eq!(detail["share-b"]["shared_catalog"], false);
    assert_eq!(detail["share-c"]["shared_catalog"], true);
    // Sibling answers diverge exactly by the update.
    assert_eq!(c.eval("share-b", "A").unwrap()["count"], 4);
    assert_eq!(c.eval("share-a", "A").unwrap()["count"], 3);
    // Per-entry lane labels match the routing function.
    for name in ["share-a", "share-b", "share-c", "loner"] {
        assert_eq!(
            detail[name]["lane"].as_u64().unwrap() as usize,
            lane_of(name, 2),
            "stats lane label for {name}"
        );
    }
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}
