//! The cancellation-isolation contract, as a property test: a script
//! with injected cancellations (pre-expired deadlines and client
//! disconnects) leaves the session's observable state **identical** to
//! the same script with the cancelled requests removed.
//!
//! This is the strongest statement the lifecycle layer can make:
//! cancellation is invisible except through the structured refusal the
//! cancelled request itself receives. A cancelled update is
//! all-or-nothing (refused before its commit point, no epoch bump, no
//! WAL record); a cancelled check must not seed the semantic cache; a
//! cancelled eval must not seed the result cache. Every *surviving*
//! request answers bit-identically in both runs, and the final session
//! state matches a from-scratch registration on the surviving updates'
//! facts.

use std::sync::Arc;

use cqchase_index::CancelToken;
use cqchase_ir::Constant;
use cqchase_service::{Batcher, Metrics, Outcome, Session, Work};
use cqchase_storage::evaluate;
use proptest::prelude::*;

/// Fixed schema, Σ, and query pool (Q0 ⊆ Q1 under the cyclic IND).
const BASE: &str = "relation R(a, b).
    ind R[2] <= R[1].
    Q0(x) :- R(x, y).
    Q1(x) :- R(x, y), R(y, z).
    Q2(x) :- R(y, x).
    Q3(x, z) :- R(x, y), R(y, z).";

const NUM_QUERIES: usize = 4;

/// How a scripted request is cancelled (or not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cancel {
    /// Lives to completion.
    No,
    /// Carries a deadline that is already expired at submission.
    Deadline,
    /// Its client disconnected before the work ran.
    Disconnect,
}

#[derive(Debug, Clone)]
enum Step {
    Update(Cancel, Vec<(i64, i64)>, Vec<(i64, i64)>),
    Eval(Cancel, usize),
    Check(Cancel, usize, usize),
}

impl Step {
    fn cancel(&self) -> Cancel {
        match self {
            Step::Update(c, ..) | Step::Eval(c, ..) | Step::Check(c, ..) => *c,
        }
    }
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    let tuples = || proptest::collection::vec((0i64..5, 0i64..5), 0..4);
    let cancel = (0u8..4).prop_map(|k| match k {
        // Half the steps survive; the rest split between the two
        // cancellation causes.
        0 | 1 => Cancel::No,
        2 => Cancel::Deadline,
        _ => Cancel::Disconnect,
    });
    let step = (
        0u8..6,
        cancel,
        tuples(),
        tuples(),
        0usize..NUM_QUERIES,
        0usize..NUM_QUERIES,
    )
        .prop_map(|(kind, c, ins, del, q, qp)| match kind {
            0 | 1 => Step::Update(c, ins, del),
            2 | 3 => Step::Eval(c, q),
            _ => Step::Check(c, q, qp),
        });
    proptest::collection::vec(step, 1..24)
}

fn fact(a: i64, b: i64) -> (String, Vec<Constant>) {
    ("R".into(), vec![Constant::Int(a), Constant::Int(b)])
}

fn to_work(step: &Step, session: &Arc<Session>) -> Work {
    match step {
        Step::Update(_, ins, del) => Work::Update {
            session: Arc::clone(session),
            insert: ins.iter().map(|&(a, b)| fact(a, b)).collect(),
            delete: del.iter().map(|&(a, b)| fact(a, b)).collect(),
        },
        Step::Eval(_, q) => Work::Eval {
            session: Arc::clone(session),
            q: *q,
        },
        Step::Check(_, q, qp) => Work::Check {
            session: Arc::clone(session),
            q: *q,
            q_prime: *qp,
        },
    }
}

fn token_for(c: Cancel) -> CancelToken {
    match c {
        Cancel::No => CancelToken::unlimited(),
        Cancel::Deadline => CancelToken::with_deadline_ms(0),
        Cancel::Disconnect => {
            let t = CancelToken::unlimited();
            t.cancel();
            t
        }
    }
}

fn program_with_facts(facts: &std::collections::BTreeSet<(i64, i64)>) -> String {
    let mut src = BASE.to_string();
    for (a, b) in facts {
        src.push_str(&format!("\nR({a}, {b})."));
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cancelled_requests_leave_no_observable_trace(script in steps()) {
        // Both sessions start from the same seed fact and carry live
        // semantic caches — a cancelled check leaking into the cache
        // would surface as a divergence on a later identical check.
        let seeded = format!("{BASE}\nR(0, 1).");
        let live = Arc::new(Session::new("live", &seeded, 64, 64).unwrap());
        let reference = Arc::new(Session::new("ref", &seeded, 64, 64).unwrap());
        let chaotic = Batcher::new(1, Arc::new(Metrics::new()));
        let calm = Batcher::new(1, Arc::new(Metrics::new()));

        // The chaotic run: the full script, cancellations included.
        let works: Vec<(Work, CancelToken)> = script
            .iter()
            .map(|s| (to_work(s, &live), token_for(s.cancel())))
            .collect();
        let chaotic_outs = chaotic.submit_many_cancellable(works);

        // The reference run: the same script minus cancelled requests.
        let survivors: Vec<&Step> =
            script.iter().filter(|s| s.cancel() == Cancel::No).collect();
        let calm_outs =
            calm.submit_many(survivors.iter().map(|s| to_work(s, &reference)).collect());

        // Per-step: cancelled requests answer the structured refusal
        // with the right attribution; survivors answer bit-identically
        // to their counterpart in the cancellation-free run.
        let mut calm_iter = calm_outs.iter();
        for (i, (step, out)) in script.iter().zip(chaotic_outs.iter()).enumerate() {
            match step.cancel() {
                Cancel::Deadline => {
                    let Ok(Outcome::Cancelled { disconnect, .. }) = out else {
                        panic!("step {i}: expired deadline must cancel, got {out:?}");
                    };
                    prop_assert!(!disconnect, "step {}: deadline attribution", i);
                }
                Cancel::Disconnect => {
                    let Ok(Outcome::Cancelled { disconnect, .. }) = out else {
                        panic!("step {i}: disconnect must cancel, got {out:?}");
                    };
                    prop_assert!(*disconnect, "step {}: disconnect attribution", i);
                }
                Cancel::No => {
                    let counterpart = calm_iter.next().expect("survivor counts match");
                    match (out, counterpart) {
                        (Ok(Outcome::Update(a)), Ok(Outcome::Update(b))) => match (a, b) {
                            (Ok(a), Ok(b)) => {
                                prop_assert_eq!(a.inserted, b.inserted, "step {}", i);
                                prop_assert_eq!(a.deleted, b.deleted, "step {}", i);
                                prop_assert_eq!(a.facts, b.facts, "step {}", i);
                            }
                            (Err(_), Err(_)) => {}
                            other => prop_assert!(false, "step {}: {:?}", i, other),
                        },
                        (
                            Ok(Outcome::Eval { rows: a, .. }),
                            Ok(Outcome::Eval { rows: b, .. }),
                        ) => {
                            prop_assert_eq!(a, b, "step {}: eval rows", i);
                        }
                        (
                            Ok(Outcome::Check { summary: a, .. }),
                            Ok(Outcome::Check { summary: b, .. }),
                        ) => match (a, b) {
                            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "step {}", i),
                            (Err(_), Err(_)) => {}
                            other => prop_assert!(false, "step {}: {:?}", i, other),
                        },
                        other => prop_assert!(
                            false,
                            "step {}: outcome kinds diverged: {:?}",
                            i,
                            other
                        ),
                    }
                }
            }
        }
        prop_assert!(calm_iter.next().is_none(), "survivor counts match");

        // Final state: both sessions agree with each other and with a
        // from-scratch session on the surviving updates' facts — the
        // cancelled requests are bit-invisible.
        let mut mirror: std::collections::BTreeSet<(i64, i64)> =
            [(0, 1)].into_iter().collect();
        for step in &script {
            if let Step::Update(Cancel::No, ins, del) = step {
                for t in del {
                    mirror.remove(t);
                }
                for t in ins {
                    mirror.insert(*t);
                }
            }
        }
        let (live_facts, live_epoch) = live.facts_snapshot();
        let (ref_facts, ref_epoch) = reference.facts_snapshot();
        prop_assert_eq!(live_facts, mirror.len(), "live facts");
        prop_assert_eq!(ref_facts, mirror.len(), "reference facts");
        // Cancelled updates never bump the epoch: with identical
        // surviving updates, both sessions land on the same count.
        prop_assert_eq!(live_epoch, ref_epoch, "epochs agree");
        let fresh = Session::new("fresh", &program_with_facts(&mirror), 64, 64).unwrap();
        for q in 0..NUM_QUERIES {
            let fresh_rows = {
                let facts = fresh.facts.read().unwrap();
                evaluate(fresh.query(q), facts.db())
            };
            prop_assert_eq!(live.eval(q), fresh_rows.clone(), "live Q{}", q);
            prop_assert_eq!(reference.eval(q), fresh_rows, "reference Q{}", q);
        }
    }
}
