//! The live-mutation correctness contract, as a property test: after
//! **any** interleaving of updates, evaluations, and containment checks
//! against one resident session — semantic cache enabled, requests
//! routed through the admission queue exactly like server traffic —
//! every answer is bit-identical to what a session registered *from
//! scratch* on the current facts would return.
//!
//! This is the strongest statement the service can make about
//! mutability: updates are invisible except through the facts they
//! change. Containment answers (facts-independent) must survive
//! updates unchanged; evaluation answers must track the facts exactly,
//! through tombstones, reinserts, compactions, and epoch bumps.

use std::sync::Arc;

use cqchase_core::{contained, ContainmentOptions};
use cqchase_ir::Constant;
use cqchase_service::{Batcher, Metrics, Outcome, Session, Work};
use cqchase_storage::evaluate;
use proptest::prelude::*;

/// The session's fixed schema, Σ, and query pool. Q0 ⊆ Q1 under the
/// cyclic IND; Q2/Q3 exercise joins and reversed roles.
const BASE: &str = "relation R(a, b).
    ind R[2] <= R[1].
    Q0(x) :- R(x, y).
    Q1(x) :- R(x, y), R(y, z).
    Q2(x) :- R(y, x).
    Q3(x, z) :- R(x, y), R(y, z).";

const NUM_QUERIES: usize = 4;

/// One scripted step against the live session.
#[derive(Debug, Clone)]
enum Step {
    /// Apply a delta: tuples to insert and delete (possibly no-ops).
    Update(Vec<(i64, i64)>, Vec<(i64, i64)>),
    /// Evaluate query `q` and compare to a from-scratch session.
    Eval(usize),
    /// Check `q ⊆ q_prime` and compare to the direct library call.
    Check(usize, usize),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    let tuples = || proptest::collection::vec((0i64..5, 0i64..5), 0..4);
    let step = (
        0u8..6,
        tuples(),
        tuples(),
        0usize..NUM_QUERIES,
        0usize..NUM_QUERIES,
    )
        .prop_map(|(kind, ins, del, q, qp)| match kind {
            0 | 1 => Step::Update(ins, del),
            2 | 3 => Step::Eval(q),
            _ => Step::Check(q, qp),
        });
    proptest::collection::vec(step, 1..20)
}

fn fact(a: i64, b: i64) -> (String, Vec<Constant>) {
    ("R".into(), vec![Constant::Int(a), Constant::Int(b)])
}

/// Renders the base program plus explicit facts — the from-scratch
/// registration text for the current mirror state.
fn program_with_facts(facts: &std::collections::BTreeSet<(i64, i64)>) -> String {
    let mut src = BASE.to_string();
    for (a, b) in facts {
        src.push_str(&format!("\nR({a}, {b})."));
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn updated_session_is_indistinguishable_from_fresh(script in steps()) {
        let opts = ContainmentOptions::default();
        // Semantic cache ON (capacity 64) — the point of the property.
        let live = Arc::new(Session::new("live", BASE, 64, 64).unwrap());
        let batcher = Batcher::new(1, Arc::new(Metrics::new()));
        let mut mirror: std::collections::BTreeSet<(i64, i64)> =
            std::collections::BTreeSet::new();
        for (i, step) in script.iter().enumerate() {
            match step {
                Step::Update(ins, del) => {
                    let inserts: Vec<_> = ins.iter().map(|&(a, b)| fact(a, b)).collect();
                    let deletes: Vec<_> = del.iter().map(|&(a, b)| fact(a, b)).collect();
                    let out = batcher
                        .submit(Work::Update {
                            session: Arc::clone(&live),
                            insert: inserts,
                            delete: deletes,
                        })
                        .unwrap();
                    let Outcome::Update(Ok(sum)) = out else {
                        panic!("step {i}: update failed: {out:?}");
                    };
                    // Deletes before inserts, mirrored.
                    let mut deleted = 0;
                    for t in del {
                        if mirror.remove(t) {
                            deleted += 1;
                        }
                    }
                    let mut inserted = 0;
                    for t in ins {
                        if mirror.insert(*t) {
                            inserted += 1;
                        }
                    }
                    prop_assert_eq!(sum.inserted, inserted, "step {}: inserted", i);
                    prop_assert_eq!(sum.deleted, deleted, "step {}: deleted", i);
                    prop_assert_eq!(sum.facts, mirror.len(), "step {}: facts", i);
                }
                Step::Eval(q) => {
                    let out = batcher
                        .submit(Work::Eval {
                            session: Arc::clone(&live),
                            q: *q,
                        })
                        .unwrap();
                    let Outcome::Eval { rows, .. } = out else {
                        panic!("step {i}: expected eval outcome");
                    };
                    // From-scratch reference: a brand-new session parsed
                    // from the rendered program on the mirror facts.
                    let fresh =
                        Session::new("fresh", &program_with_facts(&mirror), 64, 64).unwrap();
                    let fresh_rows = {
                        let facts = fresh.facts.read().unwrap();
                        evaluate(fresh.query(*q), &facts.db)
                    };
                    prop_assert_eq!(&rows, &fresh_rows, "step {}: eval Q{}", i, q);
                }
                Step::Check(q, qp) => {
                    let out = batcher
                        .submit(Work::Check {
                            session: Arc::clone(&live),
                            q: *q,
                            q_prime: *qp,
                        })
                        .unwrap();
                    let Outcome::Check { summary, .. } = out else {
                        panic!("step {i}: expected check outcome");
                    };
                    let direct = contained(
                        live.query(*q),
                        live.query(*qp),
                        &live.program.deps,
                        &live.program.catalog,
                        &opts,
                    );
                    match (summary, direct) {
                        (Ok(sum), Ok(direct)) => {
                            prop_assert_eq!(
                                sum.contained, direct.contained,
                                "step {}: contained", i
                            );
                            prop_assert_eq!(sum.exact, direct.exact, "step {}: exact", i);
                            prop_assert_eq!(sum.bound, direct.bound, "step {}: bound", i);
                        }
                        // Pairs the engine rejects (e.g. output-arity
                        // mismatch Q3 vs the unary pool) must be
                        // rejected by both sides alike.
                        (Err(_), Err(_)) => {}
                        (live_r, direct_r) => prop_assert!(
                            false,
                            "step {}: Ok/Err disagreement: live {:?} vs direct {:?}",
                            i, live_r, direct_r
                        ),
                    }
                }
            }
        }
        // Final sweep: every query's rows match a fresh session's.
        let fresh = Session::new("fresh", &program_with_facts(&mirror), 64, 64).unwrap();
        for q in 0..NUM_QUERIES {
            let fresh_rows = {
                let facts = fresh.facts.read().unwrap();
                evaluate(fresh.query(q), &facts.db)
            };
            prop_assert_eq!(live.eval(q), fresh_rows, "final eval Q{}", q);
        }
    }
}
