//! The live-mutation correctness contract, as a property test: after
//! **any** interleaving of updates, evaluations, and containment checks
//! against one resident session — semantic cache enabled, requests
//! routed through the admission queue exactly like server traffic —
//! every answer is bit-identical to what a session registered *from
//! scratch* on the current facts would return.
//!
//! This is the strongest statement the service can make about
//! mutability: updates are invisible except through the facts they
//! change. Containment answers (facts-independent) must survive
//! updates unchanged; evaluation answers must track the facts exactly,
//! through tombstones, reinserts, compactions, and epoch bumps.

use std::sync::Arc;

use cqchase_core::{contained, ContainmentOptions};
use cqchase_ir::Constant;
use cqchase_service::{BarrierMode, Batcher, Metrics, Outcome, Session, Work};
use cqchase_storage::evaluate;
use proptest::prelude::*;

/// The session's fixed schema, Σ, and query pool. Q0 ⊆ Q1 under the
/// cyclic IND; Q2/Q3 exercise joins and reversed roles.
const BASE: &str = "relation R(a, b).
    ind R[2] <= R[1].
    Q0(x) :- R(x, y).
    Q1(x) :- R(x, y), R(y, z).
    Q2(x) :- R(y, x).
    Q3(x, z) :- R(x, y), R(y, z).";

const NUM_QUERIES: usize = 4;

/// One scripted step against the live session.
#[derive(Debug, Clone)]
enum Step {
    /// Apply a delta: tuples to insert and delete (possibly no-ops).
    Update(Vec<(i64, i64)>, Vec<(i64, i64)>),
    /// Evaluate query `q` and compare to a from-scratch session.
    Eval(usize),
    /// Check `q ⊆ q_prime` and compare to the direct library call.
    Check(usize, usize),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    let tuples = || proptest::collection::vec((0i64..5, 0i64..5), 0..4);
    let step = (
        0u8..6,
        tuples(),
        tuples(),
        0usize..NUM_QUERIES,
        0usize..NUM_QUERIES,
    )
        .prop_map(|(kind, ins, del, q, qp)| match kind {
            0 | 1 => Step::Update(ins, del),
            2 | 3 => Step::Eval(q),
            _ => Step::Check(q, qp),
        });
    proptest::collection::vec(step, 1..20)
}

fn fact(a: i64, b: i64) -> (String, Vec<Constant>) {
    ("R".into(), vec![Constant::Int(a), Constant::Int(b)])
}

/// Renders the base program plus explicit facts — the from-scratch
/// registration text for the current mirror state.
fn program_with_facts(facts: &std::collections::BTreeSet<(i64, i64)>) -> String {
    let mut src = BASE.to_string();
    for (a, b) in facts {
        src.push_str(&format!("\nR({a}, {b})."));
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn updated_session_is_indistinguishable_from_fresh(script in steps()) {
        let opts = ContainmentOptions::default();
        // Semantic cache ON (capacity 64) — the point of the property.
        let live = Arc::new(Session::new("live", BASE, 64, 64).unwrap());
        let batcher = Batcher::new(1, Arc::new(Metrics::new()));
        let mut mirror: std::collections::BTreeSet<(i64, i64)> =
            std::collections::BTreeSet::new();
        for (i, step) in script.iter().enumerate() {
            match step {
                Step::Update(ins, del) => {
                    let inserts: Vec<_> = ins.iter().map(|&(a, b)| fact(a, b)).collect();
                    let deletes: Vec<_> = del.iter().map(|&(a, b)| fact(a, b)).collect();
                    let out = batcher
                        .submit(Work::Update {
                            session: Arc::clone(&live),
                            insert: inserts,
                            delete: deletes,
                        })
                        .unwrap();
                    let Outcome::Update(Ok(sum)) = out else {
                        panic!("step {i}: update failed: {out:?}");
                    };
                    // Deletes before inserts, mirrored.
                    let mut deleted = 0;
                    for t in del {
                        if mirror.remove(t) {
                            deleted += 1;
                        }
                    }
                    let mut inserted = 0;
                    for t in ins {
                        if mirror.insert(*t) {
                            inserted += 1;
                        }
                    }
                    prop_assert_eq!(sum.inserted, inserted, "step {}: inserted", i);
                    prop_assert_eq!(sum.deleted, deleted, "step {}: deleted", i);
                    prop_assert_eq!(sum.facts, mirror.len(), "step {}: facts", i);
                }
                Step::Eval(q) => {
                    let out = batcher
                        .submit(Work::Eval {
                            session: Arc::clone(&live),
                            q: *q,
                        })
                        .unwrap();
                    let Outcome::Eval { rows, .. } = out else {
                        panic!("step {i}: expected eval outcome");
                    };
                    // From-scratch reference: a brand-new session parsed
                    // from the rendered program on the mirror facts.
                    let fresh =
                        Session::new("fresh", &program_with_facts(&mirror), 64, 64).unwrap();
                    let fresh_rows = {
                        let facts = fresh.facts.read().unwrap();
                        evaluate(fresh.query(*q), facts.db())
                    };
                    prop_assert_eq!(&rows, &fresh_rows, "step {}: eval Q{}", i, q);
                }
                Step::Check(q, qp) => {
                    let out = batcher
                        .submit(Work::Check {
                            session: Arc::clone(&live),
                            q: *q,
                            q_prime: *qp,
                        })
                        .unwrap();
                    let Outcome::Check { summary, .. } = out else {
                        panic!("step {i}: expected check outcome");
                    };
                    let direct = contained(
                        live.query(*q),
                        live.query(*qp),
                        &live.program().deps,
                        &live.program().catalog,
                        &opts,
                    );
                    match (summary, direct) {
                        (Ok(sum), Ok(direct)) => {
                            prop_assert_eq!(
                                sum.contained, direct.contained,
                                "step {}: contained", i
                            );
                            prop_assert_eq!(sum.exact, direct.exact, "step {}: exact", i);
                            prop_assert_eq!(sum.bound, direct.bound, "step {}: bound", i);
                        }
                        // Pairs the engine rejects (e.g. output-arity
                        // mismatch Q3 vs the unary pool) must be
                        // rejected by both sides alike.
                        (Err(_), Err(_)) => {}
                        (live_r, direct_r) => prop_assert!(
                            false,
                            "step {}: Ok/Err disagreement: live {:?} vs direct {:?}",
                            i, live_r, direct_r
                        ),
                    }
                }
            }
        }
        // Final sweep: every query's rows match a fresh session's.
        let fresh = Session::new("fresh", &program_with_facts(&mirror), 64, 64).unwrap();
        for q in 0..NUM_QUERIES {
            let fresh_rows = {
                let facts = fresh.facts.read().unwrap();
                evaluate(fresh.query(q), facts.db())
            };
            prop_assert_eq!(live.eval(q), fresh_rows, "final eval Q{}", q);
        }
    }
}

/// One scripted step against a **pair** of sessions (the barrier-
/// relaxation property): `which` selects session A or B.
#[derive(Debug, Clone)]
enum TwoSessionStep {
    Update(bool, Vec<(i64, i64)>, Vec<(i64, i64)>),
    Eval(bool, usize),
    Check(bool, usize, usize),
}

fn two_session_steps() -> impl Strategy<Value = Vec<TwoSessionStep>> {
    let tuples = || proptest::collection::vec((0i64..5, 0i64..5), 0..4);
    let step = (
        0u8..6,
        any::<bool>(),
        tuples(),
        tuples(),
        0usize..NUM_QUERIES,
        0usize..NUM_QUERIES,
    )
        .prop_map(|(kind, which, ins, del, q, qp)| match kind {
            // Updates weighted up: adjacent same-session runs are the
            // coalescing path under test.
            0..=2 => TwoSessionStep::Update(which, ins, del),
            3 | 4 => TwoSessionStep::Eval(which, q),
            _ => TwoSessionStep::Check(which, q, qp),
        });
    proptest::collection::vec(step, 1..24)
}

/// Renders a two-session script as `Work` against the given pair.
fn script_to_work(script: &[TwoSessionStep], a: &Arc<Session>, b: &Arc<Session>) -> Vec<Work> {
    script
        .iter()
        .map(|step| {
            let pick = |which: bool| Arc::clone(if which { b } else { a });
            match step {
                TwoSessionStep::Update(w, ins, del) => Work::Update {
                    session: pick(*w),
                    insert: ins.iter().map(|&(x, y)| fact(x, y)).collect(),
                    delete: del.iter().map(|&(x, y)| fact(x, y)).collect(),
                },
                TwoSessionStep::Eval(w, q) => Work::Eval {
                    session: pick(*w),
                    q: *q,
                },
                TwoSessionStep::Check(w, q, qp) => Work::Check {
                    session: pick(*w),
                    q: *q,
                    q_prime: *qp,
                },
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The barrier-relaxation contract: ANY interleaving of session-A
    /// updates with session-B (and A) checks/evals, drained as one
    /// batch through the per-session-barrier `Batcher`, is observably
    /// identical to the same script under the pre-relaxation **global**
    /// barriers, and both match sessions registered from scratch on the
    /// final facts. "Observably" means every per-step answer — update
    /// summaries' `inserted`/`deleted`/`facts`, eval rows, check
    /// decision fields — bit for bit; only raw epoch counters may
    /// differ (coalesced update runs share one bump).
    #[test]
    fn per_session_barriers_indistinguishable_from_global(script in two_session_steps()) {
        // Two independent session pairs, one per barrier mode. B gets a
        // different fact seed than A so cross-session mixups would show.
        let b_base = format!("{BASE}\nR(0, 1).");
        let a1 = Arc::new(Session::new("a", BASE, 64, 64).unwrap());
        let b1 = Arc::new(Session::new("b", &b_base, 64, 64).unwrap());
        let a2 = Arc::new(Session::new("a", BASE, 64, 64).unwrap());
        let b2 = Arc::new(Session::new("b", &b_base, 64, 64).unwrap());
        let relaxed = Batcher::new(1, Arc::new(Metrics::new()));
        let global = Batcher::with_barrier_mode(
            1,
            Arc::new(Metrics::new()),
            BarrierMode::Global,
        );
        let relaxed_outs = relaxed.submit_many(script_to_work(&script, &a1, &b1));
        let global_outs = global.submit_many(script_to_work(&script, &a2, &b2));
        prop_assert_eq!(relaxed_outs.len(), global_outs.len());
        for (i, (r, g)) in relaxed_outs.iter().zip(global_outs.iter()).enumerate() {
            match (r, g) {
                (Ok(Outcome::Update(r)), Ok(Outcome::Update(g))) => match (r, g) {
                    (Ok(r), Ok(g)) => {
                        prop_assert_eq!(r.inserted, g.inserted, "step {}: inserted", i);
                        prop_assert_eq!(r.deleted, g.deleted, "step {}: deleted", i);
                        prop_assert_eq!(r.facts, g.facts, "step {}: facts", i);
                    }
                    (Err(_), Err(_)) => {}
                    other => prop_assert!(false, "step {}: update Ok/Err: {:?}", i, other),
                },
                (Ok(Outcome::Eval { rows: r, .. }), Ok(Outcome::Eval { rows: g, .. })) => {
                    prop_assert_eq!(r, g, "step {}: eval rows", i);
                }
                (
                    Ok(Outcome::Check { summary: r, .. }),
                    Ok(Outcome::Check { summary: g, .. }),
                ) => match (r, g) {
                    (Ok(r), Ok(g)) => prop_assert_eq!(r, g, "step {}: check summary", i),
                    (Err(_), Err(_)) => {}
                    other => prop_assert!(false, "step {}: check Ok/Err: {:?}", i, other),
                },
                other => prop_assert!(false, "step {}: outcome kinds diverged: {:?}", i, other),
            }
        }
        // Both modes' final states match from-scratch sessions on the
        // mirror facts, for every query of both sessions.
        let mut mirror_a: std::collections::BTreeSet<(i64, i64)> =
            std::collections::BTreeSet::new();
        let mut mirror_b: std::collections::BTreeSet<(i64, i64)> =
            [(0, 1)].into_iter().collect();
        for step in &script {
            if let TwoSessionStep::Update(which, ins, del) = step {
                let m = if *which { &mut mirror_b } else { &mut mirror_a };
                for t in del {
                    m.remove(t);
                }
                for t in ins {
                    m.insert(*t);
                }
            }
        }
        for (live_pair, mirror, name) in [
            ((&a1, &a2), &mirror_a, "A"),
            ((&b1, &b2), &mirror_b, "B"),
        ] {
            let fresh = Session::new("fresh", &program_with_facts(mirror), 64, 64).unwrap();
            for q in 0..NUM_QUERIES {
                let fresh_rows = {
                    let facts = fresh.facts.read().unwrap();
                    evaluate(fresh.query(q), facts.db())
                };
                prop_assert_eq!(
                    live_pair.0.eval(q), fresh_rows.clone(),
                    "final relaxed {} Q{}", name, q
                );
                prop_assert_eq!(
                    live_pair.1.eval(q), fresh_rows,
                    "final global {} Q{}", name, q
                );
            }
        }
    }
}
