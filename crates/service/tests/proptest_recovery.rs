//! The crash-recovery contract, as a property test: for a random
//! register/update script driven through the durability layer, killing
//! the process at **every byte boundary of the WAL** and recovering
//! yields exactly the state of some *prefix of the logged records* —
//! never a half-applied batch, never a lost acknowledged batch earlier
//! than the cut, never a boot failure.
//!
//! This extends the live-mutation differential of `proptest_update.rs`
//! across a crash: the reference is a from-scratch replica built by
//! replaying the surviving event prefix through plain [`Session`]
//! calls, and "equal" means every query's rows, the fact count, and the
//! facts epoch — the full observable state at every observation point.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use cqchase_durability::frame::FILE_HEADER_LEN;
use cqchase_ir::Constant;
use cqchase_service::durable::{MemIo, StorageIo};
use cqchase_service::{Durability, FactSpec, Session, SessionRegistry};
use cqchase_storage::Tuple;
use proptest::prelude::*;

/// Small schemas keep the Register WAL records (and so the number of
/// byte cuts) proportionate to debug-build test time.
const BASE: &str = "relation R(a, b).
    ind R[2] <= R[1].
    Q0(x) :- R(x, y).
    Q1(x, z) :- R(x, y), R(y, z).";

/// The second session's program seeds a fact, so Register replay also
/// covers program-embedded facts.
const SECOND: &str = "relation R(a, b).
    Q0(x) :- R(x, y).
    Q1(x, z) :- R(x, y), R(y, z).
    R(3, 3).";

const NUM_QUERIES: usize = 2;

/// `(inserts, deletes, tag)`; tag 0 poisons the delta with a
/// wrong-arity fact, so it must fail validation and stay out of the WAL.
type RawDelta = (Vec<(i64, i64)>, Vec<(i64, i64)>, u8);

#[derive(Debug, Clone)]
enum Step {
    /// Register the second session (idempotently skipped when taken).
    RegisterSecond,
    /// Apply a batch of deltas to session s1 (`true`, when it exists)
    /// or s0.
    Update(bool, Vec<RawDelta>),
}

/// One durable WAL record, as the script meant it: the reference
/// replica replays exactly these.
#[derive(Debug, Clone)]
enum Event {
    Register(String, String),
    Update(String, Vec<(Vec<FactSpec>, Vec<FactSpec>)>),
}

fn scripts() -> impl Strategy<Value = Vec<Step>> {
    let tuples = || proptest::collection::vec((0i64..4, 0i64..4), 0..3);
    let delta = (tuples(), tuples(), 0u8..8);
    let step = (
        0u8..6,
        any::<bool>(),
        proptest::collection::vec(delta, 1..3),
    )
        .prop_map(|(kind, which, deltas)| match kind {
            0 => Step::RegisterSecond,
            _ => Step::Update(which, deltas),
        });
    proptest::collection::vec(step, 1..6)
}

fn fact(a: i64, b: i64) -> FactSpec {
    ("R".into(), vec![Constant::Int(a), Constant::Int(b)])
}

fn to_delta((ins, del, tag): &RawDelta) -> (Vec<FactSpec>, Vec<FactSpec>) {
    let mut insert: Vec<FactSpec> = ins.iter().map(|&(a, b)| fact(a, b)).collect();
    if *tag == 0 {
        insert.push(("R".into(), vec![Constant::Int(9)]));
    }
    (insert, del.iter().map(|&(a, b)| fact(a, b)).collect())
}

/// The full observable state of one session.
type Observed = (Vec<Vec<Tuple>>, usize, u64);

fn observe(session: &Session) -> Observed {
    let rows: Vec<_> = (0..NUM_QUERIES).map(|q| session.eval(q)).collect();
    let (facts, epoch) = session.facts_snapshot();
    (rows, facts, epoch)
}

fn observe_all(sessions: &HashMap<String, Session>) -> HashMap<String, Observed> {
    sessions
        .iter()
        .map(|(name, s)| (name.clone(), observe(s)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_wal_byte_cut_restores_a_batch_prefix(script in scripts()) {
        let io = Arc::new(MemIo::new());
        let dir = Path::new("/data");
        let registry = Arc::new(SessionRegistry::new());
        let (d, _) = Durability::open(
            Arc::clone(&io) as Arc<dyn StorageIo>,
            dir,
            None,
            Arc::clone(&registry),
            16,
            16,
        )
        .expect("fresh open");

        // Drive the script through the durability layer, mirroring the
        // record it logs for each step (the valid subset of each batch).
        let mut events: Vec<Event> = Vec::new();
        d.register("s0", BASE).expect("register s0");
        events.push(Event::Register("s0".into(), BASE.into()));
        let mut second = false;
        for step in &script {
            match step {
                Step::RegisterSecond => {
                    if !second {
                        d.register("s1", SECOND).expect("register s1");
                        events.push(Event::Register("s1".into(), SECOND.into()));
                        second = true;
                    }
                }
                Step::Update(which, raw) => {
                    let name = if *which && second { "s1" } else { "s0" };
                    let session = registry.get(name).expect("session registered");
                    let deltas: Vec<_> = raw.iter().map(to_delta).collect();
                    let valid: Vec<_> = deltas
                        .iter()
                        .filter(|(ins, del)| session.validate_update(ins, del).is_ok())
                        .cloned()
                        .collect();
                    d.apply_updates(&session, &deltas);
                    if !valid.is_empty() {
                        events.push(Event::Update(name.to_string(), valid));
                    }
                }
            }
        }

        // Reference states: `expected[k]` is the observable state after
        // replaying the first k events from scratch, exactly as
        // recovery replays a surviving WAL prefix.
        let mut expected: Vec<HashMap<String, Observed>> = Vec::new();
        {
            let mut sessions: HashMap<String, Session> = HashMap::new();
            expected.push(observe_all(&sessions));
            for ev in &events {
                match ev {
                    Event::Register(name, program) => {
                        sessions.insert(
                            name.clone(),
                            Session::new(name, program, 16, 16).expect("reference register"),
                        );
                    }
                    Event::Update(name, deltas) => {
                        for r in sessions[name.as_str()].apply_updates(deltas) {
                            r.expect("reference deltas are valid");
                        }
                    }
                }
                expected.push(observe_all(&sessions));
            }
        }

        // The live registry must already match the full prefix.
        for (name, exp) in &expected[events.len()] {
            let live = registry.get(name).expect("live session");
            prop_assert_eq!(&observe(&live), exp, "live state vs full prefix: {}", name);
        }

        // Kill at every byte boundary of the WAL. The file header is
        // written atomically at creation, so a crash can only ever cut
        // inside the appended records.
        let wal = io.dump(&dir.join("wal-0")).expect("wal exists");
        let snap = io.dump(&dir.join("snap-0")).expect("snapshot exists");
        let mut prev_k = 0usize;
        for cut in FILE_HEADER_LEN..=wal.len() {
            let io2 = Arc::new(MemIo::new());
            io2.set_file(&dir.join("snap-0"), snap.clone());
            io2.set_file(&dir.join("wal-0"), wal[..cut].to_vec());
            let reg2 = Arc::new(SessionRegistry::new());
            let (_d2, report) = Durability::open(
                Arc::clone(&io2) as Arc<dyn StorageIo>,
                dir,
                None,
                Arc::clone(&reg2),
                16,
                16,
            )
            .unwrap_or_else(|e| panic!("cut {cut}: recovery must not fail: {e}"));
            let k = report.wal_records_replayed;
            prop_assert!(
                k <= events.len(),
                "cut {}: {} records replayed but only {} logged",
                cut, k, events.len()
            );
            prop_assert!(k >= prev_k, "cut {}: surviving prefix shrank", cut);
            prev_k = k;
            let exp = &expected[k];
            let mut names = reg2.names();
            names.sort();
            let mut exp_names: Vec<_> = exp.keys().cloned().collect();
            exp_names.sort();
            prop_assert_eq!(&names, &exp_names, "cut {}: restored session set", cut);
            for name in &names {
                let restored = reg2.get(name).expect("restored session");
                prop_assert_eq!(
                    &observe(&restored),
                    exp.get(name).expect("expected session"),
                    "cut {}: restored state of {} (prefix {})",
                    cut, name, k
                );
            }
        }
        prop_assert_eq!(prev_k, events.len(), "the full WAL replays every record");
    }
}
