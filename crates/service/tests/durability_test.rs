//! Integration tests for the durability layer: restore fidelity over
//! fault-injected in-memory storage, the fsync-before-acknowledge
//! contract, corrupt-snapshot boot failures, and a full TCP
//! stop-the-process-and-restart round trip on real files.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use cqchase_ir::Constant;
use cqchase_service::durable::{MemIo, StorageIo};
use cqchase_service::{
    Batcher, Client, ClientError, Durability, FactSpec, Metrics, Outcome, RecoveryReport,
    ServeOptions, Server, SessionRegistry, Work,
};

const BASE: &str = "relation R(a, b).
    ind R[2] <= R[1].
    Q0(x) :- R(x, y).
    Q1(x) :- R(x, y), R(y, z).
    Q2(x) :- R(y, x).
    Q3(x, z) :- R(x, y), R(y, z).";

const NUM_QUERIES: usize = 4;

fn fact(a: i64, b: i64) -> FactSpec {
    ("R".into(), vec![Constant::Int(a), Constant::Int(b)])
}

/// Opens a durability layer over the shared in-memory filesystem with a
/// fresh registry, panicking on any store error.
fn open(io: &Arc<MemIo>, dir: &Path) -> (Arc<Durability>, RecoveryReport, Arc<SessionRegistry>) {
    let registry = Arc::new(SessionRegistry::new());
    let (d, report) = Durability::open(
        Arc::clone(io) as Arc<dyn StorageIo>,
        dir,
        None,
        Arc::clone(&registry),
        64,
        64,
    )
    .expect("open durability");
    (Arc::new(d), report, registry)
}

/// Every query's rows plus the facts snapshot — the full observable
/// state of a session.
fn observe(session: &cqchase_service::Session) -> (Vec<Vec<cqchase_storage::Tuple>>, usize, u64) {
    let rows: Vec<_> = (0..NUM_QUERIES).map(|q| session.eval(q)).collect();
    let (facts, epoch) = session.facts_snapshot();
    (rows, facts, epoch)
}

#[test]
fn restored_registry_is_bit_identical() {
    let io = Arc::new(MemIo::new());
    let dir = Path::new("/data");

    // Boot 1: fresh directory, register, mutate.
    let (d1, report, registry1) = open(&io, dir);
    assert!(report.fresh);
    assert_eq!(report.snapshot_sessions, 0);
    let live = d1.register("live", BASE).expect("register");
    let results = d1.apply_updates(
        &live,
        &[
            (vec![fact(0, 1), fact(1, 2)], vec![]),
            (vec![fact(2, 0)], vec![fact(0, 1)]),
        ],
    );
    for r in &results {
        r.as_ref().expect("update applies");
    }
    let before = observe(&live);
    drop((d1, registry1));

    // Boot 2: nothing was snapshotted — everything comes from WAL
    // replay (one Register record, one Update record).
    let (d2, report, registry2) = open(&io, dir);
    assert!(!report.fresh);
    assert_eq!(report.snapshot_sessions, 0);
    assert_eq!(report.wal_records_replayed, 2);
    assert_eq!(report.torn_tail, None);
    let restored = registry2.get("live").expect("session restored");
    assert_eq!(
        observe(&restored),
        before,
        "WAL replay must be bit-identical"
    );

    // Force a snapshot, then boot 3 restores from it with an empty WAL.
    let (seq, sessions) = d2.persist().expect("persist");
    assert_eq!((seq, sessions), (1, 1));
    drop((d2, registry2));
    let (_d3, report, registry3) = open(&io, dir);
    assert_eq!(report.snapshot_sessions, 1);
    assert_eq!(report.wal_records_replayed, 0);
    let restored = registry3.get("live").expect("session restored");
    assert_eq!(
        observe(&restored),
        before,
        "snapshot restore must be bit-identical"
    );
}

#[test]
fn fsync_failure_refuses_the_mutation_and_applies_nothing() {
    let io = Arc::new(MemIo::new());
    let dir = Path::new("/data");
    let (d, _, registry) = open(&io, dir);
    let live = d.register("live", BASE).expect("register");
    let batcher = Batcher::new(1, Arc::new(Metrics::new())).with_durability(Arc::clone(&d));

    let submit = |insert: Vec<FactSpec>| {
        batcher
            .submit(Work::Update {
                session: Arc::clone(&live),
                insert,
                delete: vec![],
            })
            .expect("submit")
    };
    let Outcome::Update(Ok(_)) = submit(vec![fact(0, 1)]) else {
        panic!("baseline update should succeed");
    };
    let acknowledged = observe(&live);

    // With fsync broken, the update must come back as an error through
    // the admission queue — and the session must be untouched: a client
    // never hears `ok:true` for a change a restart would forget.
    io.set_fail_fsync(true);
    let out = submit(vec![fact(1, 2)]);
    let Outcome::Update(Err(msg)) = out else {
        panic!("update with failed fsync must error, got {out:?}");
    };
    assert!(
        msg.contains("update not persisted"),
        "error names the durability failure: {msg}"
    );
    assert_eq!(
        observe(&live),
        acknowledged,
        "failed update applied nothing"
    );

    // Registration under a failed fsync rolls back: no session remains.
    let err = d.register("other", BASE).expect_err("register must fail");
    assert!(
        err.contains("registration not persisted"),
        "error names the durability failure: {err}"
    );
    assert!(
        registry.get("other").is_err(),
        "rolled-back session is gone"
    );

    // Recovery sees exactly the acknowledged state, nothing more.
    io.set_fail_fsync(false);
    let (_, report, registry2) = open(&io, dir);
    assert_eq!(
        report.wal_records_replayed, 2,
        "register + one durable update"
    );
    let restored = registry2.get("live").expect("session restored");
    assert_eq!(observe(&restored), acknowledged);
    assert!(registry2.get("other").is_err());
}

#[test]
fn corrupt_snapshot_fails_boot_naming_file_and_offset() {
    let io = Arc::new(MemIo::new());
    let dir = Path::new("/data");
    let (d, _, _) = open(&io, dir);
    let live = d.register("live", BASE).expect("register");
    d.apply_updates(&live, &[(vec![fact(0, 1)], vec![])]);
    d.persist().expect("persist");
    drop(d);
    let snap = dir.join("snap-1");
    let good = io.dump(&snap).expect("snapshot exists");

    let open_err = |io: &Arc<MemIo>| {
        let registry = Arc::new(SessionRegistry::new());
        Durability::open(
            Arc::clone(io) as Arc<dyn StorageIo>,
            dir,
            None,
            registry,
            64,
            64,
        )
        .expect_err("corrupt snapshot must fail the boot")
        .to_string()
    };

    // A flipped payload byte: CRC mismatch at that record's offset.
    let mut bytes = good.clone();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    io.set_file(&snap, bytes);
    let msg = open_err(&io);
    assert!(msg.contains("snap-1"), "names the file: {msg}");
    assert!(msg.contains("corrupt at byte"), "names the offset: {msg}");
    assert!(msg.contains("crc mismatch"), "names the cause: {msg}");

    // A truncated snapshot (not a WAL — snapshots are atomic, so a
    // short one is damage, not a torn tail).
    io.set_file(&snap, good[..good.len() / 2].to_vec());
    let msg = open_err(&io);
    assert!(msg.contains("snap-1"), "names the file: {msg}");
    assert!(msg.contains("corrupt at byte"), "names the offset: {msg}");

    // A clobbered magic number.
    let mut bytes = good.clone();
    bytes[0] = b'X';
    io.set_file(&snap, bytes);
    let msg = open_err(&io);
    assert!(msg.contains("bad magic"), "names the cause: {msg}");

    // Intact bytes boot fine again.
    io.set_file(&snap, good);
    let registry = Arc::new(SessionRegistry::new());
    Durability::open(
        Arc::clone(&io) as Arc<dyn StorageIo>,
        dir,
        None,
        registry,
        64,
        64,
    )
    .expect("intact snapshot boots");
}

fn temp_data_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cqchase-service-{tag}-{}", std::process::id()))
}

fn spawn_with_dir(
    dir: &Path,
) -> (
    std::net::SocketAddr,
    Option<RecoveryReport>,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".into(),
        data_dir: Some(dir.to_path_buf()),
        ..Default::default()
    })
    .expect("bind with data dir");
    let report = server.recovery_report().cloned();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, report, handle)
}

#[test]
fn server_restart_restores_sessions_over_tcp() {
    let dir = temp_data_dir("restart");
    let _ = std::fs::remove_dir_all(&dir);

    // Server 1: register, mutate, observe, shut down cleanly.
    let (addr, report, handle) = spawn_with_dir(&dir);
    assert_eq!(report.map(|r| r.fresh), Some(true));
    let mut c = Client::connect(addr).unwrap();
    c.register("live", BASE).unwrap();
    let up = c.update("live", &[fact(0, 1), fact(1, 2)], &[]).unwrap();
    assert_eq!(up["inserted"], 2);
    let epoch = up["epoch"].clone();
    let rows = c.eval("live", "Q1").unwrap()["rows"].clone();
    let stats = c.stats().unwrap();
    assert_eq!(stats["durability"]["enabled"], true);
    assert!(stats["durability"]["fsyncs"].as_u64().unwrap_or(0) > 0);
    let persisted = c.persist().unwrap();
    assert_eq!(persisted["sessions"], 1);
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();

    // Server 2 on the same directory: the session is back, answers and
    // epoch included, and stays fully usable.
    let (addr, report, handle) = spawn_with_dir(&dir);
    let report = report.expect("durability enabled");
    assert!(!report.fresh);
    assert_eq!(report.snapshot_sessions, 1);
    let mut c = Client::connect(addr).unwrap();
    assert_eq!(c.eval("live", "Q1").unwrap()["rows"], rows);
    assert_eq!(c.classify("live").unwrap()["facts_epoch"], epoch);
    let up = c.update("live", &[fact(2, 0)], &[]).unwrap();
    assert_eq!(up["inserted"], 1);
    assert!(c
        .register("live", BASE)
        .expect_err("name survives restart")
        .to_string()
        .contains("already registered"));
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persist_without_data_dir_is_an_error_and_stats_say_disabled() {
    let (addr, handle) = Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".into(),
        ..Default::default()
    })
    .unwrap();
    let mut c = Client::connect(addr).unwrap();
    assert_eq!(c.stats().unwrap()["durability"]["enabled"], false);
    match c.persist() {
        Err(ClientError::Server(msg)) => {
            assert!(msg.contains("data directory"), "{msg}");
        }
        other => panic!("persist without a data dir must fail, got {other:?}"),
    }
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn restart_with_lanes_restores_lane_placement_and_reattaches_catalogs() {
    use cqchase_service::lane_of;
    let dir = temp_data_dir("lanes-restart");
    let _ = std::fs::remove_dir_all(&dir);
    let spawn4 = |dir: &Path| {
        let server = Server::bind(ServeOptions {
            addr: "127.0.0.1:0".into(),
            lanes: 4,
            batch_threads: 4,
            data_dir: Some(dir.to_path_buf()),
            ..Default::default()
        })
        .expect("bind with data dir");
        let report = server.recovery_report().cloned();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        (addr, report, handle)
    };

    // Server 1: three tenants share the BASE catalog, one diverges by
    // updating (copy-on-write), one has its own facts. Snapshot, then
    // keep going so the WAL tail has a register and an update to
    // replay on top of the snapshot.
    let (addr, _, handle) = spawn4(&dir);
    let mut c = Client::connect(addr).unwrap();
    let solo_base = format!("{BASE}\nR(5, 5).");
    for name in ["shr-a", "shr-b", "shr-c", "mut"] {
        c.register(name, BASE).unwrap();
    }
    c.register("solo", &solo_base).unwrap();
    c.update("mut", &[fact(0, 1), fact(1, 2)], &[]).unwrap();
    c.persist().unwrap();
    c.register("late", BASE).unwrap();
    c.update("mut", &[fact(2, 0)], &[]).unwrap();
    let names = ["shr-a", "shr-b", "shr-c", "mut", "solo", "late"];
    let before: Vec<_> = names
        .iter()
        .map(|n| {
            (
                c.eval(n, "Q1").unwrap()["rows"].clone(),
                c.classify(n).unwrap()["facts_epoch"].clone(),
            )
        })
        .collect();
    assert_eq!(c.stats().unwrap()["catalogs"]["distinct"], 2);
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();

    // Server 2, same --lanes 4: every session hashes back into its
    // lane (routing is a pure function of the name), the three
    // undiverged BASE tenants plus the late register re-attach to ONE
    // rebuilt catalog, and the diverged/singleton sessions come back
    // private — same answers, same epochs, no shared-base copies
    // pinned for sessions that no longer match it.
    let (addr, report, handle) = spawn4(&dir);
    let report = report.expect("durability enabled");
    assert!(!report.fresh);
    assert_eq!(report.snapshot_sessions, 5);
    assert_eq!(report.wal_records_replayed, 2);
    let mut c = Client::connect(addr).unwrap();
    for (n, (rows, epoch)) in names.iter().zip(&before) {
        assert_eq!(&c.eval(n, "Q1").unwrap()["rows"], rows, "{n} rows");
        assert_eq!(&c.classify(n).unwrap()["facts_epoch"], epoch, "{n} epoch");
    }
    let stats = c.stats().unwrap();
    let cat = &stats["catalogs"];
    assert_eq!(
        cat["distinct"], 1,
        "only the shared group re-registers: {cat:?}"
    );
    assert_eq!(cat["builds"], 1, "one rebuild serves the group: {cat:?}");
    assert_eq!(
        cat["attaches"], 3,
        "two snapshot siblings + the late register attach: {cat:?}"
    );
    let detail = &stats["sessions_detail"];
    for n in names {
        assert_eq!(
            detail[n]["lane"].as_u64().unwrap() as usize,
            lane_of(n, 4),
            "{n} restored into its deterministic lane"
        );
    }
    for n in ["shr-a", "shr-b", "shr-c", "late"] {
        assert_eq!(detail[n]["shared_catalog"], true, "{n} re-attached");
    }
    for n in ["mut", "solo"] {
        assert_eq!(detail[n]["shared_catalog"], false, "{n} restored private");
    }
    // The restored registry still serves updates in every lane.
    for n in names {
        assert_eq!(c.update(n, &[fact(8, 9)], &[]).unwrap()["inserted"], 1);
    }
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
