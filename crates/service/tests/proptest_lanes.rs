//! The lane-sharding correctness contract, as a property test: ANY
//! multi-session script of updates, evaluations, and containment
//! checks, routed through `lanes ∈ {1, 2, 4}` sharded admission
//! queues, answers bit-identically — step by step — to the single
//! queue, and every final state matches a session registered from
//! scratch on the accumulated facts.
//!
//! The sessions deliberately share catalogs: three of the four
//! register the *same* program source (one `FrozenCatalog`, three
//! attachments, shared base facts and plan cache) so the script also
//! drives copy-on-write promotion — the first effective update on a
//! shared session must split it off invisibly, while its catalog
//! siblings keep reading the untouched base.

use std::sync::Arc;

use cqchase_ir::Constant;
use cqchase_service::{
    lane_of, Batcher, CatalogRegistry, LaneSet, Metrics, Outcome, Session, Work,
};
use cqchase_storage::evaluate;
use proptest::prelude::*;

const BASE: &str = "relation R(a, b).
    ind R[2] <= R[1].
    Q0(x) :- R(x, y).
    Q1(x) :- R(x, y), R(y, z).
    Q2(x) :- R(y, x).
    Q3(x, z) :- R(x, y), R(y, z).";

const NUM_QUERIES: usize = 4;
const NUM_SESSIONS: usize = 4;

/// Session names fixed so lane placement is reproducible; t0–t2 share
/// one catalog, t3 gets its own (different seed facts).
const NAMES: [&str; NUM_SESSIONS] = ["t0", "t1", "t2", "t3"];

#[derive(Debug, Clone)]
enum Step {
    Update(usize, Vec<(i64, i64)>, Vec<(i64, i64)>),
    Eval(usize, usize),
    Check(usize, usize, usize),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    let tuples = || proptest::collection::vec((0i64..5, 0i64..5), 0..4);
    let step = (
        0u8..6,
        0usize..NUM_SESSIONS,
        tuples(),
        tuples(),
        0usize..NUM_QUERIES,
        0usize..NUM_QUERIES,
    )
        .prop_map(|(kind, s, ins, del, q, qp)| match kind {
            0 | 1 => Step::Update(s, ins, del),
            2 | 3 => Step::Eval(s, q),
            _ => Step::Check(s, q, qp),
        });
    proptest::collection::vec(step, 1..24)
}

fn fact(a: i64, b: i64) -> (String, Vec<Constant>) {
    ("R".into(), vec![Constant::Int(a), Constant::Int(b)])
}

fn program_with_facts(facts: &std::collections::BTreeSet<(i64, i64)>) -> String {
    let mut src = BASE.to_string();
    for (a, b) in facts {
        src.push_str(&format!("\nR({a}, {b})."));
    }
    src
}

/// Builds the four sessions through one shared-catalog registry and a
/// `count`-lane set, then drives the script through it sequentially,
/// returning each step's observable answer.
struct LaneRun {
    sessions: Vec<Arc<Session>>,
    outcomes: Vec<Outcome>,
    catalogs: Arc<CatalogRegistry>,
}

fn run_script(script: &[Step], count: usize) -> LaneRun {
    let catalogs = Arc::new(CatalogRegistry::new(64));
    let t3_base = format!("{BASE}\nR(0, 1).");
    let sessions: Vec<Arc<Session>> = NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let src = if i == 3 { t3_base.as_str() } else { BASE };
            Arc::new(catalogs.session_from_source(name, src, 64, 64).unwrap())
        })
        .collect();
    let metrics = Arc::new(Metrics::with_lanes(count));
    let lanes = LaneSet::new(count, |i| {
        Batcher::new(1, Arc::clone(&metrics)).with_lane(i)
    });
    let outcomes = script
        .iter()
        .map(|step| {
            let (s, work) = match step {
                Step::Update(s, ins, del) => (
                    *s,
                    Work::Update {
                        session: Arc::clone(&sessions[*s]),
                        insert: ins.iter().map(|&(a, b)| fact(a, b)).collect(),
                        delete: del.iter().map(|&(a, b)| fact(a, b)).collect(),
                    },
                ),
                Step::Eval(s, q) => (
                    *s,
                    Work::Eval {
                        session: Arc::clone(&sessions[*s]),
                        q: *q,
                    },
                ),
                Step::Check(s, q, qp) => (
                    *s,
                    Work::Check {
                        session: Arc::clone(&sessions[*s]),
                        q: *q,
                        q_prime: *qp,
                    },
                ),
            };
            lanes.for_session(NAMES[s]).submit(work).unwrap()
        })
        .collect();
    LaneRun {
        sessions,
        outcomes,
        catalogs,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lane_counts_are_observably_identical(script in steps()) {
        let runs: Vec<LaneRun> = [1usize, 2, 4]
            .iter()
            .map(|&n| run_script(&script, n))
            .collect();
        // t0–t2 attached to one frozen catalog, t3 to another.
        for run in &runs {
            prop_assert_eq!(run.catalogs.len(), 2, "distinct catalogs");
        }
        // Step-by-step: every lane count answers exactly what the
        // single queue answers.
        let single = &runs[0];
        for run in &runs[1..] {
            prop_assert_eq!(run.outcomes.len(), single.outcomes.len());
            for (i, (r, g)) in run.outcomes.iter().zip(single.outcomes.iter()).enumerate() {
                match (r, g) {
                    (Outcome::Update(r), Outcome::Update(g)) => match (r, g) {
                        (Ok(r), Ok(g)) => prop_assert_eq!(r, g, "step {}: update summary", i),
                        (Err(_), Err(_)) => {}
                        other => prop_assert!(false, "step {}: update Ok/Err: {:?}", i, other),
                    },
                    (Outcome::Eval { rows: r, .. }, Outcome::Eval { rows: g, .. }) => {
                        prop_assert_eq!(r, g, "step {}: eval rows", i);
                    }
                    (Outcome::Check { summary: r, .. }, Outcome::Check { summary: g, .. }) => {
                        match (r, g) {
                            (Ok(r), Ok(g)) => prop_assert_eq!(r, g, "step {}: check summary", i),
                            (Err(_), Err(_)) => {}
                            other => prop_assert!(false, "step {}: check Ok/Err: {:?}", i, other),
                        }
                    }
                    other => prop_assert!(false, "step {}: outcome kinds diverged: {:?}", i, other),
                }
            }
        }
        // Every run's final state matches from-scratch sessions on the
        // mirror facts — sharing and promotion are invisible.
        let mut mirrors: Vec<std::collections::BTreeSet<(i64, i64)>> =
            vec![std::collections::BTreeSet::new(); NUM_SESSIONS];
        mirrors[3].insert((0, 1));
        // `promoted` replays the engine's copy-on-write probe: an
        // update promotes iff, against the facts *before* it, some
        // delete is present or some insert is absent. The final mirror
        // alone can't tell (an insert+delete round trip promotes yet
        // lands back on the base facts).
        let mut promoted = [false; NUM_SESSIONS];
        for step in &script {
            if let Step::Update(s, ins, del) = step {
                promoted[*s] |= del.iter().any(|t| mirrors[*s].contains(t))
                    || ins.iter().any(|t| !mirrors[*s].contains(t));
                for t in del {
                    mirrors[*s].remove(t);
                }
                for t in ins {
                    mirrors[*s].insert(*t);
                }
            }
        }
        for run in &runs {
            for (s, mirror) in mirrors.iter().enumerate() {
                let fresh = Session::new("fresh", &program_with_facts(mirror), 64, 64).unwrap();
                for q in 0..NUM_QUERIES {
                    let fresh_rows = {
                        let facts = fresh.facts.read().unwrap();
                        evaluate(fresh.query(q), facts.db())
                    };
                    prop_assert_eq!(
                        run.sessions[s].eval(q), fresh_rows,
                        "final {} Q{}", NAMES[s], q
                    );
                }
            }
        }
        // An effective update on a shared session must have promoted it
        // (and only it) off the shared base.
        for run in &runs {
            for (s, session) in run.sessions.iter().enumerate() {
                prop_assert_eq!(
                    !session.facts_shared(),
                    promoted[s],
                    "{} shared/promoted state", NAMES[s]
                );
            }
        }
        // Sanity: the routing function the lanes used is total and
        // stable for these names.
        for name in NAMES {
            prop_assert!(lane_of(name, 4) < 4);
        }
    }
}
