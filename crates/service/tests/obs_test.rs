//! Observability acceptance tests over a real loopback TCP server:
//! the `metrics` Prometheus exposition agrees with the `stats` JSON,
//! endpoint counters stay internally consistent under concurrent
//! clients, and a zero-threshold slow-query log captures the full span
//! vocabulary (admission wait, plan compile / cache hit, join
//! execution, WAL fsync) plus per-atom estimated-vs-actual cardinality.

use std::path::PathBuf;

use cqchase_obs::prom::{flatten_numeric, parse_prometheus, session_gauges};
use cqchase_service::{Client, FactSpec, ServeOptions, Server};
use serde_json::Value;

fn fact(a: i64, b: i64) -> FactSpec {
    (
        "R".into(),
        vec![cqchase_ir::Constant::Int(a), cqchase_ir::Constant::Int(b)],
    )
}

const PROGRAM: &str = "relation R(a, b).
    ind R[2] <= R[1].
    A(x) :- R(x, y).
    B(x) :- R(x, y), R(y, z).
    C(x, z) :- R(x, y), R(y, z).
    R(0, 1). R(1, 2). R(2, 3).";

fn temp_data_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cqchase-obs-{tag}-{}", std::process::id()))
}

#[test]
fn metrics_text_matches_stats_json() {
    let (addr, handle) = Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".into(),
        batch_threads: 2,
        conn_workers: 4,
        ..Default::default()
    })
    .unwrap();
    let mut c = Client::connect(addr).unwrap();
    c.register("obs", PROGRAM).unwrap();
    c.update("obs", &[fact(3, 4)], &[]).unwrap();
    c.check("obs", "A", "B").unwrap();
    c.eval("obs", "B").unwrap();
    c.eval("obs", "B").unwrap(); // warm repeat: result-cache hit

    let stats = c.stats().unwrap();
    let text = c.metrics_text().unwrap();
    let parsed = parse_prometheus(&text);

    // The exposition is the flattening of the stats payload. Between
    // the two requests only the stats/metrics endpoints' own counters
    // and the uptime gauge move, so everything else must be equal.
    let mut payload = serde_json::Map::new();
    for (k, v) in stats.as_object().unwrap().iter() {
        if k != "ok" && k != "op" {
            payload.insert(k.clone(), v.clone());
        }
    }
    let flat = flatten_numeric(&Value::Object(payload));
    assert!(!flat.is_empty());
    for (key, value) in &flat {
        if key.starts_with("cqchase_endpoints_stats")
            || key.starts_with("cqchase_endpoints_metrics")
            || key.contains("uptime")
        {
            continue;
        }
        assert_eq!(
            parsed.get(key),
            Some(value),
            "metrics text disagrees with stats JSON on {key}"
        );
    }

    // The families the README documents must actually be present.
    for family in [
        "cqchase_endpoints_eval_count",
        "cqchase_endpoints_check_count",
        "cqchase_queue_wait_count",
        "cqchase_semantic_cache_hits",
        "cqchase_planner_compiled",
        "cqchase_server_wal_rotate_bytes",
        "cqchase_server_batch_threads",
        "cqchase_eval_row_hits",
    ] {
        assert!(
            parsed.contains_key(family),
            "missing metric family {family}"
        );
    }
    assert!(
        text.contains("_histogram_us_pow2_bucket{le=\"+Inf\"}"),
        "latency histograms must render cumulatively"
    );
    // Per-session gauges carry the session label.
    let gauges = session_gauges(&parsed);
    let facts = gauges
        .iter()
        .find(|(s, m, _)| s == "obs" && m == "facts")
        .expect("per-session facts gauge");
    assert_eq!(facts.2, 4.0);
    assert!(gauges.iter().any(|(s, m, _)| s == "obs" && m == "epoch"));
    assert!(gauges
        .iter()
        .any(|(s, m, v)| s == "obs" && m == "eval_result_hits" && *v >= 1.0));

    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn endpoint_counters_consistent_under_concurrent_clients() {
    let (addr, handle) = Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".into(),
        batch_threads: 2,
        conn_workers: 6,
        ..Default::default()
    })
    .unwrap();
    let mut admin = Client::connect(addr).unwrap();
    admin.register("c", PROGRAM).unwrap();

    let mut handles = Vec::new();
    for t in 0..4i64 {
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            for i in 0..25i64 {
                match i % 3 {
                    0 => {
                        c.eval("c", "A").unwrap();
                    }
                    1 => {
                        c.check("c", "A", "B").unwrap();
                    }
                    _ => {
                        let f = fact(100 + t * 1000 + i, 200 + t * 1000 + i);
                        c.update("c", std::slice::from_ref(&f), &[]).unwrap();
                        c.update("c", &[], &[f]).unwrap();
                    }
                }
                // Sprinkle in errors: unknown session, every few rounds.
                if i % 7 == 0 {
                    let _ = c.eval("ghost", "A");
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let stats = admin.stats().unwrap();
    let endpoints = stats["endpoints"].as_object().unwrap();
    for (name, ep) in endpoints.iter() {
        let count = ep["count"].as_u64().unwrap();
        let errors = ep["errors"].as_u64().unwrap();
        let hist_sum: u64 = ep["histogram_us_pow2"]
            .as_array()
            .unwrap()
            .iter()
            .map(|b| b.as_u64().unwrap())
            .sum();
        assert_eq!(
            count, hist_sum,
            "endpoint {name}: every recorded request lands in exactly one bucket"
        );
        assert!(errors <= count, "endpoint {name}: errors ≤ count");
    }
    assert!(stats["endpoints"]["eval"]["count"].as_u64().unwrap() >= 50);
    assert!(stats["endpoints"]["eval"]["errors"].as_u64().unwrap() >= 4);
    // Queue-wait is recorded once per batched item.
    let qw = stats["queue_wait"]["count"].as_u64().unwrap();
    let batched = stats["batching"]["batched_items"].as_u64().unwrap();
    assert_eq!(qw, batched, "one queue-wait sample per batched item");

    admin.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn zero_threshold_slow_query_log_captures_span_vocabulary() {
    let dir = temp_data_dir("slowlog");
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".into(),
        batch_threads: 2,
        conn_workers: 4,
        data_dir: Some(dir.clone()),
        slow_query_us: Some(0),
        ..Default::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());

    let mut c = Client::connect(addr).unwrap();
    c.register("slow", PROGRAM).unwrap();
    c.update("slow", &[fact(3, 4)], &[]).unwrap();
    c.check("slow", "A", "B").unwrap();
    c.eval("slow", "B").unwrap(); // compile + execute
    c.eval("slow", "C").unwrap(); // second plan through the warm cache path
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();

    let log = std::fs::read_to_string(dir.join("slowlog")).expect("slowlog file exists");
    let lines: Vec<Value> = log
        .lines()
        .map(|l| serde_json::from_str(l).expect("every slowlog line is one JSON object"))
        .collect();
    assert!(!lines.is_empty());
    for line in &lines {
        assert_eq!(line["event"], "slow_query");
        assert_eq!(line["threshold_us"], 0u64);
        assert!(line["trace_id"].as_u64().unwrap() > 0);
        assert!(line["latency_us"].as_u64().is_some());
    }
    let spans_of = |line: &Value| -> Vec<String> {
        line["spans"]
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s["kind"].as_str().unwrap().to_string())
            .collect()
    };
    let find = |op: &str| -> &Value {
        lines
            .iter()
            .find(|l| l["op"] == op)
            .unwrap_or_else(|| panic!("no slow-query line for op {op}"))
    };

    // Register: the WAL fsync before acknowledgement is a span.
    let reg = spans_of(find("register"));
    assert!(reg.contains(&"request".into()), "{reg:?}");
    assert!(reg.contains(&"fsync".into()), "{reg:?}");

    // Update: queued, drained, fsync'd.
    let upd = spans_of(find("update"));
    for kind in ["request", "admission_wait", "batch_drain", "fsync"] {
        assert!(upd.contains(&kind.into()), "update spans: {upd:?}");
    }

    // Check: the pre-queue semantic-cache probe is timed.
    let chk = spans_of(find("check"));
    for kind in [
        "request",
        "sem_cache_lookup",
        "admission_wait",
        "batch_drain",
    ] {
        assert!(chk.contains(&kind.into()), "check spans: {chk:?}");
    }

    // Eval: result-cache probe, a plan compile (cold) and the join, with
    // the per-atom est-vs-actual annotation.
    let eval_lines: Vec<&Value> = lines.iter().filter(|l| l["op"] == "eval").collect();
    assert_eq!(eval_lines.len(), 2);
    let cold = eval_lines[0];
    let spans = spans_of(cold);
    for kind in [
        "request",
        "admission_wait",
        "eval_cache_lookup",
        "plan_compile",
        "join_exec",
        "batch_drain",
    ] {
        assert!(spans.contains(&kind.into()), "cold eval spans: {spans:?}");
    }
    let join = &cold["join"];
    assert_eq!(join["result_cache_hit"], false);
    assert_eq!(join["plan"], "compiled");
    assert_eq!(join["acyclic"], true);
    let atoms = join["atoms"].as_array().unwrap();
    assert_eq!(atoms.len(), 2, "B has two atoms");
    for atom in atoms {
        assert!(atom["est"].as_f64().unwrap() > 0.0);
        assert!(atom["actual"].as_u64().is_some());
    }
    assert!(join["join_order"].as_array().unwrap().len() == 2);
    assert!(join["candidates_scanned"].as_u64().unwrap() > 0);
    assert!(join["rows_emitted"].as_u64().unwrap() > 0);

    // Every span nests inside the request span's window.
    let req = cold["spans"]
        .as_array()
        .unwrap()
        .iter()
        .find(|s| s["kind"] == "request")
        .unwrap()
        .clone();
    let req_start = req["start_us"].as_u64().unwrap();
    let req_end = req_start + req["dur_us"].as_u64().unwrap();
    for s in cold["spans"].as_array().unwrap() {
        let start = s["start_us"].as_u64().unwrap();
        assert!(
            start >= req_start && start <= req_end,
            "span outside request: {s}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_refusals_are_counted_once_globally() {
    use std::io::{BufRead, BufReader, Write};
    // One handler worker → the admission bound is 2 live connections;
    // the third gets one `ok:false` overload line, a closed stream, and
    // exactly one tick of the single process-wide refusal counter
    // (shared by every lane — refusal happens at accept, before lane
    // routing).
    let (addr, handle) = Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".into(),
        batch_threads: 1,
        lanes: 2,
        conn_workers: 1,
        ..Default::default()
    })
    .unwrap();
    // Occupy the worker with a served connection…
    let mut held = Client::connect(addr).unwrap();
    held.register("obs", PROGRAM).unwrap();
    // …and the admission slack with an idle accepted-but-queued one.
    let parked = std::net::TcpStream::connect(addr).unwrap();
    // Give the accept loop a beat to count the parked connection.
    std::thread::sleep(std::time::Duration::from_millis(100));
    // The third connection is refused with a readable error line.
    let extra = std::net::TcpStream::connect(addr).unwrap();
    extra
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    {
        let mut w = extra.try_clone().unwrap();
        let _ = w.write_all(b"{\"op\":\"stats\"}\n");
    }
    let mut line = String::new();
    BufReader::new(&extra).read_line(&mut line).unwrap();
    assert!(
        line.contains("\"ok\":false") && line.contains("overloaded"),
        "expected the overload refusal, got {line:?}"
    );
    drop(extra);
    drop(parked);
    // The held (still-served) connection reads the counter back: the
    // refusal was recorded exactly where the stats and Prometheus
    // expositions surface it.
    let stats = held.stats().unwrap();
    assert_eq!(
        stats["overload_refusals"].as_u64().unwrap(),
        1,
        "one refusal counted: {:?}",
        stats["overload_refusals"]
    );
    let text = held.metrics_text().unwrap();
    assert!(
        text.contains("cqchase_overload_refusals 1"),
        "refusal counter missing from the exposition"
    );
    // Per-lane shard families are in the exposition too (the smoke
    // test greps the same names over the CLI).
    assert!(text.contains("cqchase_lanes_count 2"));
    assert!(text.contains("cqchase_lanes_detail_0_batched_items"));
    assert!(text.contains("cqchase_lanes_detail_1_batched_items"));
    held.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}
