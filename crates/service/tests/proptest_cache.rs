//! Differential property test: the semantic cache never changes an
//! answer.
//!
//! For random query pools (with deliberately many isomorphic
//! duplicates, so the cache actually fires) and random check
//! sequences, the service layer must return the same decision fields
//! three ways: semantic cache **on**, semantic cache **off**, and the
//! plain sequential library call.

use std::sync::Arc;

use cqchase_core::contained;
use cqchase_ir::parse_program;
use cqchase_service::{Batcher, Metrics, Outcome, Session, Work};
use cqchase_workload::{chain_query, cycle_query, star_query};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// Builds a random program over one of three schemas with a pool of
/// shaped queries (names unique, shapes repeat → isomorphism classes
/// repeat).
fn gen_program(rng: &mut TestRng) -> cqchase_ir::Program {
    let schema = match rng.below(3) {
        0 => "relation R(a, b). ind R[2] <= R[1].",
        1 => "relation R(a, b). fd R: a -> b.",
        _ => "relation R(a, b).",
    };
    let mut p = parse_program(schema).expect("schema parses");
    let pool = 3 + rng.below(4) as usize;
    for i in 0..pool {
        let size = 1 + rng.below(3) as usize;
        let q = match rng.below(3) {
            0 => chain_query(&format!("Q{i}"), &p.catalog, "R", size),
            1 => cycle_query(&format!("Q{i}"), &p.catalog, "R", size + 1),
            _ => star_query(&format!("Q{i}"), &p.catalog, "R", size),
        }
        .expect("generated query is well-formed");
        p.queries.push(q);
    }
    p
}

fn decision_fields(o: &Outcome) -> (bool, bool, bool, u32) {
    match o {
        Outcome::Check { summary: Ok(s), .. } => (s.contained, s.exact, s.empty_chase, s.bound),
        other => panic!("expected a successful check outcome, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cache_on_equals_cache_off_equals_library(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let program = gen_program(&mut rng);
        let n = program.queries.len();
        let checks: Vec<(usize, usize)> = (0..16)
            .map(|_| (rng.below(n as u64) as usize, rng.below(n as u64) as usize))
            .collect();

        let cached = Arc::new(
            Session::from_program("on", program.clone(), 64, 64).unwrap(),
        );
        let uncached = Arc::new(
            Session::from_program("off", program.clone(), 0, 64).unwrap(),
        );
        let batcher_on = Batcher::new(1, Arc::new(Metrics::new()));
        let batcher_off = Batcher::new(1, Arc::new(Metrics::new()));

        for &(q, qp) in &checks {
            let on = batcher_on
                .submit(Work::Check {
                    session: Arc::clone(&cached),
                    q,
                    q_prime: qp,
                })
                .expect("cache-on submit succeeds");
            let off = batcher_off
                .submit(Work::Check {
                    session: Arc::clone(&uncached),
                    q,
                    q_prime: qp,
                })
                .expect("cache-off submit succeeds");
            let direct = contained(
                &program.queries[q],
                &program.queries[qp],
                &program.deps,
                &program.catalog,
                &cached.opts,
            )
            .expect("workload pairs decide under default options");
            let on_fields = decision_fields(&on);
            prop_assert_eq!(
                on_fields,
                decision_fields(&off),
                "cache-on vs cache-off diverged on ({}, {}) seed {}",
                q, qp, seed
            );
            prop_assert_eq!(
                on_fields,
                (direct.contained, direct.exact, direct.empty_chase, direct.bound),
                "service vs library diverged on ({}, {}) seed {}",
                q, qp, seed
            );
        }

        // The uncached session must never report cache activity, and the
        // cached one must have fired on repeated isomorphism classes if
        // any check repeated.
        prop_assert_eq!(uncached.sem_cache.lock().unwrap().stats().hits, 0);
        let mut seen = std::collections::HashSet::new();
        let repeats = checks.iter().filter(|c| !seen.insert(**c)).count() as u64;
        let hits = cached.sem_cache.lock().unwrap().stats().hits;
        prop_assert!(
            hits >= repeats,
            "exact repeats ({}) must all hit the semantic cache (hits {})",
            repeats, hits
        );
    }
}
