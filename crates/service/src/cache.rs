//! The semantic result cache: containment answers keyed by the
//! *isomorphism class* of the pair `(Q, Q′)` under a fixed Σ.
//!
//! Containment `Σ ⊨ Q ⊆∞ Q′` is invariant under renaming each query's
//! variables and reordering each query's atoms (the queries' variable
//! scopes are disjoint, so the renamings are independent). A cache
//! keyed by *syntactic* identity would miss every client that spells
//! the same question differently; this one buckets by
//! [`iso_key`](cqchase_core::iso_key) of both sides (plus a Σ
//! fingerprint, so one cache can safely serve several sessions) and
//! confirms candidates with the exact [`is_isomorphic`] test before
//! returning them. A hash collision therefore costs one extra
//! containment run, never a wrong answer — the same
//! bucket-then-verify discipline as
//! [`PlanCache`](cqchase_index::PlanCache).
//!
//! The cache is bounded: beyond `capacity` entries the
//! least-recently-used one is evicted first (a long-running server
//! must not grow without limit). Hit/miss/eviction counts are kept for
//! the `stats` endpoint, and a capacity of 0 disables caching
//! entirely — the differential property tests run cache-on vs
//! cache-off and require bit-identical answers.

use cqchase_core::{is_isomorphic, iso_key};
use cqchase_index::FxHashMap;
use cqchase_ir::{ConjunctiveQuery, DependencySet};

use crate::proto::CheckSummary;

/// Bucket key: Σ fingerprint plus the iso keys of both sides.
type Key = (u64, u64, u64);

#[derive(Debug)]
struct Entry {
    /// Representatives of the isomorphism class (for exact
    /// verification — the key alone is only a hash).
    q: ConjunctiveQuery,
    q_prime: ConjunctiveQuery,
    answer: CheckSummary,
    last_used: u64,
}

/// Counters exposed through the `stats` endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a containment run.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Entries currently held.
    pub entries: usize,
    /// The configured capacity (0 = caching disabled).
    pub capacity: usize,
}

/// A bounded LRU cache of containment answers keyed by isomorphism
/// class. See the module docs for the invariants.
#[derive(Debug)]
pub struct SemanticCache {
    entries: FxHashMap<Key, Vec<Entry>>,
    capacity: usize,
    len: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A stable 64-bit fingerprint of a dependency set: dependencies are
/// hashed in declaration order through their display rendering, which
/// round-trips the surface syntax and is independent of process-local
/// ids beyond the catalog the session owns.
pub fn sigma_fingerprint(sigma: &DependencySet, catalog: &cqchase_ir::Catalog) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = cqchase_index::FxHasher::default();
    for fd in sigma.fds() {
        cqchase_ir::display::fd(fd, catalog)
            .to_string()
            .hash(&mut h);
    }
    h.write_u8(0xFD);
    for ind in sigma.inds() {
        cqchase_ir::display::ind(ind, catalog)
            .to_string()
            .hash(&mut h);
    }
    h.finish()
}

impl SemanticCache {
    /// A cache holding at most `capacity` answers; 0 disables caching
    /// ([`lookup`](SemanticCache::lookup) always misses, `insert` is a
    /// no-op).
    pub fn new(capacity: usize) -> SemanticCache {
        SemanticCache {
            entries: FxHashMap::default(),
            capacity,
            len: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn key(sigma_fp: u64, q: &ConjunctiveQuery, q_prime: &ConjunctiveQuery) -> Key {
        (sigma_fp, iso_key(q), iso_key(q_prime))
    }

    /// Looks up the answer for `(q, q_prime)` under the Σ identified by
    /// `sigma_fp`. A hit requires *both* sides isomorphic to a stored
    /// representative pair.
    pub fn lookup(
        &mut self,
        sigma_fp: u64,
        q: &ConjunctiveQuery,
        q_prime: &ConjunctiveQuery,
    ) -> Option<CheckSummary> {
        if self.capacity == 0 {
            self.misses += 1;
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        let found = self
            .entries
            .get_mut(&Self::key(sigma_fp, q, q_prime))
            .and_then(|bucket| {
                bucket
                    .iter_mut()
                    .find(|e| is_isomorphic(q, &e.q) && is_isomorphic(q_prime, &e.q_prime))
            })
            .map(|e| {
                e.last_used = tick;
                e.answer.clone()
            });
        match &found {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        found
    }

    /// Stores an answer. Skips the insert when an isomorphic pair is
    /// already present (concurrent requests can race to compute the
    /// same class — both got the same answer, one representative
    /// suffices).
    pub fn insert(
        &mut self,
        sigma_fp: u64,
        q: &ConjunctiveQuery,
        q_prime: &ConjunctiveQuery,
        answer: CheckSummary,
    ) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let key = Self::key(sigma_fp, q, q_prime);
        let bucket = self.entries.entry(key).or_default();
        if bucket
            .iter()
            .any(|e| is_isomorphic(q, &e.q) && is_isomorphic(q_prime, &e.q_prime))
        {
            return;
        }
        bucket.push(Entry {
            q: q.clone(),
            q_prime: q_prime.clone(),
            answer,
            last_used: tick,
        });
        self.len += 1;
        if self.len > self.capacity {
            self.evict_lru(key);
        }
    }

    /// Evicts the least-recently-used entry. The entry touched at the
    /// current tick is never the minimum, so the just-inserted answer
    /// always survives.
    fn evict_lru(&mut self, keep: Key) {
        let victim = self
            .entries
            .iter()
            .flat_map(|(k, bucket)| bucket.iter().map(|e| (e.last_used, *k)))
            .min_by_key(|&(tick, _)| tick);
        let Some((victim_tick, key)) = victim else {
            return;
        };
        let bucket = self.entries.get_mut(&key).expect("victim bucket exists");
        let pos = bucket
            .iter()
            .position(|e| e.last_used == victim_tick)
            .expect("victim entry exists");
        bucket.remove(pos);
        if bucket.is_empty() && key != keep {
            self.entries.remove(&key);
        }
        self.len -= 1;
        self.evictions += 1;
    }

    /// Drops every cached answer (pressure shedding / tests). Counters
    /// survive, with the dropped entries counted as evictions, so the
    /// stats stay monotone across a shed.
    pub fn clear(&mut self) -> usize {
        let dropped = self.len;
        self.entries.clear();
        self.evictions += dropped as u64;
        self.len = 0;
        dropped
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.len,
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::parse_program;

    fn summary(contained: bool) -> CheckSummary {
        CheckSummary {
            contained,
            exact: true,
            empty_chase: false,
            class: "Empty".into(),
            bound: 0,
        }
    }

    #[test]
    fn isomorphic_pairs_hit() {
        let p = parse_program(
            "relation R(a, b).
             A(x) :- R(x, y), R(y, x).
             Ar(u) :- R(w, u), R(u, w).
             B(x) :- R(x, y).
             Br(s) :- R(s, t).",
        )
        .unwrap();
        let fp = sigma_fingerprint(&p.deps, &p.catalog);
        let mut cache = SemanticCache::new(16);
        let (a, ar) = (p.query("A").unwrap(), p.query("Ar").unwrap());
        let (b, br) = (p.query("B").unwrap(), p.query("Br").unwrap());
        assert_eq!(cache.lookup(fp, a, b), None);
        cache.insert(fp, a, b, summary(true));
        // The renamed pair is the same isomorphism class.
        assert_eq!(cache.lookup(fp, ar, br), Some(summary(true)));
        // Swapping sides is a different question.
        assert_eq!(cache.lookup(fp, b, a), None);
        // A different Σ fingerprint misses.
        assert_eq!(cache.lookup(fp ^ 1, a, b), None);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 3, 1));
    }

    #[test]
    fn lru_eviction_is_bounded_and_counted() {
        let p = parse_program(
            "relation R(a, b).
             Q0(x) :- R(x, y).
             Q1(x) :- R(y, x).
             Q2(x) :- R(x, x).
             Q3(x, y) :- R(x, y).",
        )
        .unwrap();
        let fp = 7;
        let mut cache = SemanticCache::new(2);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    cache.insert(fp, &p.queries[i], &p.queries[j], summary(i < j));
                }
            }
        }
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 12 - 2);
        // The most recently inserted pair must still be present.
        assert_eq!(
            cache.lookup(fp, &p.queries[3], &p.queries[2]),
            Some(summary(false))
        );
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let p = parse_program("relation R(a). Q(x) :- R(x). P(x) :- R(x).").unwrap();
        let mut cache = SemanticCache::new(0);
        cache.insert(1, &p.queries[0], &p.queries[1], summary(true));
        assert_eq!(cache.lookup(1, &p.queries[0], &p.queries[1]), None);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn sigma_fingerprint_is_order_sensitive_and_stable() {
        let p1 = parse_program("relation R(a, b). fd R: a -> b. ind R[2] <= R[1].").unwrap();
        let p2 = parse_program("relation R(a, b). fd R: a -> b. ind R[2] <= R[1].").unwrap();
        let p3 = parse_program("relation R(a, b). fd R: b -> a. ind R[2] <= R[1].").unwrap();
        assert_eq!(
            sigma_fingerprint(&p1.deps, &p1.catalog),
            sigma_fingerprint(&p2.deps, &p2.catalog)
        );
        assert_ne!(
            sigma_fingerprint(&p1.deps, &p1.catalog),
            sigma_fingerprint(&p3.deps, &p3.catalog)
        );
    }
}
