//! The wire protocol: newline-delimited JSON.
//!
//! Every request and every response is one JSON object on one line
//! (compact serialization never contains interior newlines — the
//! serde_json shim's round-trip property tests enforce that). Requests
//! carry an `"op"` discriminator:
//!
//! ```text
//! {"op":"register","session":"s","program":"relation R(a,b). …"}
//! {"op":"update","session":"s","insert":[["R",[1,2]]],"delete":[["R",[7,8]]]}
//! {"op":"check","session":"s","q":"Q1","q_prime":"Q2"}
//! {"op":"eval","session":"s","query":"Q1"}
//! {"op":"classify","session":"s"}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"persist"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"` (`true`/`false`) and echo `"op"`;
//! failures carry `"error"` with a message. See the README "Service"
//! section for the full field inventory and an example transcript.
//!
//! `update` facts are `[relation, [value, …]]` pairs; integer JSON
//! numbers become integer constants, strings become string constants.

use cqchase_ir::Constant;
use serde_json::{Map, Value};

/// The protocol operations, in stats-table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Create a named session from a program text. Names are unique:
    /// registering an existing name is an error (mutate the live
    /// session with [`Op::Update`] instead of re-registering).
    Register,
    /// Apply fact deltas (inserts/deletes) to a session's live facts.
    Update,
    /// Containment test between two registered queries.
    Check,
    /// Evaluate a registered query over the session's facts.
    Eval,
    /// Report the session's Σ classification.
    Classify,
    /// Server counters, latency histograms, cache metrics, the
    /// mutation fast path's `mutation` block (compactions,
    /// slots/bytes reclaimed, updates coalesced, barrier flushes), and
    /// the `durability` block when a data directory is configured.
    Stats,
    /// The same numbers as [`Op::Stats`], rendered as Prometheus-style
    /// exposition text (carried in the response's `"text"` field so
    /// the one-line JSON framing is preserved).
    Metrics,
    /// Force a snapshot of every registered session to the data
    /// directory (an error when the server runs without one).
    Persist,
    /// Graceful shutdown: stop accepting, drain, exit.
    Shutdown,
    /// Health/readiness probe: uptime, lane count, shedding state,
    /// recovery summary. Never queued, never shed — answered inline
    /// even when the admission lanes are saturated.
    Ping,
}

/// All operations, indexable by `op as usize`.
pub const ALL_OPS: [Op; 10] = [
    Op::Register,
    Op::Update,
    Op::Check,
    Op::Eval,
    Op::Classify,
    Op::Stats,
    Op::Metrics,
    Op::Persist,
    Op::Shutdown,
    Op::Ping,
];

impl Op {
    /// The wire name of the operation.
    pub fn as_str(self) -> &'static str {
        match self {
            Op::Register => "register",
            Op::Update => "update",
            Op::Check => "check",
            Op::Eval => "eval",
            Op::Classify => "classify",
            Op::Stats => "stats",
            Op::Metrics => "metrics",
            Op::Persist => "persist",
            Op::Shutdown => "shutdown",
            Op::Ping => "ping",
        }
    }

    /// Index into per-endpoint metric tables.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `{"op":"register","session":S,"program":P}` — parse `P` (surface
    /// language: relations, dependencies, queries, ground facts) and
    /// build warm session state under the name `S`. Registering a name
    /// that already exists is an `ok:false` error — mutate the existing
    /// session with [`Request::Update`] instead.
    Register {
        /// Session name.
        session: String,
        /// Program text in the surface language.
        program: String,
    },
    /// `{"op":"update","session":S,"insert":[[R,[v,…]],…],"delete":[…]}`
    /// — apply fact deltas to the session's live facts. Deletes run
    /// before inserts; both are idempotent (deleting an absent tuple or
    /// inserting a present one is a counted no-op).
    Update {
        /// Session name.
        session: String,
        /// Facts to insert, as `(relation, constants)` pairs.
        insert: Vec<FactSpec>,
        /// Facts to delete, as `(relation, constants)` pairs.
        delete: Vec<FactSpec>,
        /// Optional per-request deadline in milliseconds, measured from
        /// admission (queue wait counts). Updates are all-or-nothing: a
        /// deadline can only refuse the update before its commit point,
        /// never leave it half-applied.
        deadline_ms: Option<u64>,
    },
    /// `{"op":"check","session":S,"q":Q,"q_prime":QP}` — test
    /// `Σ ⊨ Q ⊆∞ QP` for two queries registered in `S`.
    Check {
        /// Session name.
        session: String,
        /// Name of the contained-side query.
        q: String,
        /// Name of the containing-side query.
        q_prime: String,
        /// Optional per-request deadline in milliseconds, measured from
        /// admission (queue wait counts).
        deadline_ms: Option<u64>,
    },
    /// `{"op":"eval","session":S,"query":Q}` — evaluate `Q` over the
    /// session's ground facts.
    Eval {
        /// Session name.
        session: String,
        /// Name of the query to evaluate.
        query: String,
        /// Optional per-request deadline in milliseconds, measured from
        /// admission (queue wait counts).
        deadline_ms: Option<u64>,
    },
    /// `{"op":"classify","session":S}` — the session's Σ class.
    Classify {
        /// Session name.
        session: String,
    },
    /// `{"op":"stats"}` — server metrics snapshot.
    Stats,
    /// `{"op":"metrics"}` — the stats snapshot as Prometheus-style
    /// text in the response's `"text"` field.
    Metrics,
    /// `{"op":"persist"}` — force a snapshot of every session to the
    /// data directory (requires the server to run with one).
    Persist,
    /// `{"op":"shutdown"}` — graceful shutdown.
    Shutdown,
    /// `{"op":"ping"}` — health/readiness probe, answered inline.
    Ping,
}

/// One ground fact on the wire: relation name plus constant values.
pub type FactSpec = (String, Vec<Constant>);

fn str_field(obj: &Map<String, Value>, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

/// Decodes the optional `deadline_ms` field (absent reads as `None`;
/// present values must be non-negative integers).
fn deadline_field(obj: &Map<String, Value>) -> Result<Option<u64>, String> {
    match obj.get("deadline_ms") {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| "field `deadline_ms` must be a non-negative integer".into()),
    }
}

/// Decodes one `[relation, [value, …]]` fact. Integer JSON numbers map
/// to integer constants, strings to string constants; anything else
/// (floats, booleans, nulls, nesting) is rejected.
fn fact_from_value(v: &Value) -> Result<FactSpec, String> {
    let pair = v
        .as_array()
        .filter(|a| a.len() == 2)
        .ok_or("each fact must be a [relation, [values]] pair")?;
    let rel = pair[0]
        .as_str()
        .ok_or("fact relation must be a string")?
        .to_owned();
    let vals = pair[1].as_array().ok_or("fact values must be an array")?;
    let mut tuple = Vec::with_capacity(vals.len());
    for v in vals {
        if let Some(i) = v.as_i64() {
            tuple.push(Constant::Int(i));
        } else if let Some(s) = v.as_str() {
            tuple.push(Constant::str(s));
        } else {
            return Err(format!("fact value {v} is neither an integer nor a string"));
        }
    }
    Ok((rel, tuple))
}

/// Decodes an optional array-of-facts field (absent reads as empty).
fn facts_field(obj: &Map<String, Value>, key: &str) -> Result<Vec<FactSpec>, String> {
    match obj.get(key) {
        None => Ok(Vec::new()),
        Some(v) => v
            .as_array()
            .ok_or_else(|| format!("field `{key}` must be an array of facts"))?
            .iter()
            .map(fact_from_value)
            .collect(),
    }
}

/// Encodes facts as `[[relation, [value, …]], …]`.
fn facts_to_value(facts: &[FactSpec]) -> Value {
    Value::Array(
        facts
            .iter()
            .map(|(rel, tuple)| {
                let vals: Vec<Value> = tuple
                    .iter()
                    .map(|c| match c {
                        Constant::Int(i) => Value::from(*i),
                        Constant::Str(s) => Value::from(s.as_ref()),
                    })
                    .collect();
                Value::Array(vec![Value::from(rel.as_str()), Value::Array(vals)])
            })
            .collect(),
    )
}

impl Request {
    /// The request's operation.
    pub fn op(&self) -> Op {
        match self {
            Request::Register { .. } => Op::Register,
            Request::Update { .. } => Op::Update,
            Request::Check { .. } => Op::Check,
            Request::Eval { .. } => Op::Eval,
            Request::Classify { .. } => Op::Classify,
            Request::Stats => Op::Stats,
            Request::Metrics => Op::Metrics,
            Request::Persist => Op::Persist,
            Request::Shutdown => Op::Shutdown,
            Request::Ping => Op::Ping,
        }
    }

    /// Parses a request from a decoded JSON value.
    pub fn from_value(v: &Value) -> Result<Request, String> {
        let obj = v.as_object().ok_or("request must be a JSON object")?;
        let op = str_field(obj, "op")?;
        match op.as_str() {
            "register" => Ok(Request::Register {
                session: str_field(obj, "session")?,
                program: str_field(obj, "program")?,
            }),
            "update" => {
                let insert = facts_field(obj, "insert")?;
                let delete = facts_field(obj, "delete")?;
                if insert.is_empty() && delete.is_empty() {
                    return Err("update carries no `insert` or `delete` facts".into());
                }
                Ok(Request::Update {
                    session: str_field(obj, "session")?,
                    insert,
                    delete,
                    deadline_ms: deadline_field(obj)?,
                })
            }
            "check" => Ok(Request::Check {
                session: str_field(obj, "session")?,
                q: str_field(obj, "q")?,
                q_prime: str_field(obj, "q_prime")?,
                deadline_ms: deadline_field(obj)?,
            }),
            "eval" => Ok(Request::Eval {
                session: str_field(obj, "session")?,
                query: str_field(obj, "query")?,
                deadline_ms: deadline_field(obj)?,
            }),
            "classify" => Ok(Request::Classify {
                session: str_field(obj, "session")?,
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "persist" => Ok(Request::Persist),
            "shutdown" => Ok(Request::Shutdown),
            "ping" => Ok(Request::Ping),
            other => Err(format!(
                "unknown op `{other}` (expected \
                 register/update/check/eval/classify/stats/metrics/persist/shutdown/ping)"
            )),
        }
    }

    /// Parses a request from one protocol line.
    pub fn from_line(line: &str) -> Result<Request, String> {
        let v = serde_json::from_str(line).map_err(|e| e.to_string())?;
        Request::from_value(&v)
    }

    /// Serializes the request as a JSON value (the client side).
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("op".into(), Value::from(self.op().as_str()));
        match self {
            Request::Register { session, program } => {
                m.insert("session".into(), Value::from(session.as_str()));
                m.insert("program".into(), Value::from(program.as_str()));
            }
            Request::Update {
                session,
                insert,
                delete,
                deadline_ms,
            } => {
                m.insert("session".into(), Value::from(session.as_str()));
                m.insert("insert".into(), facts_to_value(insert));
                m.insert("delete".into(), facts_to_value(delete));
                if let Some(d) = deadline_ms {
                    m.insert("deadline_ms".into(), Value::from(*d));
                }
            }
            Request::Check {
                session,
                q,
                q_prime,
                deadline_ms,
            } => {
                m.insert("session".into(), Value::from(session.as_str()));
                m.insert("q".into(), Value::from(q.as_str()));
                m.insert("q_prime".into(), Value::from(q_prime.as_str()));
                if let Some(d) = deadline_ms {
                    m.insert("deadline_ms".into(), Value::from(*d));
                }
            }
            Request::Eval {
                session,
                query,
                deadline_ms,
            } => {
                m.insert("session".into(), Value::from(session.as_str()));
                m.insert("query".into(), Value::from(query.as_str()));
                if let Some(d) = deadline_ms {
                    m.insert("deadline_ms".into(), Value::from(*d));
                }
            }
            Request::Classify { session } => {
                m.insert("session".into(), Value::from(session.as_str()));
            }
            Request::Stats
            | Request::Metrics
            | Request::Persist
            | Request::Shutdown
            | Request::Ping => {}
        }
        Value::Object(m)
    }
}

/// A fresh `{"ok":true,"op":…}` response object to extend with fields.
pub fn ok_response(op: Op) -> Map<String, Value> {
    let mut m = Map::new();
    m.insert("ok".into(), Value::from(true));
    m.insert("op".into(), Value::from(op.as_str()));
    m
}

/// An `{"ok":false,"op":…,"error":…}` response.
pub fn error_response(op: Option<Op>, message: &str) -> Value {
    let mut m = Map::new();
    m.insert("ok".into(), Value::from(false));
    if let Some(op) = op {
        m.insert("op".into(), Value::from(op.as_str()));
    }
    m.insert("error".into(), Value::from(message));
    Value::Object(m)
}

/// The answer fields of a containment check, as carried on the wire and
/// stored in the semantic cache.
///
/// These are exactly the *decision* fields of
/// [`ContainmentAnswer`](cqchase_core::ContainmentAnswer) — the fields
/// documented to be identical across the sequential, batch, and
/// parallel engines. Chase-size diagnostics (`levels_explored`,
/// `chase_conjuncts`) are deliberately absent: they describe the
/// possibly-shared chase a particular run happened to build, and the
/// witness homomorphism names variables of one specific isomorphic
/// representative, so neither survives semantic caching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckSummary {
    /// Whether `Σ ⊨ Q ⊆∞ Q′`.
    pub contained: bool,
    /// Whether the answer is certified (see the containment engine).
    pub exact: bool,
    /// Whether the chase failed (vacuous containment).
    pub empty_chase: bool,
    /// Stable rendering of the Σ classification.
    pub class: String,
    /// The Theorem 2 level bound used (0 when not applicable).
    pub bound: u32,
}

impl CheckSummary {
    /// Extends a response object with the summary's fields.
    pub fn write_into(&self, m: &mut Map<String, Value>) {
        m.insert("contained".into(), Value::from(self.contained));
        m.insert("exact".into(), Value::from(self.exact));
        m.insert("empty_chase".into(), Value::from(self.empty_chase));
        m.insert("class".into(), Value::from(self.class.as_str()));
        m.insert("bound".into(), Value::from(self.bound));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Register {
                session: "s".into(),
                program: "relation R(a).\nQ(x) :- R(x).".into(),
            },
            Request::Update {
                session: "s".into(),
                insert: vec![
                    ("R".into(), vec![Constant::Int(1), Constant::Int(-2)]),
                    ("S".into(), vec![Constant::str("x")]),
                ],
                delete: vec![("R".into(), vec![Constant::Int(7), Constant::Int(8)])],
                deadline_ms: Some(250),
            },
            Request::Check {
                session: "s".into(),
                q: "Q1".into(),
                q_prime: "Q2".into(),
                deadline_ms: None,
            },
            Request::Check {
                session: "s".into(),
                q: "Q1".into(),
                q_prime: "Q2".into(),
                deadline_ms: Some(50),
            },
            Request::Eval {
                session: "s".into(),
                query: "Q1".into(),
                deadline_ms: Some(0),
            },
            Request::Classify {
                session: "s".into(),
            },
            Request::Stats,
            Request::Metrics,
            Request::Persist,
            Request::Shutdown,
            Request::Ping,
        ];
        for r in reqs {
            let line = serde_json::to_string(&r.to_value()).unwrap();
            assert!(!line.contains('\n'), "one line per request: {line:?}");
            assert_eq!(Request::from_line(&line).unwrap(), r);
        }
    }

    #[test]
    fn bad_requests_are_rejected() {
        assert!(Request::from_line("not json").is_err());
        assert!(Request::from_line("[1,2]").is_err());
        assert!(Request::from_line(r#"{"op":"frobnicate"}"#).is_err());
        assert!(Request::from_line(r#"{"op":"check","session":"s"}"#).is_err());
        assert!(Request::from_line(r#"{"op":"check","session":3,"q":"a","q_prime":"b"}"#).is_err());
    }

    #[test]
    fn update_requests_validate_facts() {
        // Missing both delta fields.
        assert!(Request::from_line(r#"{"op":"update","session":"s"}"#).is_err());
        // Malformed fact shapes.
        assert!(Request::from_line(r#"{"op":"update","session":"s","insert":["R"]}"#).is_err());
        assert!(
            Request::from_line(r#"{"op":"update","session":"s","insert":[["R",[1.5]]]}"#).is_err()
        );
        assert!(
            Request::from_line(r#"{"op":"update","session":"s","insert":[["R",[true]]]}"#).is_err()
        );
        // Absent `delete` reads as empty.
        let r = Request::from_line(r#"{"op":"update","session":"s","insert":[["R",[1,"a"]]]}"#)
            .unwrap();
        assert_eq!(
            r,
            Request::Update {
                session: "s".into(),
                insert: vec![("R".into(), vec![Constant::Int(1), Constant::str("a")])],
                delete: vec![],
                deadline_ms: None,
            }
        );
    }

    #[test]
    fn deadlines_validate() {
        // Negative and non-integer deadlines are rejected.
        assert!(Request::from_line(
            r#"{"op":"check","session":"s","q":"a","q_prime":"b","deadline_ms":-1}"#
        )
        .is_err());
        assert!(Request::from_line(
            r#"{"op":"eval","session":"s","query":"q","deadline_ms":"soon"}"#
        )
        .is_err());
        // Zero is legal: the request is refused as already expired.
        let r = Request::from_line(r#"{"op":"eval","session":"s","query":"q","deadline_ms":0}"#)
            .unwrap();
        assert_eq!(
            r,
            Request::Eval {
                session: "s".into(),
                query: "q".into(),
                deadline_ms: Some(0),
            }
        );
    }

    #[test]
    fn responses_have_shape() {
        let mut ok = ok_response(Op::Check);
        CheckSummary {
            contained: true,
            exact: true,
            empty_chase: false,
            class: "IndsOnly(width=1)".into(),
            bound: 2,
        }
        .write_into(&mut ok);
        let v = Value::Object(ok);
        assert_eq!(v["ok"], true);
        assert_eq!(v["op"], "check");
        assert_eq!(v["contained"], true);
        let err = error_response(Some(Op::Eval), "no such query");
        assert_eq!(err["ok"], false);
        assert_eq!(err["error"], "no such query");
    }
}
