//! The shared immutable catalog layer: many tenants, one catalog copy.
//!
//! A thousand sessions registered over the same schema used to cost a
//! thousand symbol pools, posting-list indexes, and plan caches. A
//! [`FrozenCatalog`] extends the `SymPool::freeze` idea one level up:
//! it freezes everything a registration builds that is *identical*
//! across sessions with the same program — the parsed [`Program`], Σ's
//! classification and fingerprint, the base facts' [`Database`] +
//! [`DbIndex`] (built exactly once), and one shared compiled-plan
//! cache keyed by catalog identity. Sessions registering the same
//! catalog+Σ+facts **attach** (an `Arc` clone plus an epoch) instead
//! of rebuilding.
//!
//! Identity is the canonical program text ([`catalog_key`]): schema
//! rendered through the same display path durability snapshots use,
//! plus the facts in registration order — so a re-registration after a
//! restart, whose surface text differs from the original source,
//! still lands on the same catalog.
//!
//! **Copy-on-write promotion:** an attached session's facts stay a
//! shared reference until its first effective update; at that point
//! the session promotes — clones the base database + index into
//! private state (and starts a private plan cache, since its symbol
//! pool may now grow past the frozen one) — and the catalog's other
//! tenants never observe a thing. Promotion is counted per catalog
//! ([`FrozenCatalog::promotions`]) and surfaced in `stats.catalogs`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use cqchase_core::{classify, SigmaClass};
use cqchase_index::{FxHashMap, PlanCache};
use cqchase_ir::{display, parse_program, Program};
use cqchase_storage::{Database, DbIndex};

use crate::cache::sigma_fingerprint;
use crate::session::{class_name, Session};

/// The base facts an attached session reads until it promotes: the
/// database and its derived index, built once per distinct catalog.
#[derive(Debug)]
pub struct BaseFacts {
    /// The registered ground facts.
    pub db: Database,
    /// Warm column indexes over `db`.
    pub index: DbIndex,
}

/// Everything a registration builds that is identical across sessions
/// with the same program: parsed program, classification, fingerprint,
/// and (for registry-shared catalogs) the base facts plus one shared
/// compiled-plan cache. Immutable after construction except for the
/// interior-mutable plan cache and the observability counters.
#[derive(Debug)]
pub struct FrozenCatalog {
    /// The parsed program: catalog, Σ, queries, registered facts.
    pub program: Program,
    /// Σ's classification (selects the decision procedure).
    pub class: SigmaClass,
    /// Stable rendering of `class` for the wire.
    pub class_name: String,
    /// Fingerprint of Σ for semantic-cache keys.
    pub sigma_fp: u64,
    /// The shared base facts (`None` for a private, single-session
    /// catalog — those own their facts from birth).
    base: Option<Arc<BaseFacts>>,
    /// The shared compiled-plan cache attached sessions probe while
    /// their facts are still the shared base (`None` iff `base` is).
    plans: Option<Mutex<PlanCache>>,
    /// Sessions that ever attached to this catalog.
    pub attached: AtomicU64,
    /// Attached sessions promoted to private facts by an update.
    pub promotions: AtomicU64,
}

impl FrozenCatalog {
    /// Builds a **private** catalog for one session (the library /
    /// test / bench path): no shared base, no shared plan cache — the
    /// session owns its facts and plans, exactly the pre-sharing
    /// behavior. Returns the catalog plus the owned database + index.
    pub fn private(program: Program) -> Result<(Arc<FrozenCatalog>, Database, DbIndex), String> {
        let db =
            Database::from_facts(&program.catalog, &program.facts).map_err(|e| e.to_string())?;
        let index = DbIndex::build(&db);
        let class = classify(&program.deps, &program.catalog);
        let catalog = Arc::new(FrozenCatalog {
            class_name: class_name(&class),
            sigma_fp: sigma_fingerprint(&program.deps, &program.catalog),
            class,
            base: None,
            plans: None,
            attached: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            program,
        });
        Ok((catalog, db, index))
    }

    /// Builds a **shared** catalog: base facts and index built once,
    /// plus one plan cache every attached session probes until it
    /// promotes.
    pub fn shared(
        program: Program,
        plan_cache_capacity: usize,
    ) -> Result<Arc<FrozenCatalog>, String> {
        let db =
            Database::from_facts(&program.catalog, &program.facts).map_err(|e| e.to_string())?;
        let index = DbIndex::build(&db);
        let class = classify(&program.deps, &program.catalog);
        Ok(Arc::new(FrozenCatalog {
            class_name: class_name(&class),
            sigma_fp: sigma_fingerprint(&program.deps, &program.catalog),
            class,
            base: Some(Arc::new(BaseFacts { db, index })),
            plans: Some(Mutex::new(PlanCache::with_capacity(plan_cache_capacity))),
            attached: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            program,
        }))
    }

    /// The shared base facts (`None` for a private catalog).
    pub fn base(&self) -> Option<&Arc<BaseFacts>> {
        self.base.as_ref()
    }

    /// The shared plan cache (`None` for a private catalog).
    pub fn shared_plans(&self) -> Option<&Mutex<PlanCache>> {
        self.plans.as_ref()
    }

    /// `(hits, misses, evictions, replans, acyclic_served)` of the
    /// shared plan cache (zeros for a private catalog) — one stats
    /// read under one lock acquisition.
    pub fn shared_plan_counters(&self) -> (u64, u64, u64, u64, u64) {
        match &self.plans {
            None => (0, 0, 0, 0, 0),
            Some(m) => {
                let p = m.lock().expect("shared plan cache lock");
                (
                    p.hits() as u64,
                    p.misses() as u64,
                    p.evictions() as u64,
                    p.replans() as u64,
                    p.acyclic_served() as u64,
                )
            }
        }
    }

    /// Approximate resident bytes of the shared base (database +
    /// index), counted once per distinct catalog regardless of how
    /// many sessions attach. Zero for a private catalog (the session
    /// itself owns and reports those bytes).
    pub fn resident_bytes(&self) -> usize {
        self.base
            .as_ref()
            .map(|b| b.db.approx_bytes() + b.index.approx_bytes())
            .unwrap_or(0)
    }
}

/// Renders a program's immutable schema — catalog, Σ, queries, **no**
/// fact lines — as canonical surface text that round-trips through the
/// parser. Shared by durability snapshots and [`catalog_key`], so the
/// two notions of "same schema" can never drift apart.
pub fn program_schema_text(program: &Program) -> String {
    let cat = &program.catalog;
    let mut out = String::new();
    let catalog = display::catalog(cat).to_string();
    if !catalog.is_empty() {
        out.push_str(&catalog);
        out.push('\n');
    }
    let deps = display::deps(&program.deps, cat).to_string();
    if !deps.is_empty() {
        out.push_str(&deps);
        out.push('\n');
    }
    for q in &program.queries {
        let _ = writeln!(out, "{}", display::query(q, cat));
    }
    out
}

/// The catalog identity key: canonical schema text plus the registered
/// facts in registration order (`Debug`-rendered constants, so an
/// integer `1` and a string `"1"` can never collide). Two programs get
/// the same key iff a session over one is interchangeable with a
/// session over the other.
pub fn catalog_key(program: &Program) -> String {
    let mut key = program_schema_text(program);
    key.push_str("#facts\n");
    for (rel, row) in &program.facts {
        let _ = write!(key, "{}(", program.catalog.name(*rel));
        for (i, c) in row.iter().enumerate() {
            if i > 0 {
                key.push(',');
            }
            let _ = write!(key, "{c:?}");
        }
        key.push_str(")\n");
    }
    key
}

/// The server's catalog table: one [`FrozenCatalog`] per distinct
/// [`catalog_key`], refcounted by the `Arc`s handed to attached
/// sessions. Registrations racing to build the same new catalog both
/// build, one wins the insert, and the loser attaches to the winner —
/// never two live copies of one catalog.
#[derive(Debug)]
pub struct CatalogRegistry {
    catalogs: RwLock<FxHashMap<String, Arc<FrozenCatalog>>>,
    plan_cache_capacity: usize,
    /// Catalogs built from scratch (registry misses).
    pub builds: AtomicU64,
    /// Sessions that attached to an already-built catalog.
    pub attaches: AtomicU64,
}

impl CatalogRegistry {
    /// An empty registry whose shared plan caches hold `plan_cache_capacity`
    /// compiled plans each.
    pub fn new(plan_cache_capacity: usize) -> CatalogRegistry {
        CatalogRegistry {
            catalogs: RwLock::new(FxHashMap::default()),
            plan_cache_capacity,
            builds: AtomicU64::new(0),
            attaches: AtomicU64::new(0),
        }
    }

    /// The catalog for `program`: an existing one when the identity key
    /// matches (counted as an attach), freshly built otherwise. The
    /// expensive build runs outside the registry lock; a racing builder
    /// of the same key attaches to whoever inserted first.
    pub fn get_or_build(&self, program: Program) -> Result<Arc<FrozenCatalog>, String> {
        let key = catalog_key(&program);
        if let Some(c) = self
            .catalogs
            .read()
            .expect("catalog registry lock")
            .get(&key)
        {
            self.attaches.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(c));
        }
        let built = FrozenCatalog::shared(program, self.plan_cache_capacity)?;
        let mut map = self.catalogs.write().expect("catalog registry lock");
        use std::collections::hash_map::Entry;
        match map.entry(key) {
            Entry::Occupied(e) => {
                // Lost the build race: attach to the winner, drop ours.
                self.attaches.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::clone(e.get()))
            }
            Entry::Vacant(e) => {
                self.builds.fetch_add(1, Ordering::Relaxed);
                e.insert(Arc::clone(&built));
                Ok(built)
            }
        }
    }

    /// Builds a session attached to the (shared, possibly pre-existing)
    /// catalog for `program_src` — the server's register path.
    pub fn session_from_source(
        &self,
        name: &str,
        program_src: &str,
        sem_cache_capacity: usize,
        plan_cache_capacity: usize,
    ) -> Result<Session, String> {
        let program = parse_program(program_src).map_err(|e| e.to_string())?;
        self.session_from_program(name, program, sem_cache_capacity, plan_cache_capacity)
    }

    /// [`CatalogRegistry::session_from_source`] for an already-parsed
    /// program (the durability recovery path, whose facts arrive in
    /// binary).
    pub fn session_from_program(
        &self,
        name: &str,
        program: Program,
        sem_cache_capacity: usize,
        plan_cache_capacity: usize,
    ) -> Result<Session, String> {
        let catalog = self.get_or_build(program)?;
        Ok(Session::attach(
            name,
            catalog,
            sem_cache_capacity,
            plan_cache_capacity,
        ))
    }

    /// Number of distinct catalogs resident.
    pub fn len(&self) -> usize {
        self.catalogs.read().expect("catalog registry lock").len()
    }

    /// Whether no catalog is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every resident catalog (stats aggregation).
    pub fn snapshot(&self) -> Vec<Arc<FrozenCatalog>> {
        self.catalogs
            .read()
            .expect("catalog registry lock")
            .values()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "relation R(a, b).
         ind R[2] <= R[1].
         Q(x) :- R(x, y).
         R(1, 2). R(2, 3).";

    #[test]
    fn same_program_text_shares_one_catalog() {
        let reg = CatalogRegistry::new(64);
        let s1 = reg.session_from_source("a", SRC, 8, 8).unwrap();
        let s2 = reg.session_from_source("b", SRC, 8, 8).unwrap();
        assert_eq!(reg.len(), 1);
        assert!(Arc::ptr_eq(&s1.catalog, &s2.catalog));
        assert_eq!(reg.builds.load(Ordering::Relaxed), 1);
        assert_eq!(reg.attaches.load(Ordering::Relaxed), 1);
        assert_eq!(s1.catalog.attached.load(Ordering::Relaxed), 2);
        // Both sessions answer over the shared base.
        assert_eq!(s1.eval(0), s2.eval(0));
    }

    #[test]
    fn surface_syntax_differences_do_not_split_catalogs() {
        let reg = CatalogRegistry::new(64);
        // Extra whitespace and comment-free reordering of nothing: the
        // canonical rendering normalizes the text.
        let noisy = "relation R(a,   b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y).
             R(1, 2).   R(2, 3).";
        let s1 = reg.session_from_source("a", SRC, 8, 8).unwrap();
        let s2 = reg.session_from_source("b", noisy, 8, 8).unwrap();
        assert!(Arc::ptr_eq(&s1.catalog, &s2.catalog));
    }

    #[test]
    fn different_facts_or_sigma_split_catalogs() {
        let reg = CatalogRegistry::new(64);
        reg.session_from_source("a", SRC, 8, 8).unwrap();
        reg.session_from_source(
            "b",
            "relation R(a, b). ind R[2] <= R[1]. Q(x) :- R(x, y). R(1, 2).",
            8,
            8,
        )
        .unwrap();
        reg.session_from_source(
            "c",
            "relation R(a, b). Q(x) :- R(x, y). R(1, 2). R(2, 3).",
            8,
            8,
        )
        .unwrap();
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.builds.load(Ordering::Relaxed), 3);
        assert_eq!(reg.attaches.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn int_and_string_facts_never_collide() {
        let p1 = parse_program("relation R(a). Q(x) :- R(x). R(1).").unwrap();
        let p2 = parse_program("relation R(a). Q(x) :- R(x). R(\"1\").").unwrap();
        assert_ne!(catalog_key(&p1), catalog_key(&p2));
    }

    #[test]
    fn update_promotes_copy_on_write_without_touching_the_base() {
        use cqchase_ir::Constant;
        let reg = CatalogRegistry::new(64);
        let s1 = reg.session_from_source("a", SRC, 8, 8).unwrap();
        let s2 = reg.session_from_source("b", SRC, 8, 8).unwrap();
        let before = s2.eval(0);
        let sum = s1
            .apply_update(
                &[("R".into(), vec![Constant::Int(9), Constant::Int(9)])],
                &[],
            )
            .unwrap();
        assert_eq!((sum.inserted, sum.epoch), (1, 1));
        assert_eq!(s1.catalog.promotions.load(Ordering::Relaxed), 1);
        // s1 sees its private facts; s2 still reads the shared base.
        assert_eq!(s1.eval(0).len(), before.len() + 1);
        assert_eq!(s2.eval(0), before);
        assert_eq!(s2.facts_epoch(), 0);
        // A pure no-op update does not promote.
        let s3 = reg.session_from_source("c", SRC, 8, 8).unwrap();
        let sum = s3
            .apply_update(
                &[("R".into(), vec![Constant::Int(1), Constant::Int(2)])],
                &[],
            )
            .unwrap();
        assert_eq!((sum.inserted, sum.deleted, sum.epoch), (0, 0, 0));
        assert_eq!(s1.catalog.promotions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn shared_sessions_cost_a_fraction_of_private_ones() {
        let reg = CatalogRegistry::new(64);
        let mut src = String::from("relation R(a, b). Q(x) :- R(x, y).\n");
        for i in 0..512 {
            src.push_str(&format!("R({i}, {}).\n", i + 1));
        }
        let shared: Vec<Session> = (0..8)
            .map(|i| {
                reg.session_from_source(&format!("s{i}"), &src, 8, 8)
                    .unwrap()
            })
            .collect();
        let private: Vec<Session> = (0..8)
            .map(|i| Session::new(&format!("p{i}"), &src, 8, 8).unwrap())
            .collect();
        let shared_bytes: usize = shared.iter().map(Session::resident_bytes).sum::<usize>()
            + shared[0].catalog.resident_bytes();
        let private_bytes: usize = private.iter().map(Session::resident_bytes).sum();
        assert!(
            shared_bytes * 2 < private_bytes,
            "8 attached sessions ({shared_bytes} B) must cost less than half of 8 \
             private ones ({private_bytes} B)"
        );
    }
}
