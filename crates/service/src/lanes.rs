//! Sharded session lanes: N independent admission queues, session
//! names hashed onto them deterministically.
//!
//! A single admission queue serializes every tenant behind one mutex
//! and one batch leader. A [`LaneSet`] splits the server into `N`
//! [`Batcher`] lanes — each with its own queue, its own self-promoting
//! leader, its own slice of the compute thread pool, and its own
//! [`crate::metrics::LaneShard`] — so a hot tenant's churn contends
//! only with its lane-mates.
//!
//! Routing is [`lane_of`]: a deterministic hash of the session *name*.
//! Determinism is load-bearing twice over:
//!
//! * a session always lands in the same lane, so all its updates flow
//!   through one lane's single leader — the per-session serial-update
//!   contract the durability layer's WAL ordering rests on survives
//!   sharding unchanged;
//! * recovery needs no lane state: after a restart with the same
//!   `--lanes N`, every restored session hashes back into the lane it
//!   lived in.
//!
//! With `N = 1` the set degenerates to exactly today's single queue —
//! same `Batcher`, same counters — which is what keeps the lanes=1
//! differential tests bit-identical.

use cqchase_index::FxHasher;
use std::hash::Hasher;

use crate::batch::Batcher;

/// The lane a session named `name` belongs to, out of `lanes`:
/// a deterministic (FxHash) hash of the name's bytes, stable across
/// processes and restarts. `lanes = 0` is treated as 1.
pub fn lane_of(name: &str, lanes: usize) -> usize {
    if lanes <= 1 {
        return 0;
    }
    let mut h = FxHasher::default();
    h.write(name.as_bytes());
    (h.finish() % lanes as u64) as usize
}

/// N admission lanes. See the module docs.
#[derive(Debug)]
pub struct LaneSet {
    lanes: Vec<Batcher>,
}

impl LaneSet {
    /// Builds `count` lanes (at least 1), each from `make(lane_index)` —
    /// the closure wires per-lane thread budgets, metrics shard
    /// assignment ([`Batcher::with_lane`]), durability, and tracing.
    pub fn new(count: usize, make: impl FnMut(usize) -> Batcher) -> LaneSet {
        LaneSet {
            lanes: (0..count.max(1)).map(make).collect(),
        }
    }

    /// The lane serving session `name`.
    pub fn for_session(&self, name: &str) -> &Batcher {
        &self.lanes[lane_of(name, self.lanes.len())]
    }

    /// The lane at index `i`.
    pub fn get(&self, i: usize) -> &Batcher {
        &self.lanes[i]
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the set is empty (never: `new` builds at least 1 lane).
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use std::sync::Arc;

    #[test]
    fn lane_of_is_deterministic_and_in_range() {
        for lanes in [1usize, 2, 3, 4, 8] {
            for i in 0..64 {
                let name = format!("session-{i}");
                let lane = lane_of(&name, lanes);
                assert!(lane < lanes);
                assert_eq!(lane, lane_of(&name, lanes), "stable on re-hash");
            }
        }
        assert_eq!(lane_of("anything", 1), 0);
        assert_eq!(lane_of("anything", 0), 0, "lanes=0 folds to one lane");
    }

    #[test]
    fn lane_of_spreads_names() {
        // Not a hash-quality test — just: many names must not all pile
        // into one lane.
        let lanes = 4;
        let mut counts = [0usize; 4];
        for i in 0..256 {
            counts[lane_of(&format!("tenant-{i}"), lanes)] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "every lane gets traffic: {counts:?}"
        );
    }

    #[test]
    fn lane_set_routes_by_name_hash() {
        let metrics = Arc::new(Metrics::with_lanes(4));
        let set = LaneSet::new(4, |i| Batcher::new(1, Arc::clone(&metrics)).with_lane(i));
        assert_eq!(set.len(), 4);
        assert!(!set.is_empty());
        for name in ["a", "b", "c", "zebra"] {
            let want = lane_of(name, 4);
            assert!(std::ptr::eq(set.for_session(name), set.get(want)));
        }
        // Zero lanes folds to one.
        let one = LaneSet::new(0, |i| Batcher::new(1, Arc::clone(&metrics)).with_lane(i));
        assert_eq!(one.len(), 1);
    }
}
