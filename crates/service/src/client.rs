//! The client library: a blocking connection speaking the
//! newline-delimited JSON protocol, with typed helpers for every
//! operation. The `cqchase request` CLI subcommand and the load
//! generator (`e15_service`) are both built on this.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use serde_json::Value;

use crate::proto::{FactSpec, Request};

/// Ways a client call can fail.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's line did not parse as JSON.
    Protocol(String),
    /// The server answered `{"ok":false,…}`; carries the message.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to a `cqchase-service` server. Requests are strictly
/// serial per connection (the protocol is request/response in order);
/// open several clients for concurrency.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::with_capacity(4096),
        })
    }

    /// Sends one raw protocol line and returns the raw response line.
    pub fn request_line(&mut self, line: &str) -> Result<String, ClientError> {
        debug_assert!(!line.contains('\n'), "one request per line");
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                return Ok(line);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(ClientError::Protocol(
                        "connection closed before a response arrived".into(),
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Sends a request value; returns the decoded response object
    /// (which may be `{"ok":false,…}` — see [`Client::expect_ok`]).
    pub fn request_value(&mut self, v: &Value) -> Result<Value, ClientError> {
        let line = self.request_line(&v.to_string())?;
        serde_json::from_str(&line).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Sends a typed request.
    pub fn request(&mut self, req: &Request) -> Result<Value, ClientError> {
        self.request_value(&req.to_value())
    }

    /// Turns an `ok:false` response into [`ClientError::Server`].
    pub fn expect_ok(v: Value) -> Result<Value, ClientError> {
        if v["ok"] == true {
            Ok(v)
        } else {
            let msg = v["error"].as_str().unwrap_or("unknown server error");
            Err(ClientError::Server(msg.to_owned()))
        }
    }

    fn checked(&mut self, req: &Request) -> Result<Value, ClientError> {
        let v = self.request(req)?;
        Self::expect_ok(v)
    }

    /// Registers a session from program text. Session names are unique:
    /// registering a taken name is a server error (use
    /// [`Client::update`] to mutate a live session's facts).
    pub fn register(&mut self, session: &str, program: &str) -> Result<Value, ClientError> {
        self.checked(&Request::Register {
            session: session.into(),
            program: program.into(),
        })
    }

    /// Applies fact deltas to a registered session (deletes run before
    /// inserts; both are idempotent).
    pub fn update(
        &mut self,
        session: &str,
        insert: &[FactSpec],
        delete: &[FactSpec],
    ) -> Result<Value, ClientError> {
        self.checked(&Request::Update {
            session: session.into(),
            insert: insert.to_vec(),
            delete: delete.to_vec(),
        })
    }

    /// Tests `Σ ⊨ q ⊆∞ q_prime` between two registered queries.
    pub fn check(&mut self, session: &str, q: &str, q_prime: &str) -> Result<Value, ClientError> {
        self.checked(&Request::Check {
            session: session.into(),
            q: q.into(),
            q_prime: q_prime.into(),
        })
    }

    /// Evaluates a registered query over the session's facts.
    pub fn eval(&mut self, session: &str, query: &str) -> Result<Value, ClientError> {
        self.checked(&Request::Eval {
            session: session.into(),
            query: query.into(),
        })
    }

    /// The session's Σ classification.
    pub fn classify(&mut self, session: &str) -> Result<Value, ClientError> {
        self.checked(&Request::Classify {
            session: session.into(),
        })
    }

    /// Server metrics snapshot.
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.checked(&Request::Stats)
    }

    /// The Prometheus-style metrics exposition (the full response; the
    /// text body is under `"text"` — see [`Client::metrics_text`]).
    pub fn metrics(&mut self) -> Result<Value, ClientError> {
        self.checked(&Request::Metrics)
    }

    /// The Prometheus-style metrics exposition as plain text.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let v = self.metrics()?;
        Ok(v["text"].as_str().unwrap_or_default().to_string())
    }

    /// Forces a snapshot of every session to the server's data
    /// directory (errors when the server runs without one).
    pub fn persist(&mut self) -> Result<Value, ClientError> {
        self.checked(&Request::Persist)
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.checked(&Request::Shutdown)
    }
}
