//! The client library: a blocking connection speaking the
//! newline-delimited JSON protocol, with typed helpers for every
//! operation. The `cqchase request` CLI subcommand and the load
//! generator (`e15_service`) are both built on this.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use serde_json::Value;

use crate::proto::{FactSpec, Request};

/// Ways a client call can fail.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's line did not parse as JSON.
    Protocol(String),
    /// The server answered `{"ok":false,…}`; carries the message.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to a `cqchase-service` server. Requests are strictly
/// serial per connection (the protocol is request/response in order);
/// open several clients for concurrency.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::with_capacity(4096),
        })
    }

    /// Sends one raw protocol line and returns the raw response line.
    pub fn request_line(&mut self, line: &str) -> Result<String, ClientError> {
        debug_assert!(!line.contains('\n'), "one request per line");
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                return Ok(line);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(ClientError::Protocol(
                        "connection closed before a response arrived".into(),
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Sends a request value; returns the decoded response object
    /// (which may be `{"ok":false,…}` — see [`Client::expect_ok`]).
    pub fn request_value(&mut self, v: &Value) -> Result<Value, ClientError> {
        let line = self.request_line(&v.to_string())?;
        serde_json::from_str(&line).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Sends a typed request.
    pub fn request(&mut self, req: &Request) -> Result<Value, ClientError> {
        self.request_value(&req.to_value())
    }

    /// Turns an `ok:false` response into [`ClientError::Server`].
    pub fn expect_ok(v: Value) -> Result<Value, ClientError> {
        if v["ok"] == true {
            Ok(v)
        } else {
            let msg = v["error"].as_str().unwrap_or("unknown server error");
            Err(ClientError::Server(msg.to_owned()))
        }
    }

    fn checked(&mut self, req: &Request) -> Result<Value, ClientError> {
        let v = self.request(req)?;
        Self::expect_ok(v)
    }

    /// Registers a session from program text. Session names are unique:
    /// registering a taken name is a server error (use
    /// [`Client::update`] to mutate a live session's facts).
    pub fn register(&mut self, session: &str, program: &str) -> Result<Value, ClientError> {
        self.checked(&Request::Register {
            session: session.into(),
            program: program.into(),
        })
    }

    /// Applies fact deltas to a registered session (deletes run before
    /// inserts; both are idempotent).
    pub fn update(
        &mut self,
        session: &str,
        insert: &[FactSpec],
        delete: &[FactSpec],
    ) -> Result<Value, ClientError> {
        self.update_deadline(session, insert, delete, None)
    }

    /// [`Client::update`] with an optional per-request deadline. The
    /// deadline is measured from admission on the server (queue wait
    /// counts); a deadline can only refuse the update before its commit
    /// point — an `ok:true` answer means it was fully applied, a
    /// deadline error means it was not applied at all.
    pub fn update_deadline(
        &mut self,
        session: &str,
        insert: &[FactSpec],
        delete: &[FactSpec],
        deadline_ms: Option<u64>,
    ) -> Result<Value, ClientError> {
        self.checked(&Request::Update {
            session: session.into(),
            insert: insert.to_vec(),
            delete: delete.to_vec(),
            deadline_ms,
        })
    }

    /// Tests `Σ ⊨ q ⊆∞ q_prime` between two registered queries.
    pub fn check(&mut self, session: &str, q: &str, q_prime: &str) -> Result<Value, ClientError> {
        self.check_deadline(session, q, q_prime, None)
    }

    /// [`Client::check`] with an optional per-request deadline in
    /// milliseconds (server-side, measured from admission).
    pub fn check_deadline(
        &mut self,
        session: &str,
        q: &str,
        q_prime: &str,
        deadline_ms: Option<u64>,
    ) -> Result<Value, ClientError> {
        self.checked(&Request::Check {
            session: session.into(),
            q: q.into(),
            q_prime: q_prime.into(),
            deadline_ms,
        })
    }

    /// Evaluates a registered query over the session's facts.
    pub fn eval(&mut self, session: &str, query: &str) -> Result<Value, ClientError> {
        self.eval_deadline(session, query, None)
    }

    /// [`Client::eval`] with an optional per-request deadline in
    /// milliseconds (server-side, measured from admission).
    pub fn eval_deadline(
        &mut self,
        session: &str,
        query: &str,
        deadline_ms: Option<u64>,
    ) -> Result<Value, ClientError> {
        self.checked(&Request::Eval {
            session: session.into(),
            query: query.into(),
            deadline_ms,
        })
    }

    /// The session's Σ classification.
    pub fn classify(&mut self, session: &str) -> Result<Value, ClientError> {
        self.checked(&Request::Classify {
            session: session.into(),
        })
    }

    /// Server metrics snapshot.
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.checked(&Request::Stats)
    }

    /// The Prometheus-style metrics exposition (the full response; the
    /// text body is under `"text"` — see [`Client::metrics_text`]).
    pub fn metrics(&mut self) -> Result<Value, ClientError> {
        self.checked(&Request::Metrics)
    }

    /// The Prometheus-style metrics exposition as plain text.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let v = self.metrics()?;
        Ok(v["text"].as_str().unwrap_or_default().to_string())
    }

    /// Forces a snapshot of every session to the server's data
    /// directory (errors when the server runs without one).
    pub fn persist(&mut self) -> Result<Value, ClientError> {
        self.checked(&Request::Persist)
    }

    /// Health/readiness probe: uptime, lane count, shedding state, and
    /// the recovery summary. Answered inline by the server — never
    /// queued behind the admission lanes, never shed — so it stays
    /// responsive while the server is saturated.
    pub fn ping(&mut self) -> Result<Value, ClientError> {
        self.checked(&Request::Ping)
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.checked(&Request::Shutdown)
    }

    /// Sends a typed request under a [`RetryPolicy`]: load-shed
    /// refusals (`ok:false` carrying a `retry_after_ms` hint) are
    /// retried with exponential backoff and jitter, sleeping at least
    /// the server's hint. Every other response — success, hard error,
    /// deadline — returns immediately; transport errors are not
    /// retried (the connection state is unknown).
    pub fn request_with_retry(
        &mut self,
        req: &Request,
        policy: &mut RetryPolicy,
    ) -> Result<Value, ClientError> {
        let mut attempt = 0u32;
        loop {
            let v = self.request(req)?;
            let hint = (v["ok"] != true)
                .then(|| v["retry_after_ms"].as_u64())
                .flatten();
            let Some(hint_ms) = hint else {
                return Self::expect_ok(v);
            };
            if attempt >= policy.max_retries {
                return Self::expect_ok(v);
            }
            std::thread::sleep(policy.backoff(attempt, hint_ms));
            attempt += 1;
        }
    }
}

/// Bounded exponential backoff with jitter for retrying load-shed
/// refusals. The delay for attempt *n* is
/// `max(hint, base · 2ⁿ)` plus up to 50% random jitter, capped at
/// `max_backoff_ms` — the jitter decorrelates a thundering herd of
/// clients all shed at the same instant.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Base delay for the exponential schedule.
    pub base_backoff_ms: u64,
    /// Ceiling on any single delay (applied after jitter).
    pub max_backoff_ms: u64,
    /// xorshift64 state for the jitter (no external RNG dependency).
    rng: u64,
}

impl RetryPolicy {
    /// A policy with the given bounds; `seed` decorrelates the jitter
    /// across client instances (any nonzero value works — 0 is mapped
    /// to a fixed odd constant).
    pub fn new(max_retries: u32, base_backoff_ms: u64, max_backoff_ms: u64, seed: u64) -> Self {
        RetryPolicy {
            max_retries,
            base_backoff_ms,
            max_backoff_ms,
            rng: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64: tiny, seedable, plenty for jitter.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// The sleep before retry number `attempt` (0-based), honoring the
    /// server's `retry_after_ms` hint as a floor.
    pub fn backoff(&mut self, attempt: u32, retry_after_ms: u64) -> std::time::Duration {
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(16))
            .max(retry_after_ms);
        let jitter = self.next_rand() % (exp / 2).max(1);
        std::time::Duration::from_millis(exp.saturating_add(jitter).min(self.max_backoff_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_honors_hint_and_caps() {
        let mut p = RetryPolicy::new(5, 10, 500, 42);
        let d0 = p.backoff(0, 0);
        assert!(d0.as_millis() >= 10 && d0.as_millis() < 500 + 1);
        // The server hint floors the schedule.
        let hinted = p.backoff(0, 200);
        assert!(hinted.as_millis() >= 200);
        // Deep attempts saturate at the cap, jitter included.
        let deep = p.backoff(12, 0);
        assert_eq!(deep.as_millis(), 500);
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_varies_across_seeds() {
        let a = RetryPolicy::new(3, 10, 10_000, 1).backoff(3, 0);
        let b = RetryPolicy::new(3, 10, 10_000, 1).backoff(3, 0);
        let c = RetryPolicy::new(3, 10, 10_000, 2).backoff(3, 0);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seeds decorrelate");
    }
}
