//! The admission/batching queue: concurrent requests coalesce into
//! batches that run through `cqchase-par`'s batch engines.
//!
//! Connection threads do not run containment or evaluation themselves.
//! They [`submit`](Batcher::submit) work and block on a result channel;
//! a submitter that finds no batch in flight becomes the **leader**,
//! drains everything queued, runs it as one batch, and answers every
//! waiter (admission windows form naturally under load: requests
//! arriving while a batch runs ride the next one). Leadership is
//! bounded — after [`MAX_LEADER_ROUNDS`] rounds the leader hands back,
//! and any still-unanswered waiter promotes itself within one poll
//! tick, so no single client is starved and a crashed leader cannot
//! wedge the queue. This shape gives three things a thread-per-request
//! design cannot:
//!
//! * **chase sharing** — checks with the same left query in one batch
//!   reuse one chase (the batch engines' contract);
//! * **coalescing** — identical in-flight requests (same session, same
//!   query indices) run once and fan the answer out;
//! * **bounded compute concurrency** — one batch runs at a time, on
//!   [`check_batch`](cqchase_par::check_batch)'s worker threads, no
//!   matter how many connections are open.
//!
//! The semantic cache is consulted *before* enqueueing (a hit never
//! touches the queue) and filled by the leader after computing, so
//! every isomorphism class is computed at most once per cache
//! residency.

use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};

use cqchase_core::ContainmentPair;
use cqchase_index::FxHashMap;
use cqchase_par::BatchOptions;
use cqchase_storage::Tuple;
use serde_json::Value;

use crate::metrics::Metrics;
use crate::proto::CheckSummary;
use crate::session::Session;

/// One unit of submitted work.
#[derive(Debug, Clone)]
pub enum Work {
    /// `Σ ⊨ queries[q] ⊆∞ queries[q_prime]` in `session`.
    Check {
        /// The session the queries are registered in.
        session: Arc<Session>,
        /// Contained-side query index.
        q: usize,
        /// Containing-side query index.
        q_prime: usize,
    },
    /// Evaluate `queries[q]` over `session`'s facts.
    Eval {
        /// The session the query is registered in.
        session: Arc<Session>,
        /// Query index.
        q: usize,
    },
    /// Apply fact deltas to `session`'s live facts.
    ///
    /// Updates are **epoch barriers** in the queue: within one drained
    /// batch, everything submitted before the update runs (and answers)
    /// against the old facts, then the update applies under the facts
    /// write lock, then the remainder runs against the new facts. An
    /// update never executes concurrently with batch compute.
    Update {
        /// The session whose facts change.
        session: Arc<Session>,
        /// Facts to insert.
        insert: Vec<crate::proto::FactSpec>,
        /// Facts to delete (applied before the inserts).
        delete: Vec<crate::proto::FactSpec>,
    },
}

/// The answer to one unit of work.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A containment answer (or a per-pair engine error).
    Check {
        /// The decision fields, or the engine error message.
        summary: Result<CheckSummary, String>,
        /// Answered from the semantic cache without computing.
        cached: bool,
        /// Answered by riding an identical in-flight request.
        coalesced: bool,
    },
    /// Evaluation rows (sorted, deterministic).
    Eval {
        /// The result tuples.
        rows: Vec<Tuple>,
        /// Served from the session's epoch-tagged result cache.
        cached: bool,
        /// Answered by riding an identical in-flight request.
        coalesced: bool,
    },
    /// What an update did (or the validation error message).
    Update(Result<crate::session::UpdateSummary, String>),
}

struct Pending {
    work: Work,
    tx: Sender<Outcome>,
}

#[derive(Default)]
struct QueueState {
    pending: Vec<Pending>,
    leader_running: bool,
}

/// How long a waiter sleeps before re-checking whether it should
/// promote itself to leader (the normal wake-up is its result arriving,
/// which is immediate).
const LEADER_POLL: std::time::Duration = std::time::Duration::from_millis(50);

/// Drain rounds one leader runs before handing leadership back, so a
/// leader's own client is not starved by other clients refilling the
/// queue indefinitely.
const MAX_LEADER_ROUNDS: usize = 8;

/// Unwinding safety for the leader: if `run_batch` panics (an engine
/// invariant violated), the armed guard releases leadership and drops
/// every still-queued sender, so waiters observe a disconnect and fail
/// their one request instead of hanging forever — the queue stays
/// usable for every subsequent request.
struct LeaderGuard<'a> {
    state: &'a Mutex<QueueState>,
    armed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Never panic in a Drop that can run during unwinding: recover
        // the state even from a poisoned lock.
        let orphans = {
            let mut state = self
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.leader_running = false;
            std::mem::take(&mut state.pending)
        };
        // Dropping the senders disconnects the waiters' channels.
        drop(orphans);
    }
}

/// The admission queue. One per server; see the module docs.
pub struct Batcher {
    state: Mutex<QueueState>,
    threads: usize,
    metrics: Arc<Metrics>,
}

impl std::fmt::Debug for Batcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Batcher {
    /// A queue whose batches run on `threads` worker threads.
    pub fn new(threads: usize, metrics: Arc<Metrics>) -> Batcher {
        Batcher {
            state: Mutex::new(QueueState::default()),
            threads: threads.max(1),
            metrics,
        }
    }

    /// Submits one unit of work and blocks until its outcome is ready.
    ///
    /// Checks are first tried against the session's semantic cache; a
    /// hit returns immediately. Otherwise the work is enqueued and the
    /// calling thread alternates between waiting for a leader to answer
    /// it and — whenever no leader is running — taking leadership
    /// itself. Leadership is bounded to [`MAX_LEADER_ROUNDS`] drain
    /// rounds, then handed back (a waiter promotes itself within one
    /// poll tick), so one leader's client is never starved by a
    /// sustained stream of other clients' requests. Returns `Err` only
    /// if a leader panicked while holding this item (the engine's
    /// invariants were violated); the queue itself recovers — see
    /// [`LeaderGuard`].
    pub fn submit(&self, work: Work) -> Result<Outcome, String> {
        if let Work::Check {
            session,
            q,
            q_prime,
        } = &work
        {
            let hit = {
                let mut cache = session.sem_cache.lock().expect("semantic cache lock");
                cache.lookup(session.sigma_fp, session.query(*q), session.query(*q_prime))
            };
            if let Some(summary) = hit {
                return Ok(Outcome::Check {
                    summary: Ok(summary),
                    cached: true,
                    coalesced: false,
                });
            }
        }

        let (tx, rx) = channel();
        {
            let mut state = self.state.lock().expect("queue lock");
            state.pending.push(Pending { work, tx });
        }
        loop {
            let lead = {
                let mut state = self.state.lock().expect("queue lock");
                if !state.leader_running && !state.pending.is_empty() {
                    state.leader_running = true;
                    true
                } else {
                    false
                }
            };
            if lead {
                self.drain();
            }
            match rx.recv_timeout(LEADER_POLL) {
                Ok(outcome) => return Ok(outcome),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(
                        "internal error: the batch leader failed while holding this \
                         request; please retry"
                            .into(),
                    )
                }
            }
        }
    }

    /// Leads for up to [`MAX_LEADER_ROUNDS`] drain rounds, then
    /// releases leadership (leftover work is picked up by a waiting
    /// submitter's next poll tick or the next fresh submit).
    fn drain(&self) {
        let mut guard = LeaderGuard {
            state: &self.state,
            armed: true,
        };
        for _ in 0..MAX_LEADER_ROUNDS {
            let batch = {
                let mut state = self.state.lock().expect("queue lock");
                if state.pending.is_empty() {
                    break;
                }
                std::mem::take(&mut state.pending)
            };
            self.run_batch(batch);
        }
        let mut state = self.state.lock().expect("queue lock");
        state.leader_running = false;
        guard.armed = false;
    }

    /// Runs one drained batch, honoring update barriers: items are
    /// processed in arrival order as maximal update-free **segments**;
    /// each update flushes the segment before it, applies under the
    /// facts write lock, and everything after it sees the new epoch.
    fn run_batch(&self, batch: Vec<Pending>) {
        use std::sync::atomic::Ordering;
        self.metrics.batches.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .batched_items
            .fetch_add(batch.len() as u64, Ordering::Relaxed);

        let mut segment: Vec<Pending> = Vec::new();
        for p in batch {
            if let Work::Update {
                session,
                insert,
                delete,
            } = p.work
            {
                self.run_segment(std::mem::take(&mut segment));
                let result = session.apply_update(&insert, &delete);
                let _ = p.tx.send(Outcome::Update(result));
            } else {
                segment.push(p);
            }
        }
        self.run_segment(segment);
    }

    /// Runs one update-free segment: group per session, coalesce
    /// identical items, run the batch engines, fan answers out.
    fn run_segment(&self, batch: Vec<Pending>) {
        if batch.is_empty() {
            return;
        }
        // Group by (session identity, kind), preserving arrival order.
        struct Group {
            session: Arc<Session>,
            checks: Vec<(usize, usize, Sender<Outcome>)>,
            evals: Vec<(usize, Sender<Outcome>)>,
        }
        let mut groups: Vec<Group> = Vec::new();
        for p in batch {
            let session = match &p.work {
                Work::Check { session, .. } | Work::Eval { session, .. } => Arc::clone(session),
                Work::Update { .. } => unreachable!("updates are barriers, not segment items"),
            };
            let slot = match groups
                .iter_mut()
                .find(|g| Arc::ptr_eq(&g.session, &session))
            {
                Some(g) => g,
                None => {
                    groups.push(Group {
                        session,
                        checks: Vec::new(),
                        evals: Vec::new(),
                    });
                    groups.last_mut().expect("just pushed")
                }
            };
            match p.work {
                Work::Check { q, q_prime, .. } => slot.checks.push((q, q_prime, p.tx)),
                Work::Eval { q, .. } => slot.evals.push((q, p.tx)),
                Work::Update { .. } => unreachable!("updates are barriers, not segment items"),
            }
        }

        for group in groups {
            self.run_checks(&group.session, group.checks);
            self.run_evals(&group.session, group.evals);
        }
    }

    fn run_checks(&self, session: &Session, checks: Vec<(usize, usize, Sender<Outcome>)>) {
        use std::sync::atomic::Ordering;
        if checks.is_empty() {
            return;
        }
        // Coalesce identical pairs: one computation, many answers.
        let mut unique: Vec<ContainmentPair> = Vec::new();
        let mut waiters: FxHashMap<(usize, usize), Vec<Sender<Outcome>>> = FxHashMap::default();
        for (q, q_prime, tx) in checks {
            let entry = waiters.entry((q, q_prime)).or_default();
            if entry.is_empty() {
                unique.push(ContainmentPair { q, q_prime });
            } else {
                self.metrics.coalesced_items.fetch_add(1, Ordering::Relaxed);
            }
            entry.push(tx);
        }

        let answers = cqchase_par::check_batch(
            &session.program.queries,
            &unique,
            &session.program.deps,
            &session.program.catalog,
            &session.opts,
            BatchOptions::with_threads(self.threads),
        );

        for (pair, answer) in unique.iter().zip(answers) {
            let summary = match answer {
                Ok(a) => {
                    let s = CheckSummary {
                        contained: a.contained,
                        exact: a.exact,
                        empty_chase: a.empty_chase,
                        class: session.class_name.clone(),
                        bound: a.bound,
                    };
                    let mut cache = session.sem_cache.lock().expect("semantic cache lock");
                    cache.insert(
                        session.sigma_fp,
                        session.query(pair.q),
                        session.query(pair.q_prime),
                        s.clone(),
                    );
                    Ok(s)
                }
                Err(e) => Err(e.to_string()),
            };
            let txs = waiters
                .remove(&(pair.q, pair.q_prime))
                .expect("every unique pair has waiters");
            for (i, tx) in txs.into_iter().enumerate() {
                // A waiter that hung up (connection died) is not an
                // error worth surfacing.
                let _ = tx.send(Outcome::Check {
                    summary: summary.clone(),
                    cached: false,
                    coalesced: i > 0,
                });
            }
        }
    }

    fn run_evals(&self, session: &Session, evals: Vec<(usize, Sender<Outcome>)>) {
        use std::sync::atomic::Ordering;
        if evals.is_empty() {
            return;
        }
        let mut waiters: FxHashMap<usize, Vec<Sender<Outcome>>> = FxHashMap::default();
        let mut unique: Vec<usize> = Vec::new();
        for (q, tx) in evals {
            let entry = waiters.entry(q).or_default();
            if entry.is_empty() {
                unique.push(q);
            } else {
                self.metrics.coalesced_items.fetch_add(1, Ordering::Relaxed);
            }
            entry.push(tx);
        }
        for q in unique {
            let (rows, cached) = session.eval_cached(q);
            let txs = waiters.remove(&q).expect("every unique query has waiters");
            for (i, tx) in txs.into_iter().enumerate() {
                let _ = tx.send(Outcome::Eval {
                    rows: rows.clone(),
                    cached,
                    coalesced: i > 0,
                });
            }
        }
    }
}

/// Renders evaluation rows for the wire: each row an array of rendered
/// values (constants print as themselves, labelled nulls as `⊥n`).
pub fn rows_to_value(rows: &[Tuple]) -> Value {
    Value::Array(
        rows.iter()
            .map(|row| Value::Array(row.iter().map(|v| Value::from(v.to_string())).collect()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_session() -> Arc<Session> {
        Arc::new(
            Session::new(
                "t",
                "relation R(a, b).
                 ind R[2] <= R[1].
                 A(x) :- R(x, y).
                 B(x) :- R(x, y), R(y, z).
                 Biso(u) :- R(u, w), R(w, v).
                 C(x) :- R(y, x).
                 R(1, 2). R(2, 3).",
                64,
                64,
            )
            .unwrap(),
        )
    }

    #[test]
    fn single_submit_matches_direct_engine() {
        let s = test_session();
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(1, Arc::clone(&metrics));
        let out = batcher
            .submit(Work::Check {
                session: Arc::clone(&s),
                q: 0,
                q_prime: 1,
            })
            .unwrap();
        let direct = cqchase_core::contained(
            s.query(0),
            s.query(1),
            &s.program.deps,
            &s.program.catalog,
            &s.opts,
        )
        .unwrap();
        match out {
            Outcome::Check {
                summary: Ok(sum),
                cached,
                coalesced,
            } => {
                assert_eq!(sum.contained, direct.contained);
                assert_eq!(sum.exact, direct.exact);
                assert_eq!(sum.bound, direct.bound);
                assert!(!cached && !coalesced);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn semantic_cache_answers_isomorphic_repeat() {
        let s = test_session();
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(1, Arc::clone(&metrics));
        let first = batcher
            .submit(Work::Check {
                session: Arc::clone(&s),
                q: 0,
                q_prime: 1, // A ⊆ B
            })
            .unwrap();
        // Biso (index 2) is isomorphic to B: must be a cache hit.
        let second = batcher
            .submit(Work::Check {
                session: Arc::clone(&s),
                q: 0,
                q_prime: 2,
            })
            .unwrap();
        let (
            Outcome::Check {
                summary: Ok(a),
                cached: c1,
                ..
            },
            Outcome::Check {
                summary: Ok(b),
                cached: c2,
                ..
            },
        ) = (first, second)
        else {
            panic!("expected check outcomes");
        };
        assert!(!c1);
        assert!(c2, "isomorphic repeat must hit the semantic cache");
        assert_eq!(a, b);
        assert_eq!(s.sem_cache.lock().unwrap().stats().hits, 1);
    }

    #[test]
    fn eval_and_rendering() {
        let s = test_session();
        let batcher = Batcher::new(1, Arc::new(Metrics::new()));
        let out = batcher
            .submit(Work::Eval {
                session: Arc::clone(&s),
                q: 0,
            })
            .unwrap();
        let Outcome::Eval {
            rows, coalesced, ..
        } = out
        else {
            panic!("expected eval outcome");
        };
        assert!(!coalesced);
        let direct = {
            let facts = s.facts.read().unwrap();
            cqchase_storage::evaluate(s.query(0), &facts.db)
        };
        assert_eq!(rows, direct);
        let rendered = rows_to_value(&rows);
        assert_eq!(rendered[0][0], "1");
    }

    #[test]
    fn update_is_an_epoch_barrier_and_invalidates_eval_rows() {
        use cqchase_ir::Constant;
        let s = test_session();
        let batcher = Batcher::new(1, Arc::new(Metrics::new()));
        let eval = |batcher: &Batcher| match batcher
            .submit(Work::Eval {
                session: Arc::clone(&s),
                q: 0,
            })
            .unwrap()
        {
            Outcome::Eval { rows, cached, .. } => (rows.len(), cached),
            other => panic!("unexpected outcome {other:?}"),
        };
        assert_eq!(eval(&batcher), (2, false));
        assert_eq!(eval(&batcher), (2, true), "second eval rides the row cache");
        let out = batcher
            .submit(Work::Update {
                session: Arc::clone(&s),
                insert: vec![("R".into(), vec![Constant::Int(8), Constant::Int(9)])],
                delete: vec![("R".into(), vec![Constant::Int(1), Constant::Int(2)])],
            })
            .unwrap();
        let Outcome::Update(Ok(sum)) = out else {
            panic!("expected update outcome, got {out:?}");
        };
        assert_eq!((sum.inserted, sum.deleted, sum.epoch), (1, 1, 1));
        // Post-barrier eval sees the new facts, uncached.
        assert_eq!(eval(&batcher), (2, false));
        let rows = match batcher
            .submit(Work::Eval {
                session: Arc::clone(&s),
                q: 0,
            })
            .unwrap()
        {
            Outcome::Eval { rows, .. } => rows,
            other => panic!("unexpected outcome {other:?}"),
        };
        let direct = {
            let facts = s.facts.read().unwrap();
            cqchase_storage::evaluate(s.query(0), &facts.db)
        };
        assert_eq!(rows, direct);
        // A bad update reports its error without wedging the queue.
        let out = batcher
            .submit(Work::Update {
                session: Arc::clone(&s),
                insert: vec![("NOPE".into(), vec![Constant::Int(1)])],
                delete: vec![],
            })
            .unwrap();
        assert!(matches!(out, Outcome::Update(Err(_))));
        assert_eq!(eval(&batcher), (2, true));
    }

    #[test]
    fn concurrent_submits_coalesce_and_agree() {
        let s = test_session();
        let metrics = Arc::new(Metrics::new());
        let batcher = Arc::new(Batcher::new(2, Arc::clone(&metrics)));
        let mut handles = Vec::new();
        for i in 0..8usize {
            let batcher = Arc::clone(&batcher);
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                // Everyone asks (A ⊆ B) or (B ⊆ A) — at most 2 unique
                // computations regardless of thread count.
                let (q, qp) = if i % 2 == 0 { (0, 1) } else { (1, 0) };
                batcher
                    .submit(Work::Check {
                        session: s,
                        q,
                        q_prime: qp,
                    })
                    .unwrap()
            }));
        }
        let outcomes: Vec<Outcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, o) in outcomes.iter().enumerate() {
            let Outcome::Check {
                summary: Ok(sum), ..
            } = o
            else {
                panic!("outcome {i} errored: {o:?}");
            };
            // A ⊆ B and B ⊆ A both hold under the cyclic IND.
            assert!(sum.contained, "outcome {i}");
        }
        use std::sync::atomic::Ordering;
        let computed = 8
            - metrics.coalesced_items.load(Ordering::Relaxed)
            - s.sem_cache.lock().unwrap().stats().hits;
        assert!(
            computed >= 2,
            "both distinct questions must actually compute"
        );
    }

    #[test]
    fn queue_recovers_after_leader_panic() {
        let s = test_session();
        let batcher = Arc::new(Batcher::new(1, Arc::new(Metrics::new())));
        let (b2, s2) = (Arc::clone(&batcher), Arc::clone(&s));
        let poisoned = std::thread::spawn(move || {
            // Out-of-range query index: the leader panics inside
            // run_batch while holding leadership.
            let _ = b2.submit(Work::Eval {
                session: s2,
                q: 999,
            });
        });
        assert!(
            poisoned.join().is_err(),
            "the poison submitter's own thread panics"
        );
        // The LeaderGuard must have released leadership: fresh work is
        // served normally instead of hanging forever.
        let out = batcher
            .submit(Work::Check {
                session: Arc::clone(&s),
                q: 0,
                q_prime: 1,
            })
            .unwrap();
        assert!(matches!(out, Outcome::Check { summary: Ok(_), .. }));
    }
}
