//! The admission/batching queue: concurrent requests coalesce into
//! batches that run through `cqchase-par`'s batch engines.
//!
//! Connection threads do not run containment or evaluation themselves.
//! They [`submit`](Batcher::submit) work and block on a result channel;
//! a submitter that finds no batch in flight becomes the **leader**,
//! drains everything queued, runs it as one batch, and answers every
//! waiter (admission windows form naturally under load: requests
//! arriving while a batch runs ride the next one). Leadership is
//! bounded — after [`MAX_LEADER_ROUNDS`] rounds the leader hands back,
//! and any still-unanswered waiter promotes itself within one poll
//! tick, so no single client is starved and a crashed leader cannot
//! wedge the queue. This shape gives three things a thread-per-request
//! design cannot:
//!
//! * **chase sharing** — checks with the same left query in one batch
//!   reuse one chase (the batch engines' contract);
//! * **coalescing** — identical in-flight requests (same session, same
//!   query indices) run once and fan the answer out;
//! * **bounded compute concurrency** — one batch runs at a time, on
//!   [`check_batch`](cqchase_par::check_batch)'s worker threads, no
//!   matter how many connections are open.
//!
//! The semantic cache is consulted *before* enqueueing (a hit never
//! touches the queue) and filled by the leader after computing, so
//! every isomorphism class is computed at most once per cache
//! residency.
//!
//! Updates are **per-session barriers** ([`BarrierMode::PerSession`]):
//! a drained batch is partitioned into per-session lanes, an update
//! only fences work on its own session, and adjacent same-session
//! updates coalesce into one write-lock acquisition — see
//! [`Work::Update`].

use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cqchase_core::{ContainmentEngineError, ContainmentPair};
use cqchase_index::{CancelToken, FxHashMap};
use cqchase_obs::{SpanKind, Tracer};
use cqchase_par::BatchOptions;
use cqchase_storage::Tuple;
use serde_json::Value;

use crate::durable::Durability;
use crate::metrics::Metrics;
use crate::proto::CheckSummary;
use crate::session::Session;

/// Per-request join annotations parked by the batch layer for the
/// slow-query logger, keyed by trace id. The connection handler removes
/// its request's entry after every traced request (slow or not), so
/// residency is bounded by in-flight traced requests.
pub type TraceAnnotations = Mutex<FxHashMap<u64, Value>>;

/// One unit of submitted work.
#[derive(Debug, Clone)]
pub enum Work {
    /// `Σ ⊨ queries[q] ⊆∞ queries[q_prime]` in `session`.
    Check {
        /// The session the queries are registered in.
        session: Arc<Session>,
        /// Contained-side query index.
        q: usize,
        /// Containing-side query index.
        q_prime: usize,
    },
    /// Evaluate `queries[q]` over `session`'s facts.
    Eval {
        /// The session the query is registered in.
        session: Arc<Session>,
        /// Query index.
        q: usize,
    },
    /// Apply fact deltas to `session`'s live facts.
    ///
    /// Updates are **per-session epoch barriers** in the queue: within
    /// one drained batch, same-session work submitted before the update
    /// runs (and answers) against the old facts, then the update
    /// applies under the facts write lock, then the same-session
    /// remainder runs against the new facts. Work on *other* sessions
    /// (distinct `Arc<Session>` identities) is unaffected — cross-
    /// session ordering is unobservable, so an update to session A
    /// never splits session B's segment. Adjacent same-session updates
    /// in one drained batch **coalesce** into a single write-lock
    /// acquisition and one epoch bump
    /// ([`Session::apply_updates`]), each waiter still receiving its
    /// own per-delta summary. An update never executes concurrently
    /// with batch compute.
    Update {
        /// The session whose facts change.
        session: Arc<Session>,
        /// Facts to insert.
        insert: Vec<crate::proto::FactSpec>,
        /// Facts to delete (applied before the inserts).
        delete: Vec<crate::proto::FactSpec>,
    },
}

/// The answer to one unit of work.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A containment answer (or a per-pair engine error).
    Check {
        /// The decision fields, or the engine error message.
        summary: Result<CheckSummary, String>,
        /// Answered from the semantic cache without computing.
        cached: bool,
        /// Answered by riding an identical in-flight request.
        coalesced: bool,
    },
    /// Evaluation rows (sorted, deterministic).
    Eval {
        /// The result tuples.
        rows: Vec<Tuple>,
        /// Served from the session's epoch-tagged result cache.
        cached: bool,
        /// Answered by riding an identical in-flight request.
        coalesced: bool,
    },
    /// What an update did (or the validation error message).
    Update(Result<crate::session::UpdateSummary, String>),
    /// The work was cancelled instead of answered: refused already
    /// expired at leader pickup, cancelled mid-run by deadline expiry,
    /// or abandoned because its client disconnected. Updates are only
    /// ever cancelled *before* their commit point (validation +
    /// WAL fsync), so a cancelled update left the session bit-identical
    /// to never having submitted it.
    Cancelled {
        /// `true` when the client disconnected; `false` for deadline
        /// expiry.
        disconnect: bool,
        /// Human-readable partial-progress detail (e.g. the chase level
        /// a cancelled check had explored).
        detail: String,
    },
}

struct Pending {
    work: Work,
    tx: Sender<Outcome>,
    /// The submitting request's trace id (0 = untraced).
    trace_id: u64,
    /// Enqueue instant, for the always-on queue-wait metric.
    enqueued: Instant,
    /// Enqueue time on the tracer's clock (0 when untraced).
    enqueued_us: u64,
    /// The request's cancellation token (unlimited when the request
    /// carried no deadline and no disconnect watcher). Armed *before*
    /// admission, so queue wait counts against the deadline; a token
    /// found fired at leader pickup refuses the work without running
    /// it.
    cancel: CancelToken,
}

#[derive(Default)]
struct QueueState {
    pending: Vec<Pending>,
    leader_running: bool,
}

/// How long a waiter sleeps before re-checking whether it should
/// promote itself to leader (the normal wake-up is its result arriving,
/// which is immediate).
const LEADER_POLL: std::time::Duration = std::time::Duration::from_millis(50);

/// Drain rounds one leader runs before handing leadership back, so a
/// leader's own client is not starved by other clients refilling the
/// queue indefinitely.
const MAX_LEADER_ROUNDS: usize = 8;

/// Unwinding safety for the leader: if `run_batch` panics (an engine
/// invariant violated), the armed guard releases leadership and drops
/// every still-queued sender, so waiters observe a disconnect and fail
/// their one request instead of hanging forever — the queue stays
/// usable for every subsequent request.
struct LeaderGuard<'a> {
    state: &'a Mutex<QueueState>,
    metrics: &'a Metrics,
    lane: usize,
    armed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Never panic in a Drop that can run during unwinding: recover
        // the state even from a poisoned lock.
        let orphans = {
            let mut state = self
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.leader_running = false;
            std::mem::take(&mut state.pending)
        };
        // The orphans leave the queue without a leader pickup: keep the
        // lane's depth gauge honest before dropping their senders
        // (which disconnects the waiters' channels).
        self.metrics
            .lane(self.lane)
            .queue_depth
            .fetch_sub(orphans.len() as u64, std::sync::atomic::Ordering::Relaxed);
        drop(orphans);
    }
}

/// How update barriers scope within one drained batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BarrierMode {
    /// Updates are barriers only for work on the **same session**
    /// (`Arc::ptr_eq` identity); other sessions' work batches through
    /// unsplit, and adjacent same-session updates coalesce into one
    /// write-lock acquisition and one epoch bump. The production mode.
    #[default]
    PerSession,
    /// Updates are barriers for **everything** in flight, applied one
    /// at a time (the pre-relaxation semantics). Kept as the reference
    /// side of the differential proptests and the churn benchmark —
    /// observably equivalent to [`BarrierMode::PerSession`] except for
    /// raw epoch counters, just slower.
    Global,
}

/// The admission queue. One per lane (a single-lane server has exactly
/// one); see the module docs and [`crate::lanes`].
pub struct Batcher {
    state: Mutex<QueueState>,
    threads: usize,
    metrics: Arc<Metrics>,
    /// Which metrics lane shard this queue feeds (0 for a standalone
    /// queue). Batching counters are recorded twice: once in the
    /// global aggregates, once in this lane's shard.
    lane: usize,
    barrier_mode: BarrierMode,
    /// When set, update batches route through the durability layer —
    /// logged and fsync'd before applying, so no summary is reported
    /// for a change a restart would forget.
    durability: Option<Arc<Durability>>,
    /// The span recorder; disabled by default (a private one-slot
    /// tracer), replaced by the server's via [`Batcher::with_tracing`].
    tracer: Arc<Tracer>,
    /// Join annotations parked for the slow-query logger.
    annotations: Arc<TraceAnnotations>,
}

impl std::fmt::Debug for Batcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher")
            .field("threads", &self.threads)
            .field("lane", &self.lane)
            .field("barrier_mode", &self.barrier_mode)
            .field("durable", &self.durability.is_some())
            .finish()
    }
}

impl Batcher {
    /// A queue whose batches run on `threads` worker threads, with
    /// per-session update barriers.
    pub fn new(threads: usize, metrics: Arc<Metrics>) -> Batcher {
        Batcher::with_barrier_mode(threads, metrics, BarrierMode::PerSession)
    }

    /// A queue with an explicit [`BarrierMode`] (differential tests and
    /// the churn benchmark compare the two modes).
    pub fn with_barrier_mode(
        threads: usize,
        metrics: Arc<Metrics>,
        barrier_mode: BarrierMode,
    ) -> Batcher {
        Batcher {
            state: Mutex::new(QueueState::default()),
            threads: threads.max(1),
            metrics,
            lane: 0,
            barrier_mode,
            durability: None,
            tracer: Arc::new(Tracer::new(1)),
            annotations: Arc::new(Mutex::new(FxHashMap::default())),
        }
    }

    /// Assigns this queue to metrics lane shard `lane` (lane-sharded
    /// servers build one `Batcher` per lane). Builder-style.
    pub fn with_lane(mut self, lane: usize) -> Batcher {
        self.lane = lane;
        self
    }

    /// Routes update batches through `durability` (write-ahead logged
    /// and fsync'd before applying). Builder-style, used at server boot.
    pub fn with_durability(mut self, durability: Arc<Durability>) -> Batcher {
        self.durability = Some(durability);
        self
    }

    /// Shares the server's tracer and annotation map with the queue, so
    /// traced requests get admission-wait / batch-drain / cache / join /
    /// fsync spans and join annotations. Builder-style, used at boot.
    pub fn with_tracing(
        mut self,
        tracer: Arc<Tracer>,
        annotations: Arc<TraceAnnotations>,
    ) -> Batcher {
        self.tracer = tracer;
        self.annotations = annotations;
        self
    }

    /// `Some((tracer, ids))` when tracing is on and at least one id in
    /// `ids` is a real trace — the shape the observed downstream calls
    /// take.
    fn trace_ctx<'a>(&'a self, ids: &'a [u64]) -> Option<(&'a Tracer, &'a [u64])> {
        if self.tracer.is_enabled() && ids.iter().any(|&id| id != 0) {
            Some((&self.tracer, ids))
        } else {
            None
        }
    }

    /// The single mutation choke point for both barrier modes: a run of
    /// update deltas applies through the durability layer when one is
    /// configured (log + fsync, *then* apply) and directly otherwise.
    /// `trace_ids` carries the waiters' trace ids (aligned with
    /// `deltas`) so the WAL fsync is recorded as a span on each.
    fn apply_deltas(
        &self,
        session: &Session,
        deltas: &[(Vec<crate::proto::FactSpec>, Vec<crate::proto::FactSpec>)],
        trace_ids: &[u64],
    ) -> Vec<Result<crate::session::UpdateSummary, String>> {
        match &self.durability {
            Some(d) => d.apply_updates_traced(session, deltas, self.trace_ctx(trace_ids)),
            None => session.apply_updates(deltas),
        }
    }

    /// Submits one unit of work and blocks until its outcome is ready.
    ///
    /// Checks are first tried against the session's semantic cache; a
    /// hit returns immediately. Otherwise the work is enqueued and the
    /// calling thread alternates between waiting for a leader to answer
    /// it and — whenever no leader is running — taking leadership
    /// itself. Leadership is bounded to [`MAX_LEADER_ROUNDS`] drain
    /// rounds, then handed back (a waiter promotes itself within one
    /// poll tick), so one leader's client is never starved by a
    /// sustained stream of other clients' requests. Returns `Err` only
    /// if a leader panicked while holding this item (the engine's
    /// invariants were violated); the queue itself recovers — see
    /// [`LeaderGuard`].
    pub fn submit(&self, work: Work) -> Result<Outcome, String> {
        self.submit_cancellable(work, 0, CancelToken::unlimited())
    }

    /// [`Batcher::submit`] carrying the request's trace id, so the
    /// semantic-cache probe, admission wait, batch drain, and downstream
    /// eval/fsync sections are recorded as spans when tracing is on.
    pub fn submit_traced(&self, work: Work, trace_id: u64) -> Result<Outcome, String> {
        self.submit_cancellable(work, trace_id, CancelToken::unlimited())
    }

    /// Turns a fired token into the [`Outcome::Cancelled`] it is
    /// answered with, counting it on the resilience metrics (disconnect
    /// vs deadline attribution comes from the token itself).
    fn cancelled_outcome(&self, cancel: &CancelToken, detail: &str) -> Outcome {
        use std::sync::atomic::Ordering;
        let disconnect = cancel.is_cancelled();
        if disconnect {
            self.metrics
                .cancelled_disconnect
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.metrics
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
        }
        Outcome::Cancelled {
            disconnect,
            detail: detail.into(),
        }
    }

    /// [`Batcher::submit_traced`] under a [`CancelToken`]: the token is
    /// consulted at admission (a fired token is refused before the
    /// cache probe or the queue), at leader pickup (expired work is
    /// never executed), and — for checks and evals — at coalesced
    /// intervals inside the engines. The full request lifecycle path.
    pub fn submit_cancellable(
        &self,
        work: Work,
        trace_id: u64,
        cancel: CancelToken,
    ) -> Result<Outcome, String> {
        // The per-request hot path: same protocol as `submit_many`
        // (probe, enqueue, await) without its per-script vectors.
        if cancel.should_stop() {
            return Ok(self.cancelled_outcome(&cancel, "refused at admission"));
        }
        let tracing = trace_id != 0 && self.tracer.is_enabled();
        let probe_start =
            (tracing && matches!(work, Work::Check { .. })).then(|| self.tracer.now_us());
        let hit = Batcher::try_cache_hit(&work);
        if let Some(start) = probe_start {
            self.tracer.record(
                trace_id,
                SpanKind::SemCacheLookup,
                start,
                self.tracer.now_us(),
            );
        }
        if let Some(outcome) = hit {
            return Ok(outcome);
        }
        let (tx, rx) = channel();
        let enqueued_us = if tracing { self.tracer.now_us() } else { 0 };
        {
            let mut state = self.state.lock().expect("queue lock");
            state.pending.push(Pending {
                work,
                tx,
                trace_id,
                enqueued: Instant::now(),
                enqueued_us,
                cancel,
            });
        }
        self.metrics
            .lane(self.lane)
            .queue_depth
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.await_outcome(&rx)
    }

    /// Blocks until `rx` delivers, alternating with leadership: whenever
    /// no leader is running and work is pending, the caller takes
    /// leadership and drains. The wait half of `submit`/`submit_many`.
    fn await_outcome(&self, rx: &std::sync::mpsc::Receiver<Outcome>) -> Result<Outcome, String> {
        loop {
            let lead = {
                let mut state = self.state.lock().expect("queue lock");
                if !state.leader_running && !state.pending.is_empty() {
                    state.leader_running = true;
                    true
                } else {
                    false
                }
            };
            if lead {
                self.drain();
            }
            match rx.recv_timeout(LEADER_POLL) {
                Ok(outcome) => return Ok(outcome),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(
                        "internal error: the batch leader failed while holding this \
                         request; please retry"
                            .into(),
                    )
                }
            }
        }
    }

    /// The pre-enqueue semantic-cache probe shared by [`Batcher::submit`]
    /// and [`Batcher::submit_many`]: a check whose isomorphism class is
    /// cached is answered without ever touching the queue.
    fn try_cache_hit(work: &Work) -> Option<Outcome> {
        let Work::Check {
            session,
            q,
            q_prime,
        } = work
        else {
            return None;
        };
        let hit = {
            let mut cache = session.sem_cache.lock().expect("semantic cache lock");
            cache.lookup(
                session.sigma_fp(),
                session.query(*q),
                session.query(*q_prime),
            )
        };
        hit.map(|summary| Outcome::Check {
            summary: Ok(summary),
            cached: true,
            coalesced: false,
        })
    }

    /// Submits a whole script of work as **one enqueued batch** and
    /// blocks until every outcome is ready, returned in submission
    /// order.
    ///
    /// All items land in the queue under a single lock acquisition, so
    /// a quiescent queue drains them as one batch — the deterministic
    /// way to exercise segment splitting, update-run coalescing, and
    /// in-batch coalescing that concurrent `submit` calls only produce
    /// probabilistically. Semantic-cache hits short-circuit exactly as
    /// in [`Batcher::submit`]. Used by the differential proptests and
    /// the churn benchmark; servers use `submit`.
    pub fn submit_many(&self, works: Vec<Work>) -> Vec<Result<Outcome, String>> {
        let works = works
            .into_iter()
            .map(|w| (w, CancelToken::unlimited()))
            .collect();
        self.submit_many_cancellable(works)
    }

    /// [`Batcher::submit_many`] with one [`CancelToken`] per item — the
    /// differential cancellation proptest's entry point. An item whose
    /// token is already fired at submission is answered
    /// [`Outcome::Cancelled`] without probing the cache or touching the
    /// queue; the rest land in the queue as one batch exactly as in
    /// `submit_many`.
    pub fn submit_many_cancellable(
        &self,
        works: Vec<(Work, CancelToken)>,
    ) -> Vec<Result<Outcome, String>> {
        enum Slot {
            Ready(Outcome),
            Wait(std::sync::mpsc::Receiver<Outcome>),
        }
        // Cache probes run BEFORE the queue lock (they take per-session
        // mutexes and do isomorphism lookups — too slow for the global
        // critical section, which must stay at plain Vec pushes).
        type Unanswered = (
            Work,
            CancelToken,
            Sender<Outcome>,
            std::sync::mpsc::Receiver<Outcome>,
        );
        let probed: Vec<Result<Outcome, Unanswered>> = works
            .into_iter()
            .map(|(work, cancel)| {
                if cancel.should_stop() {
                    return Ok(self.cancelled_outcome(&cancel, "refused at admission"));
                }
                match Batcher::try_cache_hit(&work) {
                    Some(outcome) => Ok(outcome),
                    None => {
                        let (tx, rx) = channel();
                        Err((work, cancel, tx, rx))
                    }
                }
            })
            .collect();
        let mut slots = Vec::with_capacity(probed.len());
        let mut enqueued = 0u64;
        {
            let mut state = self.state.lock().expect("queue lock");
            for p in probed {
                match p {
                    Ok(outcome) => slots.push(Slot::Ready(outcome)),
                    Err((work, cancel, tx, rx)) => {
                        state.pending.push(Pending {
                            work,
                            tx,
                            trace_id: 0,
                            enqueued: Instant::now(),
                            enqueued_us: 0,
                            cancel,
                        });
                        slots.push(Slot::Wait(rx));
                        enqueued += 1;
                    }
                }
            }
        }
        self.metrics
            .lane(self.lane)
            .queue_depth
            .fetch_add(enqueued, std::sync::atomic::Ordering::Relaxed);
        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Ready(outcome) => Ok(outcome),
                Slot::Wait(rx) => self.await_outcome(&rx),
            })
            .collect()
    }

    /// Leads for up to [`MAX_LEADER_ROUNDS`] drain rounds, then
    /// releases leadership (leftover work is picked up by a waiting
    /// submitter's next poll tick or the next fresh submit).
    fn drain(&self) {
        let mut guard = LeaderGuard {
            state: &self.state,
            metrics: &self.metrics,
            lane: self.lane,
            armed: true,
        };
        for _ in 0..MAX_LEADER_ROUNDS {
            let batch = {
                let mut state = self.state.lock().expect("queue lock");
                if state.pending.is_empty() {
                    break;
                }
                std::mem::take(&mut state.pending)
            };
            // Queue-wait accounting happens at leader pickup: the
            // always-on metric uses the wall clock carried by each item;
            // traced items additionally get an admission-wait span and,
            // after the batch runs, a batch-drain span.
            let pickup_us = if self.tracer.is_enabled() {
                self.tracer.now_us()
            } else {
                0
            };
            self.metrics
                .lane(self.lane)
                .queue_depth
                .fetch_sub(batch.len() as u64, std::sync::atomic::Ordering::Relaxed);
            let mut traced: Vec<u64> = Vec::new();
            for p in &batch {
                self.metrics
                    .record_lane_queue_wait(self.lane, p.enqueued.elapsed());
                if p.trace_id != 0 && p.enqueued_us != 0 {
                    self.tracer.record(
                        p.trace_id,
                        SpanKind::AdmissionWait,
                        p.enqueued_us,
                        pickup_us,
                    );
                    traced.push(p.trace_id);
                }
            }
            // Work whose token fired while it queued (deadline expired,
            // or its client disconnected) is refused here — never
            // executed. Queue wait counts against the deadline by
            // construction: the token was armed before admission.
            let batch: Vec<Pending> = batch
                .into_iter()
                .filter_map(|p| {
                    if p.cancel.should_stop() {
                        let outcome =
                            self.cancelled_outcome(&p.cancel, "expired in the admission queue");
                        let _ = p.tx.send(outcome);
                        None
                    } else {
                        Some(p)
                    }
                })
                .collect();
            self.run_batch(batch);
            if !traced.is_empty() {
                let end_us = self.tracer.now_us();
                for id in traced {
                    self.tracer
                        .record(id, SpanKind::BatchDrain, pickup_us, end_us);
                }
            }
        }
        let mut state = self.state.lock().expect("queue lock");
        state.leader_running = false;
        guard.armed = false;
    }

    /// Runs one drained batch, honoring update barriers at the scope
    /// the [`BarrierMode`] sets.
    ///
    /// **Per-session** (default): the batch is partitioned into
    /// per-session lanes (`Arc::ptr_eq` identity, arrival order
    /// preserved within each lane); inside a lane, updates are barriers
    /// — same-session work before the update answers against the old
    /// facts — and *adjacent* updates coalesce into one
    /// [`Session::apply_updates`] call (one write-lock acquisition, one
    /// epoch bump, per-delta summaries). Lanes never split each other.
    ///
    /// **Global**: the pre-relaxation semantics — items run in arrival
    /// order as maximal update-free segments; every update flushes the
    /// whole segment before it and applies alone.
    fn run_batch(&self, batch: Vec<Pending>) {
        use std::sync::atomic::Ordering;
        let shard = self.metrics.lane(self.lane);
        self.metrics.batches.fetch_add(1, Ordering::Relaxed);
        shard.batches.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .batched_items
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        shard
            .batched_items
            .fetch_add(batch.len() as u64, Ordering::Relaxed);

        match self.barrier_mode {
            BarrierMode::Global => {
                let mut segment: Vec<Pending> = Vec::new();
                for p in batch {
                    let trace_id = p.trace_id;
                    if let Work::Update {
                        session,
                        insert,
                        delete,
                    } = p.work
                    {
                        if !segment.is_empty() {
                            self.metrics.barrier_flushes.fetch_add(1, Ordering::Relaxed);
                            shard.barrier_flushes.fetch_add(1, Ordering::Relaxed);
                        }
                        self.run_segment(std::mem::take(&mut segment));
                        if p.cancel.should_stop() {
                            let outcome = self.cancelled_outcome(
                                &p.cancel,
                                "update refused before its commit point",
                            );
                            let _ = p.tx.send(outcome);
                            continue;
                        }
                        let result = self
                            .apply_deltas(&session, &[(insert, delete)], &[trace_id])
                            .pop()
                            .expect("one delta in, one summary out");
                        let _ = p.tx.send(Outcome::Update(result));
                    } else {
                        segment.push(p);
                    }
                }
                self.run_segment(segment);
            }
            BarrierMode::PerSession => {
                let mut lanes: Vec<(Arc<Session>, Vec<Pending>)> = Vec::new();
                for p in batch {
                    let session = match &p.work {
                        Work::Check { session, .. }
                        | Work::Eval { session, .. }
                        | Work::Update { session, .. } => Arc::clone(session),
                    };
                    match lanes.iter_mut().find(|(s, _)| Arc::ptr_eq(s, &session)) {
                        Some((_, lane)) => lane.push(p),
                        None => lanes.push((session, vec![p])),
                    }
                }
                for (session, lane) in lanes {
                    self.run_lane(&session, lane);
                }
            }
        }
    }

    /// Runs one session's lane of a drained batch: maximal update-free
    /// segments alternate with **runs of adjacent updates**; each run
    /// applies through one [`Session::apply_updates`] call.
    fn run_lane(&self, session: &Arc<Session>, lane: Vec<Pending>) {
        use std::sync::atomic::Ordering;
        let shard = self.metrics.lane(self.lane);
        let mut segment: Vec<Pending> = Vec::new();
        let mut updates: Vec<(Vec<crate::proto::FactSpec>, Vec<crate::proto::FactSpec>)> =
            Vec::new();
        let mut update_txs: Vec<Sender<Outcome>> = Vec::new();
        let mut update_ids: Vec<u64> = Vec::new();
        let mut update_cancels: Vec<CancelToken> = Vec::new();
        type Deltas = Vec<(Vec<crate::proto::FactSpec>, Vec<crate::proto::FactSpec>)>;
        let flush_updates = |updates: &mut Deltas,
                             update_txs: &mut Vec<Sender<Outcome>>,
                             update_ids: &mut Vec<u64>,
                             update_cancels: &mut Vec<CancelToken>| {
            if updates.is_empty() {
                return;
            }
            // Last pre-commit token check: a delta whose token fired
            // between pickup and here is excluded before anything is
            // WAL-logged or applied, so a cancelled update is
            // indistinguishable from one never submitted. Past this
            // point the run is committed — cancellation never bisects
            // an update.
            let mut deltas: Deltas = Vec::with_capacity(updates.len());
            let mut txs: Vec<Sender<Outcome>> = Vec::with_capacity(update_txs.len());
            let mut ids: Vec<u64> = Vec::with_capacity(update_ids.len());
            for ((delta, tx), (id, cancel)) in updates
                .drain(..)
                .zip(update_txs.drain(..))
                .zip(update_ids.drain(..).zip(update_cancels.drain(..)))
            {
                if cancel.should_stop() {
                    let outcome =
                        self.cancelled_outcome(&cancel, "update refused before its commit point");
                    let _ = tx.send(outcome);
                } else {
                    deltas.push(delta);
                    txs.push(tx);
                    ids.push(id);
                }
            }
            if deltas.is_empty() {
                return;
            }
            if deltas.len() > 1 {
                self.metrics
                    .updates_coalesced
                    .fetch_add(deltas.len() as u64 - 1, Ordering::Relaxed);
                shard
                    .updates_coalesced
                    .fetch_add(deltas.len() as u64 - 1, Ordering::Relaxed);
            }
            let results = self.apply_deltas(session, &deltas, &ids);
            for (result, tx) in results.into_iter().zip(txs) {
                let _ = tx.send(Outcome::Update(result));
            }
        };
        for p in lane {
            match p.work {
                Work::Update { insert, delete, .. } => {
                    if !segment.is_empty() {
                        self.metrics.barrier_flushes.fetch_add(1, Ordering::Relaxed);
                        shard.barrier_flushes.fetch_add(1, Ordering::Relaxed);
                    }
                    self.run_segment(std::mem::take(&mut segment));
                    updates.push((insert, delete));
                    update_txs.push(p.tx);
                    update_ids.push(p.trace_id);
                    update_cancels.push(p.cancel);
                }
                _ => {
                    flush_updates(
                        &mut updates,
                        &mut update_txs,
                        &mut update_ids,
                        &mut update_cancels,
                    );
                    segment.push(p);
                }
            }
        }
        flush_updates(
            &mut updates,
            &mut update_txs,
            &mut update_ids,
            &mut update_cancels,
        );
        self.run_segment(segment);
    }

    /// Runs one update-free segment: group per session, coalesce
    /// identical items, run the batch engines, fan answers out.
    fn run_segment(&self, batch: Vec<Pending>) {
        if batch.is_empty() {
            return;
        }
        // Group by (session identity, kind), preserving arrival order.
        struct Group {
            session: Arc<Session>,
            checks: Vec<(usize, usize, Sender<Outcome>, CancelToken)>,
            evals: Vec<(usize, u64, Sender<Outcome>, CancelToken)>,
        }
        let mut groups: Vec<Group> = Vec::new();
        for p in batch {
            let session = match &p.work {
                Work::Check { session, .. } | Work::Eval { session, .. } => Arc::clone(session),
                Work::Update { .. } => unreachable!("updates are barriers, not segment items"),
            };
            let slot = match groups
                .iter_mut()
                .find(|g| Arc::ptr_eq(&g.session, &session))
            {
                Some(g) => g,
                None => {
                    groups.push(Group {
                        session,
                        checks: Vec::new(),
                        evals: Vec::new(),
                    });
                    groups.last_mut().expect("just pushed")
                }
            };
            match p.work {
                Work::Check { q, q_prime, .. } => slot.checks.push((q, q_prime, p.tx, p.cancel)),
                Work::Eval { q, .. } => slot.evals.push((q, p.trace_id, p.tx, p.cancel)),
                Work::Update { .. } => unreachable!("updates are barriers, not segment items"),
            }
        }

        for group in groups {
            self.run_checks(&group.session, group.checks);
            self.run_evals(&group.session, group.evals);
        }
    }

    fn run_checks(
        &self,
        session: &Session,
        checks: Vec<(usize, usize, Sender<Outcome>, CancelToken)>,
    ) {
        use std::sync::atomic::Ordering;
        if checks.is_empty() {
            return;
        }
        // Coalesce identical pairs: one computation, many answers. The
        // computation runs under the FIRST waiter's token; coalesced
        // riders share its fate (documented trade — a rider with a
        // longer deadline may see the representative's cancellation,
        // but the shared chase stays live for every other pair).
        let mut unique: Vec<ContainmentPair> = Vec::new();
        let mut tokens: Vec<CancelToken> = Vec::new();
        let mut waiters: FxHashMap<(usize, usize), Vec<Sender<Outcome>>> = FxHashMap::default();
        for (q, q_prime, tx, cancel) in checks {
            let entry = waiters.entry((q, q_prime)).or_default();
            if entry.is_empty() {
                unique.push(ContainmentPair { q, q_prime });
                tokens.push(cancel);
            } else {
                self.metrics.coalesced_items.fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .lane(self.lane)
                    .coalesced_items
                    .fetch_add(1, Ordering::Relaxed);
            }
            entry.push(tx);
        }

        let program = session.program();
        let answers = cqchase_par::check_batch_cancellable(
            &program.queries,
            &unique,
            &program.deps,
            &program.catalog,
            &session.opts,
            BatchOptions::with_threads(self.threads),
            Some(&tokens),
        );

        for ((pair, cancel), answer) in unique.iter().zip(&tokens).zip(answers) {
            let txs = waiters
                .remove(&(pair.q, pair.q_prime))
                .expect("every unique pair has waiters");
            if let Err(e @ ContainmentEngineError::Cancelled { .. }) = &answer {
                // A cancelled check never certifies anything and never
                // enters the semantic cache; every waiter of the pair
                // is told, with the partial-progress detail.
                let detail = e.to_string();
                for tx in txs {
                    let _ = tx.send(self.cancelled_outcome(cancel, &detail));
                }
                continue;
            }
            let summary = match answer {
                Ok(a) => {
                    let s = CheckSummary {
                        contained: a.contained,
                        exact: a.exact,
                        empty_chase: a.empty_chase,
                        class: session.class_name().to_owned(),
                        bound: a.bound,
                    };
                    let mut cache = session.sem_cache.lock().expect("semantic cache lock");
                    cache.insert(
                        session.sigma_fp(),
                        session.query(pair.q),
                        session.query(pair.q_prime),
                        s.clone(),
                    );
                    Ok(s)
                }
                Err(e) => Err(e.to_string()),
            };
            for (i, tx) in txs.into_iter().enumerate() {
                // A waiter that hung up (connection died) is not an
                // error worth surfacing.
                let _ = tx.send(Outcome::Check {
                    summary: summary.clone(),
                    cached: false,
                    coalesced: i > 0,
                });
            }
        }
    }

    fn run_evals(&self, session: &Session, evals: Vec<(usize, u64, Sender<Outcome>, CancelToken)>) {
        use std::sync::atomic::Ordering;
        if evals.is_empty() {
            return;
        }
        // As in `run_checks`: the computation runs under the first
        // waiter's token, coalesced riders share its fate.
        let mut waiters: FxHashMap<usize, Vec<(u64, Sender<Outcome>)>> = FxHashMap::default();
        let mut unique: Vec<(usize, CancelToken)> = Vec::new();
        for (q, trace_id, tx, cancel) in evals {
            let entry = waiters.entry(q).or_default();
            if entry.is_empty() {
                unique.push((q, cancel));
            } else {
                self.metrics.coalesced_items.fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .lane(self.lane)
                    .coalesced_items
                    .fetch_add(1, Ordering::Relaxed);
            }
            entry.push((trace_id, tx));
        }
        for (q, cancel) in unique {
            let ids: Vec<u64> = waiters
                .get(&q)
                .expect("every unique query has waiters")
                .iter()
                .map(|(id, _)| *id)
                .collect();
            let answer = session.eval_observed_cancellable(q, self.trace_ctx(&ids), Some(&cancel));
            let txs = waiters.remove(&q).expect("every unique query has waiters");
            let Some((rows, cached, annotation)) = answer else {
                // Cancelled mid-join: the partial rows were discarded
                // inside the session, nothing was cached.
                for (_, tx) in txs {
                    let _ = tx.send(self.cancelled_outcome(&cancel, "eval cancelled mid-join"));
                }
                continue;
            };
            if let Some(ann) = annotation {
                let mut map = self.annotations.lock().expect("annotations lock");
                for &id in ids.iter().filter(|id| **id != 0) {
                    map.insert(id, ann.clone());
                }
            }
            for (i, (_, tx)) in txs.into_iter().enumerate() {
                let _ = tx.send(Outcome::Eval {
                    rows: rows.clone(),
                    cached,
                    coalesced: i > 0,
                });
            }
        }
    }
}

/// Renders evaluation rows for the wire: each row an array of rendered
/// values (constants print as themselves, labelled nulls as `⊥n`).
pub fn rows_to_value(rows: &[Tuple]) -> Value {
    Value::Array(
        rows.iter()
            .map(|row| Value::Array(row.iter().map(|v| Value::from(v.to_string())).collect()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_session() -> Arc<Session> {
        Arc::new(
            Session::new(
                "t",
                "relation R(a, b).
                 ind R[2] <= R[1].
                 A(x) :- R(x, y).
                 B(x) :- R(x, y), R(y, z).
                 Biso(u) :- R(u, w), R(w, v).
                 C(x) :- R(y, x).
                 R(1, 2). R(2, 3).",
                64,
                64,
            )
            .unwrap(),
        )
    }

    #[test]
    fn single_submit_matches_direct_engine() {
        let s = test_session();
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(1, Arc::clone(&metrics));
        let out = batcher
            .submit(Work::Check {
                session: Arc::clone(&s),
                q: 0,
                q_prime: 1,
            })
            .unwrap();
        let direct = cqchase_core::contained(
            s.query(0),
            s.query(1),
            &s.program().deps,
            &s.program().catalog,
            &s.opts,
        )
        .unwrap();
        match out {
            Outcome::Check {
                summary: Ok(sum),
                cached,
                coalesced,
            } => {
                assert_eq!(sum.contained, direct.contained);
                assert_eq!(sum.exact, direct.exact);
                assert_eq!(sum.bound, direct.bound);
                assert!(!cached && !coalesced);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn semantic_cache_answers_isomorphic_repeat() {
        let s = test_session();
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(1, Arc::clone(&metrics));
        let first = batcher
            .submit(Work::Check {
                session: Arc::clone(&s),
                q: 0,
                q_prime: 1, // A ⊆ B
            })
            .unwrap();
        // Biso (index 2) is isomorphic to B: must be a cache hit.
        let second = batcher
            .submit(Work::Check {
                session: Arc::clone(&s),
                q: 0,
                q_prime: 2,
            })
            .unwrap();
        let (
            Outcome::Check {
                summary: Ok(a),
                cached: c1,
                ..
            },
            Outcome::Check {
                summary: Ok(b),
                cached: c2,
                ..
            },
        ) = (first, second)
        else {
            panic!("expected check outcomes");
        };
        assert!(!c1);
        assert!(c2, "isomorphic repeat must hit the semantic cache");
        assert_eq!(a, b);
        assert_eq!(s.sem_cache.lock().unwrap().stats().hits, 1);
    }

    #[test]
    fn eval_and_rendering() {
        let s = test_session();
        let batcher = Batcher::new(1, Arc::new(Metrics::new()));
        let out = batcher
            .submit(Work::Eval {
                session: Arc::clone(&s),
                q: 0,
            })
            .unwrap();
        let Outcome::Eval {
            rows, coalesced, ..
        } = out
        else {
            panic!("expected eval outcome");
        };
        assert!(!coalesced);
        let direct = {
            let facts = s.facts.read().unwrap();
            cqchase_storage::evaluate(s.query(0), facts.db())
        };
        assert_eq!(rows, direct);
        let rendered = rows_to_value(&rows);
        assert_eq!(rendered[0][0], "1");
    }

    #[test]
    fn update_is_an_epoch_barrier_and_invalidates_eval_rows() {
        use cqchase_ir::Constant;
        let s = test_session();
        let batcher = Batcher::new(1, Arc::new(Metrics::new()));
        let eval = |batcher: &Batcher| match batcher
            .submit(Work::Eval {
                session: Arc::clone(&s),
                q: 0,
            })
            .unwrap()
        {
            Outcome::Eval { rows, cached, .. } => (rows.len(), cached),
            other => panic!("unexpected outcome {other:?}"),
        };
        assert_eq!(eval(&batcher), (2, false));
        assert_eq!(eval(&batcher), (2, true), "second eval rides the row cache");
        let out = batcher
            .submit(Work::Update {
                session: Arc::clone(&s),
                insert: vec![("R".into(), vec![Constant::Int(8), Constant::Int(9)])],
                delete: vec![("R".into(), vec![Constant::Int(1), Constant::Int(2)])],
            })
            .unwrap();
        let Outcome::Update(Ok(sum)) = out else {
            panic!("expected update outcome, got {out:?}");
        };
        assert_eq!((sum.inserted, sum.deleted, sum.epoch), (1, 1, 1));
        // Post-barrier eval sees the new facts, uncached.
        assert_eq!(eval(&batcher), (2, false));
        let rows = match batcher
            .submit(Work::Eval {
                session: Arc::clone(&s),
                q: 0,
            })
            .unwrap()
        {
            Outcome::Eval { rows, .. } => rows,
            other => panic!("unexpected outcome {other:?}"),
        };
        let direct = {
            let facts = s.facts.read().unwrap();
            cqchase_storage::evaluate(s.query(0), facts.db())
        };
        assert_eq!(rows, direct);
        // A bad update reports its error without wedging the queue.
        let out = batcher
            .submit(Work::Update {
                session: Arc::clone(&s),
                insert: vec![("NOPE".into(), vec![Constant::Int(1)])],
                delete: vec![],
            })
            .unwrap();
        assert!(matches!(out, Outcome::Update(Err(_))));
        assert_eq!(eval(&batcher), (2, true));
    }

    #[test]
    fn per_session_barrier_never_splits_other_sessions() {
        use cqchase_ir::Constant;
        use std::sync::atomic::Ordering;
        let a = test_session();
        let b = test_session();
        let upd = |s: &Arc<Session>, k: i64| Work::Update {
            session: Arc::clone(s),
            insert: vec![("R".into(), vec![Constant::Int(100 + k), Constant::Int(k)])],
            delete: vec![],
        };
        let eval_b = || Work::Eval {
            session: Arc::clone(&b),
            q: 0,
        };
        // One batch interleaving B-evals with two adjacent A-updates.
        let script = |s: &Arc<Session>| vec![eval_b(), upd(s, 1), upd(s, 2), eval_b(), eval_b()];

        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(1, Arc::clone(&metrics));
        let outs: Vec<Outcome> = batcher
            .submit_many(script(&a))
            .into_iter()
            .map(Result::unwrap)
            .collect();
        // All three B evals ran in ONE segment: the identical repeats
        // coalesced instead of being split apart by A's barrier.
        let coalesced: Vec<bool> = outs
            .iter()
            .filter_map(|o| match o {
                Outcome::Eval { coalesced, .. } => Some(*coalesced),
                _ => None,
            })
            .collect();
        assert_eq!(coalesced, [false, true, true]);
        // A's barrier flushed no B segment (B work all ran together),
        // and the adjacent A updates merged: one run of 2 counts 1.
        assert_eq!(metrics.barrier_flushes.load(Ordering::Relaxed), 0);
        assert_eq!(metrics.updates_coalesced.load(Ordering::Relaxed), 1);
        // Merged updates: per-delta summaries, one shared epoch bump.
        let sums: Vec<_> = outs
            .iter()
            .filter_map(|o| match o {
                Outcome::Update(Ok(s)) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!((sums[0].inserted, sums[1].inserted), (1, 1));
        assert_eq!((sums[0].epoch, sums[1].epoch), (1, 1));
        assert_eq!(a.facts_epoch(), 1, "two merged updates, one epoch");

        // The same script under global barriers: B's repeats land in
        // separate segments (no coalescing across the A barrier) and
        // each A update mints its own epoch.
        let a2 = test_session();
        let b2 = test_session();
        let metrics2 = Arc::new(Metrics::new());
        let global = Batcher::with_barrier_mode(1, Arc::clone(&metrics2), BarrierMode::Global);
        let script2 = vec![
            Work::Eval {
                session: Arc::clone(&b2),
                q: 0,
            },
            upd(&a2, 1),
            upd(&a2, 2),
            Work::Eval {
                session: Arc::clone(&b2),
                q: 0,
            },
            Work::Eval {
                session: Arc::clone(&b2),
                q: 0,
            },
        ];
        let outs2: Vec<Outcome> = global
            .submit_many(script2)
            .into_iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(metrics2.barrier_flushes.load(Ordering::Relaxed), 1);
        assert_eq!(metrics2.updates_coalesced.load(Ordering::Relaxed), 0);
        assert_eq!(a2.facts_epoch(), 2, "global barriers bump per update");
        // The observable answers agree between the modes.
        for (x, y) in outs.iter().zip(outs2.iter()) {
            match (x, y) {
                (Outcome::Eval { rows: r1, .. }, Outcome::Eval { rows: r2, .. }) => {
                    assert_eq!(r1, r2)
                }
                (Outcome::Update(Ok(s1)), Outcome::Update(Ok(s2))) => {
                    assert_eq!(
                        (s1.inserted, s1.deleted, s1.facts),
                        (s2.inserted, s2.deleted, s2.facts)
                    )
                }
                other => panic!("outcome kinds diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn submit_many_drains_one_batch_in_order() {
        use std::sync::atomic::Ordering;
        let s = test_session();
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(1, Arc::clone(&metrics));
        let outs = batcher.submit_many(vec![
            Work::Eval {
                session: Arc::clone(&s),
                q: 0,
            },
            Work::Check {
                session: Arc::clone(&s),
                q: 0,
                q_prime: 1,
            },
        ]);
        assert_eq!(outs.len(), 2);
        assert!(matches!(outs[0], Ok(Outcome::Eval { .. })));
        assert!(matches!(outs[1], Ok(Outcome::Check { .. })));
        assert_eq!(metrics.batches.load(Ordering::Relaxed), 1);
        // A semantic-cache hit short-circuits without enqueueing.
        let outs = batcher.submit_many(vec![Work::Check {
            session: Arc::clone(&s),
            q: 0,
            q_prime: 1,
        }]);
        assert!(
            matches!(&outs[0], Ok(Outcome::Check { cached: true, .. })),
            "{outs:?}"
        );
        assert_eq!(metrics.batches.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_submits_coalesce_and_agree() {
        let s = test_session();
        let metrics = Arc::new(Metrics::new());
        let batcher = Arc::new(Batcher::new(2, Arc::clone(&metrics)));
        let mut handles = Vec::new();
        for i in 0..8usize {
            let batcher = Arc::clone(&batcher);
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                // Everyone asks (A ⊆ B) or (B ⊆ A) — at most 2 unique
                // computations regardless of thread count.
                let (q, qp) = if i % 2 == 0 { (0, 1) } else { (1, 0) };
                batcher
                    .submit(Work::Check {
                        session: s,
                        q,
                        q_prime: qp,
                    })
                    .unwrap()
            }));
        }
        let outcomes: Vec<Outcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, o) in outcomes.iter().enumerate() {
            let Outcome::Check {
                summary: Ok(sum), ..
            } = o
            else {
                panic!("outcome {i} errored: {o:?}");
            };
            // A ⊆ B and B ⊆ A both hold under the cyclic IND.
            assert!(sum.contained, "outcome {i}");
        }
        use std::sync::atomic::Ordering;
        let computed = 8
            - metrics.coalesced_items.load(Ordering::Relaxed)
            - s.sem_cache.lock().unwrap().stats().hits;
        assert!(
            computed >= 2,
            "both distinct questions must actually compute"
        );
    }

    #[test]
    fn fired_tokens_refuse_work_without_running_it() {
        use cqchase_ir::Constant;
        use std::sync::atomic::Ordering;
        let s = test_session();
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(1, Arc::clone(&metrics));
        let fired = CancelToken::unlimited();
        fired.cancel();
        let expired = CancelToken::with_deadline_ms(0);
        // A disconnected check, an expired eval, an expired update, and
        // a live eval, submitted as one batch.
        let outs: Vec<Outcome> = batcher
            .submit_many_cancellable(vec![
                (
                    Work::Check {
                        session: Arc::clone(&s),
                        q: 0,
                        q_prime: 1,
                    },
                    fired,
                ),
                (
                    Work::Eval {
                        session: Arc::clone(&s),
                        q: 0,
                    },
                    expired.clone(),
                ),
                (
                    Work::Update {
                        session: Arc::clone(&s),
                        insert: vec![("R".into(), vec![Constant::Int(7), Constant::Int(8)])],
                        delete: vec![],
                    },
                    expired,
                ),
                (
                    Work::Eval {
                        session: Arc::clone(&s),
                        q: 0,
                    },
                    CancelToken::unlimited(),
                ),
            ])
            .into_iter()
            .map(Result::unwrap)
            .collect();
        assert!(
            matches!(
                &outs[0],
                Outcome::Cancelled {
                    disconnect: true,
                    ..
                }
            ),
            "{outs:?}"
        );
        assert!(
            matches!(
                &outs[1],
                Outcome::Cancelled {
                    disconnect: false,
                    ..
                }
            ),
            "{outs:?}"
        );
        assert!(
            matches!(
                &outs[2],
                Outcome::Cancelled {
                    disconnect: false,
                    ..
                }
            ),
            "{outs:?}"
        );
        assert!(matches!(&outs[3], Outcome::Eval { .. }), "{outs:?}");
        // The refused update applied nothing: epoch and facts untouched.
        assert_eq!(s.facts_epoch(), 0);
        assert_eq!(s.facts_len(), 2);
        assert_eq!(metrics.cancelled_disconnect.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.deadline_exceeded.load(Ordering::Relaxed), 2);
        // The session still answers normally afterwards.
        let out = batcher
            .submit(Work::Check {
                session: Arc::clone(&s),
                q: 0,
                q_prime: 1,
            })
            .unwrap();
        assert!(matches!(out, Outcome::Check { summary: Ok(_), .. }));
    }

    #[test]
    fn queue_recovers_after_leader_panic() {
        let s = test_session();
        let batcher = Arc::new(Batcher::new(1, Arc::new(Metrics::new())));
        let (b2, s2) = (Arc::clone(&batcher), Arc::clone(&s));
        let poisoned = std::thread::spawn(move || {
            // Out-of-range query index: the leader panics inside
            // run_batch while holding leadership.
            let _ = b2.submit(Work::Eval {
                session: s2,
                q: 999,
            });
        });
        assert!(
            poisoned.join().is_err(),
            "the poison submitter's own thread panics"
        );
        // The LeaderGuard must have released leadership: fresh work is
        // served normally instead of hanging forever.
        let out = batcher
            .submit(Work::Check {
                session: Arc::clone(&s),
                q: 0,
                q_prime: 1,
            })
            .unwrap();
        assert!(matches!(out, Outcome::Check { summary: Ok(_), .. }));
    }
}
