//! Server metrics: per-endpoint request counters and latency
//! histograms, plus batching counters — everything the `stats`
//! endpoint reports.
//!
//! All counters are atomics, so the request hot path takes no lock to
//! record a sample. Latencies land in power-of-two microsecond buckets:
//! bucket 0 holds only `0` µs and bucket *i* (for `i ≥ 1`) covers
//! `[2^(i-1), 2^i)` µs, the final bucket absorbing everything slower.
//! The snapshot derives approximate p50/p99 from the buckets —
//! histogram-derived percentiles are upper bounds at bucket
//! granularity, the standard trade for lock-free recording.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use serde_json::{Map, Value};

use crate::proto::{Op, ALL_OPS};

/// Number of latency buckets: covers up to ~2^19 µs ≈ 0.5 s per bucket
/// top; slower requests land in the last bucket.
const BUCKETS: usize = 20;

/// Lock-free counters for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointStats {
    count: AtomicU64,
    errors: AtomicU64,
    total_us: AtomicU64,
    hist: [AtomicU64; BUCKETS],
}

/// The bucket holding a `us` sample: 0 for `us = 0`, otherwise
/// `⌊log2(us)⌋ + 1` capped at the overflow bucket — so bucket `i ≥ 1`
/// covers `[2^(i-1), 2^i)` µs.
fn bucket_of(us: u64) -> usize {
    ((u64::BITS - us.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The largest `us` value bucket `i` can hold (its inclusive upper
/// edge): 0 for bucket 0, else `2^i − 1`. The overflow bucket is
/// unbounded; its nominal edge saturates the reported quantile.
fn bucket_edge_us(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

impl EndpointStats {
    /// Records one sample (latency + outcome).
    pub fn record(&self, latency: Duration, ok: bool) {
        let us = latency.as_micros() as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.hist[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// The inclusive upper edge (µs) of the bucket containing the
    /// `q`-quantile sample ([`bucket_edge_us`]), or 0 with no samples —
    /// so the reported quantile is the tightest value with "the
    /// q-fraction of samples took at most this long" at bucket
    /// granularity.
    fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .hist
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_edge_us(i);
            }
        }
        bucket_edge_us(BUCKETS - 1)
    }

    fn snapshot(&self) -> Value {
        let count = self.count.load(Ordering::Relaxed);
        let total_us = self.total_us.load(Ordering::Relaxed);
        let mut m = Map::new();
        m.insert("count".into(), Value::from(count));
        m.insert(
            "errors".into(),
            Value::from(self.errors.load(Ordering::Relaxed)),
        );
        m.insert("total_us".into(), Value::from(total_us));
        if let Some(mean) = total_us.checked_div(count) {
            m.insert("mean_us".into(), Value::from(mean));
            m.insert("p50_us".into(), Value::from(self.quantile_us(0.50)));
            m.insert("p99_us".into(), Value::from(self.quantile_us(0.99)));
        }
        let hist: Vec<Value> = self
            .hist
            .iter()
            .map(|b| Value::from(b.load(Ordering::Relaxed)))
            .collect();
        m.insert("histogram_us_pow2".into(), Value::Array(hist));
        Value::Object(m)
    }
}

/// One lane's slice of the batching metrics: every counter the global
/// aggregates keep, sharded by admission lane, plus a live queue-depth
/// gauge — the per-lane families the `stats`/`metrics` endpoints expose
/// so a hot tenant's lane is distinguishable from its neighbors.
#[derive(Debug, Default)]
pub struct LaneShard {
    /// Batches executed by this lane's leader.
    pub batches: AtomicU64,
    /// Work items that went through this lane's batches.
    pub batched_items: AtomicU64,
    /// Items answered by riding an identical in-flight item.
    pub coalesced_items: AtomicU64,
    /// Updates merged into a preceding same-session update's
    /// write-lock acquisition.
    pub updates_coalesced: AtomicU64,
    /// Update-free segments flushed early ahead of an update barrier.
    pub barrier_flushes: AtomicU64,
    /// Work items currently enqueued in this lane (gauge: incremented
    /// at admission, decremented at leader pickup).
    pub queue_depth: AtomicU64,
    /// Admission wait per batched work item in this lane (enqueue →
    /// leader pickup); the `errors` column is unused.
    pub queue_wait: EndpointStats,
}

impl LaneShard {
    fn snapshot(&self) -> Value {
        let mut m = Map::new();
        m.insert(
            "batches".into(),
            Value::from(self.batches.load(Ordering::Relaxed)),
        );
        m.insert(
            "batched_items".into(),
            Value::from(self.batched_items.load(Ordering::Relaxed)),
        );
        m.insert(
            "coalesced_items".into(),
            Value::from(self.coalesced_items.load(Ordering::Relaxed)),
        );
        m.insert(
            "updates_coalesced".into(),
            Value::from(self.updates_coalesced.load(Ordering::Relaxed)),
        );
        m.insert(
            "barrier_flushes".into(),
            Value::from(self.barrier_flushes.load(Ordering::Relaxed)),
        );
        m.insert(
            "queue_depth".into(),
            Value::from(self.queue_depth.load(Ordering::Relaxed)),
        );
        m.insert("queue_wait".into(), self.queue_wait.snapshot());
        Value::Object(m)
    }
}

/// All server metrics. One instance lives in the server's shared state.
#[derive(Debug)]
pub struct Metrics {
    start: Instant,
    endpoints: [EndpointStats; ALL_OPS.len()],
    /// Admission-queue wait per batched work item (enqueue → leader
    /// pickup), across all lanes; the `errors` column is unused.
    queue_wait: EndpointStats,
    /// Per-lane shards of the batching counters. The global aggregates
    /// below stay authoritative (and backward compatible); each shard
    /// holds its lane's slice.
    lanes: Vec<LaneShard>,
    /// Batches executed by the admission queue's leader(s).
    pub batches: AtomicU64,
    /// Work items that went through a batch.
    pub batched_items: AtomicU64,
    /// Items answered by riding an identical in-flight item
    /// (admission-queue coalescing).
    pub coalesced_items: AtomicU64,
    /// Updates that merged into a preceding adjacent same-session
    /// update's write-lock acquisition (a run of *n* counts *n − 1*).
    pub updates_coalesced: AtomicU64,
    /// Update-free segments flushed early because an update barrier
    /// followed them in the batch (the cost per-session barriers
    /// avoid paying for *other* sessions' work).
    pub barrier_flushes: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Connections refused at the accept loop because the server was
    /// at its connection cap. One counter shared by every lane —
    /// refusal happens before lane routing.
    pub overload_refusals: AtomicU64,
    /// Requests that missed their deadline (refused at leader pickup
    /// already expired, or cancelled mid-run by deadline expiry).
    pub deadline_exceeded: AtomicU64,
    /// Requests cancelled because their client disconnected mid-flight.
    pub cancelled_disconnect: AtomicU64,
    /// Requests refused at dispatch by the pressure watermarks (lane
    /// queue depth or resident bytes), answered with `retry_after_ms`.
    pub shed: AtomicU64,
    /// Cache entries (result rows, plans, semantic-cache answers)
    /// dropped by eviction passes the resident-bytes watermark
    /// triggered.
    pub pressure_evictions: AtomicU64,
    /// Connections dropped because a response write timed out.
    pub write_timeouts: AtomicU64,
    /// How far past its deadline a deadline-carrying request was
    /// answered (µs; 0 for requests answered in time). Bounds the
    /// cancellation check's reaction lag.
    pub deadline_overrun: EndpointStats,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::with_lanes(1)
    }
}

impl Metrics {
    /// Fresh single-lane metrics with the uptime clock starting now.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Fresh metrics sharded over `lanes` admission lanes (at least 1).
    pub fn with_lanes(lanes: usize) -> Metrics {
        Metrics {
            start: Instant::now(),
            endpoints: Default::default(),
            queue_wait: EndpointStats::default(),
            lanes: (0..lanes.max(1)).map(|_| LaneShard::default()).collect(),
            batches: AtomicU64::new(0),
            batched_items: AtomicU64::new(0),
            coalesced_items: AtomicU64::new(0),
            updates_coalesced: AtomicU64::new(0),
            barrier_flushes: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            overload_refusals: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            cancelled_disconnect: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            pressure_evictions: AtomicU64::new(0),
            write_timeouts: AtomicU64::new(0),
            deadline_overrun: EndpointStats::default(),
        }
    }

    /// The shard for lane `i`. Out-of-range lanes (a standalone
    /// `Batcher` built against single-lane metrics) fold onto lane 0
    /// rather than panic.
    pub fn lane(&self, i: usize) -> &LaneShard {
        self.lanes.get(i).unwrap_or(&self.lanes[0])
    }

    /// Number of lane shards.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Records one request's latency and outcome.
    pub fn record(&self, op: Op, latency: Duration, ok: bool) {
        self.endpoints[op.index()].record(latency, ok);
    }

    /// Total requests recorded for `op`.
    pub fn count(&self, op: Op) -> u64 {
        self.endpoints[op.index()].count.load(Ordering::Relaxed)
    }

    /// Records one work item's admission-queue wait (enqueue → leader
    /// pickup) against the global histogram only.
    pub fn record_queue_wait(&self, wait: Duration) {
        self.queue_wait.record(wait, true);
    }

    /// Records one work item's admission-queue wait against both the
    /// global histogram and lane `lane`'s shard.
    pub fn record_lane_queue_wait(&self, lane: usize, wait: Duration) {
        self.queue_wait.record(wait, true);
        self.lane(lane).queue_wait.record(wait, true);
    }

    /// Time since the metrics (and server) started.
    pub fn uptime(&self) -> Duration {
        self.start.elapsed()
    }

    /// The `stats` response body (endpoint table + batching counters +
    /// uptime). Cache counters are appended by the server, which owns
    /// the sessions.
    pub fn snapshot(&self) -> Map<String, Value> {
        let mut endpoints = Map::new();
        for op in ALL_OPS {
            endpoints.insert(op.as_str().into(), self.endpoints[op.index()].snapshot());
        }
        let mut batching = Map::new();
        batching.insert(
            "batches".into(),
            Value::from(self.batches.load(Ordering::Relaxed)),
        );
        batching.insert(
            "batched_items".into(),
            Value::from(self.batched_items.load(Ordering::Relaxed)),
        );
        batching.insert(
            "coalesced_items".into(),
            Value::from(self.coalesced_items.load(Ordering::Relaxed)),
        );
        batching.insert(
            "updates_coalesced".into(),
            Value::from(self.updates_coalesced.load(Ordering::Relaxed)),
        );
        batching.insert(
            "barrier_flushes".into(),
            Value::from(self.barrier_flushes.load(Ordering::Relaxed)),
        );
        let mut lane_detail = Map::new();
        for (i, shard) in self.lanes.iter().enumerate() {
            lane_detail.insert(i.to_string(), shard.snapshot());
        }
        let mut lanes = Map::new();
        lanes.insert("count".into(), Value::from(self.lanes.len()));
        lanes.insert("detail".into(), Value::Object(lane_detail));
        let mut m = Map::new();
        m.insert(
            "uptime_us".into(),
            Value::from(self.start.elapsed().as_micros() as u64),
        );
        m.insert(
            "connections".into(),
            Value::from(self.connections.load(Ordering::Relaxed)),
        );
        m.insert(
            "overload_refusals".into(),
            Value::from(self.overload_refusals.load(Ordering::Relaxed)),
        );
        m.insert("endpoints".into(), Value::Object(endpoints));
        m.insert("batching".into(), Value::Object(batching));
        m.insert("queue_wait".into(), self.queue_wait.snapshot());
        m.insert("lanes".into(), Value::Object(lanes));
        let mut resilience = Map::new();
        resilience.insert(
            "deadline_exceeded".into(),
            Value::from(self.deadline_exceeded.load(Ordering::Relaxed)),
        );
        resilience.insert(
            "cancelled_disconnect".into(),
            Value::from(self.cancelled_disconnect.load(Ordering::Relaxed)),
        );
        resilience.insert(
            "shed".into(),
            Value::from(self.shed.load(Ordering::Relaxed)),
        );
        resilience.insert(
            "pressure_evictions".into(),
            Value::from(self.pressure_evictions.load(Ordering::Relaxed)),
        );
        resilience.insert(
            "write_timeouts".into(),
            Value::from(self.write_timeouts.load(Ordering::Relaxed)),
        );
        resilience.insert("deadline_overrun".into(), self.deadline_overrun.snapshot());
        m.insert("resilience".into(), Value::Object(resilience));
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_boundaries_are_exact() {
        // Bucket 0 holds only 0 µs; bucket i ≥ 1 covers [2^(i-1), 2^i).
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        for k in 1..18u32 {
            let p = 1u64 << k;
            assert_eq!(bucket_of(p - 1), k as usize, "2^{k} - 1 stays below");
            assert_eq!(bucket_of(p), k as usize + 1, "2^{k} opens bucket {}", k + 1);
        }
        // The overflow bucket starts at 2^(BUCKETS-2) and is unbounded.
        let overflow_lo = 1u64 << (BUCKETS - 2);
        assert_eq!(bucket_of(overflow_lo - 1), BUCKETS - 2);
        assert_eq!(bucket_of(overflow_lo), BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Edges are the largest value each bucket holds.
        assert_eq!(bucket_edge_us(0), 0);
        assert_eq!(bucket_edge_us(1), 1);
        assert_eq!(bucket_edge_us(2), 3);
        for k in 1..BUCKETS - 1 {
            assert_eq!(bucket_edge_us(k), (1u64 << k) - 1);
            assert_eq!(bucket_of(bucket_edge_us(k)), k, "edge stays in bucket");
            assert_eq!(bucket_of(bucket_edge_us(k) + 1), k + 1, "edge + 1 leaves");
        }
    }

    #[test]
    fn quantiles_report_inclusive_bucket_edges() {
        for (us, edge) in [(0u64, 0u64), (1, 1), (2, 3), (1024, 2047), (4096, 8191)] {
            let e = EndpointStats::default();
            e.record(Duration::from_micros(us), true);
            assert_eq!(e.quantile_us(0.5), edge, "single sample at {us} µs");
            assert!(e.quantile_us(0.5) >= us, "edge never under-reports");
        }
        // Overflow bucket saturates at its nominal edge.
        let e = EndpointStats::default();
        e.record(Duration::from_micros(1 << 30), true);
        assert_eq!(e.quantile_us(0.99), (1u64 << (BUCKETS - 1)) - 1);
    }

    #[test]
    fn snapshot_reports_counts_and_percentiles() {
        let m = Metrics::new();
        for us in [1u64, 2, 4, 100, 10_000] {
            m.record(Op::Check, Duration::from_micros(us), true);
        }
        m.record(Op::Check, Duration::from_micros(50), false);
        m.record(Op::Eval, Duration::from_micros(3), true);
        assert_eq!(m.count(Op::Check), 6);
        let snap = Value::Object(m.snapshot());
        assert_eq!(snap["endpoints"]["check"]["count"], 6u64);
        assert_eq!(snap["endpoints"]["check"]["errors"], 1u64);
        assert_eq!(snap["endpoints"]["eval"]["count"], 1u64);
        assert!(snap["endpoints"]["check"]["p50_us"].as_u64().unwrap() >= 4);
        assert!(snap["endpoints"]["check"]["p99_us"].as_u64().unwrap() >= 8192);
        assert_eq!(snap["endpoints"]["stats"]["count"], 0u64);
    }

    #[test]
    fn lane_shards_appear_in_snapshot() {
        let m = Metrics::with_lanes(2);
        m.lane(1).batches.fetch_add(3, Ordering::Relaxed);
        m.record_lane_queue_wait(1, Duration::from_micros(5));
        m.overload_refusals.fetch_add(1, Ordering::Relaxed);
        let snap = Value::Object(m.snapshot());
        assert_eq!(snap["lanes"]["count"], 2u64);
        assert_eq!(snap["lanes"]["detail"]["1"]["batches"], 3u64);
        assert_eq!(snap["lanes"]["detail"]["1"]["queue_wait"]["count"], 1u64);
        assert_eq!(snap["lanes"]["detail"]["0"]["batches"], 0u64);
        assert_eq!(snap["overload_refusals"], 1u64);
        assert_eq!(
            snap["queue_wait"]["count"], 1u64,
            "lane waits feed the global histogram too"
        );
        // Out-of-range lane indexes fold onto lane 0 instead of panicking.
        assert_eq!(Metrics::new().lane(7).batches.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn resilience_counters_appear_in_snapshot() {
        let m = Metrics::new();
        m.deadline_exceeded.fetch_add(2, Ordering::Relaxed);
        m.cancelled_disconnect.fetch_add(1, Ordering::Relaxed);
        m.shed.fetch_add(3, Ordering::Relaxed);
        m.write_timeouts.fetch_add(1, Ordering::Relaxed);
        m.deadline_overrun.record(Duration::from_micros(40), true);
        let snap = Value::Object(m.snapshot());
        assert_eq!(snap["resilience"]["deadline_exceeded"], 2u64);
        assert_eq!(snap["resilience"]["cancelled_disconnect"], 1u64);
        assert_eq!(snap["resilience"]["shed"], 3u64);
        assert_eq!(snap["resilience"]["pressure_evictions"], 0u64);
        assert_eq!(snap["resilience"]["write_timeouts"], 1u64);
        assert_eq!(snap["resilience"]["deadline_overrun"]["count"], 1u64);
    }

    #[test]
    fn quantiles_of_empty_endpoint_are_absent() {
        let m = Metrics::new();
        let snap = Value::Object(m.snapshot());
        assert!(matches!(
            snap["endpoints"]["register"]["p50_us"],
            Value::Null
        ));
    }
}
