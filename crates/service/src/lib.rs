//! # cqchase-service — the resident containment/evaluation server
//!
//! Every consumer of the library pays index/plan build cost per
//! process. The ROADMAP's serving scenario wants the opposite shape —
//! the exemplar scheduler/kg-service repos all converge on it — a
//! long-running process owning warm state behind a small request
//! protocol. Johnson & Klug's reduction makes the residency unusually
//! profitable here: every operation (containment, evaluation,
//! classification) is a hom-search against state the server keeps hot.
//!
//! * [`proto`] — the wire protocol: one JSON object per line
//!   (`register`, `update`, `check`, `eval`, `classify`, `stats`,
//!   `shutdown`), on the offline `serde_json` shim;
//! * [`session`] — named sessions: catalog + Σ + queries registered
//!   once and served over warm `DbIndex` / bounded `PlanCache` state;
//!   the **facts are live** — `update` deltas flow through incremental
//!   index maintenance under a facts epoch that invalidates exactly the
//!   eval-dependent caches (containment answers and satisfiable plans
//!   survive);
//! * [`catalog`] — the shared immutable catalog layer: sessions
//!   registering the same program attach to one refcounted
//!   `FrozenCatalog` (parsed program, Σ class, base facts + index, one
//!   shared plan cache) and promote to private facts copy-on-write at
//!   their first effective update;
//! * [`batch`] — the admission/batching queue: concurrent requests
//!   coalesce into `cqchase-par` batch runs (chase sharing, identical
//!   in-flight requests answered once); updates are epoch barriers that
//!   serialize against in-flight batch compute;
//! * [`lanes`] — sharded session lanes: session names hash onto N
//!   independent admission queues, each with its own batch leader,
//!   thread-pool slice, and metrics shard, so many-tenant traffic stops
//!   contending on one queue mutex;
//! * [`cache`] — the semantic cache: containment answers keyed by the
//!   *isomorphism class* of `(Q, Q′, Σ)` via [`cqchase_core::iso_key`],
//!   verified by [`cqchase_core::is_isomorphic`], bounded LRU;
//! * [`durable`] — crash-safe persistence over `cqchase-durability`:
//!   with a data directory configured, registrations and update batches
//!   are write-ahead logged (fsync **before** acknowledgement), the
//!   registry snapshots/restores across restarts, and a torn WAL tail
//!   from a crash mid-append is recovered cleanly;
//! * [`metrics`] — lock-free per-endpoint counters and latency
//!   histograms behind the `stats` endpoint, with a Prometheus-style
//!   text exposition of the same payload behind `metrics`
//!   (`cqchase-obs`), per-request span tracing, and a slow-query log
//!   (`--slow-query-us`);
//! * [`server`] — the `std::net` TCP server (bounded handler pool,
//!   graceful shutdown);
//! * [`client`] — the blocking client library the CLI (`cqchase serve`
//!   / `cqchase request`) and load generator are built on.
//!
//! Correctness contract: the server returns exactly what the in-process
//! engines return — a multi-client concurrent workload is
//! differential-tested bit-identical to sequential
//! `containment::check` / `eval::evaluate` calls, and the semantic
//! cache never changes an answer (cache-on vs cache-off property
//! tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod catalog;
pub mod client;
pub mod durable;
pub mod lanes;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod session;

pub use batch::{BarrierMode, Batcher, Outcome, TraceAnnotations, Work};
pub use cache::{CacheStats, SemanticCache};
pub use catalog::{BaseFacts, CatalogRegistry, FrozenCatalog};
pub use client::{Client, ClientError, RetryPolicy};
pub use durable::{Durability, RecoveryReport};
pub use lanes::{lane_of, LaneSet};
pub use metrics::Metrics;
pub use proto::{CheckSummary, FactSpec, Op, Request};
pub use server::{default_lanes, ServeOptions, Server};
pub use session::{Session, SessionRegistry, UpdateSummary};
