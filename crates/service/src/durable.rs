//! The service-side durability layer: converts live [`Session`]s to and
//! from the plain records of `cqchase-durability`, and owns the
//! acknowledgement protocol — **nothing is reported done until its WAL
//! record is fsync'd**.
//!
//! Ordering guarantees, all enforced under one `gate` RwLock:
//!
//! * *register-before-update*: a session's `Register` record is durable
//!   before any of its `Update` records can be logged, so replay never
//!   meets an update for an unknown session;
//! * *register acknowledgement*: a registration whose record cannot be
//!   made durable is rolled back out of the registry and reported as an
//!   error — the client must not believe in a session a restart forgets;
//! * *update acknowledgement*: an update batch's valid deltas are
//!   logged (and fsync'd) first, then applied; a log failure reports
//!   every valid delta as an error and applies nothing;
//! * *snapshot consistency*: a snapshot is rendered and installed with
//!   no log/apply in flight, so rotation can delete the old WAL without
//!   losing an acknowledged update that missed the snapshot.
//!
//! Registrations and updates hold the gate **shared** — independent
//! sessions' mutations overlap (their WAL appends still serialize on
//! the store's internal lock, but validation and the in-memory apply
//! run concurrently); only snapshot rotation takes it exclusively, as
//! the one operation that must see no log/apply in flight. Correctness
//! of shared-mode updates rests on a caller contract: updates to the
//! *same* session must be submitted serially, so WAL order and apply
//! order agree per session — records of different sessions commute on
//! replay. The admission queue guarantees this even with N sharded
//! lanes: a session's name hashes it onto exactly one lane
//! ([`crate::lanes::lane_of`]), so all its updates flow through that
//! lane's single batch leader; the N leaders only ever interleave
//! *different* sessions' records.
//!
//! Sessions rebuilt here attach to shared catalogs: WAL `Register`
//! replay goes through the [`CatalogRegistry`], and snapshot restore
//! groups records by catalog identity so sessions that snapshotted
//! identical programs re-share one base after recovery exactly as they
//! did before the crash (a session whose facts had diverged gets a
//! private build — sharing a base no other tenant wants would just
//! double its memory).
//!
//! The gate serializes mutation *durability*, not reads: `check`/`eval`
//! traffic never touches it, and the per-session coalescing of the
//! admission queue still batches adjacent updates into one WAL record.

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};

use cqchase_durability::{
    Recovered, SessionRecord, Store, StoreError, UpdateDelta, WalRecord, DEFAULT_ROTATE_BYTES,
};
use cqchase_ir::{parse_program, Program};
use cqchase_obs::{SpanKind, Tracer};
use serde_json::{Map, Value};

use crate::catalog::{catalog_key, program_schema_text, CatalogRegistry};
use crate::proto::FactSpec;
use crate::session::{Session, SessionRegistry, UpdateSummary};

pub use cqchase_durability::{MemIo, StdIo, StorageIo};

/// What recovery found and rebuilt, reported once at boot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sessions restored from the snapshot.
    pub snapshot_sessions: usize,
    /// WAL records replayed on top of the snapshot.
    pub wal_records_replayed: usize,
    /// Description of a torn WAL tail that was truncated away, if any.
    pub torn_tail: Option<String>,
    /// True when the data directory held no prior state.
    pub fresh: bool,
}

impl RecoveryReport {
    /// The report as one structured JSON object — logged as a single
    /// line at boot so recovery outcomes are machine-grepable.
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("event".into(), Value::from("recovery"));
        m.insert(
            "snapshot_sessions".into(),
            Value::from(self.snapshot_sessions),
        );
        m.insert(
            "wal_records_replayed".into(),
            Value::from(self.wal_records_replayed),
        );
        m.insert("fresh".into(), Value::from(self.fresh));
        m.insert(
            "torn_tail".into(),
            match &self.torn_tail {
                Some(t) => Value::from(t.as_str()),
                None => Value::Null,
            },
        );
        Value::Object(m)
    }
}

/// Durable session persistence wired over a [`SessionRegistry`].
#[derive(Debug)]
pub struct Durability {
    store: Store,
    registry: Arc<SessionRegistry>,
    sem_cache_capacity: usize,
    plan_cache_capacity: usize,
    /// The catalog table sessions attach to — both live registrations
    /// and recovery replays route through it, so sessions over the same
    /// program share one frozen catalog across restarts too.
    catalogs: Arc<CatalogRegistry>,
    /// Names whose registration is durable (in the snapshot or a logged
    /// `Register` record). `log_update` refuses anything else, which is
    /// what makes replay order register-before-update airtight.
    logged: Mutex<HashSet<String>>,
    /// Excludes snapshotting (exclusive) from in-flight registrations
    /// and durable updates (shared) — see the module docs for the
    /// ordering story and the per-session serialization contract.
    gate: RwLock<()>,
}

/// Freezes a live session into a snapshot record. The facts lock is
/// held shared for the whole render, so the facts and their epoch are
/// one consistent cut. The schema text comes from the same canonical
/// renderer catalog identity uses ([`program_schema_text`]), so a
/// restored session re-keys onto the catalog it shared before.
fn render_session(session: &Session) -> SessionRecord {
    let cat = &session.program().catalog;
    let facts = session.facts.read().expect("facts lock");
    let mut relations = Vec::new();
    for (rel, inst) in facts.db().iter() {
        let rows: Vec<Vec<cqchase_ir::Constant>> = inst
            .tuples()
            .map(|t| {
                t.iter()
                    .map(|v| v.as_const().expect("session facts are ground").clone())
                    .collect()
            })
            .collect();
        if !rows.is_empty() {
            relations.push((cat.name(rel).to_owned(), rows));
        }
    }
    SessionRecord {
        name: session.name.clone(),
        schema: program_schema_text(session.program()),
        epoch: facts.epoch,
        relations,
    }
}

/// Re-parses a snapshot record into a program: schema text through the
/// parser, binary facts attached.
fn restore_program(rec: &SessionRecord) -> Result<Program, String> {
    let mut program = parse_program(&rec.schema).map_err(|e| e.to_string())?;
    let mut facts = Vec::new();
    for (rel, rows) in &rec.relations {
        let id = program
            .catalog
            .resolve(rel)
            .ok_or_else(|| format!("snapshot facts name unknown relation `{rel}`"))?;
        for row in rows {
            facts.push((id, row.clone()));
        }
    }
    program.facts = facts;
    Ok(program)
}

impl Durability {
    /// Opens a data directory, replays its state into `registry`, and
    /// returns the durability layer plus a boot report. Corruption
    /// anywhere but a torn WAL tail fails the boot.
    pub fn open(
        io: Arc<dyn StorageIo>,
        dir: &Path,
        wal_rotate_bytes: Option<u64>,
        registry: Arc<SessionRegistry>,
        sem_cache_capacity: usize,
        plan_cache_capacity: usize,
    ) -> Result<(Durability, RecoveryReport), StoreError> {
        let rotate = wal_rotate_bytes.unwrap_or(DEFAULT_ROTATE_BYTES);
        let (store, recovered) = Store::open(io, dir, rotate)?;
        let corrupt = |file: &str, reason: String| StoreError::Corrupt {
            file: dir.join(file),
            offset: 0,
            reason,
        };
        let Recovered {
            sessions,
            wal,
            seq,
            torn_tail,
        } = recovered;
        let fresh = sessions.is_empty() && wal.is_empty() && seq == 0;

        let catalogs = Arc::new(CatalogRegistry::new(plan_cache_capacity));
        let snapshot_sessions = sessions.len();
        let mut logged = HashSet::new();
        // Restore in two passes: parse every record, group by catalog
        // identity, then share one frozen catalog among the groups of
        // two or more. A session whose facts diverged from everyone
        // else's gets a plain private build — parking its base in the
        // registry would hold a second copy resident after its next
        // update promotes it.
        let mut programs = Vec::with_capacity(sessions.len());
        let mut key_counts: HashMap<String, usize> = HashMap::new();
        for rec in &sessions {
            let program = restore_program(rec).map_err(|e| {
                corrupt(
                    &format!("snap-{seq}"),
                    format!("session `{}`: {e}", rec.name),
                )
            })?;
            *key_counts.entry(catalog_key(&program)).or_insert(0) += 1;
            programs.push(program);
        }
        for (rec, program) in sessions.iter().zip(programs) {
            let shared = key_counts[&catalog_key(&program)] > 1;
            let session = if shared {
                catalogs.session_from_program(
                    &rec.name,
                    program,
                    sem_cache_capacity,
                    plan_cache_capacity,
                )
            } else {
                Session::from_program(&rec.name, program, sem_cache_capacity, plan_cache_capacity)
            }
            .map_err(|e| {
                corrupt(
                    &format!("snap-{seq}"),
                    format!("session `{}`: {e}", rec.name),
                )
            })?;
            // Answers must be bit-identical to the pre-crash session,
            // and the epoch is part of observable state (update
            // summaries, stats).
            session.facts.write().expect("facts lock").epoch = rec.epoch;
            registry
                .insert_new(session)
                .map_err(|e| corrupt(&format!("snap-{seq}"), e))?;
            logged.insert(rec.name.clone());
        }

        let wal_file = format!("wal-{seq}");
        let wal_records_replayed = wal.len();
        for rec in wal {
            match rec {
                WalRecord::Register { name, program } => {
                    // A duplicate Register (snapshot already has the
                    // session) is the benign race of a registration
                    // logged just after a snapshot rendered it.
                    if registry.check_free(&name).is_ok() {
                        let session = catalogs
                            .session_from_source(
                                &name,
                                &program,
                                sem_cache_capacity,
                                plan_cache_capacity,
                            )
                            .map_err(|e| {
                                corrupt(&wal_file, format!("replaying register `{name}`: {e}"))
                            })?;
                        registry
                            .insert_new(session)
                            .map_err(|e| corrupt(&wal_file, e))?;
                    }
                    logged.insert(name);
                }
                WalRecord::Update { session, deltas } => {
                    let s = registry.get(&session).map_err(|e| {
                        corrupt(
                            &wal_file,
                            format!("replaying update: {e} (wal out of order)"),
                        )
                    })?;
                    for result in s.apply_updates(&deltas) {
                        result.map_err(|e| {
                            corrupt(&wal_file, format!("replaying update for `{session}`: {e}"))
                        })?;
                    }
                }
            }
        }

        let durability = Durability {
            store,
            registry,
            sem_cache_capacity,
            plan_cache_capacity,
            catalogs,
            logged: Mutex::new(logged),
            gate: RwLock::new(()),
        };
        let report = RecoveryReport {
            snapshot_sessions,
            wal_records_replayed,
            torn_tail,
            fresh,
        };
        Ok((durability, report))
    }

    /// Records the WAL append + fsync of `record` as a [`SpanKind::Fsync`]
    /// span on every trace id, when tracing is active.
    fn log_spanned(
        &self,
        record: &WalRecord,
        trace: Option<(&Tracer, &[u64])>,
    ) -> Result<(), StoreError> {
        let start = trace.map(|(t, _)| t.now_us());
        let result = self.store.log(record);
        if let (Some((tracer, ids)), Some(start)) = (trace, start) {
            let end = tracer.now_us();
            for &id in ids {
                tracer.record(id, SpanKind::Fsync, start, end);
            }
        }
        result
    }

    /// Registers a session durably: builds it, inserts it, and logs the
    /// `Register` record — rolling the insertion back if the record
    /// cannot be fsync'd, so a successful reply survives a restart and
    /// a failed one leaves no session behind.
    pub fn register(&self, name: &str, program: &str) -> Result<Arc<Session>, String> {
        self.register_traced(name, program, None)
    }

    /// [`Durability::register`] with the WAL fsync recorded as a span on
    /// the request's trace id when tracing is active.
    pub fn register_traced(
        &self,
        name: &str,
        program: &str,
        trace: Option<(&Tracer, u64)>,
    ) -> Result<Arc<Session>, String> {
        // Fail fast and build outside the gate: parsing and index
        // construction are the expensive part (or an instant catalog
        // attach), and `insert_new` stays the atomic arbiter for name
        // races.
        self.registry.check_free(name)?;
        let session = self.catalogs.session_from_source(
            name,
            program,
            self.sem_cache_capacity,
            self.plan_cache_capacity,
        )?;
        let _gate = self.gate.read().expect("durability gate");
        let arc = self.registry.insert_new(session)?;
        let record = WalRecord::Register {
            name: name.to_owned(),
            program: program.to_owned(),
        };
        let ids = trace.map(|(_, id)| [id]);
        let span = match (&trace, &ids) {
            (Some((t, _)), Some(ids)) => Some((*t, &ids[..])),
            _ => None,
        };
        if let Err(e) = self.log_spanned(&record, span) {
            self.registry.remove(name);
            return Err(format!("registration not persisted: {e}"));
        }
        self.logged
            .lock()
            .expect("durability logged set")
            .insert(name.to_owned());
        drop(_gate);
        self.maybe_rotate();
        Ok(arc)
    }

    /// Applies an update batch durably: validates each delta as
    /// [`Session::apply_updates`] will, logs the valid subset as one
    /// WAL record, fsyncs, and only then applies — so every summary
    /// handed back describes a change a restart will reproduce. When
    /// the record cannot be made durable, every valid delta reports the
    /// log error and **nothing** is applied.
    ///
    /// Callers must not invoke this concurrently for the **same**
    /// session (the admission queue's single batch leader guarantees
    /// this): concurrent same-session batches could log in one order
    /// and apply in another, making replay diverge from the live
    /// session. Different sessions may update concurrently.
    pub fn apply_updates(
        &self,
        session: &Session,
        deltas: &[(Vec<FactSpec>, Vec<FactSpec>)],
    ) -> Vec<Result<UpdateSummary, String>> {
        self.apply_updates_traced(session, deltas, None)
    }

    /// [`Durability::apply_updates`] with the WAL fsync recorded as a
    /// [`SpanKind::Fsync`] span on every waiter's trace id (a coalesced
    /// update run logs once; every rider shares the wait).
    pub fn apply_updates_traced(
        &self,
        session: &Session,
        deltas: &[(Vec<FactSpec>, Vec<FactSpec>)],
        trace: Option<(&Tracer, &[u64])>,
    ) -> Vec<Result<UpdateSummary, String>> {
        let gate = self.gate.read().expect("durability gate");
        if !self
            .logged
            .lock()
            .expect("durability logged set")
            .contains(&session.name)
        {
            // Unreachable through the server (every registered session
            // was logged), but the invariant is what keeps the WAL
            // replayable — refuse rather than corrupt.
            let err = format!("session `{}` is not durably registered", session.name);
            return deltas.iter().map(|_| Err(err.clone())).collect();
        }
        let valid: Vec<bool> = deltas
            .iter()
            .map(|(insert, delete)| session.validate_update(insert, delete).is_ok())
            .collect();
        let durable_deltas: Vec<UpdateDelta> = deltas
            .iter()
            .zip(&valid)
            .filter(|(_, ok)| **ok)
            .map(|((insert, delete), _)| (insert.clone(), delete.clone()))
            .collect();
        if !durable_deltas.is_empty() {
            let record = WalRecord::Update {
                session: session.name.clone(),
                deltas: durable_deltas,
            };
            if let Err(e) = self.log_spanned(&record, trace) {
                // Nothing applies: report the log failure on every
                // delta that would have applied, and plain validation
                // errors on the rest.
                let log_err = format!("update not persisted: {e}");
                return deltas
                    .iter()
                    .zip(&valid)
                    .map(|((insert, delete), ok)| {
                        if *ok {
                            Err(log_err.clone())
                        } else {
                            Err(session
                                .validate_update(insert, delete)
                                .expect_err("delta failed validation above"))
                        }
                    })
                    .collect();
            }
        }
        let out = session.apply_updates(deltas);
        drop(gate);
        self.maybe_rotate();
        out
    }

    /// The catalog table this durability layer attaches sessions to —
    /// the server shares it so the durable and non-durable register
    /// paths agree on catalog identity.
    pub fn catalogs(&self) -> &Arc<CatalogRegistry> {
        &self.catalogs
    }

    /// Forces a snapshot of every registered session, rotating the WAL.
    /// Returns `(sequence number, sessions snapshotted)`.
    pub fn persist(&self) -> Result<(u64, usize), String> {
        let _gate = self.gate.write().expect("durability gate");
        self.persist_locked()
    }

    fn persist_locked(&self) -> Result<(u64, usize), String> {
        let sessions = self.registry.snapshot();
        let records: Vec<SessionRecord> = sessions.iter().map(|s| render_session(s)).collect();
        self.store
            .install_snapshot(&records)
            .map_err(|e| format!("snapshot not persisted: {e}"))?;
        // Post-rotation, the snapshot itself is every session's
        // durable registration.
        *self.logged.lock().expect("durability logged set") =
            records.iter().map(|r| r.name.clone()).collect();
        Ok((self.store.seq(), records.len()))
    }

    /// Rotates the WAL into a fresh snapshot once it outgrows the
    /// threshold (or was poisoned by a failed rollback). Best-effort:
    /// the next mutation retries on failure.
    fn maybe_rotate(&self) {
        if self.store.should_rotate() {
            let _gate = self.gate.write().expect("durability gate");
            if self.store.should_rotate() {
                let _ = self.persist_locked();
            }
        }
    }

    /// The `durability` block of the `stats` response.
    pub fn stats_block(&self) -> Value {
        let stats = self.store.stats();
        let mut m = Map::new();
        m.insert("enabled".into(), Value::from(true));
        m.insert("seq".into(), Value::from(self.store.seq()));
        m.insert(
            "snapshots_written".into(),
            Value::from(stats.snapshots_written()),
        );
        m.insert("wal_records".into(), Value::from(stats.wal_records()));
        m.insert("wal_bytes".into(), Value::from(stats.wal_bytes()));
        m.insert("wal_len".into(), Value::from(self.store.wal_len()));
        m.insert("fsyncs".into(), Value::from(stats.fsyncs()));
        m.insert("fsync_total_us".into(), Value::from(stats.fsync_total_us()));
        m.insert(
            "fsync_histogram_us_pow2".into(),
            Value::Array(
                stats
                    .fsync_histogram()
                    .iter()
                    .map(|&c| Value::from(c))
                    .collect(),
            ),
        );
        m.insert("recoveries".into(), Value::from(stats.recoveries()));
        m.insert(
            "torn_tails_discarded".into(),
            Value::from(stats.torn_tails_discarded()),
        );
        Value::Object(m)
    }

    /// The stats placeholder when the server runs without a data dir.
    pub fn disabled_stats_block() -> Value {
        let mut m = Map::new();
        m.insert("enabled".into(), Value::from(false));
        Value::Object(m)
    }
}
