//! A session: the warm, resident state one `register` request builds
//! and many `check`/`eval` requests reuse.
//!
//! This is the whole point of running a server instead of linking the
//! library: the catalog, Σ, its classification and fingerprint, the
//! ground facts' [`DbIndex`] (interned symbols + column posting lists),
//! a bounded [`PlanCache`] of compiled evaluation plans, and the
//! semantic containment cache are all built once at registration and
//! then served hot. A session is immutable after construction except
//! for its two mutexed caches, so any number of connection threads can
//! share it (`Arc<Session>`) without coordination on the read paths.

use std::sync::Mutex;

use cqchase_core::{classify, ContainmentOptions, SigmaClass};
use cqchase_index::{JoinScratch, PlanCache};
use cqchase_ir::{parse_program, ConjunctiveQuery, Program};
use cqchase_storage::{evaluate_indexed_with, Database, DbIndex, Tuple};

use crate::cache::{sigma_fingerprint, SemanticCache};

/// Warm per-session evaluation state: compiled plans and join scratch,
/// both dedicated to the session's index.
#[derive(Debug)]
pub struct EvalState {
    /// Bounded plan cache (dedicated to this session's [`DbIndex`]).
    pub plans: PlanCache,
    /// Reusable join working memory.
    pub scratch: JoinScratch,
}

/// One registered session. See the module docs.
#[derive(Debug)]
pub struct Session {
    /// The session name (registry key).
    pub name: String,
    /// The parsed program: catalog, Σ, queries, ground facts.
    pub program: Program,
    /// Σ's classification (selects the decision procedure).
    pub class: SigmaClass,
    /// Stable rendering of `class` for the wire.
    pub class_name: String,
    /// Fingerprint of Σ for semantic-cache keys.
    pub sigma_fp: u64,
    /// The ground facts as a database.
    pub db: Database,
    /// Warm column indexes over `db`.
    pub index: DbIndex,
    /// Containment options every check in this session runs under
    /// (fixed at registration, so cached answers are deterministic).
    pub opts: ContainmentOptions,
    /// Warm evaluation state (plan cache + scratch).
    pub eval_state: Mutex<EvalState>,
    /// The semantic containment cache.
    pub sem_cache: Mutex<SemanticCache>,
}

/// Stable one-line rendering of a Σ class (the `Debug` form of
/// `KeyBased` includes a hash map, whose iteration order must not leak
/// onto the wire).
pub fn class_name(class: &SigmaClass) -> String {
    match class {
        SigmaClass::Empty => "Empty".into(),
        SigmaClass::FdsOnly => "FdsOnly".into(),
        SigmaClass::IndsOnly { width } => format!("IndsOnly(width={width})"),
        SigmaClass::KeyBased { width, .. } => format!("KeyBased(width={width})"),
        SigmaClass::Mixed => "Mixed".into(),
    }
}

impl Session {
    /// Builds a session from program text (the `register` path).
    pub fn new(
        name: &str,
        program_src: &str,
        sem_cache_capacity: usize,
        plan_cache_capacity: usize,
    ) -> Result<Session, String> {
        let program = parse_program(program_src).map_err(|e| e.to_string())?;
        Session::from_program(name, program, sem_cache_capacity, plan_cache_capacity)
    }

    /// Builds a session from an already-parsed program (tests and
    /// benchmarks assemble programs programmatically).
    pub fn from_program(
        name: &str,
        program: Program,
        sem_cache_capacity: usize,
        plan_cache_capacity: usize,
    ) -> Result<Session, String> {
        let db =
            Database::from_facts(&program.catalog, &program.facts).map_err(|e| e.to_string())?;
        let index = DbIndex::build(&db);
        let class = classify(&program.deps, &program.catalog);
        Ok(Session {
            name: name.to_owned(),
            class_name: class_name(&class),
            sigma_fp: sigma_fingerprint(&program.deps, &program.catalog),
            class,
            db,
            index,
            opts: ContainmentOptions::default(),
            eval_state: Mutex::new(EvalState {
                plans: PlanCache::with_capacity(plan_cache_capacity),
                scratch: JoinScratch::new(),
            }),
            sem_cache: Mutex::new(SemanticCache::new(sem_cache_capacity)),
            program,
        })
    }

    /// Index of a query by name, for the batch engines.
    pub fn query_index(&self, name: &str) -> Result<usize, String> {
        self.program
            .queries
            .iter()
            .position(|q| q.name == name)
            .ok_or_else(|| {
                format!(
                    "no query named `{name}` in session `{}` (declared: {})",
                    self.name,
                    self.program
                        .queries
                        .iter()
                        .map(|q| q.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
    }

    /// The query at `idx`.
    pub fn query(&self, idx: usize) -> &ConjunctiveQuery {
        &self.program.queries[idx]
    }

    /// Evaluates the query at `idx` over the session's facts with the
    /// warm plan cache and scratch. Result rows are sorted (the
    /// evaluator's deterministic order).
    pub fn eval(&self, idx: usize) -> Vec<Tuple> {
        let q = &self.program.queries[idx];
        let mut state = self.eval_state.lock().expect("eval state lock");
        let EvalState { plans, scratch } = &mut *state;
        evaluate_indexed_with(q, &self.index, plans, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_builds_warm_state() {
        let s = Session::new(
            "s1",
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y).
             Q2(x) :- R(x, y), R(y, z).
             R(1, 2). R(2, 3).",
            64,
            64,
        )
        .unwrap();
        assert_eq!(s.class_name, "IndsOnly(width=1)");
        assert_eq!(s.query_index("Q2").unwrap(), 1);
        assert!(s.query_index("Nope").is_err());
        // Evaluation answers match the one-shot evaluator and the plan
        // cache warms across calls.
        let direct = cqchase_storage::evaluate(s.query(1), &s.db);
        assert_eq!(s.eval(1), direct);
        assert_eq!(s.eval(1), direct);
        let st = s.eval_state.lock().unwrap();
        assert_eq!(st.plans.hits(), 1);
        assert_eq!(st.plans.misses(), 1);
    }

    #[test]
    fn bad_programs_are_rejected() {
        assert!(Session::new("s", "relation R(a). Q(x) :- S(x).", 8, 8).is_err());
        assert!(Session::new("s", "not a program", 8, 8).is_err());
    }

    #[test]
    fn class_names_are_stable() {
        let cases = [
            ("relation R(a, b).", "Empty"),
            ("relation R(a, b). fd R: a -> b.", "FdsOnly"),
            ("relation R(a, b). ind R[2] <= R[1].", "IndsOnly(width=1)"),
            (
                "relation R(a, b). fd R: a -> b. ind R[2] <= R[1].",
                "KeyBased(width=1)",
            ),
            (
                // Section 4's Σ: the IND's right side is not the key.
                "relation R(a, b). fd R: b -> a. ind R[2] <= R[1].",
                "Mixed",
            ),
        ];
        for (src, want) in cases {
            let s = Session::new("s", src, 8, 8).unwrap();
            assert_eq!(s.class_name, want, "{src}");
        }
    }
}
