//! A session: the warm, resident state one `register` request builds
//! and many `update`/`check`/`eval` requests reuse.
//!
//! This is the whole point of running a server instead of linking the
//! library: the catalog, Σ, its classification and fingerprint, the
//! ground facts' [`DbIndex`] (interned symbols + column posting lists),
//! a bounded [`PlanCache`] of compiled evaluation plans, and the
//! semantic containment cache are all built once at registration and
//! then served hot. The immutable part — program, Σ, classification,
//! fingerprint — lives in a refcounted [`FrozenCatalog`]; sessions
//! registering the same program **attach** to one shared catalog
//! (shared base facts, shared plan cache) instead of rebuilding, and a
//! library/test session gets a private catalog of its own. The
//! **facts** are live — [`Session::apply_update`] applies insert/delete
//! deltas through the incremental index maintenance of [`DbIndex`]
//! under a facts [`RwLock`], bumping a *facts epoch* that invalidates
//! exactly the eval-dependent state:
//!
//! * cached eval rows (epoch-tagged) are dropped;
//! * cached "unsatisfiable" plans are dropped when an insert interns a
//!   brand-new constant (satisfiable plans embed stable symbols and
//!   survive — the pool is append-only, even across compaction);
//! * containment answers (the semantic cache) and compiled plans are
//!   facts-independent and survive untouched.
//!
//! A session attached to a shared catalog starts with
//! [`FactsRep::Shared`] facts — a pointer into the catalog's base, zero
//! marginal bytes — and **promotes copy-on-write** on its first
//! *effective* update: the base database + index are cloned into
//! [`FactsRep::Owned`] private state and mutated there, invisibly to
//! the catalog's other tenants. No-op updates (deltas the base already
//! satisfies) report zero-effect summaries without promoting.
//!
//! Any number of connection threads share a session (`Arc<Session>`);
//! readers take the facts lock shared, updates take it exclusively —
//! and a run of adjacent updates drained from the admission queue
//! applies through one [`Session::apply_updates`] call: one write-lock
//! acquisition, one epoch bump, per-delta summaries. Lock order is
//! `facts` before `eval_state` before the shared plan cache, everywhere.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use cqchase_core::{ContainmentOptions, SigmaClass};
use cqchase_index::{CancelToken, ExecStats, FxHashMap, JoinScratch, PlanCache};
use cqchase_ir::{parse_program, ConjunctiveQuery, Program};
use cqchase_obs::{SpanKind, Tracer};
use cqchase_storage::{evaluate_indexed_with, Database, DbIndex, Tuple, Value};
use serde_json::{Map as JsonMap, Value as Json};

use crate::cache::SemanticCache;
use crate::catalog::{BaseFacts, FrozenCatalog};
use crate::proto::FactSpec;

/// Warm per-session evaluation state: compiled plans, join scratch, and
/// epoch-tagged result rows, all dedicated to the session's index.
#[derive(Debug)]
pub struct EvalState {
    /// Bounded **private** plan cache. Used from the moment the
    /// session's facts are owned; while the facts are still the shared
    /// catalog base, evals run against the catalog's shared cache
    /// instead and this one stays empty.
    pub plans: PlanCache,
    /// Reusable join working memory.
    pub scratch: JoinScratch,
    /// Cached result rows per query index, tagged with the facts epoch
    /// they were computed at. Stale entries are never served (epoch
    /// mismatch) and are freed wholesale on every effective update, so
    /// residency is bounded by the registered query pool's
    /// current-epoch answers.
    results: FxHashMap<usize, (u64, Vec<Tuple>)>,
    /// Eval answers served from `results` (observability).
    pub result_hits: u64,
    /// This session's plan-cache hits, counted across whichever cache
    /// (shared or private) served them — the shared cache's own
    /// counters aggregate all tenants, these mirrors attribute the
    /// session's slice.
    pub plan_hits: u64,
    /// Session-attributed plan compiles (cache misses).
    pub plan_misses: u64,
    /// Session-attributed replans.
    pub plan_replans: u64,
    /// Session-attributed acyclic fast-path servings.
    pub plan_acyclic_served: u64,
}

/// Where a session's facts physically live.
///
/// Exactly one per session, behind the facts RwLock — never stored in
/// bulk, so the Shared/Owned size spread costs nothing and boxing the
/// owned half would only tax every post-promotion access.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum FactsRep {
    /// The catalog's shared base — read-only, zero marginal bytes.
    Shared(Arc<BaseFacts>),
    /// Private copy, mutated in place by updates.
    Owned {
        /// The ground facts as a database.
        db: Database,
        /// Warm column indexes over `db`, maintained incrementally.
        index: DbIndex,
    },
}

/// The session's live facts: database + index (shared or owned) and
/// the epoch counter that brands eval-dependent caches.
#[derive(Debug)]
pub struct FactsState {
    rep: FactsRep,
    /// Bumped by every effective update; epoch-tagged caches compare
    /// against it before serving.
    pub epoch: u64,
}

impl FactsState {
    /// The facts as a database (shared base or private copy).
    pub fn db(&self) -> &Database {
        match &self.rep {
            FactsRep::Shared(base) => &base.db,
            FactsRep::Owned { db, .. } => db,
        }
    }

    /// The warm index over [`FactsState::db`].
    pub fn index(&self) -> &DbIndex {
        match &self.rep {
            FactsRep::Shared(base) => &base.index,
            FactsRep::Owned { index, .. } => index,
        }
    }

    /// Whether the facts are still the catalog's shared base.
    pub fn is_shared(&self) -> bool {
        matches!(self.rep, FactsRep::Shared(_))
    }

    /// Copy-on-write promotion: clones the shared base into private
    /// state (counted on the catalog). No-op when already owned.
    fn promote(&mut self, catalog: &FrozenCatalog) {
        if let FactsRep::Shared(base) = &self.rep {
            catalog.promotions.fetch_add(1, Ordering::Relaxed);
            self.rep = FactsRep::Owned {
                db: base.db.clone(),
                index: base.index.clone(),
            };
        }
    }
}

/// What one [`Session::apply_update`] did, as reported on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateSummary {
    /// Tuples actually inserted (present ones are counted no-ops).
    pub inserted: usize,
    /// Tuples actually deleted (absent ones are counted no-ops).
    pub deleted: usize,
    /// Live fact count after the update.
    pub facts: usize,
    /// The facts epoch after the update.
    pub epoch: u64,
}

/// One registered session. See the module docs.
#[derive(Debug)]
pub struct Session {
    /// The session name (registry key).
    pub name: String,
    /// The immutable catalog this session runs over — possibly shared
    /// with other sessions registered from the same program.
    pub catalog: Arc<FrozenCatalog>,
    /// The live facts (database + index + epoch).
    pub facts: RwLock<FactsState>,
    /// Containment options every check in this session runs under
    /// (fixed at registration, so cached answers are deterministic).
    pub opts: ContainmentOptions,
    /// Warm evaluation state (plan cache + scratch + result rows).
    pub eval_state: Mutex<EvalState>,
    /// The semantic containment cache.
    pub sem_cache: Mutex<SemanticCache>,
    /// Requests routed to this session (any op), for the stats view's
    /// top-K selection of `sessions_detail`.
    pub traffic: AtomicU64,
}

/// Stable one-line rendering of a Σ class (the `Debug` form of
/// `KeyBased` includes a hash map, whose iteration order must not leak
/// onto the wire).
pub fn class_name(class: &SigmaClass) -> String {
    match class {
        SigmaClass::Empty => "Empty".into(),
        SigmaClass::FdsOnly => "FdsOnly".into(),
        SigmaClass::IndsOnly { width } => format!("IndsOnly(width={width})"),
        SigmaClass::KeyBased { width, .. } => format!("KeyBased(width={width})"),
        SigmaClass::Mixed => "Mixed".into(),
    }
}

impl Session {
    /// Builds a session from program text (the standalone path: a
    /// private catalog, owned facts).
    pub fn new(
        name: &str,
        program_src: &str,
        sem_cache_capacity: usize,
        plan_cache_capacity: usize,
    ) -> Result<Session, String> {
        let program = parse_program(program_src).map_err(|e| e.to_string())?;
        Session::from_program(name, program, sem_cache_capacity, plan_cache_capacity)
    }

    /// Builds a session from an already-parsed program (tests and
    /// benchmarks assemble programs programmatically).
    pub fn from_program(
        name: &str,
        program: Program,
        sem_cache_capacity: usize,
        plan_cache_capacity: usize,
    ) -> Result<Session, String> {
        let (catalog, db, index) = FrozenCatalog::private(program)?;
        Ok(Session::assemble(
            name,
            catalog,
            FactsRep::Owned { db, index },
            sem_cache_capacity,
            plan_cache_capacity,
        ))
    }

    /// Attaches a session to a **shared** catalog: the facts point at
    /// the catalog's base (zero marginal bytes) until the session's
    /// first effective update promotes them copy-on-write.
    pub fn attach(
        name: &str,
        catalog: Arc<FrozenCatalog>,
        sem_cache_capacity: usize,
        plan_cache_capacity: usize,
    ) -> Session {
        let base = Arc::clone(
            catalog
                .base()
                .expect("attach requires a shared catalog with base facts"),
        );
        Session::assemble(
            name,
            catalog,
            FactsRep::Shared(base),
            sem_cache_capacity,
            plan_cache_capacity,
        )
    }

    fn assemble(
        name: &str,
        catalog: Arc<FrozenCatalog>,
        rep: FactsRep,
        sem_cache_capacity: usize,
        plan_cache_capacity: usize,
    ) -> Session {
        catalog.attached.fetch_add(1, Ordering::Relaxed);
        Session {
            name: name.to_owned(),
            catalog,
            facts: RwLock::new(FactsState { rep, epoch: 0 }),
            opts: ContainmentOptions::default(),
            eval_state: Mutex::new(EvalState {
                plans: PlanCache::with_capacity(plan_cache_capacity),
                scratch: JoinScratch::new(),
                results: FxHashMap::default(),
                result_hits: 0,
                plan_hits: 0,
                plan_misses: 0,
                plan_replans: 0,
                plan_acyclic_served: 0,
            }),
            sem_cache: Mutex::new(SemanticCache::new(sem_cache_capacity)),
            traffic: AtomicU64::new(0),
        }
    }

    /// The parsed program (catalog, Σ, queries, registered facts).
    pub fn program(&self) -> &Program {
        &self.catalog.program
    }

    /// Σ's classification.
    pub fn class(&self) -> &SigmaClass {
        &self.catalog.class
    }

    /// Stable rendering of the Σ class for the wire.
    pub fn class_name(&self) -> &str {
        &self.catalog.class_name
    }

    /// Fingerprint of Σ for semantic-cache keys.
    pub fn sigma_fp(&self) -> u64 {
        self.catalog.sigma_fp
    }

    /// Whether the facts are still the catalog's shared base (no
    /// effective update yet).
    pub fn facts_shared(&self) -> bool {
        self.facts.read().expect("facts lock").is_shared()
    }

    /// Approximate resident bytes of this session's **private** facts:
    /// zero while attached to the shared base, database + index bytes
    /// once promoted. The shared base itself is reported once per
    /// catalog by [`FrozenCatalog::resident_bytes`].
    pub fn resident_bytes(&self) -> usize {
        let facts = self.facts.read().expect("facts lock");
        match &facts.rep {
            FactsRep::Shared(_) => 0,
            FactsRep::Owned { db, index } => db.approx_bytes() + index.approx_bytes(),
        }
    }

    /// Index of a query by name, for the batch engines.
    pub fn query_index(&self, name: &str) -> Result<usize, String> {
        let queries = &self.catalog.program.queries;
        queries.iter().position(|q| q.name == name).ok_or_else(|| {
            format!(
                "no query named `{name}` in session `{}` (declared: {})",
                self.name,
                queries
                    .iter()
                    .map(|q| q.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
    }

    /// The query at `idx`.
    pub fn query(&self, idx: usize) -> &ConjunctiveQuery {
        &self.catalog.program.queries[idx]
    }

    /// The current facts epoch (0 until the first effective update).
    pub fn facts_epoch(&self) -> u64 {
        self.facts.read().expect("facts lock").epoch
    }

    /// Total live facts.
    pub fn facts_len(&self) -> usize {
        self.facts.read().expect("facts lock").db().total_tuples()
    }

    /// `(live facts, facts epoch)` read under one lock acquisition —
    /// use this when reporting the pair (separate reads can be torn by
    /// a concurrent update, pairing a count with the wrong epoch).
    pub fn facts_snapshot(&self) -> (usize, u64) {
        let facts = self.facts.read().expect("facts lock");
        (facts.db().total_tuples(), facts.epoch)
    }

    /// Evaluates the query at `idx` over the session's live facts with
    /// the warm plan cache and scratch. Result rows are sorted (the
    /// evaluator's deterministic order).
    pub fn eval(&self, idx: usize) -> Vec<Tuple> {
        self.eval_cached(idx).0
    }

    /// [`Session::eval`], also reporting whether the rows were served
    /// from the epoch-tagged result cache without recomputation.
    pub fn eval_cached(&self, idx: usize) -> (Vec<Tuple>, bool) {
        let (rows, cached, _) = self.eval_observed(idx, None);
        (rows, cached)
    }

    /// [`Session::eval_cached`] with observability: when `obs` carries
    /// the tracer and the waiting requests' trace ids, the result-cache
    /// probe, plan compile (or cache hit), and join execution are
    /// recorded as timed spans, and a join annotation — plan
    /// provenance, join order, per-atom estimated vs actual candidate
    /// rows, engine counters — is returned for the slow-query log.
    ///
    /// While the facts are the shared catalog base, the plan runs
    /// against the catalog's shared plan cache (one compile serves
    /// every attached tenant); once promoted, against the private one.
    /// Either way the per-session mirror counters attribute this call's
    /// plan-cache activity to this session.
    pub fn eval_observed(
        &self,
        idx: usize,
        obs: Option<(&Tracer, &[u64])>,
    ) -> (Vec<Tuple>, bool, Option<Json>) {
        self.eval_observed_cancellable(idx, obs, None)
            .expect("uncancellable eval always completes")
    }

    /// [`Session::eval_observed`] under an optional [`CancelToken`].
    /// Returns `None` when the token fires — before the run (the work
    /// is refused outright) or mid-join (the partial rows are
    /// discarded, **not** inserted into the result cache, so session
    /// state is indistinguishable from the eval never having run).
    pub fn eval_observed_cancellable(
        &self,
        idx: usize,
        obs: Option<(&Tracer, &[u64])>,
        cancel: Option<&CancelToken>,
    ) -> Option<(Vec<Tuple>, bool, Option<Json>)> {
        if cancel.is_some_and(|c| c.should_stop()) {
            return None;
        }
        let q = &self.catalog.program.queries[idx];
        // Lock order: facts before eval_state (before the shared plan
        // cache). Holding the facts lock shared for the whole call pins
        // the epoch the rows belong to.
        let facts = self.facts.read().expect("facts lock");
        let mut state = self.eval_state.lock().expect("eval state lock");
        let probe_start = obs.map(|(t, _)| t.now_us());
        let cache_hit =
            matches!(state.results.get(&idx), Some((epoch, _)) if *epoch == facts.epoch);
        if let Some((tracer, ids)) = obs {
            let end = tracer.now_us();
            for &id in ids {
                tracer.record(
                    id,
                    SpanKind::EvalCacheLookup,
                    probe_start.unwrap_or(end),
                    end,
                );
            }
        }
        if cache_hit {
            let rows = state
                .results
                .get(&idx)
                .expect("hit checked above")
                .1
                .clone();
            state.result_hits += 1;
            let annotation = obs.map(|_| {
                let mut m = JsonMap::new();
                m.insert("query".into(), Json::from(q.name.as_str()));
                m.insert("result_cache_hit".into(), Json::from(true));
                Json::Object(m)
            });
            return Some((rows, true, annotation));
        }
        let index = facts.index();
        let shared_plans = if facts.is_shared() {
            self.catalog.shared_plans()
        } else {
            None
        };
        if let Some(c) = cancel {
            state.scratch.set_cancel(c.clone());
        }
        let EvalState {
            plans,
            scratch,
            plan_hits,
            plan_misses,
            plan_replans,
            plan_acyclic_served,
            ..
        } = &mut *state;
        let mut run = |plans: &mut PlanCache| -> (Vec<Tuple>, Option<Json>) {
            let (h0, m0, r0, a0) = (
                plans.hits(),
                plans.misses(),
                plans.replans(),
                plans.acyclic_served(),
            );
            let mut annotation = None;
            let rows = match obs {
                None => evaluate_indexed_with(q, index, plans, scratch),
                Some((tracer, ids)) => {
                    // Warm the plan first so compile time is its own span;
                    // the engine call below re-looks it up as a cheap cache
                    // hit (capacity-0 caches recompile, still correct).
                    let (misses0, replans0) = (plans.misses(), plans.replans());
                    let compile_start = tracer.now_us();
                    let shape = plans
                        .get_or_compile(q, index)
                        .map(|p| (p.order.clone(), p.atom_est.clone(), p.acyclic.is_some()));
                    let compile_end = tracer.now_us();
                    let compiled = plans.misses() > misses0;
                    let replanned = plans.replans() > replans0;
                    let kind = if compiled || replanned {
                        SpanKind::PlanCompile
                    } else {
                        SpanKind::PlanCacheHit
                    };
                    for &id in ids {
                        tracer.record(id, kind, compile_start, compile_end);
                    }
                    let exec_before = scratch.exec().clone();
                    let join_start = tracer.now_us();
                    let rows = evaluate_indexed_with(q, index, plans, scratch);
                    let join_end = tracer.now_us();
                    for &id in ids {
                        tracer.record(id, SpanKind::JoinExec, join_start, join_end);
                    }
                    let plan_desc = if replanned {
                        "replan"
                    } else if compiled {
                        "compiled"
                    } else {
                        "cache_hit"
                    };
                    annotation = Some(Session::join_annotation(
                        &q.name,
                        plan_desc,
                        shape,
                        &exec_before,
                        scratch.exec(),
                    ));
                    rows
                }
            };
            *plan_hits += (plans.hits() - h0) as u64;
            *plan_misses += (plans.misses() - m0) as u64;
            *plan_replans += (plans.replans() - r0) as u64;
            *plan_acyclic_served += (plans.acyclic_served() - a0) as u64;
            (rows, annotation)
        };
        let (rows, annotation) = match shared_plans {
            // The shared cache's mutex is held for exactly this run, so
            // the counter deltas measured inside are this call's alone.
            Some(m) => run(&mut m.lock().expect("shared plan cache lock")),
            None => run(plans),
        };
        let cancelled = cancel.is_some() && scratch.cancelled();
        if cancel.is_some() {
            scratch.clear_cancel();
        }
        if cancelled {
            // Partial rows never reach the result cache: the session
            // looks exactly as if this eval was never submitted.
            return None;
        }
        state.results.insert(idx, (facts.epoch, rows.clone()));
        Some((rows, false, annotation))
    }

    /// Builds the slow-query log's join annotation. The engine counters
    /// are monotone across a scratch's lifetime, so this reports the
    /// `after − before` delta — exactly what this execution did.
    fn join_annotation(
        query: &str,
        plan: &str,
        shape: Option<(Vec<u32>, Vec<f64>, bool)>,
        before: &ExecStats,
        after: &ExecStats,
    ) -> Json {
        let mut m = JsonMap::new();
        m.insert("query".into(), Json::from(query));
        m.insert("result_cache_hit".into(), Json::from(false));
        match shape {
            None => {
                m.insert("plan".into(), Json::from("unsatisfiable"));
            }
            Some((order, est, acyclic)) => {
                m.insert("plan".into(), Json::from(plan));
                m.insert("acyclic".into(), Json::from(acyclic));
                m.insert(
                    "join_order".into(),
                    Json::Array(order.iter().map(|&a| Json::from(a as u64)).collect()),
                );
                let atoms: Vec<Json> = est
                    .iter()
                    .enumerate()
                    .map(|(i, &e)| {
                        let mut a = JsonMap::new();
                        a.insert("atom".into(), Json::from(i));
                        a.insert("est".into(), Json::from(e));
                        a.insert(
                            "actual".into(),
                            Json::from(after.atom_actual.get(i).copied().unwrap_or(0)),
                        );
                        Json::Object(a)
                    })
                    .collect();
                m.insert("atoms".into(), Json::Array(atoms));
            }
        }
        m.insert(
            "candidates_scanned".into(),
            Json::from(after.candidates_scanned - before.candidates_scanned),
        );
        m.insert(
            "backtracks".into(),
            Json::from(after.backtracks - before.backtracks),
        );
        m.insert(
            "semijoin_retain_passes".into(),
            Json::from(after.semijoin_retain_passes - before.semijoin_retain_passes),
        );
        m.insert(
            "rows_emitted".into(),
            Json::from(after.rows_emitted - before.rows_emitted),
        );
        Json::Object(m)
    }

    /// Drops the session's rebuildable caches under memory pressure:
    /// semantic containment answers, epoch-tagged eval rows, and the
    /// private plan cache. Correctness state — facts, index, epoch —
    /// is untouched; everything dropped is recomputed on demand.
    /// Returns the number of cache entries dropped. Lock order is
    /// `eval_state` then `sem_cache` (neither is ever held while
    /// taking the other elsewhere, so the order only needs to be
    /// consistent here).
    pub fn shed_caches(&self) -> usize {
        let mut dropped = 0usize;
        {
            let mut state = self.eval_state.lock().expect("eval state lock");
            dropped += state.results.len();
            state.results.clear();
            dropped += state.plans.len();
            state.plans.clear();
        }
        dropped += self.sem_cache.lock().expect("semantic cache lock").clear();
        dropped
    }

    /// Checks one delta exactly as [`Session::apply_updates`] will —
    /// every fact must name a known relation with the right arity,
    /// deletes checked before inserts — without touching the facts.
    ///
    /// The durability layer uses this to decide, *before* logging,
    /// which deltas of a batch will apply: the WAL records only the
    /// valid subset, so replay never re-litigates validation and the
    /// log stays in deterministic agreement with the in-memory state.
    pub fn validate_update(&self, insert: &[FactSpec], delete: &[FactSpec]) -> Result<(), String> {
        let catalog = &self.catalog.program.catalog;
        for (rel, tuple) in delete.iter().chain(insert) {
            let id = catalog
                .resolve(rel)
                .ok_or_else(|| format!("unknown relation `{rel}` in session `{}`", self.name))?;
            let arity = catalog.arity(id);
            if tuple.len() != arity {
                return Err(format!(
                    "relation `{rel}` has arity {arity}, fact carries {} values",
                    tuple.len()
                ));
            }
        }
        Ok(())
    }

    /// Applies fact deltas to the live facts: deletes first, then
    /// inserts (so a delete+insert of the same tuple leaves it present).
    /// Absent deletes and present inserts are counted no-ops. On any
    /// effective change the facts epoch is bumped, cached eval rows are
    /// invalidated wholesale (epoch tags), and cached unsatisfiable
    /// plans are dropped when a brand-new constant was interned.
    ///
    /// Rejects (without applying anything) when any fact names an
    /// unknown relation or has the wrong arity — deltas are validated
    /// up front, so an update is all-or-nothing.
    pub fn apply_update(
        &self,
        insert: &[FactSpec],
        delete: &[FactSpec],
    ) -> Result<UpdateSummary, String> {
        let delta = (insert.to_vec(), delete.to_vec());
        self.apply_updates(std::slice::from_ref(&delta))
            .pop()
            .expect("one delta in, one summary out")
    }

    /// Applies a **run of updates** under a single facts write-lock
    /// acquisition with one epoch bump and one cache invalidation —
    /// the admission queue's coalescing path for adjacent same-session
    /// updates in a drained batch.
    ///
    /// Each `(insert, delete)` delta keeps its individual semantics:
    /// validated independently (an invalid delta yields its own `Err`
    /// and applies nothing, while the rest of the run still applies),
    /// applied in run order with deletes before inserts, and summarized
    /// per delta — `inserted`/`deleted`/`facts` are exactly what a
    /// one-at-a-time application would report. Only the `epoch` field
    /// shows the merge: every effective delta of the run lands in the
    /// same (single) new epoch instead of minting one each.
    ///
    /// On a session whose facts are still the shared catalog base, the
    /// run first probes whether any delta is effective (a present
    /// delete or an absent insert). All no-ops: zero-effect summaries,
    /// no promotion, the base is untouched. Otherwise the session
    /// promotes copy-on-write and the run applies to the private copy.
    pub fn apply_updates(
        &self,
        deltas: &[(Vec<FactSpec>, Vec<FactSpec>)],
    ) -> Vec<Result<UpdateSummary, String>> {
        let catalog = &self.catalog.program.catalog;
        let resolve = |(rel, tuple): &FactSpec| -> Result<(cqchase_ir::RelId, Tuple), String> {
            let id = catalog
                .resolve(rel)
                .ok_or_else(|| format!("unknown relation `{rel}` in session `{}`", self.name))?;
            let arity = catalog.arity(id);
            if tuple.len() != arity {
                return Err(format!(
                    "relation `{rel}` has arity {arity}, fact carries {} values",
                    tuple.len()
                ));
            }
            Ok((id, tuple.iter().cloned().map(Value::Const).collect()))
        };
        // Validate every delta before taking the write lock; each delta
        // is all-or-nothing on its own, independent of its neighbors.
        type Resolved = (
            Vec<(cqchase_ir::RelId, Tuple)>,
            Vec<(cqchase_ir::RelId, Tuple)>,
        );
        let resolved: Vec<Result<Resolved, String>> = deltas
            .iter()
            .map(|(insert, delete)| {
                let deletes = delete.iter().map(resolve).collect::<Result<_, _>>()?;
                let inserts = insert.iter().map(resolve).collect::<Result<_, _>>()?;
                Ok((inserts, deletes))
            })
            .collect();
        if resolved.iter().all(Result::is_err) {
            // Nothing will apply: report the validation errors without
            // taking the exclusive facts lock — malformed requests must
            // not serialize concurrent readers.
            return resolved
                .into_iter()
                .map(|r| r.map(|_| unreachable!("all deltas are errors")))
                .collect();
        }

        let mut facts = self.facts.write().expect("facts lock");
        if facts.is_shared() {
            let would_change =
                resolved
                    .iter()
                    .filter_map(|r| r.as_ref().ok())
                    .any(|(inserts, deletes)| {
                        deletes
                            .iter()
                            .any(|(rel, t)| facts.db().relation(*rel).contains(t))
                            || inserts
                                .iter()
                                .any(|(rel, t)| !facts.db().relation(*rel).contains(t))
                    });
            if !would_change {
                // Every valid delta is a no-op against the shared base:
                // report zero-effect summaries without promoting (and
                // without any `&mut` path that would force a copy).
                let total = facts.db().total_tuples();
                let epoch = facts.epoch;
                return resolved
                    .into_iter()
                    .map(|r| {
                        r.map(|_| UpdateSummary {
                            inserted: 0,
                            deleted: 0,
                            facts: total,
                            epoch,
                        })
                    })
                    .collect();
            }
            facts.promote(&self.catalog);
            // Carry the shared cache's warm plans into the private one:
            // the promoted copy clones the base's symbol pool, so the
            // compiled plans (and their drift snapshots) stay valid —
            // without this, the session's first post-promotion eval
            // would recompile from scratch instead of serving the plan
            // it had been using all along. Counters start fresh; the
            // per-session mirrors already carry the history. Lock order
            // holds: facts (held) → eval_state → shared plan cache.
            if let Some(shared) = self.catalog.shared_plans() {
                let mut state = self.eval_state.lock().expect("eval state lock");
                state.plans = shared.lock().expect("shared plan cache lock").clone_warm();
            }
        }
        let FactsState { rep, epoch } = &mut *facts;
        let FactsRep::Owned { db, index } = rep else {
            unreachable!("promoted above")
        };
        let syms_before = index.num_syms();
        let mut effective = 0usize;
        let mut out = Vec::with_capacity(deltas.len());
        let mut summaries: Vec<usize> = Vec::new();
        for r in resolved {
            match r {
                Err(e) => out.push(Err(e)),
                Ok((inserts, deletes)) => {
                    let (mut deleted, mut inserted) = (0usize, 0usize);
                    for (rel, tuple) in &deletes {
                        if db.remove(*rel, tuple).expect("arity validated") {
                            let removed = index.note_remove(*rel, tuple);
                            debug_assert!(removed, "index and database agree on membership");
                            deleted += 1;
                        }
                    }
                    for (rel, tuple) in &inserts {
                        if db.insert(*rel, tuple.clone()).expect("arity validated") {
                            index.note_insert(*rel, tuple);
                            inserted += 1;
                        }
                    }
                    effective += deleted + inserted;
                    summaries.push(out.len());
                    out.push(Ok(UpdateSummary {
                        inserted,
                        deleted,
                        facts: db.total_tuples(),
                        epoch: 0, // patched below, once the run's epoch is known
                    }));
                }
            }
        }
        if effective > 0 {
            *epoch += 1;
            // Lock order facts → eval_state, same as eval.
            let mut state = self.eval_state.lock().expect("eval state lock");
            // The epoch tags already make stale rows unservable; free
            // them eagerly too — a resident session must not pin dead
            // result sets until their query happens to be re-asked.
            state.results.clear();
            if index.num_syms() > syms_before {
                // A brand-new constant falsifies cached `None` plans
                // (in the private cache — the session left the shared
                // one behind when it promoted).
                state.plans.drop_unsatisfiable();
            }
        }
        let epoch = *epoch;
        for i in summaries {
            if let Ok(sum) = &mut out[i] {
                sum.epoch = epoch;
            }
        }
        out
    }
}

/// The server's named-session table. Registration is **first wins**:
/// inserting an existing name fails, atomically, so two clients racing
/// to register one name get exactly one success — the loser is told to
/// pick another name or mutate the existing session with `update`.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    sessions: RwLock<HashMap<String, Arc<Session>>>,
}

fn duplicate_name_error(name: &str) -> String {
    format!(
        "session `{name}` already registered (names are unique; use op `update` to \
         mutate its facts, or register under a new name)"
    )
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new() -> SessionRegistry {
        SessionRegistry::default()
    }

    /// Fails with the duplicate-name error when `name` is taken. A
    /// cheap pre-check for the register path, so a retried `register`
    /// is refused before the expensive session build — `insert_new`
    /// remains the atomic arbiter for races.
    pub fn check_free(&self, name: &str) -> Result<(), String> {
        if self
            .sessions
            .read()
            .expect("session registry lock")
            .contains_key(name)
        {
            Err(duplicate_name_error(name))
        } else {
            Ok(())
        }
    }

    /// Registers `session` under its name; fails (leaving the existing
    /// session untouched) when the name is taken.
    pub fn insert_new(&self, session: Session) -> Result<Arc<Session>, String> {
        use std::collections::hash_map::Entry;
        let mut map = self.sessions.write().expect("session registry lock");
        match map.entry(session.name.clone()) {
            Entry::Occupied(_) => Err(duplicate_name_error(&session.name)),
            Entry::Vacant(e) => {
                let arc = Arc::new(session);
                e.insert(Arc::clone(&arc));
                Ok(arc)
            }
        }
    }

    /// The session registered under `name`.
    pub fn get(&self, name: &str) -> Result<Arc<Session>, String> {
        self.sessions
            .read()
            .expect("session registry lock")
            .get(name)
            .cloned()
            .ok_or_else(|| format!("no session named `{name}` (register it first)"))
    }

    /// Unregisters `name`, returning whether it was present. Used only
    /// to roll back a registration whose durability record could not be
    /// made durable — there is no client-facing unregister op.
    pub fn remove(&self, name: &str) -> bool {
        self.sessions
            .write()
            .expect("session registry lock")
            .remove(name)
            .is_some()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .sessions
            .read()
            .expect("session registry lock")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of registered sessions.
    pub fn len(&self) -> usize {
        self.sessions.read().expect("session registry lock").len()
    }

    /// Whether no session is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every registered session.
    pub fn snapshot(&self) -> Vec<Arc<Session>> {
        self.sessions
            .read()
            .expect("session registry lock")
            .values()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::Constant;

    #[test]
    fn register_builds_warm_state() {
        let s = Session::new(
            "s1",
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y).
             Q2(x) :- R(x, y), R(y, z).
             R(1, 2). R(2, 3).",
            64,
            64,
        )
        .unwrap();
        assert_eq!(s.class_name(), "IndsOnly(width=1)");
        assert_eq!(s.query_index("Q2").unwrap(), 1);
        assert!(s.query_index("Nope").is_err());
        // Evaluation answers match the one-shot evaluator and both the
        // plan cache and the result cache warm across calls.
        let direct = {
            let facts = s.facts.read().unwrap();
            cqchase_storage::evaluate(s.query(1), facts.db())
        };
        assert_eq!(s.eval_cached(1), (direct.clone(), false));
        assert_eq!(s.eval_cached(1), (direct, true));
        let st = s.eval_state.lock().unwrap();
        assert_eq!(st.plans.misses(), 1);
        assert_eq!(st.plan_misses, 1, "mirror counters track the private cache");
        assert_eq!(st.result_hits, 1);
    }

    #[test]
    fn bad_programs_are_rejected() {
        assert!(Session::new("s", "relation R(a). Q(x) :- S(x).", 8, 8).is_err());
        assert!(Session::new("s", "not a program", 8, 8).is_err());
    }

    #[test]
    fn class_names_are_stable() {
        let cases = [
            ("relation R(a, b).", "Empty"),
            ("relation R(a, b). fd R: a -> b.", "FdsOnly"),
            ("relation R(a, b). ind R[2] <= R[1].", "IndsOnly(width=1)"),
            (
                "relation R(a, b). fd R: a -> b. ind R[2] <= R[1].",
                "KeyBased(width=1)",
            ),
            (
                // Section 4's Σ: the IND's right side is not the key.
                "relation R(a, b). fd R: b -> a. ind R[2] <= R[1].",
                "Mixed",
            ),
        ];
        for (src, want) in cases {
            let s = Session::new("s", src, 8, 8).unwrap();
            assert_eq!(s.class_name(), want, "{src}");
        }
    }

    fn fact(rel: &str, vals: &[i64]) -> FactSpec {
        (rel.into(), vals.iter().map(|&i| Constant::Int(i)).collect())
    }

    #[test]
    fn apply_update_mutates_and_invalidates_eval_rows() {
        let s = Session::new(
            "mut",
            "relation R(a, b). Q(x) :- R(x, y). R(1, 2). R(2, 3).",
            8,
            8,
        )
        .unwrap();
        assert_eq!(s.eval(0).len(), 2);
        let sum = s
            .apply_update(&[fact("R", &[5, 6])], &[fact("R", &[1, 2])])
            .unwrap();
        assert_eq!(
            sum,
            UpdateSummary {
                inserted: 1,
                deleted: 1,
                facts: 2,
                epoch: 1
            }
        );
        // The eval-row cache was epoch-invalidated: fresh rows.
        let (rows, cached) = s.eval_cached(0);
        assert!(!cached);
        let got: Vec<String> = rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(got, ["2", "5"]);
        // Idempotence: replaying the same deltas changes nothing.
        let sum = s
            .apply_update(&[fact("R", &[5, 6])], &[fact("R", &[1, 2])])
            .unwrap();
        assert_eq!((sum.inserted, sum.deleted, sum.epoch), (0, 0, 1));
        assert!(s.eval_cached(0).1, "no-op update keeps the cache");
    }

    #[test]
    fn apply_update_is_all_or_nothing_on_bad_facts() {
        let s = Session::new("v", "relation R(a, b). Q(x) :- R(x, y). R(1, 2).", 8, 8).unwrap();
        // Unknown relation: nothing applied.
        assert!(s
            .apply_update(&[fact("R", &[9, 9]), fact("NOPE", &[1])], &[])
            .is_err());
        // Wrong arity: nothing applied.
        assert!(s.apply_update(&[fact("R", &[9])], &[]).is_err());
        assert_eq!(s.facts_epoch(), 0);
        assert_eq!(s.facts_len(), 1);
    }

    #[test]
    fn insert_of_new_constant_revives_unsatisfiable_plan() {
        let s = Session::new("c", "relation R(a, b). Qc(x) :- R(x, 99). R(1, 2).", 8, 8).unwrap();
        assert!(s.eval(0).is_empty(), "99 not present: unsatisfiable");
        // Interning 99 must drop the cached `None` plan.
        s.apply_update(&[fact("R", &[7, 99])], &[]).unwrap();
        let rows = s.eval(0);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].to_string(), "7");
        // And deleting it again empties the answer (plan stays valid).
        s.apply_update(&[], &[fact("R", &[7, 99])]).unwrap();
        assert!(s.eval(0).is_empty());
    }

    #[test]
    fn zero_plan_cache_session_survives_new_constant_update() {
        // Regression: with `--plan-cache-capacity 0`, an update that
        // interns a brand-new constant used to underflow the plan
        // cache's length while holding both session locks, bricking
        // the session.
        let s = Session::new("z", "relation R(a, b). Qc(x) :- R(x, 99). R(1, 2).", 8, 0).unwrap();
        assert!(s.eval(0).is_empty());
        s.apply_update(&[fact("R", &[7, 99])], &[]).unwrap();
        assert_eq!(s.eval(0).len(), 1);
    }

    #[test]
    fn cancelled_eval_leaves_no_trace() {
        let s = Session::new(
            "c",
            "relation R(a, b). Q(x) :- R(x, y). R(1, 2). R(2, 3).",
            8,
            8,
        )
        .unwrap();
        let fired = CancelToken::unlimited();
        fired.cancel();
        assert!(
            s.eval_observed_cancellable(0, None, Some(&fired)).is_none(),
            "pre-fired token refuses the eval"
        );
        {
            let state = s.eval_state.lock().unwrap();
            assert!(state.results.is_empty(), "no partial rows cached");
            assert_eq!(state.result_hits, 0);
        }
        // A live token runs to completion and caches normally.
        let live = CancelToken::unlimited();
        let (rows, cached, _) = s.eval_observed_cancellable(0, None, Some(&live)).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(!cached);
        assert!(s.eval_cached(0).1, "completed eval warmed the cache");
    }

    #[test]
    fn shed_caches_drops_only_rebuildable_state() {
        let s = Session::new(
            "shed",
            "relation R(a, b). Q(x) :- R(x, y). R(1, 2). R(2, 3).",
            8,
            8,
        )
        .unwrap();
        s.eval(0);
        assert!(s.shed_caches() > 0, "warm rows and plans were dropped");
        let (facts, epoch) = s.facts_snapshot();
        assert_eq!((facts, epoch), (2, 0), "facts and epoch untouched");
        let (rows, cached) = s.eval_cached(0);
        assert_eq!(rows.len(), 2);
        assert!(!cached, "the shed cache recomputes, correctly");
    }

    #[test]
    fn registry_rejects_duplicates_atomically() {
        let reg = Arc::new(SessionRegistry::new());
        let src = "relation R(a). Q(x) :- R(x).";
        // Concurrent double-register of one name: exactly one winner,
        // every loser gets the explicit duplicate error.
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                reg.insert_new(Session::new("dup", src, 8, 8).unwrap())
            }));
        }
        let results: Vec<Result<Arc<Session>, String>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        let wins = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(wins, 1, "exactly one register wins the race");
        for r in &results {
            if let Err(msg) = r {
                assert!(msg.contains("already registered"), "{msg}");
            }
        }
        // The winner's session is the one served.
        assert!(reg.get("dup").is_ok());
        assert_eq!(reg.names(), ["dup"]);
        // The cheap pre-check agrees with the atomic insert.
        assert!(reg.check_free("dup").is_err());
        assert!(reg.check_free("other").is_ok());
        // A different name still registers.
        assert!(reg
            .insert_new(Session::new("other", src, 8, 8).unwrap())
            .is_ok());
        assert_eq!(reg.names(), ["dup", "other"]);
        assert!(reg.get("missing").is_err());
    }
}
