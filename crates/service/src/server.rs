//! The TCP server: session registry, connection handling, dispatch,
//! graceful shutdown.
//!
//! `std::net` only — the build container is offline, so there is no
//! async runtime; concurrency is a bounded connection-handler
//! [`ThreadPool`] (blocking reads with a short timeout so handlers
//! notice shutdown) in front of the admission queue of [`crate::batch`],
//! which bounds *compute* concurrency separately from connection count.
//!
//! Shutdown protocol: a `shutdown` request flips the shared flag and
//! pokes the listener with a dummy connection to unblock `accept`. The
//! accept loop exits, the handler pool is dropped — which drains
//! in-flight connections (handlers observe the flag at their next read
//! timeout, at most ~200 ms) and joins every worker — and `run`
//! returns.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use cqchase_par::ThreadPool;
use serde_json::{Map, Value};

use crate::batch::{rows_to_value, Batcher, Outcome, Work};
use crate::metrics::Metrics;
use crate::proto::{error_response, ok_response, Op, Request};
use crate::session::Session;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker threads for containment/evaluation batches.
    pub batch_threads: usize,
    /// Connection-handler threads (bounds concurrent connections).
    pub conn_workers: usize,
    /// Semantic-cache capacity per session (0 disables caching).
    pub sem_cache_capacity: usize,
    /// Evaluation plan-cache capacity per session.
    pub plan_cache_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7878".into(),
            batch_threads: cqchase_par::default_threads(),
            conn_workers: 8,
            sem_cache_capacity: 1024,
            plan_cache_capacity: 256,
        }
    }
}

/// State shared by every connection handler.
struct Shared {
    sessions: RwLock<HashMap<String, Arc<Session>>>,
    batcher: Batcher,
    metrics: Arc<Metrics>,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    opts: ServeOptions,
    /// Connections accepted and not yet finished (serving or queued
    /// for a handler). Bounds admission — see [`Server::run`].
    active_conns: std::sync::atomic::AtomicUsize,
}

/// Decrements the active-connection count when a handler finishes —
/// including by panic (the guard lives inside the pool job).
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.active_conns.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and builds the shared state. The server does
    /// not accept connections until [`run`](Server::run).
    pub fn bind(opts: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::new());
        let shared = Arc::new(Shared {
            sessions: RwLock::new(HashMap::new()),
            batcher: Batcher::new(opts.batch_threads, Arc::clone(&metrics)),
            metrics,
            shutdown: AtomicBool::new(false),
            local_addr,
            opts,
            active_conns: std::sync::atomic::AtomicUsize::new(0),
        });
        Ok(Server { listener, shared })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Accepts and serves connections until a `shutdown` request
    /// arrives, then drains and returns.
    ///
    /// Admission is bounded: a connection is handed to the worker pool
    /// only while fewer than `2 × conn_workers` connections are live
    /// (serving or queued for a free worker); beyond that the server
    /// answers one `ok:false` overload line and closes, rather than
    /// queueing sockets without bound until file descriptors run out.
    pub fn run(self) -> io::Result<()> {
        let pool = ThreadPool::new(self.shared.opts.conn_workers);
        let max_conns = self.shared.opts.conn_workers.max(1) * 2;
        loop {
            let mut stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) => {
                    if self.shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(e);
                }
            };
            if self.shared.shutdown.load(Ordering::Acquire) {
                // The shutdown waker (or a late client): drop it.
                break;
            }
            if self.shared.active_conns.load(Ordering::Relaxed) >= max_conns {
                let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
                let mut line = error_response(
                    None,
                    &format!("server overloaded: more than {max_conns} live connections"),
                )
                .to_string();
                line.push('\n');
                let _ = stream.write_all(line.as_bytes());
                continue; // drop the stream: connection refused politely
            }
            self.shared.active_conns.fetch_add(1, Ordering::Relaxed);
            self.shared
                .metrics
                .connections
                .fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&self.shared);
            pool.execute(move || {
                let guard = ConnGuard(Arc::clone(&shared));
                handle_connection(stream, shared);
                drop(guard);
            });
        }
        // Dropping the pool joins the handlers: every in-flight
        // connection notices the flag within one read timeout and
        // exits. That is the graceful drain.
        drop(pool);
        Ok(())
    }

    /// Binds and runs on a background thread; returns the bound address
    /// and the join handle. Convenience for tests, benchmarks, and the
    /// load-generator experiment.
    pub fn spawn(
        opts: ServeOptions,
    ) -> io::Result<(SocketAddr, std::thread::JoinHandle<io::Result<()>>)> {
        let server = Server::bind(opts)?;
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        Ok((addr, handle))
    }
}

/// How long a blocking read waits before re-checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(200);

/// Maximum accepted line length (a peer streaming bytes with no
/// newline must not grow server memory without bound).
const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// Buffered newline framing over a read-timeout socket. `BufRead::
/// read_line` leaves its buffer unspecified after an error, so timeouts
/// (which are routine here — they are the shutdown poll) need explicit
/// buffering that survives them.
struct LineReader {
    buf: Vec<u8>,
    start: usize,
}

impl LineReader {
    fn new() -> LineReader {
        LineReader {
            buf: Vec::with_capacity(4096),
            start: 0,
        }
    }

    /// The next `\n`-terminated line (without the terminator), `None`
    /// on peer close or shutdown.
    fn next_line(
        &mut self,
        stream: &mut TcpStream,
        shutdown: &AtomicBool,
    ) -> io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.buf[self.start..].iter().position(|&b| b == b'\n') {
                let end = self.start + pos;
                let line = String::from_utf8_lossy(&self.buf[self.start..end]).into_owned();
                self.start = end + 1;
                if self.start == self.buf.len() {
                    self.buf.clear();
                    self.start = 0;
                }
                return Ok(Some(line));
            }
            if shutdown.load(Ordering::Acquire) {
                return Ok(None);
            }
            if self.buf.len() - self.start > MAX_LINE_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "request line exceeds the maximum length",
                ));
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(None),
                Ok(n) => {
                    // Drop consumed bytes before growing.
                    if self.start > 0 {
                        self.buf.drain(..self.start);
                        self.start = 0;
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut reader = LineReader::new();
    loop {
        let line = match reader.next_line(&mut stream, &shared.shutdown) {
            Ok(Some(line)) => line,
            Ok(None) => break,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let (response, op) = match Request::from_line(&line) {
            Ok(req) => {
                let op = req.op();
                (dispatch(&shared, req), Some(op))
            }
            Err(msg) => (error_response(None, &msg), None),
        };
        let ok = response["ok"] == true;
        if let Some(op) = op {
            shared.metrics.record(op, started.elapsed(), ok);
        }
        let mut line_out = response.to_string();
        line_out.push('\n');
        if stream.write_all(line_out.as_bytes()).is_err() || stream.flush().is_err() {
            break;
        }
        if op == Some(Op::Shutdown) && ok {
            trigger_shutdown(&shared);
            break;
        }
    }
}

/// Flips the flag and pokes the acceptor awake.
fn trigger_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::Release);
    let _ = TcpStream::connect(shared.local_addr);
}

fn get_session(shared: &Shared, name: &str) -> Result<Arc<Session>, String> {
    shared
        .sessions
        .read()
        .expect("session registry lock")
        .get(name)
        .cloned()
        .ok_or_else(|| format!("no session named `{name}` (register it first)"))
}

fn dispatch(shared: &Shared, req: Request) -> Value {
    let op = req.op();
    match req {
        Request::Register { session, program } => {
            match Session::new(
                &session,
                &program,
                shared.opts.sem_cache_capacity,
                shared.opts.plan_cache_capacity,
            ) {
                Ok(s) => {
                    let mut m = ok_response(op);
                    m.insert("session".into(), Value::from(session.as_str()));
                    m.insert(
                        "queries".into(),
                        Value::Array(
                            s.program
                                .queries
                                .iter()
                                .map(|q| Value::from(q.name.as_str()))
                                .collect(),
                        ),
                    );
                    m.insert("relations".into(), Value::from(s.program.catalog.len()));
                    m.insert("dependencies".into(), Value::from(s.program.deps.len()));
                    m.insert("facts".into(), Value::from(s.program.facts.len()));
                    m.insert("class".into(), Value::from(s.class_name.as_str()));
                    shared
                        .sessions
                        .write()
                        .expect("session registry lock")
                        .insert(session, Arc::new(s));
                    Value::Object(m)
                }
                Err(msg) => error_response(Some(op), &msg),
            }
        }
        Request::Check {
            session,
            q,
            q_prime,
        } => {
            let result = get_session(shared, &session).and_then(|s| {
                let qi = s.query_index(&q)?;
                let qpi = s.query_index(&q_prime)?;
                Ok((s, qi, qpi))
            });
            let (s, qi, qpi) = match result {
                Ok(x) => x,
                Err(msg) => return error_response(Some(op), &msg),
            };
            match shared.batcher.submit(Work::Check {
                session: s,
                q: qi,
                q_prime: qpi,
            }) {
                Ok(Outcome::Check {
                    summary: Ok(sum),
                    cached,
                    coalesced,
                }) => {
                    let mut m = ok_response(op);
                    m.insert("q".into(), Value::from(q.as_str()));
                    m.insert("q_prime".into(), Value::from(q_prime.as_str()));
                    sum.write_into(&mut m);
                    m.insert("cached".into(), Value::from(cached));
                    m.insert("coalesced".into(), Value::from(coalesced));
                    Value::Object(m)
                }
                Ok(Outcome::Check {
                    summary: Err(msg), ..
                })
                | Err(msg) => error_response(Some(op), &msg),
                Ok(Outcome::Eval { .. }) => unreachable!("check work yields check outcomes"),
            }
        }
        Request::Eval { session, query } => {
            let result =
                get_session(shared, &session).and_then(|s| s.query_index(&query).map(|qi| (s, qi)));
            let (s, qi) = match result {
                Ok(x) => x,
                Err(msg) => return error_response(Some(op), &msg),
            };
            match shared.batcher.submit(Work::Eval { session: s, q: qi }) {
                Ok(Outcome::Eval { rows, coalesced }) => {
                    let mut m = ok_response(op);
                    m.insert("query".into(), Value::from(query.as_str()));
                    m.insert("count".into(), Value::from(rows.len()));
                    m.insert("rows".into(), rows_to_value(&rows));
                    m.insert("coalesced".into(), Value::from(coalesced));
                    Value::Object(m)
                }
                Err(msg) => error_response(Some(op), &msg),
                Ok(Outcome::Check { .. }) => unreachable!("eval work yields eval outcomes"),
            }
        }
        Request::Classify { session } => match get_session(shared, &session) {
            Ok(s) => {
                let mut m = ok_response(op);
                m.insert("session".into(), Value::from(session.as_str()));
                m.insert("class".into(), Value::from(s.class_name.as_str()));
                m.insert("relations".into(), Value::from(s.program.catalog.len()));
                m.insert("fds".into(), Value::from(s.program.deps.num_fds()));
                m.insert("inds".into(), Value::from(s.program.deps.num_inds()));
                Value::Object(m)
            }
            Err(msg) => error_response(Some(op), &msg),
        },
        Request::Stats => {
            let mut m = ok_response(op);
            for (k, v) in shared.metrics.snapshot().iter() {
                m.insert(k.clone(), v.clone());
            }
            let sessions = shared.sessions.read().expect("session registry lock");
            let mut names: Vec<&String> = sessions.keys().collect();
            names.sort();
            m.insert(
                "sessions".into(),
                Value::Array(names.iter().map(|n| Value::from(n.as_str())).collect()),
            );
            // Aggregate cache counters across sessions.
            let (mut hits, mut misses, mut evictions, mut entries) = (0u64, 0u64, 0u64, 0usize);
            let (mut plan_hits, mut plan_misses, mut plan_evictions) = (0u64, 0u64, 0u64);
            for s in sessions.values() {
                let c = s.sem_cache.lock().expect("semantic cache lock").stats();
                hits += c.hits;
                misses += c.misses;
                evictions += c.evictions;
                entries += c.entries;
                let e = s.eval_state.lock().expect("eval state lock");
                plan_hits += e.plans.hits() as u64;
                plan_misses += e.plans.misses() as u64;
                plan_evictions += e.plans.evictions() as u64;
            }
            let mut sem = Map::new();
            sem.insert("hits".into(), Value::from(hits));
            sem.insert("misses".into(), Value::from(misses));
            sem.insert("evictions".into(), Value::from(evictions));
            sem.insert("entries".into(), Value::from(entries));
            sem.insert(
                "capacity_per_session".into(),
                Value::from(shared.opts.sem_cache_capacity),
            );
            m.insert("semantic_cache".into(), Value::Object(sem));
            let mut plans = Map::new();
            plans.insert("hits".into(), Value::from(plan_hits));
            plans.insert("misses".into(), Value::from(plan_misses));
            plans.insert("evictions".into(), Value::from(plan_evictions));
            m.insert("plan_cache".into(), Value::Object(plans));
            Value::Object(m)
        }
        Request::Shutdown => Value::Object(ok_response(op)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_picks_a_port_and_shuts_down() {
        let (addr, handle) = Server::spawn(ServeOptions {
            addr: "127.0.0.1:0".into(),
            ..Default::default()
        })
        .unwrap();
        assert_ne!(addr.port(), 0);
        let mut c = crate::client::Client::connect(addr).unwrap();
        let v = c.shutdown().unwrap();
        assert_eq!(v["ok"], true);
        handle.join().unwrap().unwrap();
    }
}
