//! The TCP server: session registry, connection handling, dispatch,
//! graceful shutdown.
//!
//! `std::net` only — the build container is offline, so there is no
//! async runtime; concurrency is a bounded connection-handler
//! [`ThreadPool`] (blocking reads with a short timeout so handlers
//! notice shutdown) in front of the admission queue of [`crate::batch`],
//! which bounds *compute* concurrency separately from connection count.
//!
//! Shutdown protocol: a `shutdown` request flips the shared flag and
//! pokes the listener with a dummy connection to unblock `accept`. The
//! accept loop exits, the handler pool is dropped — which drains
//! in-flight connections (handlers observe the flag at their next read
//! timeout, at most ~200 ms) and joins every worker — and `run`
//! returns.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cqchase_index::{CancelToken, FxHashMap};
use cqchase_obs::{SpanKind, Tracer};
use cqchase_par::ThreadPool;
use serde_json::{Map, Value};

use crate::batch::{rows_to_value, Batcher, Outcome, TraceAnnotations, Work};
use crate::catalog::CatalogRegistry;
use crate::durable::{Durability, RecoveryReport, StdIo};
use crate::lanes::{lane_of, LaneSet};
use crate::metrics::Metrics;
use crate::proto::{error_response, ok_response, Op, Request};
use crate::session::{Session, SessionRegistry};

/// Span-recorder ring capacity: spans from the last ~hundreds of traced
/// requests stay readable for the slow-query logger before being
/// overwritten.
const TRACE_CAPACITY: usize = 4096;

/// Cap on the `sessions_detail` block in `stats`/`metrics` responses:
/// with thousands of resident sessions, per-session gauges for every
/// one would dominate the payload (and the Prometheus exposition), so
/// only the top entries by lifetime request traffic are itemized and
/// `sessions_detail_omitted` counts the rest. Aggregates always cover
/// every session.
const SESSIONS_DETAIL_CAP: usize = 64;

/// Default lane count for [`ServeOptions::lanes`]: one admission lane
/// per core up to 8 — past that, leader self-promotion churn outweighs
/// the contention relief on any workload we measure.
pub fn default_lanes() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// How often the disconnect watcher polls its registered sockets, and
/// therefore the upper bound it adds to how long an abandoned request
/// keeps computing before its token fires.
const WATCH_POLL: Duration = Duration::from_millis(20);

/// How long a computed resident-bytes figure is trusted before the
/// pressure check walks the session registry again. Residency moves
/// only on updates/registrations, so re-summing it on every request
/// would buy nothing and cost a registry snapshot per dispatch.
const PRESSURE_RECHECK: Duration = Duration::from_millis(250);

/// Minimum spacing between pressure-triggered cache-eviction passes:
/// shedding a burst must not clear the caches once per refused
/// request — one pass per window, the rest of the burst just sheds.
const EVICT_WINDOW: Duration = Duration::from_secs(1);

/// The `retry_after_ms` hint attached to shed refusals. Chosen to
/// outlast a typical batch drain so a backing-off client's retry
/// lands after the queue has actually moved.
const SHED_RETRY_AFTER_MS: u64 = 100;

/// One socket being watched for peer disconnect while its request is
/// in flight.
struct WatchSlot {
    id: u64,
    stream: TcpStream,
    token: CancelToken,
}

/// Cancels in-flight work whose client hung up.
///
/// One thread for the whole server polls a registry of
/// `(socket, token)` pairs every [`WATCH_POLL`]: a zero-byte `peek`
/// (orderly shutdown) or a hard socket error fires the request's
/// [`CancelToken`], and the engines unwind at their next coalesced
/// cancellation check — work nobody is waiting for stops occupying
/// the compute pool. Sockets are registered only while a queued verb
/// is in flight and deregistered by guard the moment it completes, so
/// the poll list stays as small as the number of concurrently
/// executing requests.
struct DisconnectWatcher {
    slots: Mutex<Vec<WatchSlot>>,
    stop: AtomicBool,
    next_id: AtomicU64,
}

/// Deregisters a watched socket when the request finishes (including
/// by panic — the guard lives on the dispatch stack).
struct WatchGuard<'a> {
    watcher: &'a DisconnectWatcher,
    id: u64,
}

impl Drop for WatchGuard<'_> {
    fn drop(&mut self) {
        let mut slots = self.watcher.slots.lock().expect("watcher slots lock");
        slots.retain(|s| s.id != self.id);
    }
}

impl DisconnectWatcher {
    /// Builds the watcher and starts its poll thread.
    fn spawn() -> (Arc<DisconnectWatcher>, std::thread::JoinHandle<()>) {
        let watcher = Arc::new(DisconnectWatcher {
            slots: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
        });
        let w = Arc::clone(&watcher);
        let handle = std::thread::Builder::new()
            .name("disconnect-watcher".into())
            .spawn(move || w.run())
            .expect("spawn disconnect watcher");
        (watcher, handle)
    }

    /// Registers `stream` for disconnect polling; its `token` fires if
    /// the peer goes away. Returns `None` (watching disabled for this
    /// request, nothing else changes) when the socket cannot be
    /// cloned — cancellation is an optimization, never a correctness
    /// dependency.
    fn watch<'a>(&'a self, stream: &TcpStream, token: CancelToken) -> Option<WatchGuard<'a>> {
        let clone = stream.try_clone().ok()?;
        clone.set_nonblocking(true).ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.slots
            .lock()
            .expect("watcher slots lock")
            .push(WatchSlot {
                id,
                stream: clone,
                token,
            });
        Some(WatchGuard { watcher: self, id })
    }

    fn run(&self) {
        let mut probe = [0u8; 1];
        while !self.stop.load(Ordering::Acquire) {
            std::thread::sleep(WATCH_POLL);
            let mut slots = self.slots.lock().expect("watcher slots lock");
            slots.retain(|s| {
                // A nonblocking peek never consumes protocol bytes:
                // pending data (the client pipelining its next request)
                // and WouldBlock both mean the peer is still there.
                match s.stream.peek(&mut probe) {
                    Ok(0) => {
                        s.token.cancel();
                        false
                    }
                    Ok(_) => true,
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                        ) =>
                    {
                        true
                    }
                    Err(_) => {
                        s.token.cancel();
                        false
                    }
                }
            });
        }
    }
}

/// The throttled resident-bytes figure behind the memory watermark.
struct PressureState {
    /// When `resident_bytes` was last recomputed (`None` = never).
    checked_at: Option<Instant>,
    resident_bytes: u64,
    /// When the last pressure-triggered eviction pass ran.
    evicted_at: Option<Instant>,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker threads for containment/evaluation batches (split across
    /// lanes: each lane's batcher gets `max(1, batch_threads / lanes)`).
    pub batch_threads: usize,
    /// Session lanes: independent admission queues session names hash
    /// onto, each with its own batch leader, compute-pool slice, and
    /// metrics shard. `1` reproduces the single-queue server exactly.
    pub lanes: usize,
    /// Connection-handler threads (bounds concurrent connections).
    pub conn_workers: usize,
    /// Semantic-cache capacity per session (0 disables caching).
    pub sem_cache_capacity: usize,
    /// Evaluation plan-cache capacity per session.
    pub plan_cache_capacity: usize,
    /// Data directory for crash-safe session persistence. When set,
    /// registrations and updates are write-ahead logged (fsync before
    /// acknowledgement) and the whole registry survives a restart;
    /// when `None` the server is purely in-memory (the prior behavior).
    pub data_dir: Option<PathBuf>,
    /// WAL size past which a snapshot rotation triggers (`None` uses
    /// [`cqchase_durability::DEFAULT_ROTATE_BYTES`]).
    pub wal_rotate_bytes: Option<u64>,
    /// Slow-query threshold in microseconds: a request whose total
    /// latency reaches it is logged as one structured JSON line with its
    /// full span trace (to `--data-dir/slowlog` when a data directory is
    /// configured, stderr otherwise). Setting it turns tracing on.
    /// `None` disables the slow-query log.
    pub slow_query_us: Option<u64>,
    /// Force request tracing on even without a slow-query threshold
    /// (spans are recorded but nothing is emitted — useful for the
    /// tracing-overhead benchmark and tests reading the recorder).
    pub trace: bool,
    /// Default deadline applied to `update`/`check`/`eval` requests
    /// that do not carry their own `deadline_ms`. `None` leaves
    /// hintless requests unlimited (the prior behavior). The deadline
    /// is measured from admission, so queue wait counts against it.
    pub default_deadline_ms: Option<u64>,
    /// Load-shedding watermark on a lane's admission-queue depth:
    /// when the target lane already holds at least this many queued
    /// work items, new `update`/`check`/`eval` requests are refused
    /// with `retry_after_ms` instead of queued. `None` disables
    /// depth-based shedding.
    pub shed_queue_depth: Option<u64>,
    /// Load-shedding watermark on resident bytes (owned session
    /// indexes plus shared catalogs): above it, new expensive requests
    /// are refused with `retry_after_ms` and one cache-eviction pass
    /// drops rebuildable state (result caches, plan caches, semantic
    /// caches). Residency is recomputed at most every
    /// [`PRESSURE_RECHECK`]. `None` disables memory-based shedding.
    pub shed_resident_bytes: Option<u64>,
    /// Write timeout on every accepted connection: a response write
    /// that stalls this long (a reader that stopped draining) counts
    /// one `write_timeouts` and drops the connection instead of
    /// wedging a handler thread. 0 disables the timeout.
    pub write_timeout_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7878".into(),
            batch_threads: cqchase_par::default_threads(),
            lanes: default_lanes(),
            conn_workers: 8,
            sem_cache_capacity: 1024,
            plan_cache_capacity: 256,
            data_dir: None,
            wal_rotate_bytes: None,
            slow_query_us: None,
            trace: false,
            default_deadline_ms: None,
            shed_queue_depth: None,
            shed_resident_bytes: None,
            write_timeout_ms: 10_000,
        }
    }
}

/// State shared by every connection handler.
struct Shared {
    sessions: Arc<SessionRegistry>,
    /// N admission lanes; requests route by `lane_of(session name)`.
    lanes: LaneSet,
    /// The shared-catalog registry: sessions registering an identical
    /// program attach to one frozen catalog instead of rebuilding it.
    /// Shared with the durability layer when one is configured, so
    /// recovery and live registration dedupe against the same pool.
    catalogs: Arc<CatalogRegistry>,
    durability: Option<Arc<Durability>>,
    metrics: Arc<Metrics>,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    opts: ServeOptions,
    /// Connections accepted and not yet finished (serving or queued
    /// for a handler). Bounds admission — see [`Server::run`].
    active_conns: std::sync::atomic::AtomicUsize,
    /// The span recorder (shared with the batcher); enabled iff
    /// `opts.trace` or a slow-query threshold is set.
    tracer: Arc<Tracer>,
    /// Join annotations parked by the batch layer, keyed by trace id.
    annotations: Arc<TraceAnnotations>,
    /// The slow-query log sink: `--data-dir/slowlog` when a data
    /// directory is configured, `None` falls back to stderr.
    slowlog: Option<std::sync::Mutex<std::fs::File>>,
    /// The disconnect poller (see [`DisconnectWatcher`]).
    watcher: Arc<DisconnectWatcher>,
    /// Whether the last pressure check refused work — the `ping`
    /// verb's shedding gauge.
    shedding: AtomicBool,
    /// Throttled residency accounting for the memory watermark.
    pressure: Mutex<PressureState>,
    /// What recovery restored at bind (`Null` without a data dir) —
    /// reported by `ping` so probes can tell a fresh process from a
    /// restored one.
    recovery_json: Value,
}

/// Decrements the active-connection count when a handler finishes —
/// including by panic (the guard lives inside the pool job).
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.active_conns.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    recovery: Option<RecoveryReport>,
    watcher_handle: std::thread::JoinHandle<()>,
}

impl Server {
    /// Binds the listener and builds the shared state. When a data
    /// directory is configured, recovery runs here — a corrupt snapshot
    /// or WAL fails the bind with `InvalidData` naming the file and
    /// offset, never a silently emptier registry. The server does not
    /// accept connections until [`run`](Server::run).
    pub fn bind(opts: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let local_addr = listener.local_addr()?;
        let lane_count = opts.lanes.max(1);
        let metrics = Arc::new(Metrics::with_lanes(lane_count));
        let sessions = Arc::new(SessionRegistry::new());
        let (durability, recovery) = match &opts.data_dir {
            None => (None, None),
            Some(dir) => {
                let (d, report) = Durability::open(
                    Arc::new(StdIo),
                    dir,
                    opts.wal_rotate_bytes,
                    Arc::clone(&sessions),
                    opts.sem_cache_capacity,
                    opts.plan_cache_capacity,
                )
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                (Some(Arc::new(d)), Some(report))
            }
        };
        if let Some(report) = &recovery {
            // One structured line so process supervisors can scrape what
            // a restart actually restored.
            eprintln!("{}", report.to_json());
        }
        // One catalog pool for the whole process: the durable path
        // already owns one (recovery attaches restored sessions to it),
        // the in-memory server builds its own.
        let catalogs = match &durability {
            Some(d) => Arc::clone(d.catalogs()),
            None => Arc::new(CatalogRegistry::new(opts.plan_cache_capacity)),
        };
        let tracer = Arc::new(Tracer::new(TRACE_CAPACITY));
        tracer.set_enabled(opts.trace || opts.slow_query_us.is_some());
        let annotations: Arc<TraceAnnotations> =
            Arc::new(std::sync::Mutex::new(FxHashMap::default()));
        // Each lane gets its own batcher over its own slice of the
        // compute budget; with one lane this is exactly the old single
        // batcher (same thread count, same counters).
        let threads_per_lane = (opts.batch_threads / lane_count).max(1);
        let lanes = LaneSet::new(lane_count, |i| {
            let mut b = Batcher::new(threads_per_lane, Arc::clone(&metrics))
                .with_lane(i)
                .with_tracing(Arc::clone(&tracer), Arc::clone(&annotations));
            if let Some(d) = &durability {
                b = b.with_durability(Arc::clone(d));
            }
            b
        });
        let slowlog = match (&opts.data_dir, opts.slow_query_us) {
            (Some(dir), Some(_)) => std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join("slowlog"))
                .ok()
                .map(std::sync::Mutex::new),
            _ => None,
        };
        let (watcher, watcher_handle) = DisconnectWatcher::spawn();
        let shared = Arc::new(Shared {
            sessions,
            lanes,
            catalogs,
            durability,
            metrics,
            shutdown: AtomicBool::new(false),
            local_addr,
            opts,
            active_conns: std::sync::atomic::AtomicUsize::new(0),
            tracer,
            annotations,
            slowlog,
            watcher,
            shedding: AtomicBool::new(false),
            pressure: Mutex::new(PressureState {
                checked_at: None,
                resident_bytes: 0,
                evicted_at: None,
            }),
            recovery_json: recovery
                .as_ref()
                .map(RecoveryReport::to_json)
                .unwrap_or(Value::Null),
        });
        Ok(Server {
            listener,
            shared,
            recovery,
            watcher_handle,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// What recovery restored at bind time (`None` without a data dir).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Accepts and serves connections until a `shutdown` request
    /// arrives, then drains and returns.
    ///
    /// Admission is bounded: a connection is handed to the worker pool
    /// only while fewer than `2 × conn_workers` connections are live
    /// (serving or queued for a free worker); beyond that the server
    /// answers one `ok:false` overload line and closes, rather than
    /// queueing sockets without bound until file descriptors run out.
    pub fn run(self) -> io::Result<()> {
        let pool = ThreadPool::new(self.shared.opts.conn_workers);
        let max_conns = self.shared.opts.conn_workers.max(1) * 2;
        loop {
            let mut stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) => {
                    if self.shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(e);
                }
            };
            if self.shared.shutdown.load(Ordering::Acquire) {
                // The shutdown waker (or a late client): drop it.
                break;
            }
            if self.shared.active_conns.load(Ordering::Relaxed) >= max_conns {
                // One process-wide counter regardless of lane count:
                // refusals happen at accept, before any lane routing.
                self.shared
                    .metrics
                    .overload_refusals
                    .fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
                let mut line = error_response(
                    None,
                    &format!("server overloaded: more than {max_conns} live connections"),
                )
                .to_string();
                line.push('\n');
                let _ = stream.write_all(line.as_bytes());
                continue; // drop the stream: connection refused politely
            }
            self.shared.active_conns.fetch_add(1, Ordering::Relaxed);
            self.shared
                .metrics
                .connections
                .fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&self.shared);
            pool.execute(move || {
                let guard = ConnGuard(Arc::clone(&shared));
                handle_connection(stream, shared);
                drop(guard);
            });
        }
        // Dropping the pool joins the handlers: every in-flight
        // connection notices the flag within one read timeout and
        // exits. That is the graceful drain.
        drop(pool);
        // No handlers left means no watched sockets left; stop the
        // disconnect poller and wait for its tick to finish.
        self.shared.watcher.stop.store(true, Ordering::Release);
        let _ = self.watcher_handle.join();
        Ok(())
    }

    /// Binds and runs on a background thread; returns the bound address
    /// and the join handle. Convenience for tests, benchmarks, and the
    /// load-generator experiment.
    pub fn spawn(
        opts: ServeOptions,
    ) -> io::Result<(SocketAddr, std::thread::JoinHandle<io::Result<()>>)> {
        let server = Server::bind(opts)?;
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        Ok((addr, handle))
    }
}

/// How long a blocking read waits before re-checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(200);

/// Maximum accepted line length (a peer streaming bytes with no
/// newline must not grow server memory without bound).
const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// Buffered newline framing over a read-timeout socket. `BufRead::
/// read_line` leaves its buffer unspecified after an error, so timeouts
/// (which are routine here — they are the shutdown poll) need explicit
/// buffering that survives them.
struct LineReader {
    buf: Vec<u8>,
    start: usize,
    /// Index up to which `buf` is known newline-free (≥ `start`).
    /// Without it, every arriving chunk would re-scan the whole
    /// buffered line — quadratic in the line length, which a peer
    /// streaming an almost-cap-sized line turns into seconds of CPU.
    scanned: usize,
}

impl LineReader {
    fn new() -> LineReader {
        LineReader {
            buf: Vec::with_capacity(4096),
            start: 0,
            scanned: 0,
        }
    }

    /// The next `\n`-terminated line as raw bytes (without the
    /// terminator), `None` on peer close or shutdown. UTF-8 validation
    /// is the caller's: a bad line is fully consumed through its
    /// newline, so the caller can answer an error and keep the stream.
    fn next_line(
        &mut self,
        stream: &mut TcpStream,
        shutdown: &AtomicBool,
    ) -> io::Result<Option<Vec<u8>>> {
        loop {
            if let Some(pos) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                let end = self.scanned + pos;
                let line = self.buf[self.start..end].to_vec();
                self.start = end + 1;
                // Bytes past the newline are unscanned territory.
                self.scanned = self.start;
                if self.start == self.buf.len() {
                    self.buf.clear();
                    self.start = 0;
                    self.scanned = 0;
                }
                return Ok(Some(line));
            }
            self.scanned = self.buf.len();
            if shutdown.load(Ordering::Acquire) {
                return Ok(None);
            }
            if self.buf.len() - self.start > MAX_LINE_BYTES {
                // No newline within the cap: the stream is mid-line and
                // unrecoverably desynchronized — the caller must answer
                // one refusal and close, never read on.
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "request line exceeds the maximum length",
                ));
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(None),
                Ok(n) => {
                    // Drop consumed bytes before growing.
                    if self.start > 0 {
                        self.buf.drain(..self.start);
                        self.scanned -= self.start;
                        self.start = 0;
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// How long a refused connection's lingering close discards input
/// before giving up on a clean shutdown.
const LINGER_MAX: Duration = Duration::from_secs(2);

/// Reads and discards input until the peer closes (or a short deadline
/// or server shutdown) — the lingering half of refuse-then-close, so a
/// refusal written just before is reliably delivered instead of being
/// wiped out by the reset a close-with-unread-bytes provokes.
fn drain_briefly(stream: &mut TcpStream, shutdown: &AtomicBool) {
    let deadline = Instant::now() + LINGER_MAX;
    let mut scratch = [0u8; 4096];
    while Instant::now() < deadline && !shutdown.load(Ordering::Acquire) {
        match stream.read(&mut scratch) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
}

/// Writes one response line; the error (if any) lets the caller tell a
/// stalled writer from a vanished peer.
fn write_line(stream: &mut TcpStream, response: &Value) -> io::Result<()> {
    let mut line = response.to_string();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

/// [`write_line`] plus the write-timeout policy: a write that timed
/// out (the peer stopped draining its socket) counts one
/// `write_timeouts`; any write failure drops the connection (returns
/// `false`) — a handler thread must never stay wedged behind a dead
/// reader.
fn write_or_drop(stream: &mut TcpStream, shared: &Shared, response: &Value) -> bool {
    match write_line(stream, response) {
        Ok(()) => true,
        Err(e) => {
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) {
                shared
                    .metrics
                    .write_timeouts
                    .fetch_add(1, Ordering::Relaxed);
            }
            false
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    if shared.opts.write_timeout_ms > 0 {
        let _ = stream.set_write_timeout(Some(Duration::from_millis(shared.opts.write_timeout_ms)));
    }
    let _ = stream.set_nodelay(true);
    let mut reader = LineReader::new();
    loop {
        let raw = match reader.next_line(&mut stream, &shared.shutdown) {
            Ok(Some(raw)) => raw,
            Ok(None) => break,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized line: the reader is mid-stream with no way
                // to find the next frame boundary. Send one refusal and
                // close — never reuse a desynchronized stream. The
                // close lingers briefly (discarding input) so the
                // refusal is not clobbered by a TCP reset triggered by
                // closing with unread bytes queued.
                let sent = write_or_drop(
                    &mut stream,
                    &shared,
                    &error_response(
                        None,
                        &format!(
                            "request line exceeds the maximum length \
                             ({MAX_LINE_BYTES} bytes); closing connection"
                        ),
                    ),
                );
                if sent {
                    drain_briefly(&mut stream, &shared.shutdown);
                }
                break;
            }
            Err(_) => break,
        };
        let line = match String::from_utf8(raw) {
            Ok(line) => line,
            Err(_) => {
                // The frame was consumed through its newline, so the
                // stream stays synchronized: answer and read on.
                let resp = error_response(None, "bad utf-8: request line is not valid UTF-8");
                if !write_or_drop(&mut stream, &shared, &resp) {
                    break;
                }
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let (trace_id, start_us) = if shared.tracer.is_enabled() {
            (shared.tracer.next_trace_id(), shared.tracer.now_us())
        } else {
            (0, 0)
        };
        let (response, op) = match Request::from_line(&line) {
            Ok(req) => {
                let op = req.op();
                (dispatch(&shared, req, trace_id, &stream), Some(op))
            }
            Err(msg) => (error_response(None, &msg), None),
        };
        let ok = response["ok"] == true;
        if let Some(op) = op {
            shared.metrics.record(op, started.elapsed(), ok);
        }
        if trace_id != 0 {
            shared.tracer.record(
                trace_id,
                SpanKind::Request,
                start_us,
                shared.tracer.now_us(),
            );
            finish_trace(&shared, trace_id, op, started.elapsed(), ok);
        }
        if !write_or_drop(&mut stream, &shared, &response) {
            break;
        }
        if op == Some(Op::Shutdown) && ok {
            trigger_shutdown(&shared);
            break;
        }
    }
}

/// Closes out one traced request: reclaims its parked join annotation
/// and, when the latency reaches the slow-query threshold, emits one
/// structured JSON line — op, latency, every recorded span, and (for
/// evals) the join plan with per-atom estimated-vs-actual cardinality —
/// to the slowlog file or stderr.
fn finish_trace(shared: &Shared, trace_id: u64, op: Option<Op>, latency: Duration, ok: bool) {
    // Always reclaim the annotation — residency in the parking map must
    // be bounded by in-flight traced requests, not by slow ones.
    let annotation = shared
        .annotations
        .lock()
        .expect("annotations lock")
        .remove(&trace_id);
    let threshold = match shared.opts.slow_query_us {
        Some(t) => t,
        None => return,
    };
    let latency_us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
    if latency_us < threshold {
        return;
    }
    let spans: Vec<Value> = shared
        .tracer
        .spans_for(trace_id)
        .into_iter()
        .map(|s| {
            let mut m = Map::new();
            m.insert("kind".into(), Value::from(s.kind.as_str()));
            m.insert("start_us".into(), Value::from(s.start_us));
            m.insert("dur_us".into(), Value::from(s.dur_us()));
            Value::Object(m)
        })
        .collect();
    let mut line = Map::new();
    line.insert("event".into(), Value::from("slow_query"));
    line.insert(
        "op".into(),
        match op {
            Some(op) => Value::from(op.as_str()),
            None => Value::Null,
        },
    );
    line.insert("trace_id".into(), Value::from(trace_id));
    line.insert("latency_us".into(), Value::from(latency_us));
    line.insert("threshold_us".into(), Value::from(threshold));
    line.insert("ok".into(), Value::from(ok));
    line.insert("spans".into(), Value::Array(spans));
    if let Some(ann) = annotation {
        line.insert("join".into(), ann);
    }
    let text = Value::Object(line).to_string();
    match &shared.slowlog {
        Some(file) => {
            let mut file = file.lock().expect("slowlog lock");
            let _ = writeln!(file, "{text}");
        }
        None => eprintln!("{text}"),
    }
}

/// Flips the flag and pokes the acceptor awake.
fn trigger_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::Release);
    let _ = TcpStream::connect(shared.local_addr);
}

fn get_session(shared: &Shared, name: &str) -> Result<Arc<Session>, String> {
    let s = shared.sessions.get(name)?;
    // Lifetime traffic drives the top-K `sessions_detail` selection.
    s.traffic.fetch_add(1, Ordering::Relaxed);
    Ok(s)
}

/// One queued request's cancellation wiring: the token the engines
/// poll, the effective deadline (request field or server default), and
/// the disconnect-watch registration (dropped — deregistering the
/// socket — when the request finishes).
struct Lifecycle<'a> {
    token: CancelToken,
    deadline_ms: Option<u64>,
    _watch: Option<WatchGuard<'a>>,
}

/// Arms the request lifecycle for a queued verb: the deadline clock
/// starts here — *before* admission, so queue wait counts against it —
/// and the connection is registered with the disconnect watcher so a
/// peer hang-up cancels the work mid-flight.
fn arm_lifecycle<'a>(
    shared: &'a Shared,
    stream: &TcpStream,
    deadline_ms: Option<u64>,
) -> Lifecycle<'a> {
    let deadline_ms = deadline_ms.or(shared.opts.default_deadline_ms);
    let token = match deadline_ms {
        Some(ms) => CancelToken::with_deadline_ms(ms),
        None => CancelToken::unlimited(),
    };
    let watch = shared.watcher.watch(stream, token.clone());
    Lifecycle {
        token,
        deadline_ms,
        _watch: watch,
    }
}

/// Closes out a queued verb: records how far past its deadline a
/// deadline-carrying request was answered (0 when in time — the
/// `deadline_overrun` distribution bounds the cancellation-check
/// reaction lag).
fn finish_lifecycle(shared: &Shared, lc: &Lifecycle<'_>) {
    if lc.deadline_ms.is_some() {
        shared
            .metrics
            .deadline_overrun
            .record(Duration::from_micros(lc.token.overrun_us()), true);
    }
}

/// The structured refusal for a cancelled request: `error` is the
/// stable headline (`deadline exceeded` / `cancelled: client
/// disconnected`), `detail` carries the partial-progress counters the
/// engine reported, and a [`SpanKind::Cancelled`] span records how
/// long the cooperative unwind took (deadline expiry → reply).
fn cancelled_response(
    shared: &Shared,
    op: Op,
    lc: &Lifecycle<'_>,
    disconnect: bool,
    detail: &str,
    trace_id: u64,
) -> Value {
    if trace_id != 0 {
        let now = shared.tracer.now_us();
        let lag = if disconnect { 0 } else { lc.token.overrun_us() };
        shared
            .tracer
            .record(trace_id, SpanKind::Cancelled, now.saturating_sub(lag), now);
    }
    let headline = if disconnect {
        "cancelled: client disconnected"
    } else {
        "deadline exceeded"
    };
    let mut v = error_response(Some(op), headline);
    if let Value::Object(m) = &mut v {
        m.insert("cancelled".into(), Value::from(true));
        m.insert("detail".into(), Value::from(detail));
        if let Some(ms) = lc.deadline_ms {
            m.insert("deadline_ms".into(), Value::from(ms));
        }
    }
    v
}

/// The pressure gate for queued verbs: `Some(refusal)` when the
/// session's lane is past the queue-depth watermark or the process is
/// past the resident-bytes watermark. Refusals carry `retry_after_ms`
/// (and count on `metrics.shed`); crossing the memory watermark also
/// triggers at most one cache-eviction pass per [`EVICT_WINDOW`],
/// dropping rebuildable state (result rows, plans, semantic-cache
/// answers) while facts and epochs stay untouched.
fn shed_refusal(shared: &Shared, op: Op, session: &str) -> Option<Value> {
    let mut reason: Option<String> = None;
    if let Some(mark) = shared.opts.shed_queue_depth {
        let lane = lane_of(session, shared.lanes.len());
        let depth = shared
            .metrics
            .lane(lane)
            .queue_depth
            .load(Ordering::Relaxed);
        if depth >= mark {
            reason = Some(format!(
                "lane {lane} admission queue holds {depth} items (watermark {mark})"
            ));
        }
    }
    if reason.is_none() {
        if let Some(mark) = shared.opts.shed_resident_bytes {
            let resident = resident_bytes_throttled(shared);
            if resident >= mark {
                reason = Some(format!("resident bytes {resident} past watermark {mark}"));
                evict_for_pressure(shared);
            }
        }
    }
    let Some(why) = reason else {
        shared.shedding.store(false, Ordering::Relaxed);
        return None;
    };
    shared.shedding.store(true, Ordering::Relaxed);
    shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
    let mut v = error_response(Some(op), &format!("server overloaded: {why}; retry later"));
    if let Value::Object(m) = &mut v {
        m.insert("shed".into(), Value::from(true));
        m.insert("retry_after_ms".into(), Value::from(SHED_RETRY_AFTER_MS));
    }
    Some(v)
}

/// Resident bytes (owned session indexes plus shared catalogs),
/// recomputed at most once per [`PRESSURE_RECHECK`].
fn resident_bytes_throttled(shared: &Shared) -> u64 {
    let mut p = shared.pressure.lock().expect("pressure lock");
    if p.checked_at.is_some_and(|t| t.elapsed() < PRESSURE_RECHECK) {
        return p.resident_bytes;
    }
    let sessions: usize = shared
        .sessions
        .snapshot()
        .iter()
        .map(|s| s.resident_bytes())
        .sum();
    let catalogs: usize = shared
        .catalogs
        .snapshot()
        .iter()
        .map(|c| c.resident_bytes())
        .sum();
    p.resident_bytes = (sessions + catalogs) as u64;
    p.checked_at = Some(Instant::now());
    p.resident_bytes
}

/// One cache-eviction pass over every session, at most once per
/// [`EVICT_WINDOW`]. Only rebuildable state is dropped.
fn evict_for_pressure(shared: &Shared) {
    {
        let mut p = shared.pressure.lock().expect("pressure lock");
        if p.evicted_at.is_some_and(|t| t.elapsed() < EVICT_WINDOW) {
            return;
        }
        p.evicted_at = Some(Instant::now());
        // The caches we are about to clear are part of what residency
        // counted; force the next check to re-measure.
        p.checked_at = None;
    }
    // Outside the pressure lock: shedding walks per-session locks.
    let mut dropped = 0u64;
    for s in shared.sessions.snapshot() {
        dropped += s.shed_caches() as u64;
    }
    shared
        .metrics
        .pressure_evictions
        .fetch_add(dropped, Ordering::Relaxed);
}

fn dispatch(shared: &Shared, req: Request, trace_id: u64, stream: &TcpStream) -> Value {
    let op = req.op();
    let trace = (trace_id != 0).then(|| (shared.tracer.as_ref(), trace_id));
    match req {
        Request::Register { session, program } => {
            // Refuse taken names before the expensive build (a retried
            // register must not re-parse an 8 MiB program just to be
            // told no), then build, then claim the name atomically —
            // `insert_new` arbitrates racing duplicates, which lose
            // with the same explicit error instead of silently
            // replacing warm state. With a data dir, the durable path
            // additionally fsyncs a `Register` WAL record before the
            // acknowledgement (and rolls the insertion back if it
            // cannot): an `ok:true` register survives a restart.
            let built = match &shared.durability {
                Some(d) => d.register_traced(&session, &program, trace),
                None => shared
                    .sessions
                    .check_free(&session)
                    .and_then(|()| {
                        shared.catalogs.session_from_source(
                            &session,
                            &program,
                            shared.opts.sem_cache_capacity,
                            shared.opts.plan_cache_capacity,
                        )
                    })
                    .and_then(|s| shared.sessions.insert_new(s)),
            };
            match built {
                Ok(s) => {
                    s.traffic.fetch_add(1, Ordering::Relaxed);
                    let program = s.program();
                    let mut m = ok_response(op);
                    m.insert("session".into(), Value::from(session.as_str()));
                    m.insert(
                        "queries".into(),
                        Value::Array(
                            program
                                .queries
                                .iter()
                                .map(|q| Value::from(q.name.as_str()))
                                .collect(),
                        ),
                    );
                    m.insert("relations".into(), Value::from(program.catalog.len()));
                    m.insert("dependencies".into(), Value::from(program.deps.len()));
                    m.insert("facts".into(), Value::from(program.facts.len()));
                    m.insert("class".into(), Value::from(s.class_name()));
                    m.insert("shared".into(), Value::from(s.facts_shared()));
                    m.insert(
                        "lane".into(),
                        Value::from(lane_of(&session, shared.lanes.len())),
                    );
                    Value::Object(m)
                }
                Err(msg) => error_response(Some(op), &msg),
            }
        }
        Request::Update {
            session,
            insert,
            delete,
            deadline_ms,
        } => {
            let s = match get_session(shared, &session) {
                Ok(s) => s,
                Err(msg) => return error_response(Some(op), &msg),
            };
            if let Some(refusal) = shed_refusal(shared, op, &session) {
                return refusal;
            }
            let lc = arm_lifecycle(shared, stream, deadline_ms);
            let result = shared.lanes.for_session(&session).submit_cancellable(
                Work::Update {
                    session: s,
                    insert,
                    delete,
                },
                trace_id,
                lc.token.clone(),
            );
            finish_lifecycle(shared, &lc);
            match result {
                Ok(Outcome::Update(Ok(sum))) => {
                    let mut m = ok_response(op);
                    m.insert("session".into(), Value::from(session.as_str()));
                    m.insert("inserted".into(), Value::from(sum.inserted));
                    m.insert("deleted".into(), Value::from(sum.deleted));
                    m.insert("facts".into(), Value::from(sum.facts));
                    m.insert("epoch".into(), Value::from(sum.epoch));
                    Value::Object(m)
                }
                Ok(Outcome::Cancelled { disconnect, detail }) => {
                    cancelled_response(shared, op, &lc, disconnect, &detail, trace_id)
                }
                Ok(Outcome::Update(Err(msg))) | Err(msg) => error_response(Some(op), &msg),
                Ok(other) => unreachable!("update work yields update outcomes, got {other:?}"),
            }
        }
        Request::Check {
            session,
            q,
            q_prime,
            deadline_ms,
        } => {
            let result = get_session(shared, &session).and_then(|s| {
                let qi = s.query_index(&q)?;
                let qpi = s.query_index(&q_prime)?;
                Ok((s, qi, qpi))
            });
            let (s, qi, qpi) = match result {
                Ok(x) => x,
                Err(msg) => return error_response(Some(op), &msg),
            };
            if let Some(refusal) = shed_refusal(shared, op, &session) {
                return refusal;
            }
            let lc = arm_lifecycle(shared, stream, deadline_ms);
            let result = shared.lanes.for_session(&session).submit_cancellable(
                Work::Check {
                    session: s,
                    q: qi,
                    q_prime: qpi,
                },
                trace_id,
                lc.token.clone(),
            );
            finish_lifecycle(shared, &lc);
            match result {
                Ok(Outcome::Check {
                    summary: Ok(sum),
                    cached,
                    coalesced,
                }) => {
                    let mut m = ok_response(op);
                    m.insert("q".into(), Value::from(q.as_str()));
                    m.insert("q_prime".into(), Value::from(q_prime.as_str()));
                    sum.write_into(&mut m);
                    m.insert("cached".into(), Value::from(cached));
                    m.insert("coalesced".into(), Value::from(coalesced));
                    Value::Object(m)
                }
                Ok(Outcome::Cancelled { disconnect, detail }) => {
                    cancelled_response(shared, op, &lc, disconnect, &detail, trace_id)
                }
                Ok(Outcome::Check {
                    summary: Err(msg), ..
                })
                | Err(msg) => error_response(Some(op), &msg),
                Ok(other) => unreachable!("check work yields check outcomes, got {other:?}"),
            }
        }
        Request::Eval {
            session,
            query,
            deadline_ms,
        } => {
            let result =
                get_session(shared, &session).and_then(|s| s.query_index(&query).map(|qi| (s, qi)));
            let (s, qi) = match result {
                Ok(x) => x,
                Err(msg) => return error_response(Some(op), &msg),
            };
            if let Some(refusal) = shed_refusal(shared, op, &session) {
                return refusal;
            }
            let lc = arm_lifecycle(shared, stream, deadline_ms);
            let result = shared.lanes.for_session(&session).submit_cancellable(
                Work::Eval { session: s, q: qi },
                trace_id,
                lc.token.clone(),
            );
            finish_lifecycle(shared, &lc);
            match result {
                Ok(Outcome::Eval {
                    rows,
                    cached,
                    coalesced,
                }) => {
                    let mut m = ok_response(op);
                    m.insert("query".into(), Value::from(query.as_str()));
                    m.insert("count".into(), Value::from(rows.len()));
                    m.insert("rows".into(), rows_to_value(&rows));
                    m.insert("cached".into(), Value::from(cached));
                    m.insert("coalesced".into(), Value::from(coalesced));
                    Value::Object(m)
                }
                Ok(Outcome::Cancelled { disconnect, detail }) => {
                    cancelled_response(shared, op, &lc, disconnect, &detail, trace_id)
                }
                Err(msg) => error_response(Some(op), &msg),
                Ok(other) => unreachable!("eval work yields eval outcomes, got {other:?}"),
            }
        }
        Request::Classify { session } => match get_session(shared, &session) {
            Ok(s) => {
                let mut m = ok_response(op);
                m.insert("session".into(), Value::from(session.as_str()));
                m.insert("class".into(), Value::from(s.class_name()));
                m.insert("relations".into(), Value::from(s.program().catalog.len()));
                m.insert("fds".into(), Value::from(s.program().deps.num_fds()));
                m.insert("inds".into(), Value::from(s.program().deps.num_inds()));
                let (facts, epoch) = s.facts_snapshot();
                m.insert("facts".into(), Value::from(facts));
                m.insert("facts_epoch".into(), Value::from(epoch));
                Value::Object(m)
            }
            Err(msg) => error_response(Some(op), &msg),
        },
        Request::Stats => {
            let mut m = ok_response(op);
            for (k, v) in stats_value(shared).iter() {
                m.insert(k.clone(), v.clone());
            }
            Value::Object(m)
        }
        Request::Metrics => {
            let mut m = ok_response(op);
            let text = cqchase_obs::prom::render_prometheus(&Value::Object(stats_value(shared)));
            m.insert("text".into(), Value::String(text));
            Value::Object(m)
        }
        Request::Persist => match &shared.durability {
            Some(d) => match d.persist() {
                Ok((seq, sessions)) => {
                    let mut m = ok_response(op);
                    m.insert("seq".into(), Value::from(seq));
                    m.insert("sessions".into(), Value::from(sessions));
                    Value::Object(m)
                }
                Err(msg) => error_response(Some(op), &msg),
            },
            None => error_response(
                Some(op),
                "persist requires a data directory (start the server with --data-dir)",
            ),
        },
        Request::Shutdown => Value::Object(ok_response(op)),
        Request::Ping => {
            // Answered inline on the handler thread — never queued
            // behind the admission lanes, never shed — so health
            // probes keep working exactly when the server is drowning.
            let mut m = ok_response(op);
            m.insert(
                "uptime_s".into(),
                Value::from(shared.metrics.uptime().as_secs_f64()),
            );
            m.insert("lanes".into(), Value::from(shared.lanes.len()));
            m.insert("sessions".into(), Value::from(shared.sessions.len()));
            m.insert(
                "shedding".into(),
                Value::from(shared.shedding.load(Ordering::Relaxed)),
            );
            m.insert(
                "shed_total".into(),
                Value::from(shared.metrics.shed.load(Ordering::Relaxed)),
            );
            m.insert(
                "durability".into(),
                Value::from(shared.durability.is_some()),
            );
            m.insert("recovery".into(), shared.recovery_json.clone());
            Value::Object(m)
        }
    }
}

/// The full stats payload (everything but the `ok`/`op` envelope) —
/// shared by the `stats` (JSON) and `metrics` (Prometheus text) verbs so
/// the two expositions can never drift apart.
fn stats_value(shared: &Shared) -> Map<String, Value> {
    let mut m = Map::new();
    for (k, v) in shared.metrics.snapshot().iter() {
        m.insert(k.clone(), v.clone());
    }
    let names = shared.sessions.names();
    m.insert(
        "sessions".into(),
        Value::Array(names.iter().map(|n| Value::from(n.as_str())).collect()),
    );
    // The server identity/config echo block.
    let mut server = Map::new();
    server.insert(
        "uptime_s".into(),
        Value::from(shared.metrics.uptime().as_secs_f64()),
    );
    server.insert("version".into(), Value::from(env!("CARGO_PKG_VERSION")));
    server.insert(
        "batch_threads".into(),
        Value::from(shared.opts.batch_threads),
    );
    server.insert("lanes".into(), Value::from(shared.lanes.len()));
    server.insert("conn_workers".into(), Value::from(shared.opts.conn_workers));
    server.insert(
        "sem_cache_capacity".into(),
        Value::from(shared.opts.sem_cache_capacity),
    );
    server.insert(
        "plan_cache_capacity".into(),
        Value::from(shared.opts.plan_cache_capacity),
    );
    server.insert(
        "wal_rotate_bytes".into(),
        Value::from(
            shared
                .opts
                .wal_rotate_bytes
                .unwrap_or(cqchase_durability::DEFAULT_ROTATE_BYTES),
        ),
    );
    if let Some(t) = shared.opts.slow_query_us {
        server.insert("slow_query_us".into(), Value::from(t));
    }
    server.insert("trace".into(), Value::from(shared.tracer.is_enabled()));
    if let Some(d) = shared.opts.default_deadline_ms {
        server.insert("default_deadline_ms".into(), Value::from(d));
    }
    if let Some(d) = shared.opts.shed_queue_depth {
        server.insert("shed_queue_depth".into(), Value::from(d));
    }
    if let Some(b) = shared.opts.shed_resident_bytes {
        server.insert("shed_resident_bytes".into(), Value::from(b));
    }
    server.insert(
        "write_timeout_ms".into(),
        Value::from(shared.opts.write_timeout_ms),
    );
    server.insert(
        "shedding".into(),
        Value::from(shared.shedding.load(Ordering::Relaxed)),
    );
    m.insert("server".into(), Value::Object(server));
    // Aggregate cache counters across sessions, and collect per-session
    // gauges (rendered as `{session="…"}`-labelled Prometheus series).
    //
    // Plan-cache activity aggregates from each session's mirror
    // counters (`EvalState::plan_hits` etc.), which attribute work done
    // against a *shared* catalog plan cache to the session that ran it;
    // summing the private `PlanCache` counters instead would miss every
    // shared-cache run. Evictions have no mirror, so they sum from the
    // private caches plus each distinct shared catalog counted once
    // below.
    let (mut hits, mut misses, mut evictions, mut entries) = (0u64, 0u64, 0u64, 0usize);
    let (mut plan_hits, mut plan_misses, mut plan_evictions) = (0u64, 0u64, 0u64);
    let (mut plan_replans, mut plan_acyclic) = (0u64, 0u64);
    let mut eval_row_hits = 0u64;
    let (mut compactions, mut slots_reclaimed, mut bytes_reclaimed) = (0u64, 0u64, 0u64);
    let all = shared.sessions.snapshot();
    struct SessionGauges {
        name: String,
        traffic: u64,
        facts: usize,
        epoch: u64,
        result_hits: u64,
        plan_hits: u64,
        plan_misses: u64,
        sem_hits: u64,
        sem_misses: u64,
        shared_facts: bool,
    }
    let mut gauges: Vec<SessionGauges> = Vec::with_capacity(all.len());
    for s in &all {
        let c = s.sem_cache.lock().expect("semantic cache lock").stats();
        hits += c.hits;
        misses += c.misses;
        evictions += c.evictions;
        entries += c.entries;
        let (session_result_hits, session_plan_hits, session_plan_misses) = {
            // Scoped: the eval_state guard must be released
            // before touching the facts lock — lock order is
            // `facts` before `eval_state` everywhere else
            // (apply_updates holds facts.write while taking
            // eval_state), so holding eval_state across
            // facts.read() would be an ABBA deadlock against a
            // concurrent update.
            let e = s.eval_state.lock().expect("eval state lock");
            plan_hits += e.plan_hits;
            plan_misses += e.plan_misses;
            plan_evictions += e.plans.evictions() as u64;
            plan_replans += e.plan_replans;
            plan_acyclic += e.plan_acyclic_served;
            eval_row_hits += e.result_hits;
            (e.result_hits, e.plan_hits, e.plan_misses)
        };
        let (session_facts, session_epoch) = s.facts_snapshot();
        let facts = s.facts.read().expect("facts lock");
        let shared_facts = facts.is_shared();
        if !shared_facts {
            // A shared base index never mutates (updates promote to a
            // private copy first), so only owned indexes carry
            // compaction work — and counting a base once per attached
            // session would overstate it anyway.
            compactions += facts.index().compactions();
            slots_reclaimed += facts.index().slots_reclaimed();
            bytes_reclaimed += facts.index().bytes_reclaimed();
        }
        drop(facts);
        gauges.push(SessionGauges {
            name: s.name.clone(),
            traffic: s.traffic.load(Ordering::Relaxed),
            facts: session_facts,
            epoch: session_epoch,
            result_hits: session_result_hits,
            plan_hits: session_plan_hits,
            plan_misses: session_plan_misses,
            sem_hits: c.hits,
            sem_misses: c.misses,
            shared_facts,
        });
    }
    // Itemize only the top sessions by lifetime traffic (aggregates
    // above already cover everyone); ties break by name so the
    // selection is deterministic.
    let omitted = gauges.len().saturating_sub(SESSIONS_DETAIL_CAP);
    if omitted > 0 {
        gauges.sort_by(|a, b| b.traffic.cmp(&a.traffic).then_with(|| a.name.cmp(&b.name)));
        gauges.truncate(SESSIONS_DETAIL_CAP);
    }
    let mut detail = Map::new();
    for g in &gauges {
        let mut sd = Map::new();
        sd.insert("facts".into(), Value::from(g.facts));
        sd.insert("epoch".into(), Value::from(g.epoch));
        sd.insert(
            "lane".into(),
            Value::from(lane_of(&g.name, shared.lanes.len())),
        );
        sd.insert("traffic".into(), Value::from(g.traffic));
        sd.insert("shared_catalog".into(), Value::from(g.shared_facts));
        sd.insert("eval_result_hits".into(), Value::from(g.result_hits));
        sd.insert("sem_cache_hits".into(), Value::from(g.sem_hits));
        sd.insert("sem_cache_misses".into(), Value::from(g.sem_misses));
        let probes = g.sem_hits + g.sem_misses;
        sd.insert(
            "sem_cache_hit_rate".into(),
            Value::from(if probes == 0 {
                0.0
            } else {
                g.sem_hits as f64 / probes as f64
            }),
        );
        sd.insert("plan_cache_hits".into(), Value::from(g.plan_hits));
        sd.insert("plan_cache_misses".into(), Value::from(g.plan_misses));
        detail.insert(g.name.clone(), Value::Object(sd));
    }
    m.insert("sessions_detail".into(), Value::Object(detail));
    m.insert("sessions_detail_omitted".into(), Value::from(omitted));
    // The shared-catalog pool: distinct frozen catalogs, how many
    // registrations built vs attached, copy-on-write promotions, and
    // the resident bytes deduplicated across attached sessions. Shared
    // plan-cache evictions fold into the plan_cache block here, counted
    // once per catalog (hits/misses/replans are already attributed to
    // sessions via the mirrors above).
    let mut catalog_promotions = 0u64;
    let mut catalog_attached = 0u64;
    let mut shared_resident_bytes = 0usize;
    for c in shared.catalogs.snapshot() {
        let (_, _, ev, _, _) = c.shared_plan_counters();
        plan_evictions += ev;
        catalog_promotions += c.promotions.load(Ordering::Relaxed);
        catalog_attached += c.attached.load(Ordering::Relaxed);
        shared_resident_bytes += c.resident_bytes();
    }
    let mut catalogs = Map::new();
    catalogs.insert("distinct".into(), Value::from(shared.catalogs.len()));
    catalogs.insert(
        "builds".into(),
        Value::from(shared.catalogs.builds.load(Ordering::Relaxed)),
    );
    catalogs.insert(
        "attaches".into(),
        Value::from(shared.catalogs.attaches.load(Ordering::Relaxed)),
    );
    catalogs.insert("attached_sessions".into(), Value::from(catalog_attached));
    catalogs.insert("promotions".into(), Value::from(catalog_promotions));
    catalogs.insert(
        "shared_resident_bytes".into(),
        Value::from(shared_resident_bytes),
    );
    m.insert("catalogs".into(), Value::Object(catalogs));
    let mut sem = Map::new();
    sem.insert("hits".into(), Value::from(hits));
    sem.insert("misses".into(), Value::from(misses));
    sem.insert("evictions".into(), Value::from(evictions));
    sem.insert("entries".into(), Value::from(entries));
    sem.insert(
        "capacity_per_session".into(),
        Value::from(shared.opts.sem_cache_capacity),
    );
    m.insert("semantic_cache".into(), Value::Object(sem));
    let mut plans = Map::new();
    plans.insert("hits".into(), Value::from(plan_hits));
    plans.insert("misses".into(), Value::from(plan_misses));
    plans.insert("evictions".into(), Value::from(plan_evictions));
    m.insert("plan_cache".into(), Value::Object(plans));
    // The cost-based planner's counters: how many plans were
    // compiled, how many times a served plan carried the
    // Yannakakis acyclic fast path, and how many recompiles were
    // forced by cardinality drift in the planner statistics.
    let mut planner = Map::new();
    planner.insert("compiled".into(), Value::from(plan_misses));
    planner.insert("acyclic_hits".into(), Value::from(plan_acyclic));
    planner.insert("replans".into(), Value::from(plan_replans));
    m.insert("planner".into(), Value::Object(planner));
    m.insert("eval_row_hits".into(), Value::from(eval_row_hits));
    // The mutation fast path's counters: index compaction work
    // across sessions, plus the admission queue's update
    // coalescing and barrier accounting (also under `batching`).
    let mut mutation = Map::new();
    mutation.insert("compactions".into(), Value::from(compactions));
    mutation.insert("slots_reclaimed".into(), Value::from(slots_reclaimed));
    mutation.insert("bytes_reclaimed".into(), Value::from(bytes_reclaimed));
    mutation.insert(
        "updates_coalesced".into(),
        Value::from(shared.metrics.updates_coalesced.load(Ordering::Relaxed)),
    );
    mutation.insert(
        "barrier_flushes".into(),
        Value::from(shared.metrics.barrier_flushes.load(Ordering::Relaxed)),
    );
    m.insert("mutation".into(), Value::Object(mutation));
    m.insert(
        "durability".into(),
        match &shared.durability {
            Some(d) => d.stats_block(),
            None => Durability::disabled_stats_block(),
        },
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_picks_a_port_and_shuts_down() {
        let (addr, handle) = Server::spawn(ServeOptions {
            addr: "127.0.0.1:0".into(),
            ..Default::default()
        })
        .unwrap();
        assert_ne!(addr.port(), 0);
        let mut c = crate::client::Client::connect(addr).unwrap();
        let v = c.shutdown().unwrap();
        assert_eq!(v["ok"], true);
        handle.join().unwrap().unwrap();
    }
}
