//! Offline shim for the subset of `rand` 0.8 used by this workspace.
//!
//! The build container has no network access and no vendored registry, so
//! the real `rand` crate cannot be fetched. This shim implements exactly
//! the surface the workspace consumes — `StdRng::seed_from_u64`,
//! `Rng::gen_range` / `Rng::gen_bool`, and `SliceRandom::shuffle` — on top
//! of a SplitMix64 generator. Streams are deterministic per seed (which is
//! all the workload generators require) but do **not** match upstream
//! `rand`'s ChaCha streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128) as u128 + 1;
                (s as i128 + (rng() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u32, u64, i32, i64);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut || self.next_u64())
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        // 53 uniform mantissa bits, exactly the upstream construction.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64 (not upstream's
    /// ChaCha — deterministic per seed, which is what callers rely on).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Slice extensions.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs = (0..100).any(|_| {
            StdRng::seed_from_u64(7).gen_range(0u64..u64::MAX) != c.gen_range(0u64..u64::MAX)
        });
        assert!(differs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements virtually never shuffle to identity");
    }
}
